#!/usr/bin/env python3
"""Bandwidth dashboard: watch the §3.2 signal drive DSPatch's decisions.

Runs one bandwidth-hungry workload under DSPatch+SPP on machines with one
and two DDR4 channels, sampling the 2-bit utilization signal through the
run, then renders:

- the utilization timeline per configuration (ASCII line chart),
- the quartile residency histogram,
- DSPatch's CovP/AccP/suppressed decision counts — the visible effect of
  the signal on pattern selection (Figure 10 in action).

The trace comes from a shared :class:`repro.Session` (so it is generated
once and cached); the sampled runs are hand-wired because they poll the
DRAM monitor *mid-run*, which the session's cached end-of-run results
cannot express.
"""

import os

from repro import Session, TraceSpec
from repro.cpu.core import CoreExecution
from repro.cpu.system import SystemConfig
from repro.memory.dram import DramConfig, DramModel
from repro.memory.hierarchy import MemoryHierarchy
from repro.metrics.asciichart import line_chart
from repro.prefetchers.registry import build_prefetcher
from repro.prefetchers.stride import PcStridePrefetcher

WORKLOAD = "hpc.parsec-stream"
LENGTH = int(os.environ.get("REPRO_EXAMPLE_LENGTH", "12000"))
SAMPLES = 40


def run_sampled(trace, dram_config):
    """Run once, sampling utilization at fixed demand-op intervals."""
    config = SystemConfig.single_thread("spp+dspatch", dram=dram_config)
    dram = DramModel(dram_config)
    combo = build_prefetcher("spp+dspatch", dram)
    hierarchy = MemoryHierarchy(
        config=config.hierarchy,
        dram=dram,
        l1_prefetcher=PcStridePrefetcher(),
        l2_prefetcher=combo,
    )
    execution = CoreExecution(config.core, trace, hierarchy)

    interval = max(1, len(trace) // SAMPLES)
    timeline = {}
    ops = 0
    while execution.advance():
        ops += 1
        if ops % interval == 0:
            timeline[ops] = 100.0 * dram.utilization(execution.time)
    dspatch = combo.components[1]  # spp+dspatch: DSPatch is second
    return timeline, dram, dspatch, execution.finalize()


def main():
    session = Session()
    trace = session.trace(TraceSpec(WORKLOAD, LENGTH))
    timelines = {}
    for channels in (1, 2):
        dram_config = DramConfig(speed_grade=2133, channels=channels)
        label = dram_config.label()
        timeline, dram, dspatch, stats = run_sampled(trace, dram_config)
        timelines[label] = timeline

        residency = dram.monitor.bucket_residency()
        quartiles = ", ".join(
            f"q{i}: {share:.0%}" for i, share in enumerate(residency)
        )
        total_preds = (
            dspatch.predictions_covp
            + dspatch.predictions_accp
            + dspatch.predictions_suppressed
        )
        print(f"== {label}  (peak {dram_config.peak_gbps:.1f} GB/s)")
        print(f"   ipc {stats.ipc:.3f}   quartile residency: {quartiles}")
        if total_preds:
            print(
                f"   DSPatch selections: CovP {dspatch.predictions_covp}, "
                f"AccP {dspatch.predictions_accp}, "
                f"suppressed {dspatch.predictions_suppressed}"
            )
        print()

    print(
        line_chart(
            timelines,
            title=f"DRAM utilization (%) through the run — {WORKLOAD}",
            x_label="memory ops",
            y_label="% of peak",
            height=14,
        )
    )
    print(
        "\nReading guide: the 1-channel run sits in higher quartiles, pushing"
        "\nDSPatch toward AccP (accuracy); doubling the channels drops the"
        "\nutilization and lets CovP chase coverage — the paper's Figure 10"
        "\nmechanism, observable."
    )


if __name__ == "__main__":
    main()
