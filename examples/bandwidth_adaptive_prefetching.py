#!/usr/bin/env python3
"""Bandwidth-adaptive prefetching: watch DSPatch switch patterns.

The core of the paper (Sections 3.2 and 3.6): DSPatch reads a 2-bit DRAM
bandwidth-utilization signal and predicts with the coverage-biased pattern
(CovP) when bandwidth is plentiful, the accuracy-biased pattern (AccP) when
it is tight, and nothing at all when even AccP is unreliable.

This example drives the *same* workload through the six DRAM
configurations of Figure 15 (1/2 channels x DDR4-1600/2133/2400) and shows

- how baseline utilization falls as peak bandwidth grows, and
- how DSPatch's CovP/AccP prediction mix shifts in response, and
- how the DSPatch+SPP speedup scales with bandwidth.

The baseline and DSPatch+SPP runs for all six machines are batched
through one ``Session.run`` call; the pattern-selection counters need a
hand-wired hierarchy (they live inside the prefetcher object, which the
session's cached results deliberately do not expose).
"""

import os

from repro import RunSpec, Session, TraceSpec
from repro.memory.dram import BANDWIDTH_SWEEP

WORKLOAD = "sysmark.excel"
LENGTH = int(os.environ.get("REPRO_EXAMPLE_LENGTH", "12000"))


def dspatch_selection_counts(trace, dram):
    """Re-run standalone DSPatch by hand to read its selection counters."""
    import repro.prefetchers.registry as registry
    from repro.cpu.core import CoreExecution, CoreModel
    from repro.memory.dram import DramModel
    from repro.memory.hierarchy import MemoryHierarchy
    from repro.prefetchers.stride import PcStridePrefetcher

    dram_model = DramModel(dram)
    dspatch = registry.build_prefetcher("dspatch", dram_model)
    hierarchy = MemoryHierarchy(
        dram=dram_model,
        l1_prefetcher=PcStridePrefetcher(),
        l2_prefetcher=dspatch,
    )
    CoreExecution(CoreModel(), trace, hierarchy).run()
    return dspatch


def main():
    session = Session()
    trace = session.trace(TraceSpec(WORKLOAD, LENGTH))
    print(f"workload: {WORKLOAD} ({len(trace)} memory ops)\n")

    # All twelve standard runs (six machines x {baseline, DSPatch+SPP}).
    specs = [
        RunSpec(WORKLOAD, scheme, LENGTH, dram)
        for dram in BANDWIDTH_SWEEP
        for scheme in ("none", "spp+dspatch")
    ]
    results = session.run(specs)

    header = (
        f"{'config':>9s} {'peak GB/s':>9s} {'base util':>9s} "
        f"{'CovP':>6s} {'AccP':>6s} {'none':>6s} {'DSPatch+SPP':>12s}"
    )
    print(header)
    print("-" * len(header))

    for i, dram in enumerate(BANDWIDTH_SWEEP):
        base, combo = results[2 * i], results[2 * i + 1]
        dspatch = dspatch_selection_counts(trace, dram)

        predictions = max(
            1, dspatch.predictions_covp + dspatch.predictions_accp + dspatch.predictions_suppressed
        )
        base_util = sum(i * f for i, f in enumerate(base.bw_utilization_residency)) / 3
        speedup = 100.0 * (combo.ipc / base.ipc - 1.0)
        print(
            f"{dram.label():>9s} {dram.peak_gbps:9.1f} {base_util:9.0%} "
            f"{dspatch.predictions_covp / predictions:6.0%} "
            f"{dspatch.predictions_accp / predictions:6.0%} "
            f"{dspatch.predictions_suppressed / predictions:6.0%} "
            f"{speedup:+11.1f}%"
        )

    print(
        "\nReading: with narrow DRAM the utilization signal sits high, so"
        "\nDSPatch leans on AccP (or suppresses); as peak bandwidth grows the"
        "\nsignal drops and CovP's aggressive predictions take over — that is"
        "\nthe mechanism behind Figure 15's scaling."
    )


if __name__ == "__main__":
    main()
