#!/usr/bin/env python3
"""Quickstart: run one workload under DSPatch+SPP and read the results.

This is the five-minute tour of the public API:

1. generate a synthetic workload trace,
2. build the paper's single-thread machine (Table 2),
3. run it under the baseline and under two prefetcher configurations,
4. inspect speedup, coverage, accuracy and bandwidth utilization.
"""

from repro import System, SystemConfig, build_trace


def main():
    # One of the 75 catalogued workloads: BigBench-like cloud analytics
    # with recurring spatial layouts visited in reordered order.
    trace = build_trace("cloud.bigbench", length=12000)
    print(f"trace: {len(trace)} memory ops, {trace.instructions} instructions")

    baseline = System(SystemConfig.single_thread("none")).run(trace)
    print(f"\nbaseline (L1 stride only): IPC {baseline.ipc:.3f}, "
          f"L2 misses {baseline.l2_demand_misses}")

    for scheme in ("spp", "dspatch", "spp+dspatch"):
        result = System(SystemConfig.single_thread(scheme)).run(trace)
        speedup = 100.0 * (result.ipc / baseline.ipc - 1.0)
        print(
            f"{scheme:12s} speedup {speedup:+6.1f}%   "
            f"coverage {result.coverage:5.1%}   accuracy {result.accuracy:5.1%}   "
            f"prefetches {result.pf_issued}"
        )

    # The Section 3.2 bandwidth signal, as residency in each quartile.
    result = System(SystemConfig.single_thread("spp+dspatch")).run(trace)
    labels = ("<25%", "25-50%", "50-75%", ">=75%")
    residency = ", ".join(
        f"{label}: {frac:.0%}" for label, frac in zip(labels, result.bw_utilization_residency)
    )
    print(f"\nDRAM utilization residency under DSPatch+SPP: {residency}")


if __name__ == "__main__":
    main()
