#!/usr/bin/env python3
"""Quickstart: run one workload under DSPatch+SPP and read the results.

This is the five-minute tour of the public session API:

1. open a :class:`repro.Session` — it owns the result cache and (when
   ``jobs`` parallelism is configured) the worker pool;
2. describe the experiments as immutable :class:`repro.RunSpec` objects;
3. execute the whole batch with one ``session.run`` call;
4. inspect speedup, coverage, accuracy and bandwidth utilization.

Re-running this script is nearly instant: every result persists in the
session's store backend under a content-addressed key.
"""

import os

from repro import RunSpec, Session, TraceSpec

LENGTH = int(os.environ.get("REPRO_EXAMPLE_LENGTH", "12000"))


def main():
    session = Session()

    # One of the 75 catalogued workloads: BigBench-like cloud analytics
    # with recurring spatial layouts visited in reordered order.
    trace = session.trace(TraceSpec("cloud.bigbench", LENGTH))
    print(f"trace: {len(trace)} memory ops, {trace.instructions} instructions")

    # The baseline (L1 PC-stride only) plus three L2 prefetcher schemes,
    # described declaratively and executed as one batch.
    schemes = ("none", "spp", "dspatch", "spp+dspatch")
    specs = [RunSpec("cloud.bigbench", scheme, LENGTH) for scheme in schemes]
    results = dict(zip(schemes, session.run(specs)))

    baseline = results["none"]
    print(f"\nbaseline (L1 stride only): IPC {baseline.ipc:.3f}, "
          f"L2 misses {baseline.l2_demand_misses}")

    for scheme in schemes[1:]:
        result = results[scheme]
        speedup = 100.0 * (result.ipc / baseline.ipc - 1.0)
        print(
            f"{scheme:12s} speedup {speedup:+6.1f}%   "
            f"coverage {result.coverage:5.1%}   accuracy {result.accuracy:5.1%}   "
            f"prefetches {result.pf_issued}"
        )

    # The Section 3.2 bandwidth signal, as residency in each quartile.
    result = results["spp+dspatch"]
    labels = ("<25%", "25-50%", "50-75%", ">=75%")
    residency = ", ".join(
        f"{label}: {frac:.0%}" for label, frac in zip(labels, result.bw_utilization_residency)
    )
    print(f"\nDRAM utilization residency under DSPatch+SPP: {residency}")


if __name__ == "__main__":
    main()
