#!/usr/bin/env python3
"""Multi-programmed simulation: four cores sharing the LLC and DRAM.

Section 5.4's scenario: four copies of a memory-intensive workload (a
homogeneous mix) on the paper's MP machine — shared 8MB LLC, two DDR4-2133
channels, so the same LLC capacity per core as single-thread but *half*
the bandwidth per core.  Scarce bandwidth is where the accuracy-biased
pattern earns its keep.

A :class:`repro.MixSpec` describes one multi-programmed run (one
workload per core); the alone-IPC reference is an ordinary
:class:`repro.RunSpec` on the same machine.  Everything executes in one
``Session.run`` batch.
"""

import os

from repro import MixSpec, RunSpec, Session
from repro.engine.specs import MP_DRAM, MP_LLC_BYTES

WORKLOAD = "sysmark.excel"
LENGTH_PER_CORE = int(os.environ.get("REPRO_EXAMPLE_LENGTH", "5000"))
SCHEMES = ("none", "spp", "spp+dspatch")


def main():
    session = Session()
    print(f"homogeneous mix: 4 x {WORKLOAD}, {LENGTH_PER_CORE} memory ops per core\n")

    # Alone-IPC reference (one core, full machine to itself, baseline
    # prefetching) plus the three mix runs — one batch.  The MP machine:
    # two DDR4-2133 channels, 8MB shared LLC (MixSpec's default DRAM).
    alone_spec = RunSpec(WORKLOAD, "none", LENGTH_PER_CORE, MP_DRAM, MP_LLC_BYTES)
    mix_specs = [
        MixSpec(WORKLOAD, (WORKLOAD,) * 4, scheme, LENGTH_PER_CORE) for scheme in SCHEMES
    ]
    alone, *mixes = session.run([alone_spec, *mix_specs])
    print(f"alone IPC (baseline, full machine to itself): {alone.ipc:.3f}\n")

    results = {}
    for scheme, mp in zip(SCHEMES, mixes):
        ws = mp.weighted_speedup([alone.ipc] * 4)
        results[scheme] = ws
        per_core = "  ".join(f"{core.ipc:.3f}" for core in mp.per_core)
        print(f"{scheme:12s} per-core IPC [{per_core}]  weighted speedup {ws:.3f}")

    base_ws = results["none"]
    print("\nperformance over the shared baseline:")
    for scheme in SCHEMES[1:]:
        print(f"  {scheme:12s} {100.0 * (results[scheme] / base_ws - 1.0):+.1f}%")


if __name__ == "__main__":
    main()
