#!/usr/bin/env python3
"""Multi-programmed simulation: four cores sharing the LLC and DRAM.

Section 5.4's scenario: four copies of a memory-intensive workload (a
homogeneous mix) on the paper's MP machine — shared 8MB LLC, two DDR4-2133
channels, so the same LLC capacity per core as single-thread but *half*
the bandwidth per core.  Scarce bandwidth is where the accuracy-biased
pattern earns its keep.
"""

from repro import MultiCoreSystem, System, SystemConfig, build_trace
from repro.workloads.mixes import build_mix_traces


def main():
    workload = "sysmark.excel"
    traces = build_mix_traces([workload] * 4, length_per_core=5000)
    print(f"homogeneous mix: 4 x {workload}, {len(traces[0])} memory ops per core\n")

    # Alone-IPC reference: one core on the MP machine, baseline prefetching.
    alone_cfg = SystemConfig.single_thread(
        "none",
        dram=SystemConfig.multi_programmed().dram,
        llc_bytes=8 * 1024 * 1024,
    )
    alone_ipc = System(alone_cfg).run(traces[0]).ipc
    print(f"alone IPC (baseline, full machine to itself): {alone_ipc:.3f}\n")

    results = {}
    for scheme in ("none", "spp", "spp+dspatch"):
        mp = MultiCoreSystem(SystemConfig.multi_programmed(scheme)).run(traces)
        ws = mp.weighted_speedup([alone_ipc] * 4)
        results[scheme] = ws
        per_core = "  ".join(f"{core.ipc:.3f}" for core in mp.per_core)
        print(f"{scheme:12s} per-core IPC [{per_core}]  weighted speedup {ws:.3f}")

    base_ws = results["none"]
    print("\nperformance over the shared baseline:")
    for scheme in ("spp", "spp+dspatch"):
        print(f"  {scheme:12s} {100.0 * (results[scheme] / base_ws - 1.0):+.1f}%")


if __name__ == "__main__":
    main()
