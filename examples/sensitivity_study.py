#!/usr/bin/env python3
"""Sensitivity study: DSPatch's structure sizes and design toggles.

Reproduces the reasoning behind Table 1's sizing on a small workload
sample: sweep the SPT and Page Buffer around the design point, then
toggle each structural design choice (anchoring, dual triggers, 128B
compression) off individually.

The design point should sit at the knee of the size curves, and every
toggle should cost performance somewhere — otherwise the mechanism would
not be earning its storage.
"""

from repro import System, SystemConfig, build_trace
from repro.memory.dram import FixedBandwidth
from repro.metrics.stats import geomean
from repro.prefetchers.registry import build_prefetcher

WORKLOADS = ("hpc.linpack", "sysmark.excel", "cloud.bigbench", "ispec06.mcf")
TRACE_LEN = 10000


def geomean_speedup(scheme, traces, baselines):
    ratios = []
    for name, trace in traces.items():
        result = System(SystemConfig.single_thread(scheme)).run(trace)
        ratios.append(result.ipc / baselines[name].ipc)
    return 100.0 * (geomean(ratios) - 1.0)


def main():
    traces = {name: build_trace(name, TRACE_LEN) for name in WORKLOADS}
    baselines = {
        name: System(SystemConfig.single_thread("none")).run(trace)
        for name, trace in traces.items()
    }

    print("== structure sizes (geomean speedup vs. storage) ==")
    for scheme in (
        "dspatch-spt64",
        "dspatch-spt128",
        "dspatch",
        "dspatch-spt512",
        "dspatch-pb32",
        "dspatch-pb128",
    ):
        storage = build_prefetcher(scheme, FixedBandwidth(0)).storage_kb()
        label = scheme + (" (design point)" if scheme == "dspatch" else "")
        print(f"  {label:28s} {geomean_speedup(scheme, traces, baselines):+6.1f}%  "
              f"at {storage:.1f}KB")

    print("\n== design-choice toggles ==")
    for scheme, what in (
        ("dspatch", "full design"),
        ("dspatch-noanchor", "no trigger anchoring (Section 3.3 off)"),
        ("dspatch-1trigger", "single trigger per page (Section 3.7 off)"),
        ("dspatch-64b", "uncompressed 64B patterns (Section 3.8 off)"),
    ):
        storage = build_prefetcher(scheme, FixedBandwidth(0)).storage_kb()
        print(f"  {what:42s} {geomean_speedup(scheme, traces, baselines):+6.1f}%  "
              f"at {storage:.1f}KB")


if __name__ == "__main__":
    main()
