#!/usr/bin/env python3
"""Sensitivity study: DSPatch's structure sizes and design toggles.

Reproduces the reasoning behind Table 1's sizing on a small workload
sample: sweep the SPT and Page Buffer around the design point, then
toggle each structural design choice (anchoring, dual triggers, 128B
compression) off individually.

The design point should sit at the knee of the size curves, and every
toggle should cost performance somewhere — otherwise the mechanism would
not be earning its storage.

The whole (workload × variant) cross product is declared up front as
:class:`repro.RunSpec` objects and executed through one batched
``Session.run`` call — results are cached, so tweaking the printout and
re-running is free.
"""

import os

from repro import RunSpec, Session
from repro.memory.dram import FixedBandwidth
from repro.metrics.stats import geomean
from repro.prefetchers.registry import build_prefetcher

WORKLOADS = ("hpc.linpack", "sysmark.excel", "cloud.bigbench", "ispec06.mcf")
TRACE_LEN = int(os.environ.get("REPRO_EXAMPLE_LENGTH", "10000"))

SIZE_SWEEP = (
    "dspatch-spt64",
    "dspatch-spt128",
    "dspatch",
    "dspatch-spt512",
    "dspatch-pb32",
    "dspatch-pb128",
)
TOGGLES = (
    ("dspatch", "full design"),
    ("dspatch-noanchor", "no trigger anchoring (Section 3.3 off)"),
    ("dspatch-1trigger", "single trigger per page (Section 3.7 off)"),
    ("dspatch-64b", "uncompressed 64B patterns (Section 3.8 off)"),
)


def geomean_speedup(grid, scheme):
    ratios = [
        grid[(name, scheme)].ipc / grid[(name, "none")].ipc for name in WORKLOADS
    ]
    return 100.0 * (geomean(ratios) - 1.0)


def main():
    session = Session()
    schemes = ["none", *SIZE_SWEEP, "dspatch-noanchor", "dspatch-1trigger", "dspatch-64b"]
    specs = [
        RunSpec(name, scheme, TRACE_LEN) for name in WORKLOADS for scheme in schemes
    ]
    results = session.run(specs)
    grid = dict(
        zip(((name, scheme) for name in WORKLOADS for scheme in schemes), results)
    )

    print("== structure sizes (geomean speedup vs. storage) ==")
    for scheme in SIZE_SWEEP:
        storage = build_prefetcher(scheme, FixedBandwidth(0)).storage_kb()
        label = scheme + (" (design point)" if scheme == "dspatch" else "")
        print(f"  {label:28s} {geomean_speedup(grid, scheme):+6.1f}%  "
              f"at {storage:.1f}KB")

    print("\n== design-choice toggles ==")
    for scheme, what in TOGGLES:
        storage = build_prefetcher(scheme, FixedBandwidth(0)).storage_kb()
        print(f"  {what:42s} {geomean_speedup(grid, scheme):+6.1f}%  "
              f"at {storage:.1f}KB")


if __name__ == "__main__":
    main()
