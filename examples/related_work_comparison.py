#!/usr/bin/env python3
"""Related work: one prefetcher per family, on two contrasting workloads.

Section 6 of the paper sorts prefetchers into families — temporal
(Markov), delta-based (VLDP, SPP, BOP), bit-pattern (SMS, Bingo, DSPatch)
— and argues the storage hierarchy between them.  This example runs one
representative per family on:

- a dense streaming workload (HPC linpack), where delta prefetchers
  shine, and
- a jittered-layout workload (SYSmark excel), where only anchored
  bit-patterns keep up.

and prints speedup against hardware cost.  The full (workload × family)
grid executes as one batched ``Session.run`` call.
"""

import os

from repro import RunSpec, Session
from repro.memory.dram import FixedBandwidth
from repro.prefetchers.registry import build_prefetcher

LENGTH = int(os.environ.get("REPRO_EXAMPLE_LENGTH", "12000"))
WORKLOADS = ("hpc.linpack", "sysmark.excel")

FAMILIES = [
    ("nextline-4", "static spatial"),
    ("markov", "temporal correlation"),
    ("vldp", "delta history"),
    ("spp", "delta signature"),
    ("sms", "bit-pattern (PC+offset)"),
    ("bingo", "bit-pattern (dual event)"),
    ("dspatch", "dual anchored bit-pattern"),
]


def main():
    session = Session()
    schemes = ["none"] + [scheme for scheme, _ in FAMILIES]
    specs = [RunSpec(name, scheme, LENGTH) for name in WORKLOADS for scheme in schemes]
    results = dict(
        zip(
            ((name, scheme) for name in WORKLOADS for scheme in schemes),
            session.run(specs),
        )
    )

    header = f"{'scheme':12s} {'family':26s} {'storage':>9s}"
    for name in WORKLOADS:
        header += f" {name:>16s}"
    print(header)
    print("-" * len(header))

    for scheme, family in FAMILIES:
        storage = build_prefetcher(scheme, FixedBandwidth(0)).storage_kb()
        row = f"{scheme:12s} {family:26s} {storage:8.1f}K"
        for name in WORKLOADS:
            speedup = 100.0 * (
                results[(name, scheme)].ipc / results[(name, "none")].ipc - 1.0
            )
            row += f" {speedup:+15.1f}%"
        print(row)

    print(
        "\nReading guide: Markov's megabyte table cannot learn at this working-set"
        "\nsize (the paper's Section 6 point about temporal prefetchers); Bingo"
        "\nbuys its wins with >100KB; DSPatch holds both columns at 3.6KB."
    )


if __name__ == "__main__":
    main()
