#!/usr/bin/env python3
"""Related work: one prefetcher per family, on two contrasting workloads.

Section 6 of the paper sorts prefetchers into families — temporal
(Markov), delta-based (VLDP, SPP, BOP), bit-pattern (SMS, Bingo, DSPatch)
— and argues the storage hierarchy between them.  This example runs one
representative per family on:

- a dense streaming workload (HPC linpack), where delta prefetchers
  shine, and
- a jittered-layout workload (SYSmark excel), where only anchored
  bit-patterns keep up.

and prints speedup against hardware cost.
"""

from repro import System, SystemConfig, build_trace
from repro.memory.dram import FixedBandwidth
from repro.prefetchers.registry import build_prefetcher

FAMILIES = [
    ("nextline-4", "static spatial"),
    ("markov", "temporal correlation"),
    ("vldp", "delta history"),
    ("spp", "delta signature"),
    ("sms", "bit-pattern (PC+offset)"),
    ("bingo", "bit-pattern (dual event)"),
    ("dspatch", "dual anchored bit-pattern"),
]


def main():
    workloads = {
        "hpc.linpack": build_trace("hpc.linpack", length=12000),
        "sysmark.excel": build_trace("sysmark.excel", length=12000),
    }
    baselines = {
        name: System(SystemConfig.single_thread("none")).run(trace)
        for name, trace in workloads.items()
    }

    header = f"{'scheme':12s} {'family':26s} {'storage':>9s}"
    for name in workloads:
        header += f" {name:>16s}"
    print(header)
    print("-" * len(header))

    for scheme, family in FAMILIES:
        storage = build_prefetcher(scheme, FixedBandwidth(0)).storage_kb()
        row = f"{scheme:12s} {family:26s} {storage:8.1f}K"
        for name, trace in workloads.items():
            result = System(SystemConfig.single_thread(scheme)).run(trace)
            speedup = 100.0 * (result.ipc / baselines[name].ipc - 1.0)
            row += f" {speedup:+15.1f}%"
        print(row)

    print(
        "\nReading guide: Markov's megabyte table cannot learn at this working-set"
        "\nsize (the paper's Section 6 point about temporal prefetchers); Bingo"
        "\nbuys its wins with >100KB; DSPatch holds both columns at 3.6KB."
    )


if __name__ == "__main__":
    main()
