#!/usr/bin/env python3
"""Trace analysis: inspect the access structure a prefetcher has to learn.

Uses the analysis module to print, for three structurally different
workloads, the statistics the paper's design decisions rest on:

- the +1/-1 delta share (Figure 11a) that justifies 128B compression,
- the (PC x offset) trigger-signature count that sizes SMS's PHT
  (Figure 5) versus DSPatch's 256-entry PC-only SPT,
- page density, footprint, and the compression-induced misprediction
  rate (Figure 11b).

Traces come from a :class:`repro.Session` with an
:class:`repro.InMemoryBackend` — a store backend that lives and dies
with the process, so this analysis never touches the on-disk cache.
Also demonstrates the text trace format for interop with external tools.
"""

import os
import tempfile
from pathlib import Path

from repro import InMemoryBackend, Session, TraceSpec
from repro.cpu.trace_io import load_text, save_text
from repro.workloads.analysis import analyze_trace

WORKLOADS = ("hpc.linpack", "server.tpcc-1", "sysmark.excel")
LENGTH = int(os.environ.get("REPRO_EXAMPLE_LENGTH", "8000"))


def main():
    session = Session(backend=InMemoryBackend())
    for name in WORKLOADS:
        trace = session.trace(TraceSpec(name, LENGTH))
        print(analyze_trace(trace, name).render())
        print()

    # Round-trip through the text interchange format.
    trace = session.trace(TraceSpec("ispec06.mcf", 500))
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "mcf.trace"
        save_text(trace, path)
        size_kb = path.stat().st_size / 1024
        back = load_text(path)
        assert list(back) == list(trace)
        print(f"text round-trip: {len(back)} ops, {size_kb:.1f} KB on disk, lossless")
        print("first lines of the file:")
        for line in path.read_text().splitlines()[:5]:
            print(f"  {line}")


if __name__ == "__main__":
    main()
