#!/usr/bin/env python3
"""Extending the library: plug a custom prefetcher into the simulator.

The `Prefetcher` interface is three methods: ``train`` (observe an access,
return candidates), ``storage_breakdown`` (hardware budget), and optional
usefulness hooks.  This example implements a naive next-N-lines prefetcher,
wires it into the hierarchy by hand, and compares it against DSPatch on a
spatial workload — a template for prototyping your own designs.

Registry schemes run through the session API (cached, batched); the
custom prototype needs a hand-wired hierarchy because it is not a
registry scheme — sessions cache by *scheme name*, and a prototype
object has none yet.  Register it (``repro.prefetchers.registry``) and
it becomes a one-line ``RunSpec`` like everything else.
"""

import os

from repro import RunSpec, Session, TraceSpec
from repro.cpu.core import CoreExecution, CoreModel
from repro.memory.dram import DramConfig, DramModel
from repro.memory.hierarchy import MemoryHierarchy
from repro.prefetchers.base import PrefetchCandidate, Prefetcher
from repro.prefetchers.stride import PcStridePrefetcher

WORKLOAD = "ispec17.xalancbmk17"
LENGTH = int(os.environ.get("REPRO_EXAMPLE_LENGTH", "10000"))


class NextNLines(Prefetcher):
    """Prefetch the next N sequential lines after every training access.

    High coverage on streams, terrible accuracy on anything irregular —
    a useful straw man.
    """

    name = "next-n-lines"

    def __init__(self, degree=2):
        self.degree = degree

    def train(self, cycle, pc, addr, hit):
        line = addr >> 6
        page = line >> 6
        out = []
        for dist in range(1, self.degree + 1):
            target = line + dist
            if target >> 6 != page:
                break  # stay within the 4KB page
            out.append(PrefetchCandidate(target))
        return out

    def storage_breakdown(self):
        return {}  # stateless


def run_prototype(trace, prefetcher):
    """Hand-wired single-core run for a prefetcher *object*."""
    dram = DramModel(DramConfig())
    hierarchy = MemoryHierarchy(
        dram=dram, l1_prefetcher=PcStridePrefetcher(), l2_prefetcher=prefetcher
    )
    stats = CoreExecution(CoreModel(), trace, hierarchy).run()
    coverage, accuracy, _ = hierarchy.coverage_accuracy()
    return stats.ipc, coverage, accuracy


def main():
    session = Session()
    trace = session.trace(TraceSpec(WORKLOAD, LENGTH))

    # Registry schemes: declarative, batched, cached.
    base, dspatch, combo = session.run(
        [RunSpec(WORKLOAD, scheme, LENGTH) for scheme in ("none", "dspatch", "spp+dspatch")]
    )
    print(f"baseline IPC: {base.ipc:.3f}\n")
    print(f"{'prefetcher':>14s} {'speedup':>8s} {'coverage':>9s} {'accuracy':>9s}")

    # Prototypes: wire the object in by hand.
    for name, pf in (
        ("next-2-lines", NextNLines(degree=2)),
        ("next-8-lines", NextNLines(degree=8)),
    ):
        ipc, coverage, accuracy = run_prototype(trace, pf)
        print(
            f"{name:>14s} {100 * (ipc / base.ipc - 1):+7.1f}% "
            f"{coverage:9.1%} {accuracy:9.1%}"
        )
    for name, res in (("dspatch", dspatch), ("spp+dspatch", combo)):
        print(
            f"{name:>14s} {100 * (res.ipc / base.ipc - 1):+7.1f}% "
            f"{res.coverage:9.1%} {res.accuracy:9.1%}"
        )
    print(
        "\nThe straw man buys coverage by flooding inaccurate requests;"
        "\nDSPatch gets comparable coverage at far better accuracy by"
        "\nlearning anchored spatial patterns."
    )


if __name__ == "__main__":
    main()
