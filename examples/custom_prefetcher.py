#!/usr/bin/env python3
"""Extending the library: plug a custom prefetcher into the simulator.

The `Prefetcher` interface is three methods: ``train`` (observe an access,
return candidates), ``storage_breakdown`` (hardware budget), and optional
usefulness hooks.  This example implements a naive next-N-lines prefetcher,
wires it into the hierarchy by hand, and compares it against DSPatch on a
spatial workload — a template for prototyping your own designs.
"""

from repro import build_trace
from repro.cpu.core import CoreExecution, CoreModel
from repro.memory.dram import DramConfig, DramModel
from repro.memory.hierarchy import MemoryHierarchy
from repro.prefetchers.base import PrefetchCandidate, Prefetcher
from repro.prefetchers.registry import build_prefetcher
from repro.prefetchers.stride import PcStridePrefetcher


class NextNLines(Prefetcher):
    """Prefetch the next N sequential lines after every training access.

    High coverage on streams, terrible accuracy on anything irregular —
    a useful straw man.
    """

    name = "next-n-lines"

    def __init__(self, degree=2):
        self.degree = degree

    def train(self, cycle, pc, addr, hit):
        line = addr >> 6
        page = line >> 6
        out = []
        for dist in range(1, self.degree + 1):
            target = line + dist
            if target >> 6 != page:
                break  # stay within the 4KB page
            out.append(PrefetchCandidate(target))
        return out

    def storage_breakdown(self):
        return {}  # stateless


def run_with(trace, l2_prefetcher_or_name):
    dram = DramModel(DramConfig())
    if isinstance(l2_prefetcher_or_name, str):
        l2 = build_prefetcher(l2_prefetcher_or_name, dram)
    else:
        l2 = l2_prefetcher_or_name
    hierarchy = MemoryHierarchy(
        dram=dram, l1_prefetcher=PcStridePrefetcher(), l2_prefetcher=l2
    )
    stats = CoreExecution(CoreModel(), trace, hierarchy).run()
    coverage, accuracy, _ = hierarchy.coverage_accuracy()
    return stats.ipc, coverage, accuracy


def main():
    trace = build_trace("ispec17.xalancbmk17", length=10000)
    base_ipc, _, _ = run_with(trace, "none")
    print(f"baseline IPC: {base_ipc:.3f}\n")
    print(f"{'prefetcher':>14s} {'speedup':>8s} {'coverage':>9s} {'accuracy':>9s}")
    for name, pf in (
        ("next-2-lines", NextNLines(degree=2)),
        ("next-8-lines", NextNLines(degree=8)),
        ("dspatch", "dspatch"),
        ("spp+dspatch", "spp+dspatch"),
    ):
        ipc, coverage, accuracy = run_with(trace, pf)
        print(
            f"{name:>14s} {100 * (ipc / base_ipc - 1):+7.1f}% "
            f"{coverage:9.1%} {accuracy:9.1%}"
        )
    print(
        "\nThe straw man buys coverage by flooding inaccurate requests;"
        "\nDSPatch gets comparable coverage at far better accuracy by"
        "\nlearning anchored spatial patterns."
    )


if __name__ == "__main__":
    main()
