"""Opt-in prefetch/cache event tracing (the observability subsystem).

Two layers sit on top of the simulator:

- the **event layer** (this package): a line-oriented, versioned event
  grammar (:mod:`repro.observe.events`) plus pluggable sinks
  (:mod:`repro.observe.sinks`), emitted by
  :class:`repro.memory.observed.ObservedHierarchy` and threaded from
  ``SystemConfig`` / the CLI ``--trace-prefetch`` / ``--trace-cache`` /
  ``--trace-out`` flags;
- the **scoring layer** (:mod:`repro.metrics.quality`): validity-gated
  accuracy/coverage/timeliness/pollution objective functions computed
  from aggregate counters (cheap path) or from an event trace (exact
  path).

Tracing is strictly opt-in: with no sink configured the simulator uses
the plain :class:`repro.memory.hierarchy.MemoryHierarchy` — the same
code that runs today — so results stay bit-identical and throughput
unchanged.  Trace configuration never enters spec fingerprints, so
cached results remain valid whether or not tracing is on.  The format
contract lives in ``docs/observability.md``.
"""

from repro.observe.events import (
    CACHE_PREFIX,
    HEADER_PREFIX,
    PF_PREFIX,
    TRACE_VERSION,
    event_family,
    format_event,
    header_line,
    parse_line,
    parse_trace,
)
from repro.observe.sinks import (
    CollectingSink,
    CoreScopedSink,
    LineSink,
    PollutionCollector,
    TraceSink,
)

__all__ = [
    "CACHE_PREFIX",
    "CollectingSink",
    "CoreScopedSink",
    "HEADER_PREFIX",
    "LineSink",
    "PF_PREFIX",
    "PollutionCollector",
    "TRACE_VERSION",
    "TraceSink",
    "event_family",
    "format_event",
    "header_line",
    "parse_line",
    "parse_trace",
]
