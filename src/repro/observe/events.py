"""The prefetch/cache event grammar — kinds, wire format, parser.

This is the *format contract* of the observability subsystem (the
human-readable statement lives in ``docs/observability.md``).  Events are
plain tuples, ``(kind, ordinal, cycle, line, *extras)``; the wire form is
one line per event with a **stable prefix** per family::

    [repro][trace] v=1 events=dspatch-repro
    [repro][cache] hit ord=12 cyc=340 line=0x1a2b lvl=L1
    [repro][pf] issue ord=13 cyc=355 line=0x1a2d lp=0 src=dram

Contract rules (consumers may rely on these; bump :data:`TRACE_VERSION`
to change any of them):

- every event line starts with ``[repro][cache]`` or ``[repro][pf]``;
  the stream opens with one ``[repro][trace]`` header line carrying
  ``v=<version>``;
- the token after the prefix is the event kind; fields follow as
  ``key=value`` pairs in the fixed order given by :data:`EVENT_FIELDS`;
- ``ord`` is the demand-access ordinal (the hierarchy's
  ``demand_accesses`` counter — the same ordinal space the pollution
  classifier uses), ``cyc`` the core cycle, ``line`` a hex line address;
- unknown kinds/fields must be skipped, not rejected (forward
  compatibility within a major version).

The in-memory tuples are what sinks receive (see
:mod:`repro.observe.sinks`) and what the exact-path scorer consumes
(:func:`repro.metrics.quality.counters_from_events`).
"""

#: Version of the wire format; bumped on any incompatible grammar change.
TRACE_VERSION = 1

#: Stable line prefixes, per family.
CACHE_PREFIX = "[repro][cache]"
PF_PREFIX = "[repro][pf]"
HEADER_PREFIX = "[repro][trace]"

#: Event families.
FAMILY_CACHE = "cache"
FAMILY_PF = "pf"

# Event kinds ---------------------------------------------------------------

#: Demand served on-die (``lvl`` ∈ L1/L2/LLC — LLC includes merges with an
#: in-flight prefetch).
HIT = "hit"
#: Demand went to DRAM (``lvl`` is always DRAM).
MISS = "miss"
#: A prefetch candidate was accepted (passed residency/in-flight/queue
#: filters and, for DRAM prefetches, the memory controller).
ISSUE = "issue"
#: The accepted prefetch's line was installed on-die (``src`` = llc for an
#: LLC→L2 promotion, dram for a DRAM fetch; ``ready`` = fill-complete cycle).
FILL = "fill"
#: A candidate was filtered before issue (``reason`` ∈ resident, inflight,
#: bandwidth).
DROP = "drop"
#: First demand use of a prefetched line (``late`` = 1 if the demand had to
#: wait on the still-in-flight fill).
USEFUL = "useful"
#: Companion event to a ``useful`` with ``late=1`` (grep-friendly).
LATE = "late"
#: A prefetched line left the LLC without ever being demanded.
EVICTED_UNUSED = "evicted-unused"
#: A prefetch fill evicted a victim from the LLC (``line`` = filled line,
#: ``victim`` = evicted line) — the pollution-study input.
POLLUTING = "polluting"
#: Warmup boundary: statistics reset; metrics consume events after the
#: *last* reset marker.
RESET = "reset"
#: Scheme-internal event (``name`` = prefetcher registry name, ``info`` =
#: freeform ``key=value`` text) — emitted via ``Prefetcher.trace_event``.
SCHEME = "scheme"

#: kind -> family
EVENT_FAMILY = {
    HIT: FAMILY_CACHE,
    MISS: FAMILY_CACHE,
    ISSUE: FAMILY_PF,
    FILL: FAMILY_PF,
    DROP: FAMILY_PF,
    USEFUL: FAMILY_PF,
    LATE: FAMILY_PF,
    EVICTED_UNUSED: FAMILY_PF,
    POLLUTING: FAMILY_PF,
    SCHEME: FAMILY_PF,
    # RESET is emitted into whichever families are being traced; its wire
    # family comes from the event's trailing tag.
}

#: kind -> names of the fields after (ord, cyc, line), in wire order.
EVENT_FIELDS = {
    HIT: ("lvl",),
    MISS: ("lvl",),
    ISSUE: ("lp", "src"),
    FILL: ("src", "ready"),
    DROP: ("reason",),
    USEFUL: ("late",),
    LATE: (),
    EVICTED_UNUSED: (),
    POLLUTING: ("victim",),
    RESET: (),
    SCHEME: ("name", "info"),
}

#: ``lvl`` values, indexed by the hierarchy's integer level codes.
LEVEL_NAMES = ("L1", "L2", "LLC", "DRAM")

_HEX_FIELDS = frozenset(("line", "victim"))


def header_line():
    """The versioned header every line-oriented trace starts with."""
    return f"{HEADER_PREFIX} v={TRACE_VERSION} events=dspatch-repro"


def event_family(event):
    """The family (``cache``/``pf``) an event tuple belongs to."""
    kind = event[0]
    if kind == RESET:
        # reset markers carry their family as the trailing element
        return event[-1]
    return EVENT_FAMILY[kind]


def format_event(event, core=None):
    """Render one event tuple as its wire line (no newline)."""
    kind = event[0]
    family = event_family(event)
    prefix = CACHE_PREFIX if family == FAMILY_CACHE else PF_PREFIX
    parts = [prefix, kind]
    if core is not None:
        parts.append(f"core={core}")
    if kind == RESET:
        _, ord_, cyc, _family = event
        parts.append(f"ord={ord_}")
        parts.append(f"cyc={cyc}")
        return " ".join(parts)
    _, ord_, cyc, line = event[:4]
    parts.append(f"ord={ord_}")
    parts.append(f"cyc={cyc}")
    parts.append(f"line=0x{line:x}")
    names = EVENT_FIELDS[kind]
    for name, value in zip(names, event[4:]):
        if name == "lvl":
            value = LEVEL_NAMES[value]
        elif name in _HEX_FIELDS:
            value = f"0x{value:x}"
        parts.append(f"{name}={value}")
    return " ".join(parts)


def parse_line(text):
    """Parse one wire line back into an event tuple.

    Returns ``None`` for the header line, blank lines, unknown kinds and
    lines from other producers (forward-compatible skipping).  Core tags
    are dropped — parse multi-core traces per core if attribution matters.
    """
    text = text.strip()
    if text.startswith(HEADER_PREFIX) or not text:
        return None
    if text.startswith(CACHE_PREFIX):
        family = FAMILY_CACHE
        rest = text[len(CACHE_PREFIX):].strip()
    elif text.startswith(PF_PREFIX):
        family = FAMILY_PF
        rest = text[len(PF_PREFIX):].strip()
    else:
        return None
    # ``info=`` is a rest-of-line field (freeform text may contain spaces
    # and ``=``); it is always last on the wire.
    info = None
    if " info=" in rest:
        rest, _, info = rest.partition(" info=")
    tokens = rest.split()
    if not tokens:
        return None
    kind = tokens[0]
    if kind not in EVENT_FIELDS:
        return None
    fields = {}
    for token in tokens[1:]:
        key, _, value = token.partition("=")
        if _:
            fields[key] = value
    try:
        ord_ = int(fields.get("ord", 0))
        cyc = int(fields.get("cyc", 0))
        if kind == RESET:
            return (RESET, ord_, cyc, family)
        line = int(fields.get("line", "0"), 16)
        extras = []
        for name in EVENT_FIELDS[kind]:
            raw = fields.get(name)
            if name == "lvl":
                extras.append(LEVEL_NAMES.index(raw))
            elif name in _HEX_FIELDS:
                extras.append(int(raw, 16))
            elif name in ("lp", "ready", "late"):
                extras.append(int(raw))
            elif name == "info":
                extras.append(info if info is not None else "")
            else:
                extras.append(raw if raw is not None else "")
        return (kind, ord_, cyc, line, *extras)
    except (ValueError, TypeError):
        return None


def parse_trace(lines):
    """Parse an iterable of wire lines into a list of event tuples."""
    events = []
    for text in lines:
        event = parse_line(text)
        if event is not None:
            events.append(event)
    return events
