"""Trace sinks: where event tuples go.

A *sink* is anything with ``emit(event, core=None)``; the observed
hierarchy calls it once per event (see :mod:`repro.observe.events` for
the tuple shapes).  Three concrete sinks cover the stock use cases:

- :class:`LineSink` — renders the wire format onto a text stream
  (stderr by default; ``--trace-out PATH`` opens a file), writing the
  versioned header lazily before the first event;
- :class:`CollectingSink` — keeps the raw tuples in memory, for tests
  and for the exact-path quality scorer;
- :class:`PollutionCollector` — the *internal* sink behind
  ``record_pollution_victims``: it derives the classic
  ``demand_log`` / ``prefetch_fill_log`` / pollution-victim views from
  the same event stream, so pollution recording and user tracing share
  one recording path.

Sinks must not mutate events and must not raise — an observability
failure should never kill a simulation.  The stock sinks are trivially
exception-free; custom sinks own that contract.
"""

from repro.observe.events import (
    FILL,
    HIT,
    MISS,
    POLLUTING,
    RESET,
    format_event,
    header_line,
)


class TraceSink:
    """Base class (and duck-type contract) for event consumers."""

    def emit(self, event, core=None):
        """Consume one event tuple; ``core`` tags multi-core streams."""
        raise NotImplementedError

    def close(self):
        """Release any resources; the default is a no-op."""


class LineSink(TraceSink):
    """Render events as wire-format lines onto ``stream``.

    The versioned header is written before the first event, so an empty
    trace produces an empty stream (not a lone header).
    """

    def __init__(self, stream, close_stream=False):
        self.stream = stream
        self.events_written = 0
        self._close_stream = close_stream

    def emit(self, event, core=None):
        if self.events_written == 0:
            self.stream.write(header_line() + "\n")
        self.stream.write(format_event(event, core=core) + "\n")
        self.events_written += 1

    def close(self):
        if self._close_stream:
            self.stream.close()
        else:
            self.stream.flush()


class CollectingSink(TraceSink):
    """Keep raw event tuples in memory (``.events``; core tags in ``.cores``)."""

    def __init__(self):
        self.events = []
        self.cores = []

    def emit(self, event, core=None):
        self.events.append(event)
        self.cores.append(core)

    def clear(self):
        self.events.clear()
        self.cores.clear()


class CoreScopedSink(TraceSink):
    """Adapter tagging every event with a fixed core index (MP runs)."""

    def __init__(self, sink, core):
        self.sink = sink
        self.core = core

    def emit(self, event, core=None):
        self.sink.emit(event, core=self.core)


class PollutionCollector(TraceSink):
    """Derive the appendix pollution-study inputs from the event stream.

    Subscribed to both families by the observed hierarchy whenever
    ``record_pollution_victims`` is on.  The three views match the
    pre-event-layer recording bit for bit:

    - ``demands`` — ``(ordinal, line)`` per below-L1 demand lookup
      (cache events whose level is L2 or deeper);
    - ``fills`` — ``(ordinal, line)`` per prefetch fill from DRAM;
    - ``victims`` — ``(ordinal, victim_line)`` per LLC eviction caused
      by a prefetch fill.
    """

    def __init__(self):
        self.demands = []
        self.fills = []
        self.victims = []

    def emit(self, event, core=None):
        kind = event[0]
        if kind == HIT or kind == MISS:
            if event[4] > 0:  # below-L1 lookups only (level L2/LLC/DRAM)
                self.demands.append((event[1], event[3]))
        elif kind == FILL:
            if event[4] == "dram":
                self.fills.append((event[1], event[3]))
        elif kind == POLLUTING:
            self.victims.append((event[1], event[4]))
        elif kind == RESET:
            self.clear()

    def clear(self):
        self.demands.clear()
        self.fills.clear()
        self.victims.clear()
