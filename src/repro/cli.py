"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

- ``list-workloads`` — the 75-workload catalog, by category.
- ``list-prefetchers`` — every registry scheme with its storage budget.
- ``run`` — simulate one workload under one scheme and print the result.
- ``figure`` — regenerate one or more paper figures (tables, optionally
  ASCII charts).
- ``trace-stats`` — access-structure statistics of a workload trace.
- ``sweep`` — one scheme across the six DRAM configurations (Figure 15's
  x-axis) for one workload.
- ``cache`` — inspect, clear, garbage-collect (``cache gc --max-mb N``,
  size-bounded LRU eviction) or scrub (``cache verify [--repair]``,
  quarantining corrupt entries to ``corrupt/``) the engine's on-disk
  result/trace store.
- ``serve`` — publish a cache directory as an HTTP cache server that
  other machines reach via ``--remote-cache URL``; doubles as the
  sweep-farm coordinator (``--max-mb`` keeps it size-bounded,
  ``--auth-token`` adds shared-secret auth, ``--tls-cert/--tls-key``
  put the wire behind TLS so the token is safe off-LAN).
- ``work`` — join a sweep farm: lease specs from a coordinator's work
  queue, compute them locally, publish the results back
  (``--spec-timeout S`` bounds each leased spec's wall clock).

Global engine flags (before the subcommand): ``--jobs N`` fans
independent runs across N worker processes, ``--cache-dir PATH``
relocates the persistent store, ``--no-cache`` disables the disk layer
for this invocation, ``--shared-cache PATH`` layers a read-only
shared store (e.g. a network mount another host populated) under the
local one — hits are promoted into the local tier — and
``--remote-cache URL`` layers a ``repro serve`` server above that
(read-through with local promotion, write-through publication).
``--s3-cache URL`` adds an S3-compatible object store as the outermost
durable tier, and ``--tls-ca PEM`` pins the certificate both network
tiers verify ``https`` peers against (the self-signed recipe in
docs/engine.md).

Simulation commands batch their runs through the default engine
:class:`~repro.engine.session.Session`, so ``--jobs`` parallelism
applies to every subcommand that runs more than one simulation.
"""

import argparse

from repro.memory.dram import BANDWIDTH_SWEEP, DramConfig, FixedBandwidth


def _parse_dram(label):
    """Parse ``"2ch-2400"``-style labels into a :class:`DramConfig`."""
    try:
        channels_part, grade_part = label.split("-")
        channels = int(channels_part.rstrip("ch"))
        grade = int(grade_part)
        return DramConfig(speed_grade=grade, channels=channels)
    except (ValueError, AttributeError):
        raise SystemExit(
            f"bad DRAM label {label!r}; expected e.g. 1ch-2133 or 2ch-2400"
        ) from None


def _cmd_list_workloads(args):
    from repro.workloads.catalog import CATEGORIES, WORKLOADS, workloads_in_category

    categories = [args.category] if args.category else CATEGORIES
    for category in categories:
        print(f"{category}:")
        for name in workloads_in_category(category):
            w = WORKLOADS[name]
            marker = " [mem-intensive]" if w.mem_intensive else ""
            print(f"  {name}  ({w.intensity}){marker}")
    return 0


def _cmd_list_prefetchers(args):
    from repro.prefetchers.registry import available_prefetchers, build_prefetcher

    print(f"{'scheme':18s} {'storage':>10s}")
    for name in available_prefetchers():
        pf = build_prefetcher(name, FixedBandwidth(0))
        kb = pf.storage_kb()
        print(f"{name:18s} {kb:9.1f}KB")
    print("\ncomposites: join with '+', e.g. spp+dspatch (primary first)")
    return 0


def _traced_run(args, dram):
    """Run the scheme directly with a trace sink attached.

    Tracing never changes the simulated result (the observed hierarchy is
    parity-pinned), so the baseline still comes from the session cache;
    only the traced run recomputes — events cannot come from a cache hit.
    """
    import sys

    from repro.cpu.system import System, SystemConfig
    from repro.engine import RunSpec, TraceSpec, default_session
    from repro.observe import LineSink

    session = default_session()
    base = session.run(RunSpec(args.workload, "none", args.length, dram))
    trace = session.trace(TraceSpec(args.workload, args.length))
    if args.trace_out:
        sink = LineSink(open(args.trace_out, "w"), close_stream=True)
        dest = args.trace_out
    else:
        sink = LineSink(sys.stderr)
        dest = "stderr"
    cfg = SystemConfig.single_thread(
        args.scheme,
        dram=dram,
        trace_prefetch=args.trace_prefetch,
        trace_cache=args.trace_cache,
    )
    try:
        res = System(cfg, sink=sink).run(trace)
    finally:
        events = sink.events_written
        sink.close()
    return base, res, (events, dest)


def _cmd_run(args):
    from repro.engine import RunSpec, default_session

    dram = _parse_dram(args.dram) if args.dram else None
    trace_note = None
    if args.trace_prefetch or args.trace_cache:
        base, res, trace_note = _traced_run(args, dram)
    else:
        # One batched Session.run so the baseline and the scheme fan out
        # over the worker pool together when --jobs > 1.
        base, res = default_session().run(
            [
                RunSpec(args.workload, "none", args.length, dram),
                RunSpec(args.workload, args.scheme, args.length, dram),
            ]
        )
    speedup = 100.0 * (res.ipc / base.ipc - 1.0) if base.ipc > 0 else 0.0
    if args.json:
        import json

        payload = res.to_dict()
        payload["workload"] = args.workload
        payload["scheme"] = args.scheme
        payload["baseline_ipc"] = base.ipc
        payload["speedup_pct"] = speedup
        if trace_note is not None:
            payload["trace_events"], payload["trace_out"] = trace_note
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"workload   {args.workload}")
    print(f"scheme     {args.scheme}")
    print(f"ipc        {res.ipc:.3f}  (baseline {base.ipc:.3f}, {speedup:+.1f}%)")
    print(f"coverage   {100 * res.coverage:.1f}%")
    print(f"accuracy   {100 * res.accuracy:.1f}%")
    print(f"issued     {res.pf_issued}  (late {res.pf_late}, useless {res.pf_useless})")
    print(f"l2 misses  {res.l2_demand_misses}  (mpki {res.mpki:.2f})")
    print(f"bandwidth  {res.achieved_gbps:.1f} GB/s achieved")
    residency = ", ".join(
        f"q{i}: {100 * share:.0f}%" for i, share in enumerate(res.bw_utilization_residency)
    )
    print(f"bw buckets {residency}")
    if trace_note is not None:
        events, dest = trace_note
        print(f"trace      {events} events -> {dest}")
    return 0


def _cmd_figure(args):
    from repro.experiments.figures import ALL_FIGURES

    unknown = [f for f in args.figures if f not in ALL_FIGURES]
    if unknown:
        known = ", ".join(ALL_FIGURES)
        raise SystemExit(f"unknown figure(s) {', '.join(unknown)}; known: {known}")
    targets = args.figures or list(ALL_FIGURES)
    for target in targets:
        fig = ALL_FIGURES[target]()
        print(fig.render())
        if args.chart:
            try:
                print()
                print(fig.render_chart())
            except ValueError:
                pass  # single-column figures have no chart form
        print()
    return 0


def _cmd_trace_stats(args):
    from repro.workloads.analysis import analyze_trace
    from repro.workloads.catalog import build_trace

    trace = build_trace(args.workload, args.length)
    print(analyze_trace(trace, args.workload).render())
    return 0


def _cmd_report(args):
    from repro.experiments.report import write_report

    path = write_report(args.output, args.figures or None, include_charts=not args.no_charts)
    print(f"wrote {path}")
    return 0


def _cmd_sweep(args):
    from repro.engine import RunSpec, default_session

    # All 12 runs (6 DRAM points x {baseline, scheme}) in one batch.
    specs = [
        RunSpec(args.workload, scheme, args.length, dram)
        for dram in BANDWIDTH_SWEEP
        for scheme in ("none", args.scheme)
    ]
    results = default_session().run(specs)
    print(f"{'dram':10s} {'peak GB/s':>9s} {'baseline':>9s} {args.scheme:>12s} {'delta':>8s}")
    for i, dram in enumerate(BANDWIDTH_SWEEP):
        base, res = results[2 * i], results[2 * i + 1]
        delta = 100.0 * (res.ipc / base.ipc - 1.0) if base.ipc > 0 else 0.0
        print(
            f"{dram.label():10s} {dram.peak_gbps:9.1f} {base.ipc:9.3f} "
            f"{res.ipc:12.3f} {delta:+7.1f}%"
        )
    return 0


def _cmd_serve(args):
    import os
    import ssl

    from repro.engine import current_config, make_server

    cache_dir = args.serve_cache_dir or current_config().cache_dir
    auth_token = args.auth_token or os.environ.get("REPRO_CACHE_TOKEN") or None
    if args.serve_max_mb is not None and args.serve_max_mb < 0:
        raise SystemExit(f"--max-mb must be non-negative, got {args.serve_max_mb:g}")
    try:
        server = make_server(
            cache_dir,
            host=args.host,
            port=args.port,
            read_only=args.read_only,
            verbose=args.verbose,
            auth_token=auth_token,
            gc_max_bytes=(
                None
                if args.serve_max_mb is None
                else int(args.serve_max_mb * 1024 * 1024)
            ),
            gc_interval=args.gc_interval,
            tls_cert=args.tls_cert,
            tls_key=args.tls_key,
        )
    except ValueError as exc:
        # --tls-key without --tls-cert (and friends): a config error.
        raise SystemExit(str(exc)) from None
    except (OSError, ssl.SSLError) as exc:
        raise SystemExit(
            f"cannot serve on {args.host}:{args.port}: {exc}"
        ) from None
    mode = " (read-only)" if args.read_only else ""
    if auth_token:
        mode += " (token auth)"
    if args.tls_cert:
        mode += " (tls)"
    # The exact "serving ... on <url>" line is the machine-readable
    # readiness signal scripts parse to discover an ephemeral port.
    print(f"serving {cache_dir} on {server.url}{mode}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_work(args):
    from repro.engine import Session
    from repro.engine.workqueue import run_worker

    session = Session(remote_cache_url=args.url)
    # Readiness line for farm scripts (mirrors serve's "serving ..." line).
    print(f"working for {args.url}", flush=True)
    tally = run_worker(
        args.url,
        session=session,
        poll_interval=args.poll_interval,
        ttl=args.ttl,
        max_tasks=args.max_tasks,
        once=args.once,
        verbose=args.verbose,
        spec_timeout=args.spec_timeout,
    )
    print(
        f"worker {tally['worker']}: {tally['completed']} completed, "
        f"{tally['failed']} failed, {tally['released']} released",
        flush=True,
    )
    return 0


def _cmd_cache(args):
    from repro.engine import active_store, code_salt, current_config

    cfg = current_config()
    store = active_store()
    if args.clear and args.action not in (None, "clear"):
        raise SystemExit(f"--clear contradicts the '{args.action}' action; pick one")
    action = "clear" if args.clear else (args.action or "show")
    if action == "clear":
        if store is None:
            print("disk cache disabled; nothing to clear")
            return 0
        store.clear()
        print(f"cleared {cfg.cache_dir}")
        return 0
    if action == "gc":
        if args.max_mb < 0:
            raise SystemExit(f"--max-mb must be non-negative, got {args.max_mb:g}")
        if store is None:
            print("disk cache disabled; nothing to collect")
            return 0
        summary = store.gc(int(args.max_mb * 1024 * 1024))
        print(
            f"evicted {summary['removed']} artifacts "
            f"({summary['freed_bytes'] / 1024:.1f} KB); "
            f"{summary['kept']} kept "
            f"({summary['remaining_bytes'] / 1024:.1f} KB <= {args.max_mb:g} MB)"
        )
        return 0
    if action == "verify":
        if store is None:
            print("disk cache disabled; nothing to verify")
            return 0
        verify = getattr(store, "verify", None)
        if verify is None:
            print("the configured store does not support verification")
            return 0
        report = verify(repair=args.repair)
        for reason, path in report["entries"]:
            print(f"{reason:<10} {path}")
        summary = (
            f"checked {report['checked']} artifacts: {report['ok']} ok, "
            f"{report['corrupt']} corrupt, {report['foreign']} foreign"
        )
        if args.repair:
            summary += f", {report['quarantined']} quarantined to corrupt/"
        print(summary)
        remaining = report["corrupt"] + report["foreign"] - report["quarantined"]
        if remaining:
            print("run 'repro cache verify --repair' to quarantine them")
        # A scrub that leaves bad entries in place is a failed check.
        return 1 if remaining else 0
    print(f"cache dir  {cfg.cache_dir}")
    print(f"disk cache {'enabled' if cfg.disk_cache else 'disabled'}")
    if cfg.shared_cache_dir is not None:
        print(f"shared     {cfg.shared_cache_dir} (read-only tier)")
    if cfg.remote_cache_url is not None:
        print(f"remote     {cfg.remote_cache_url} (write-through tier)")
    if cfg.s3_cache_url is not None:
        print(f"s3         {cfg.s3_cache_url} (durable write-through tier)")
    print(f"jobs       {cfg.jobs}")
    print(f"code salt  {code_salt()}")
    if store is not None:
        from repro.engine.backends import TieredBackend

        # Peel the network tiers (remote server, object store) off the
        # outside so the local stats are one directory walk and each
        # network peer is queried exactly once.
        local_store = store
        network_tiers = []
        while isinstance(local_store, TieredBackend) and hasattr(
            local_store.shared, "_request"
        ):
            network_tiers.append(local_store.shared)
            local_store = local_store.local
        stats = local_store.stats()
        print(f"results    {stats['results']}")
        print(f"traces     {stats['traces']}")
        print(f"size       {stats['bytes'] / 1024:.1f} KB")
        if "shared_results" in stats:
            print(f"shared     {stats['shared_results']} results, {stats['shared_traces']} traces")
        for client in reversed(network_tiers):  # innermost (remote) first
            label = "s3" if hasattr(client, "bucket") else "remote"
            tier = client.stats()
            if tier.get("reachable", True):
                suffix = " [read-only]" if tier.get("read_only") else ""
                print(
                    f"{label:<10} {tier['results']} results, "
                    f"{tier['traces']} traces{suffix}"
                )
            else:
                print(f"{label:<10} unreachable")
    return 0


def build_parser():
    """The argparse tree; exposed for the CLI tests."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DSPatch (MICRO'19) reproduction: simulate, analyze, regenerate figures.",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for independent runs (default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--kernel",
        choices=("auto", "py", "compiled", "object"),
        default=None,
        help="hot-loop kernel: 'compiled' builds the C twin (needs a C "
        "toolchain), 'py' runs the pure-Python flat kernel, 'object' the "
        "original object model; all three are bit-identical. 'auto' picks "
        "compiled when a toolchain is present, else py "
        "(default: REPRO_KERNEL or auto)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="engine disk-cache directory (default: REPRO_CACHE_DIR or ~/.cache/dspatch-repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the whole persistent store for this invocation "
        "(including any --shared-cache / REPRO_SHARED_CACHE tier)",
    )
    parser.add_argument(
        "--shared-cache",
        default=None,
        help="read-only shared store layered under the local cache "
        "(read-through; e.g. a network mount another host populated; "
        "default: REPRO_SHARED_CACHE; ignored under --no-cache)",
    )
    parser.add_argument(
        "--remote-cache",
        default=None,
        metavar="URL",
        help="remote cache server (repro serve) layered under everything: "
        "read-through with local promotion, write-through publication "
        "(default: REPRO_REMOTE_CACHE; ignored under --no-cache)",
    )
    parser.add_argument(
        "--s3-cache",
        default=None,
        metavar="URL",
        help="S3-compatible object store as the outermost durable tier: "
        "http(s)://host[:port]/bucket[/prefix], credentials from "
        "AWS_ACCESS_KEY_ID/AWS_SECRET_ACCESS_KEY or REPRO_S3_ACCESS_KEY/"
        "REPRO_S3_SECRET_KEY (default: REPRO_S3_CACHE; ignored under "
        "--no-cache)",
    )
    parser.add_argument(
        "--tls-ca",
        default=None,
        metavar="PEM",
        help="CA bundle (or self-signed certificate) to verify https "
        "cache/S3 peers against, instead of the system trust store "
        "(default: REPRO_TLS_CA)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads", help="show the 75-workload catalog").add_argument(
        "--category", help="only this category"
    )
    sub.add_parser("list-prefetchers", help="show registry schemes and storage")

    run = sub.add_parser("run", help="simulate one workload under one scheme")
    run.add_argument("--workload", required=True)
    run.add_argument("--scheme", default="dspatch")
    run.add_argument("--length", type=int, default=16000, help="memory ops to generate")
    run.add_argument("--dram", help="e.g. 1ch-2133 (default) or 2ch-2400")
    run.add_argument("--json", action="store_true", help="machine-readable output")
    run.add_argument(
        "--trace-prefetch",
        action="store_true",
        help="emit per-event prefetch trace lines (issue/fill/useful/late/"
        "evicted-unused/polluting; grammar in docs/observability.md)",
    )
    run.add_argument(
        "--trace-cache",
        action="store_true",
        help="emit per-access demand hit/miss trace lines",
    )
    run.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write trace events to PATH instead of stderr",
    )

    fig = sub.add_parser("figure", help="regenerate paper figures")
    fig.add_argument("figures", nargs="*", help="figure ids (default: all)")
    fig.add_argument("--chart", action="store_true", help="also draw ASCII charts")

    stats = sub.add_parser("trace-stats", help="access-structure statistics")
    stats.add_argument("--workload", required=True)
    stats.add_argument("--length", type=int, default=16000)

    sweep = sub.add_parser("sweep", help="one scheme across the DRAM sweep")
    sweep.add_argument("--workload", required=True)
    sweep.add_argument("--scheme", default="spp+dspatch")
    sweep.add_argument("--length", type=int, default=16000)

    report = sub.add_parser("report", help="write a full markdown reproduction report")
    report.add_argument("figures", nargs="*", help="figure ids (default: all)")
    report.add_argument("--output", default="report.md")
    report.add_argument("--no-charts", action="store_true")

    cache = sub.add_parser("cache", help="inspect, clear or garbage-collect the engine disk cache")
    cache.add_argument(
        "action",
        nargs="?",
        choices=("show", "clear", "gc", "verify"),
        default=None,
        help="show store info (default), delete everything, LRU-evict to "
        "a size bound, or scrub every entry for corruption",
    )
    cache.add_argument("--clear", action="store_true", help="alias for the 'clear' action")
    cache.add_argument(
        "--max-mb",
        type=float,
        default=512.0,
        help="gc size bound in MB: least-recently-used artifacts are evicted until the store fits (default 512)",
    )
    cache.add_argument(
        "--repair",
        action="store_true",
        help="with 'verify': move corrupt/foreign entries to corrupt/ "
        "under the store root (non-destructive quarantine) so they "
        "become honest recomputable misses",
    )

    serve = sub.add_parser(
        "serve",
        help="publish a cache directory as an HTTP cache server (--remote-cache on clients)",
    )
    # dest avoids the subparser default clobbering the global --cache-dir
    # value already parsed into the namespace.
    serve.add_argument(
        "--cache-dir",
        dest="serve_cache_dir",
        default=None,
        help="directory to serve (default: the engine cache dir)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=8787, help="TCP port; 0 picks an ephemeral one (default 8787)"
    )
    serve.add_argument(
        "--read-only",
        action="store_true",
        help="reject PUT/DELETE: clients read this store but cannot grow it",
    )
    serve.add_argument("--verbose", action="store_true", help="log every request to stderr")
    serve.add_argument(
        "--max-mb",
        dest="serve_max_mb",
        type=float,
        default=None,
        help="keep the served store LRU-evicted to this size bound "
        "(periodic server-side gc; default: unbounded)",
    )
    serve.add_argument(
        "--gc-interval",
        type=float,
        default=60.0,
        help="seconds between server-side gc passes under --max-mb (default 60)",
    )
    serve.add_argument(
        "--auth-token",
        default=None,
        help="require this shared secret (X-Repro-Token) on every request "
        "(default: REPRO_CACHE_TOKEN if set, else no auth)",
    )
    serve.add_argument(
        "--tls-cert",
        default=None,
        metavar="PEM",
        help="serve over TLS with this certificate chain; clients use "
        "https:// URLs (and --tls-ca to pin a self-signed cert)",
    )
    serve.add_argument(
        "--tls-key",
        default=None,
        metavar="PEM",
        help="private key for --tls-cert (omit if the key is in the cert file)",
    )

    work = sub.add_parser(
        "work",
        help="join a sweep farm: lease specs from a coordinator's work "
        "queue, compute them, publish the results",
    )
    work.add_argument("url", help="coordinator URL (a repro serve instance)")
    work.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="seconds between lease attempts when the queue is idle (default 0.5)",
    )
    work.add_argument(
        "--ttl",
        type=float,
        default=300.0,
        help="lease time-to-live in seconds; a spec not completed within "
        "its TTL is re-leased to another worker (default 300)",
    )
    work.add_argument(
        "--max-tasks",
        type=int,
        default=1,
        help="specs to lease per round trip (default 1)",
    )
    work.add_argument(
        "--once",
        action="store_true",
        help="exit as soon as the queue has nothing to lease (drain mode)",
    )
    work.add_argument(
        "--spec-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-spec wall-clock watchdog: a leased spec exceeding S "
        "seconds is failed back to the queue (counting toward "
        "quarantine) instead of hanging this worker (default: none)",
    )
    work.add_argument("--verbose", action="store_true", help="log each spec to stderr")

    return parser


_HANDLERS = {
    "list-workloads": _cmd_list_workloads,
    "list-prefetchers": _cmd_list_prefetchers,
    "run": _cmd_run,
    "figure": _cmd_figure,
    "trace-stats": _cmd_trace_stats,
    "sweep": _cmd_sweep,
    "report": _cmd_report,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "work": _cmd_work,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    if (
        args.jobs is not None
        or args.cache_dir is not None
        or args.no_cache
        or args.shared_cache is not None
        or args.remote_cache is not None
        or args.s3_cache is not None
        or args.tls_ca is not None
        or args.kernel is not None
    ):
        from repro.engine import configure

        configure(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            disk_cache=False if args.no_cache else None,
            shared_cache_dir=args.shared_cache,
            remote_cache_url=args.remote_cache,
            s3_cache_url=args.s3_cache,
            tls_ca=args.tls_ca,
            kernel=args.kernel,
        )
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
