"""Ablation and extension studies beyond the paper's own figures.

Each driver isolates one design choice DESIGN.md calls out, or extends
the evaluation to the related-work prefetchers of Section 6.  Like the
figure drivers, every function returns a
:class:`repro.metrics.stats.FigureResult`.

- :func:`ablation_design_choices` — anchoring (Section 3.3 / Figure 2),
  dual triggers (Section 3.7) and 128B compression (Section 3.8), each
  toggled off individually.
- :func:`ablation_structure_sizes` — SPT and PB capacity sweeps around
  the Table 1 design point.
- :func:`related_work_comparison` — DSPatch against representatives of
  the Section 6 families (next-line, Markov/temporal, VLDP, Bingo) with
  their storage budgets.
- :func:`bandwidth_signal_study` — DSPatch run with the live Section 3.2
  utilization signal pinned to each fixed quartile, demonstrating why
  the dynamic signal matters.
"""

from repro.memory.dram import FixedBandwidth
from repro.metrics.stats import FigureResult, category_geomeans, geomean
from repro.prefetchers.registry import build_prefetcher
from repro.engine import TraceSpec
from repro.experiments import api
from repro.experiments.api import (
    resolve_session,
    scheme_label,
    workload_subset,
)
from repro.experiments.figures import _categories_map, _scale
from repro.workloads.catalog import CATEGORIES

_CATEGORY_COLUMNS = list(CATEGORIES) + ["GEOMEAN"]

#: Workloads whose layouts land at jittered page positions — the traffic
#: anchoring exists for (Figure 2).
JITTER_WORKLOADS = (
    "sysmark.excel",
    "sysmark.sketchup",
    "ispec17.leela",
)


def ablation_design_choices(scale=None, session=None):
    """Toggle each DSPatch design choice off, one at a time.

    Paper claims probed: anchored rotation folds jittered placements into
    one pattern (Section 3.3); two triggers per page cover mid-page
    entries (Section 3.7); 128B compression halves storage at a bounded
    accuracy cost (Section 3.8).
    """
    scale = _scale(scale)
    session = resolve_session(session)
    workloads = workload_subset(scale.workloads_per_category)
    schemes = ["dspatch", "dspatch-noanchor", "dspatch-1trigger", "dspatch-64b"]
    api.run_grid(
        session, list(workloads) + list(JITTER_WORKLOADS), ["none", *schemes], scale.trace_len
    )
    fig = FigureResult(
        "ablation-design",
        "Ablation: DSPatch design choices (geomean % over baseline)",
        ["All", "Jittered", "Storage KB"],
        notes=[
            "All = full subset; Jittered = offset-jittered workloads only",
            "expected: -noanchor collapses on Jittered; -64b matches or beats "
            "dspatch at ~1.6x the storage; -1trigger loses coverage everywhere",
        ],
    )
    for scheme in schemes:
        ratios_all = api.speedup_ratios(session, scheme, workloads, scale.trace_len)
        ratios_jit = api.speedup_ratios(session, scheme, JITTER_WORKLOADS, scale.trace_len)
        pf = build_prefetcher(scheme, FixedBandwidth(0))
        fig.add_row(
            scheme,
            {
                "All": 100.0 * (geomean(ratios_all.values()) - 1.0),
                "Jittered": 100.0 * (geomean(ratios_jit.values()) - 1.0),
                "Storage KB": pf.storage_kb(),
            },
        )
    return fig


def ablation_structure_sizes(scale=None, session=None):
    """SPT / PB capacity sweeps around the paper's 256-entry / 64-entry point.

    Two effects separate cleanly here.  *Accuracy* degrades monotonically
    as the tagless SPT shrinks (more PCs alias into each entry and CovP
    ORs their patterns together) — that is scale-invariant and is what
    the bench asserts.  *Speedup* at miniature trace scale can actually
    favour smaller tables, because aliased spray is free while DRAM
    bandwidth is idle and warm-up is faster; at paper scale the accuracy
    cost dominates and the Table 1 sizing is the knee.
    """
    scale = _scale(scale)
    session = resolve_session(session)
    workloads = workload_subset(scale.workloads_per_category)
    fig = FigureResult(
        "ablation-sizes",
        "Ablation: SPT and PB capacity (geomean % over baseline)",
        ["Speedup", "Accuracy %", "Storage KB"],
        notes=[
            "Table 1 design point: 256-entry SPT, 64-entry PB (3.6KB total)",
            "accuracy falls as the tagless SPT shrinks (aliasing) — the "
            "scale-invariant effect; miniature-trace speedup can reward "
            "the extra spray (see driver docstring)",
        ],
    )
    schemes = [
        "dspatch-spt64",
        "dspatch-spt128",
        "dspatch",
        "dspatch-spt512",
        "dspatch-pb32",
        "dspatch-pb128",
    ]
    grid = api.run_grid(session, workloads, ["none", *schemes], scale.trace_len)
    for scheme in schemes:
        ratios = []
        accuracies = []
        for workload in workloads:
            base = grid[(workload, "none")]
            res = grid[(workload, scheme)]
            ratios.append(res.ipc / base.ipc if base.ipc > 0 else 1.0)
            accuracies.append(res.accuracy)
        pf = build_prefetcher(scheme, FixedBandwidth(0))
        fig.add_row(
            scheme,
            {
                "Speedup": 100.0 * (geomean(ratios) - 1.0),
                "Accuracy %": 100.0 * sum(accuracies) / len(accuracies),
                "Storage KB": pf.storage_kb(),
            },
        )
    return fig


def related_work_comparison(scale=None, session=None):
    """DSPatch vs. the Section 6 prefetcher families, with storage.

    One representative per family: next-line (static spatial), Markov
    (temporal correlation), VLDP (delta history), SMS and Bingo
    (bit-pattern), SPP (delta signature).
    """
    scale = _scale(scale)
    session = resolve_session(session)
    workloads = workload_subset(scale.workloads_per_category)
    cats = _categories_map(workloads)
    fig = FigureResult(
        "related-work",
        "Related work: one representative per Section 6 family "
        "(% over baseline; Storage KB)",
        _CATEGORY_COLUMNS + ["Storage KB"],
        notes=[
            "paper's storage argument: temporal needs MBs, bit-pattern needs "
            "tens-to-hundreds of KB, DSPatch needs 3.6KB",
        ],
    )
    schemes = ["nextline-4", "markov", "vldp", "sms", "bingo", "spp", "dspatch"]
    api.run_grid(session, workloads, ["none", *schemes], scale.trace_len)
    for scheme in schemes:
        ratios = api.speedup_ratios(session, scheme, workloads, scale.trace_len)
        row = category_geomeans(ratios, cats)
        row["Storage KB"] = build_prefetcher(scheme, FixedBandwidth(0)).storage_kb()
        fig.add_row(scheme_label(scheme), row)
    return fig


def bandwidth_signal_study(scale=None, session=None):
    """DSPatch with the 2-bit utilization signal pinned to each quartile.

    Pinning to 0 forces permanent CovP (maximum aggression); pinning to 3
    forces permanent AccP-or-nothing (maximum caution).  The live signal
    should match or beat every pinned setting — the Section 3.2 mechanism
    is what earns DSPatch its bandwidth scaling.
    """
    scale = _scale(scale)
    session = resolve_session(session)
    workloads = workload_subset(scale.workloads_per_category)

    from repro.cpu.system import System, SystemConfig

    fig = FigureResult(
        "bw-signal",
        "Bandwidth signal: live quartile signal vs. pinned values "
        "(geomean % over baseline)",
        ["Speedup"],
        notes=["live signal uses the Section 3.2 monitor; pins bypass it"],
    )

    def run_pinned(workload, bucket_value):
        """One run with the broadcast signal replaced by a constant."""
        config = SystemConfig.single_thread("dspatch")
        system = System(config)
        # Swap the bandwidth source the prefetcher sees: build the system
        # manually so the DSPatch instance reads a FixedBandwidth.
        from repro.cpu.core import CoreExecution
        from repro.memory.dram import DramModel
        from repro.memory.hierarchy import MemoryHierarchy
        from repro.prefetchers.stride import PcStridePrefetcher

        dram = DramModel(config.dram)
        l2 = build_prefetcher("dspatch", FixedBandwidth(bucket_value))
        hierarchy = MemoryHierarchy(
            config=config.hierarchy,
            dram=dram,
            l1_prefetcher=PcStridePrefetcher(),
            l2_prefetcher=l2,
        )
        trace = session.trace(TraceSpec(workload, scale.trace_len))
        execution = CoreExecution(config.core, trace, hierarchy)
        warmup_ops = int(len(trace) * config.warmup_frac)
        for _ in range(warmup_ops):
            if not execution.advance():
                break
        execution.mark_stats_start()
        hierarchy.reset_stats()
        dram.reset_stats(execution.time)
        while execution.advance():
            pass
        return execution.finalize().ipc

    live = api.speedup_ratios(session, "dspatch", workloads, scale.trace_len)
    fig.add_row("live signal", {"Speedup": 100.0 * (geomean(live.values()) - 1.0)})
    base_grid = api.run_grid(session, workloads, ["none"], scale.trace_len)
    for bucket in range(4):
        ratios = []
        for workload in workloads:
            base = base_grid[(workload, "none")]
            ratios.append(run_pinned(workload, bucket) / base.ipc)
        fig.add_row(f"pinned q{bucket}", {"Speedup": 100.0 * (geomean(ratios) - 1.0)})
    return fig


ALL_ABLATIONS = {
    "design": ablation_design_choices,
    "sizes": ablation_structure_sizes,
    "related-work": related_work_comparison,
    "bw-signal": bandwidth_signal_study,
}
