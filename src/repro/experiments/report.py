"""End-to-end reproduction report generator.

``generate_report()`` runs every figure driver (and optionally the
ablations), collects the rendered tables, and writes one self-contained
markdown report — the machine-written companion to EXPERIMENTS.md.  The
CLI exposes it as ``python -m repro report``.

Every figure contributes:

- the paper's claim (from :data:`PAPER_CLAIMS`),
- the measured table at the current scale,
- an ASCII chart where the figure has one (bandwidth sweeps, categories).
"""

import inspect
import io
import time

from repro.experiments.figures import ALL_FIGURES
from repro.experiments.scale import Scale

#: One-line paper claims per figure id, quoted in the generated report.
PAPER_CLAIMS = {
    "fig01": "BOP/SMS/SPP gains do not scale with peak DRAM bandwidth.",
    "fig04": "SPP wins 6 of 9 categories; SMS wins ISPEC17/Cloud/SYSmark.",
    "fig05": "SMS performance halves from a 16K-entry PHT (88KB) to 256 entries.",
    "fig06": "Even bandwidth-aware eSPP and eBOP scale poorly.",
    "fig08": "Accuracy/coverage quantize into quartiles via AND + PopCount.",
    "fig11a": "+1/-1 deltas exceed ~50-60% of all in-page deltas.",
    "fig11b": "128B compression: 42% of workloads see zero mispredictions.",
    "fig12": "DSPatch+SPP beats standalone SPP by ~6% geomean, winning every category.",
    "fig13": "+9% over SPP on the 42 memory-intensive workloads.",
    "fig14": "DSPatch is the best adjunct to SPP at iso-storage.",
    "fig15": "DSPatch+SPP's margin over SPP grows with DRAM bandwidth (6% to 10%).",
    "fig16": "Every 2% of added coverage costs only ~1% more mispredictions.",
    "fig17": "+5.9% over SPP on 42 homogeneous 4-core mixes.",
    "fig18": "Gains persist for heterogeneous mixes and grow with faster DRAM.",
    "fig19": "AlwaysCovP loses 4.5%, ModCovP 1.4% vs the full dual-pattern design.",
    "fig20": "~84% of prefetch-eviction victims were already dead (NoReuse).",
    "table1": "DSPatch needs 3.6KB of storage.",
    "table3": "BOP 1.3KB < DSPatch 3.6KB < SPP 6.2KB << SMS 88KB.",
    "extra-triple": "DSPatch adds 2.6% on top of SPP+BOP.",
    "quality": (
        "Not a paper figure: gated accuracy/coverage/timeliness/pollution "
        "scores per registry scheme (docs/observability.md)."
    ),
}


def generate_report(figure_ids=None, scale=None, include_charts=True, session=None):
    """Run the selected figures and return the markdown report text.

    ``session`` (a :class:`repro.engine.Session`) scopes every
    simulation the report performs; the process default is used when
    omitted, so CLI ``--jobs``/``--cache-dir`` flags apply.
    """
    from repro.experiments.api import resolve_session

    scale = scale or Scale.from_env()
    session = resolve_session(session)
    targets = list(figure_ids) if figure_ids else list(ALL_FIGURES)
    unknown = [t for t in targets if t not in ALL_FIGURES]
    if unknown:
        known = ", ".join(ALL_FIGURES)
        raise ValueError(f"unknown figure(s) {', '.join(unknown)}; known: {known}")

    out = io.StringIO()
    out.write("# DSPatch reproduction report\n\n")
    out.write(
        f"Scale: trace_len={scale.trace_len}, "
        f"workloads/category={scale.workloads_per_category}, "
        f"mixes={scale.mix_count}.  "
        "Shapes (who wins, orderings, scaling directions) are the "
        "reproduction target; absolute numbers depend on the synthetic "
        "substrate.\n\n"
    )
    for target in targets:
        started = time.perf_counter()
        driver = ALL_FIGURES[target]
        # Static figures (storage tables, the Figure 8 unit example) take
        # no scale/session parameters; every simulating driver takes both.
        if inspect.signature(driver).parameters:
            fig = driver(scale, session=session)
        else:
            fig = driver()
        elapsed = time.perf_counter() - started
        out.write(f"## {target}\n\n")
        claim = PAPER_CLAIMS.get(target)
        if claim:
            out.write(f"**Paper:** {claim}\n\n")
        out.write("```\n")
        out.write(fig.render())
        out.write("\n```\n\n")
        if include_charts:
            try:
                chart = fig.render_chart()
            except (ValueError, TypeError):
                chart = None
            if chart:
                out.write("```\n")
                out.write(chart)
                out.write("\n```\n\n")
        out.write(f"_generated in {elapsed:.1f}s_\n\n")
    return out.getvalue()


def write_report(path, figure_ids=None, scale=None, include_charts=True, session=None):
    """Generate and write the report; returns the path."""
    text = generate_report(figure_ids, scale, include_charts, session=session)
    with open(path, "w") as f:
        f.write(text)
    return path
