"""Quality-profile grid: scored metrics for every registry scheme.

The evaluation's cross-cutting observability table: every scheme in
:mod:`repro.prefetchers.registry` runs over a small pinned workload set
and reports its gated accuracy / coverage / timeliness / pollution
rates plus the composite score (:mod:`repro.metrics.quality`).  The
``quality`` figure id renders it through ``repro figure`` / ``repro
report`` like any paper figure, and the drift gate
(``benchmarks/bench_quality_gate.py``) pins a calibrated grid of these
profiles against ``benchmarks/baselines/metrics_baseline.json``.

Profiles here come from the cheap counter path — aggregate counters off
cached :class:`~repro.cpu.system.RunResult`\\ s, no tracing.  The tests
cross-check that path against the exact event path on the same grid.
"""

from repro.metrics.quality import METRIC_NAMES, QualityProfile
from repro.metrics.stats import FigureResult
from repro.prefetchers.registry import available_prefetchers
from repro.experiments import api
from repro.experiments.api import resolve_session, scheme_label
from repro.experiments.scale import Scale

#: Pinned workloads for quality grids: one pointer-chasing SPEC trace,
#: one cloud trace, one dense-stride HPC trace — three different miss
#: structures, so the rates separate schemes rather than agreeing.
QUALITY_WORKLOADS = ("ispec06.mcf", "cloud.bigbench", "hpc.linpack")

#: Columns of the rendered quality table (percent, except score).
QUALITY_COLUMNS = list(METRIC_NAMES) + ["score"]


def quality_grid(session, schemes, workloads=QUALITY_WORKLOADS, length=4000):
    """Profiles for every (workload, scheme) pair, one batched run.

    Returns ``{(workload, scheme): QualityProfile}``.  The underlying
    ``RunResult``\\ s land in the session memo, so callers needing the
    raw results too pay nothing extra.
    """
    workloads = list(workloads)
    schemes = list(schemes)
    grid = api.run_grid(session, workloads, schemes, length)
    return {
        (workload, scheme): QualityProfile.from_result(
            grid[(workload, scheme)], scheme=scheme, workload=workload
        )
        for workload in workloads
        for scheme in schemes
    }


def quality_profiles(scale=None, session=None):
    """The ``quality`` figure: per-scheme quality rates, workload-averaged.

    Every registry scheme (composites excluded — the registry's simple
    names) gets one row; cells are the mean over the pinned workloads,
    in percent, plus the 0-100 composite score.  Invalid profiles
    (failed gates) render with score 0 and a note naming the issues.
    """
    scale = scale or Scale.from_env()
    session = resolve_session(session)
    workloads = QUALITY_WORKLOADS[: max(1, scale.workloads_per_category)]
    schemes = available_prefetchers()
    profiles = quality_grid(session, schemes, workloads, scale.trace_len)
    fig = FigureResult(
        "quality",
        "Prefetch quality profiles (% mean over pinned workloads; score 0-100)",
        QUALITY_COLUMNS,
        notes=[
            f"workloads: {', '.join(workloads)}",
            "accuracy=useful/issued  coverage=useful/(useful+L2 misses)  "
            "timeliness=1-late/useful  pollution=useless/issued",
            "score = mean(accuracy, coverage, timeliness, 1-pollution); "
            "0.5 is the do-nothing point (see docs/observability.md)",
        ],
    )
    gated = []
    for scheme in schemes:
        per_workload = [profiles[(w, scheme)] for w in workloads]
        row = {
            column: 100.0 * sum(getattr(p, column) for p in per_workload)
            / len(per_workload)
            for column in QUALITY_COLUMNS
        }
        fig.add_row(scheme_label(scheme), row)
        for profile in per_workload:
            if not profile.valid:
                gated.append(profile)
    for profile in gated:
        fig.notes.append(
            f"gated: {profile.scheme}/{profile.workload}: "
            + "; ".join(profile.issues)
        )
    return fig
