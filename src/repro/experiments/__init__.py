"""Experiment drivers — one per paper table/figure.

Every figure of the DSPatch evaluation has a driver in
:mod:`repro.experiments.figures` returning a
:class:`repro.metrics.stats.FigureResult`; the benches under
``benchmarks/`` call these and print the rendered tables.

Scale is controlled by environment variables (see
:mod:`repro.experiments.scale`):

- ``REPRO_TRACE_LEN`` — memory ops per workload trace (default 16000);
- ``REPRO_WORKLOADS_PER_CATEGORY`` — workloads sampled per category for
  category-level figures (default 3; the full suite is 7-9 per category);
- ``REPRO_MIX_COUNT`` — multi-programmed mixes per flavour (default 6);
- ``REPRO_FULL=1`` — paper-sized runs (all 75 workloads, 42+75 mixes).

Execution flows through the session API: every driver accepts an
optional ``session`` (:class:`repro.engine.Session`) and the
session-aware helpers live in :mod:`repro.experiments.api`.
"""

from repro.experiments import api, figures
from repro.experiments.api import (
    mix_speedup_ratio,
    run_grid,
    scheme_label,
    speedup_ratios,
    warm_mix_grid,
    workload_subset,
)
from repro.experiments.scale import Scale

__all__ = [
    "Scale",
    "api",
    "figures",
    "mix_speedup_ratio",
    "run_grid",
    "scheme_label",
    "speedup_ratios",
    "warm_mix_grid",
    "workload_subset",
]
