"""Experiment drivers — one per paper table/figure.

Every figure of the DSPatch evaluation has a driver in
:mod:`repro.experiments.figures` returning a
:class:`repro.metrics.stats.FigureResult`; the benches under
``benchmarks/`` call these and print the rendered tables.

Scale is controlled by environment variables (see
:mod:`repro.experiments.scale`):

- ``REPRO_TRACE_LEN`` — memory ops per workload trace (default 16000);
- ``REPRO_WORKLOADS_PER_CATEGORY`` — workloads sampled per category for
  category-level figures (default 3; the full suite is 7-9 per category);
- ``REPRO_MIX_COUNT`` — multi-programmed mixes per flavour (default 6);
- ``REPRO_FULL=1`` — paper-sized runs (all 75 workloads, 42+75 mixes).
"""

from repro.experiments import figures
from repro.experiments.runner import (
    clear_run_cache,
    run_workload,
    speedup_ratios,
    warm_mixes,
    warm_runs,
    workload_subset,
)
from repro.experiments.scale import Scale

__all__ = [
    "Scale",
    "clear_run_cache",
    "figures",
    "run_workload",
    "speedup_ratios",
    "warm_mixes",
    "warm_runs",
    "workload_subset",
]
