"""Shared run infrastructure for the figure drivers.

Responsibilities:

- generate (and memoize) workload traces at the configured scale;
- run (and memoize) single-core simulations per (workload, scheme, DRAM,
  LLC) combination — several figures share the same underlying runs;
- compute the paper's metric: per-workload speedup ratios of a scheme's
  IPC over the baseline (L1 PC-stride only, no L2 prefetcher).

Scheme names follow the prefetcher registry; adjunct schemes are written
primary-first (``"spp+dspatch"``) so the primary prefetcher wins ties in
the shared prefetch queue, and :data:`SCHEME_LABELS` maps them to the
paper's display names ("DSPatch+SPP").
"""

from repro.cpu.system import MultiCoreSystem, System, SystemConfig
from repro.memory.dram import DramConfig
from repro.workloads.catalog import CATEGORIES, WORKLOADS, workloads_in_category
from repro.workloads.mixes import build_mix_traces

#: Display names used in the rendered figures.
SCHEME_LABELS = {
    "none": "Baseline",
    "bop": "BOP",
    "sms": "SMS",
    "sms-4k": "SMS-4K",
    "sms-1k": "SMS-1K",
    "sms-256": "SMS-256",
    "spp": "SPP",
    "espp": "eSPP",
    "ebop": "eBOP",
    "ampm": "AMPM",
    "streamer": "Streamer",
    "dspatch": "DSPatch",
    "alwayscovp": "AlwaysCovP",
    "modcovp": "ModCovP",
    "spp+dspatch": "DSPatch+SPP",
    "spp+bop": "BOP+SPP",
    "spp+sms-256": "SMS(iso)+SPP",
    "spp+ebop": "eBOP+SPP",
    "spp+bop+dspatch": "DSPatch+SPP+BOP",
    "vldp": "VLDP",
    "bingo": "Bingo",
    "markov": "Markov",
    "nextline": "NextLine",
    "nextline-4": "NextLine-4",
    "fdp:streamer": "FDP(Streamer)",
    "fdp:dspatch": "FDP(DSPatch)",
}


def scheme_label(scheme):
    """Paper display name for a registry scheme string."""
    return SCHEME_LABELS.get(scheme, scheme)


_TRACE_CACHE = {}
_RUN_CACHE = {}
_MP_CACHE = {}


def clear_run_cache():
    """Drop all memoized traces and runs (tests use this)."""
    _TRACE_CACHE.clear()
    _RUN_CACHE.clear()
    _MP_CACHE.clear()


def get_trace(workload, length):
    """Memoized trace generation."""
    key = (workload, length)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = WORKLOADS[workload].build(length)
    return _TRACE_CACHE[key]


def run_workload(
    workload,
    scheme,
    length,
    dram: DramConfig = None,
    llc_bytes=2 * 1024 * 1024,
    record_pollution=False,
):
    """Memoized single-core run; returns a :class:`RunResult`."""
    dram = dram or DramConfig()
    key = (workload, scheme, length, dram.label(), llc_bytes, record_pollution)
    if key not in _RUN_CACHE:
        config = SystemConfig.single_thread(
            scheme, dram=dram, llc_bytes=llc_bytes, record_pollution_victims=record_pollution
        )
        _RUN_CACHE[key] = System(config).run(get_trace(workload, length))
    return _RUN_CACHE[key]


def speedup_ratios(scheme, workloads, length, dram=None, llc_bytes=2 * 1024 * 1024):
    """Per-workload IPC ratios of ``scheme`` over the baseline."""
    out = {}
    for name in workloads:
        base = run_workload(name, "none", length, dram, llc_bytes)
        res = run_workload(name, scheme, length, dram, llc_bytes)
        out[name] = res.ipc / base.ipc if base.ipc > 0 else 1.0
    return out


def workload_subset(per_category, categories=CATEGORIES, mem_intensive_first=True):
    """Deterministic subset: up to ``per_category`` workloads per category.

    Memory-intensive workloads come first within each category so small
    subsets still exercise the behaviours the paper's averages are made of.
    """
    chosen = []
    for category in categories:
        names = workloads_in_category(category)
        if mem_intensive_first:
            names = sorted(names, key=lambda n: (not WORKLOADS[n].mem_intensive, n))
        chosen.extend(names[:per_category])
    return chosen


def category_of(workload):
    return WORKLOADS[workload].category


def run_mix(mix_name, workload_names, scheme, length_per_core, dram=None):
    """Memoized 4-core multi-programmed run."""
    dram = dram or DramConfig(speed_grade=2133, channels=2)
    key = (mix_name, tuple(workload_names), scheme, length_per_core, dram.label())
    if key not in _MP_CACHE:
        config = SystemConfig.multi_programmed(scheme, dram=dram)
        traces = build_mix_traces(workload_names, length_per_core)
        _MP_CACHE[key] = MultiCoreSystem(config).run(traces)
    return _MP_CACHE[key]


def mix_speedup_ratio(mix_name, workload_names, scheme, length_per_core, dram=None):
    """Weighted-speedup ratio of ``scheme`` over the shared baseline.

    Both runs share the machine; per-core alone-IPCs cancel, so the ratio
    reduces to sum(IPC_i^scheme/IPC_i^alone) / sum(IPC_i^base/IPC_i^alone).
    We use the baseline single-core IPC on the MP machine as 'alone'.
    """
    dram = dram or DramConfig(speed_grade=2133, channels=2)
    alone = []
    for name in workload_names:
        result = run_workload(
            name, "none", length_per_core, dram=dram, llc_bytes=8 * 1024 * 1024
        )
        alone.append(result.ipc)
    base = run_mix(mix_name, workload_names, "none", length_per_core, dram)
    res = run_mix(mix_name, workload_names, scheme, length_per_core, dram)
    ws_base = base.weighted_speedup(alone)
    ws_scheme = res.weighted_speedup(alone)
    return ws_scheme / ws_base if ws_base > 0 else 1.0
