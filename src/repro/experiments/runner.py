"""Deprecated run API: thin compatibility shims over the default session.

Historically this module owned the figure drivers' run infrastructure —
module-global memo dicts plus ``run_workload``/``warm_runs``/``run_mix``
etc.  That role moved to the session API:

- :class:`repro.engine.Session` owns the memo layers, the store backend
  and batched parallel execution (``Session.run``);
- :mod:`repro.experiments.api` owns the experiments-layer helpers
  (labels, subsets, speedup ratios) over an explicit session.

Every run function here still works but is **deprecated**: it emits a
:class:`DeprecationWarning` and delegates to the default session, so old
callers observe identical results (bit for bit) and identical caching
behaviour.  The label/subset helpers (``scheme_label``,
``workload_subset``, ``category_of``, ``SCHEME_LABELS``) are re-exported
from :mod:`repro.experiments.api` without deprecation — they carry no
run state.

Scheme names follow the prefetcher registry; adjunct schemes are written
primary-first (``"spp+dspatch"``) so the primary prefetcher wins ties in
the shared prefetch queue, and :data:`SCHEME_LABELS` maps them to the
paper's display names ("DSPatch+SPP").
"""

import warnings

from repro.engine import MixSpec, RunSpec, TraceSpec, compute
from repro.engine.session import default_session
from repro.engine.specs import DEFAULT_LLC_BYTES
from repro.experiments import api
from repro.experiments.api import (  # noqa: F401  (compat re-exports)
    SCHEME_LABELS,
    category_of,
    scheme_label,
    workload_subset,
)
from repro.memory.dram import DramConfig

#: The default session's memo layers, under their historical names.
#: These are the *same dict objects* the session reads and writes, so
#: tests (and benches) that clear or inspect them keep observing the
#: truth.
_TRACE_CACHE = compute.TRACE_MEMO
_RUN_CACHE = default_session()._run_memo
_MP_CACHE = default_session()._mix_memo


def _deprecated(name, replacement):
    warnings.warn(
        f"repro.experiments.runner.{name} is deprecated; use {replacement} "
        "(see docs/api.md for the migration table)",
        DeprecationWarning,
        stacklevel=3,
    )


def clear_run_cache(disk=True):
    """Deprecated: use ``Session.clear()``.

    Drops the default session's memoized traces and runs; by default the
    store backend as well — both layers invalidate together, so a test
    can never observe a stale cross-process result after clearing.
    """
    _deprecated("clear_run_cache", "Session.clear()")
    default_session().clear(memory=True, disk=disk)


def get_trace(workload, length):
    """Deprecated: use ``Session.trace(TraceSpec(...))``."""
    _deprecated("get_trace", "Session.trace(TraceSpec(workload, length))")
    return default_session().trace(TraceSpec(workload, length))


def run_workload(
    workload,
    scheme,
    length,
    dram: DramConfig = None,
    llc_bytes=DEFAULT_LLC_BYTES,
    record_pollution=False,
):
    """Deprecated: use ``Session.run(RunSpec(...))``."""
    _deprecated("run_workload", "Session.run(RunSpec(...))")
    return default_session().run(
        RunSpec(workload, scheme, length, dram, llc_bytes, record_pollution)
    )


def warm_runs(
    workloads,
    schemes,
    length,
    dram=None,
    llc_bytes=DEFAULT_LLC_BYTES,
    record_pollution=False,
    jobs=None,
):
    """Deprecated: use ``Session.run`` on a list of ``RunSpec``s."""
    _deprecated("warm_runs", "Session.run([RunSpec(...), ...])")
    api.run_grid(
        default_session(),
        workloads,
        schemes,
        length,
        dram,
        llc_bytes,
        record_pollution,
        jobs=jobs,
    )


def speedup_ratios(scheme, workloads, length, dram=None, llc_bytes=DEFAULT_LLC_BYTES):
    """Deprecated: use ``repro.experiments.api.speedup_ratios(session, ...)``."""
    _deprecated("speedup_ratios", "api.speedup_ratios(session, scheme, ...)")
    return api.speedup_ratios(
        default_session(), scheme, list(workloads), length, dram, llc_bytes
    )


def run_mix(mix_name, workload_names, scheme, length_per_core, dram=None):
    """Deprecated: use ``Session.run(MixSpec(...))``."""
    _deprecated("run_mix", "Session.run(MixSpec(...))")
    return default_session().run(
        MixSpec(mix_name, tuple(workload_names), scheme, length_per_core, dram)
    )


def warm_mixes(mixes, schemes, length_per_core, dram=None, jobs=None):
    """Deprecated: use ``repro.experiments.api.warm_mix_grid(session, ...)``."""
    _deprecated("warm_mixes", "api.warm_mix_grid(session, mixes, ...)")
    api.warm_mix_grid(default_session(), mixes, schemes, length_per_core, dram, jobs)


def mix_speedup_ratio(mix_name, workload_names, scheme, length_per_core, dram=None):
    """Deprecated: use ``repro.experiments.api.mix_speedup_ratio(session, ...)``."""
    _deprecated("mix_speedup_ratio", "api.mix_speedup_ratio(session, ...)")
    return api.mix_speedup_ratio(
        default_session(), mix_name, workload_names, scheme, length_per_core, dram
    )
