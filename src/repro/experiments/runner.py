"""Shared run infrastructure for the figure drivers.

Responsibilities:

- generate (and memoize) workload traces at the configured scale;
- run (and memoize) single-core simulations per (workload, scheme, DRAM,
  LLC) combination — several figures share the same underlying runs;
- compute the paper's metric: per-workload speedup ratios of a scheme's
  IPC over the baseline (L1 PC-stride only, no L2 prefetcher).

Memoization is two-layer since the engine subsystem landed: a per-process
dict (identity-preserving, what the tests observe) over the engine's
content-addressed **disk store** (`repro.engine`), which persists runs,
mixes and traces across processes keyed by workload/scheme/config plus a
source-code salt.  ``warm_runs``/``warm_mixes`` bulk-fill the caches and
fan independent simulations across a process pool when the engine is
configured with ``jobs > 1``; results are identical to the sequential
path bit for bit.

Scheme names follow the prefetcher registry; adjunct schemes are written
primary-first (``"spp+dspatch"``) so the primary prefetcher wins ties in
the shared prefetch queue, and :data:`SCHEME_LABELS` maps them to the
paper's display names ("DSPatch+SPP").
"""

from repro import engine
from repro.memory.dram import DramConfig
from repro.workloads.catalog import CATEGORIES, WORKLOADS, workloads_in_category

#: Display names used in the rendered figures.
SCHEME_LABELS = {
    "none": "Baseline",
    "bop": "BOP",
    "sms": "SMS",
    "sms-4k": "SMS-4K",
    "sms-1k": "SMS-1K",
    "sms-256": "SMS-256",
    "spp": "SPP",
    "espp": "eSPP",
    "ebop": "eBOP",
    "ampm": "AMPM",
    "streamer": "Streamer",
    "dspatch": "DSPatch",
    "alwayscovp": "AlwaysCovP",
    "modcovp": "ModCovP",
    "spp+dspatch": "DSPatch+SPP",
    "spp+bop": "BOP+SPP",
    "spp+sms-256": "SMS(iso)+SPP",
    "spp+ebop": "eBOP+SPP",
    "spp+bop+dspatch": "DSPatch+SPP+BOP",
    "vldp": "VLDP",
    "bingo": "Bingo",
    "markov": "Markov",
    "nextline": "NextLine",
    "nextline-4": "NextLine-4",
    "fdp:streamer": "FDP(Streamer)",
    "fdp:dspatch": "FDP(DSPatch)",
}

DEFAULT_LLC_BYTES = 2 * 1024 * 1024
_MP_LLC_BYTES = 8 * 1024 * 1024


def scheme_label(scheme):
    """Paper display name for a registry scheme string."""
    return SCHEME_LABELS.get(scheme, scheme)


#: The trace memo lives in the engine's compute layer so every path —
#: runner lookups, direct engine calls, pool workers — shares it; the
#: alias keeps the runner's historical name working for callers/tests.
_TRACE_CACHE = engine.compute.TRACE_MEMO
_RUN_CACHE = {}
_MP_CACHE = {}


def clear_run_cache(disk=True):
    """Drop all memoized traces and runs (tests use this).

    Clears the in-process layer and, by default, the engine's on-disk
    store as well — both layers invalidate together, so a test can never
    observe a stale cross-process result after clearing.
    """
    _TRACE_CACHE.clear()
    _RUN_CACHE.clear()
    _MP_CACHE.clear()
    if disk:
        store = engine.active_store()
        if store is not None:
            store.clear()


def get_trace(workload, length):
    """Memoized trace generation (persistent via the engine's .npz store)."""
    return engine.produce_trace(workload, length)


def run_workload(
    workload,
    scheme,
    length,
    dram: DramConfig = None,
    llc_bytes=DEFAULT_LLC_BYTES,
    record_pollution=False,
):
    """Memoized single-core run; returns a :class:`RunResult`."""
    dram = dram or DramConfig()
    key = engine.run_fingerprint(workload, scheme, length, dram, llc_bytes, record_pollution)
    result = _RUN_CACHE.get(key)
    if result is None:
        result = engine.produce_run(workload, scheme, length, dram, llc_bytes, record_pollution)
        _RUN_CACHE[key] = result
    return result


def warm_runs(
    workloads,
    schemes,
    length,
    dram=None,
    llc_bytes=DEFAULT_LLC_BYTES,
    record_pollution=False,
    jobs=None,
):
    """Bulk-fill the run cache for every (workload, scheme) pair.

    Missing runs execute through :func:`repro.engine.execute_specs` — in
    parallel when the engine is configured with ``jobs > 1``, in-process
    otherwise — and merge into the memo in deterministic input order.
    """
    dram = dram or DramConfig()
    keys, specs = [], []
    for workload in workloads:
        for scheme in schemes:
            key = engine.run_fingerprint(
                workload, scheme, length, dram, llc_bytes, record_pollution
            )
            if key not in _RUN_CACHE:
                keys.append(key)
                specs.append(
                    engine.run_spec(workload, scheme, length, dram, llc_bytes, record_pollution)
                )
    if specs:
        for key, result in zip(keys, engine.execute_specs(specs, jobs=jobs)):
            _RUN_CACHE[key] = result


def speedup_ratios(scheme, workloads, length, dram=None, llc_bytes=DEFAULT_LLC_BYTES):
    """Per-workload IPC ratios of ``scheme`` over the baseline."""
    workloads = list(workloads)
    warm_runs(workloads, ["none", scheme], length, dram, llc_bytes)
    out = {}
    for name in workloads:
        base = run_workload(name, "none", length, dram, llc_bytes)
        res = run_workload(name, scheme, length, dram, llc_bytes)
        out[name] = res.ipc / base.ipc if base.ipc > 0 else 1.0
    return out


def workload_subset(per_category, categories=CATEGORIES, mem_intensive_first=True):
    """Deterministic subset: up to ``per_category`` workloads per category.

    Memory-intensive workloads come first within each category so small
    subsets still exercise the behaviours the paper's averages are made of.
    """
    chosen = []
    for category in categories:
        names = workloads_in_category(category)
        if mem_intensive_first:
            names = sorted(names, key=lambda n: (not WORKLOADS[n].mem_intensive, n))
        chosen.extend(names[:per_category])
    return chosen


def category_of(workload):
    return WORKLOADS[workload].category


def _mp_dram(dram):
    return dram or DramConfig(speed_grade=2133, channels=2)


def run_mix(mix_name, workload_names, scheme, length_per_core, dram=None):
    """Memoized 4-core multi-programmed run."""
    dram = _mp_dram(dram)
    key = engine.mix_fingerprint(mix_name, workload_names, scheme, length_per_core, dram)
    result = _MP_CACHE.get(key)
    if result is None:
        result = engine.produce_mix(mix_name, workload_names, scheme, length_per_core, dram)
        _MP_CACHE[key] = result
    return result


def warm_mixes(mixes, schemes, length_per_core, dram=None, jobs=None):
    """Bulk-fill caches for multi-programmed figures.

    ``mixes`` is a list of (mix_name, workload_names).  Warms every
    (mix, scheme) run plus the per-workload baseline "alone" runs that
    :func:`mix_speedup_ratio` divides by.
    """
    dram = _mp_dram(dram)
    alone = sorted({name for _, names in mixes for name in names})
    warm_runs(alone, ["none"], length_per_core, dram=dram, llc_bytes=_MP_LLC_BYTES, jobs=jobs)
    keys, specs = [], []
    for mix_name, names in mixes:
        for scheme in schemes:
            key = engine.mix_fingerprint(mix_name, names, scheme, length_per_core, dram)
            if key not in _MP_CACHE:
                keys.append(key)
                specs.append(engine.mix_spec(mix_name, names, scheme, length_per_core, dram))
    if specs:
        for key, result in zip(keys, engine.execute_specs(specs, jobs=jobs)):
            _MP_CACHE[key] = result


def mix_speedup_ratio(mix_name, workload_names, scheme, length_per_core, dram=None):
    """Weighted-speedup ratio of ``scheme`` over the shared baseline.

    Both runs share the machine; per-core alone-IPCs cancel, so the ratio
    reduces to sum(IPC_i^scheme/IPC_i^alone) / sum(IPC_i^base/IPC_i^alone).
    We use the baseline single-core IPC on the MP machine as 'alone'.
    """
    dram = _mp_dram(dram)
    alone = []
    for name in workload_names:
        result = run_workload(
            name, "none", length_per_core, dram=dram, llc_bytes=_MP_LLC_BYTES
        )
        alone.append(result.ipc)
    base = run_mix(mix_name, workload_names, "none", length_per_core, dram)
    res = run_mix(mix_name, workload_names, scheme, length_per_core, dram)
    ws_base = base.weighted_speedup(alone)
    ws_scheme = res.weighted_speedup(alone)
    return ws_scheme / ws_base if ws_base > 0 else 1.0
