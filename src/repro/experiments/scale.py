"""Run-scale knobs, resolved from environment variables.

Python trace simulation is orders of magnitude slower than the paper's
native simulator, so the default scale samples a few workloads per category
with short traces; ``REPRO_FULL=1`` switches to paper-sized runs.  Either
way the *same* drivers produce the same tables — only the sampling density
changes.
"""

import os
from dataclasses import dataclass


def _env_int(name, default):
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {value!r}") from None


@dataclass(frozen=True)
class Scale:
    """Resolved experiment scale."""

    trace_len: int
    workloads_per_category: int
    mix_count: int
    mix_trace_len: int
    full: bool

    @staticmethod
    def from_env():
        full = os.environ.get("REPRO_FULL", "") == "1"
        return Scale(
            trace_len=_env_int("REPRO_TRACE_LEN", 16000),
            workloads_per_category=(
                99 if full else _env_int("REPRO_WORKLOADS_PER_CATEGORY", 3)
            ),
            mix_count=(75 if full else _env_int("REPRO_MIX_COUNT", 6)),
            mix_trace_len=_env_int("REPRO_MIX_TRACE_LEN", 6000),
            full=full,
        )

    @staticmethod
    def tiny(trace_len=1200, mix_trace_len=600):
        """Miniature scale for smoke tests and CI example runs.

        One workload per category and one mix: every driver exercises
        its full code path at a wall-clock cost of seconds.
        """
        return Scale(
            trace_len=trace_len,
            workloads_per_category=1,
            mix_count=1,
            mix_trace_len=mix_trace_len,
            full=False,
        )
