"""Session-aware experiment helpers shared by every figure driver.

This module is the experiments layer's half of the session API: policy
that belongs to the *evaluation* (the "none" baseline, the paper's
display labels, workload subsetting, the MP machine's DRAM default)
expressed over an engine :class:`~repro.engine.session.Session`.  Every
function takes the session explicitly — there is no module state here;
two sessions never share anything through this module.

The figure drivers batch their whole grid through :func:`run_grid` /
:func:`warm_mix_grid` first (one ``Session.run`` call, so ``jobs``
parallelism applies across the entire cross product), then read
individual results back through the session memo at zero cost.
"""

from repro.engine import MixSpec, RunSpec
from repro.engine.session import default_session
from repro.engine.specs import DEFAULT_LLC_BYTES, MP_DRAM, MP_LLC_BYTES
from repro.workloads.catalog import CATEGORIES, WORKLOADS, workloads_in_category

#: Display names used in the rendered figures.
SCHEME_LABELS = {
    "none": "Baseline",
    "bop": "BOP",
    "sms": "SMS",
    "sms-4k": "SMS-4K",
    "sms-1k": "SMS-1K",
    "sms-256": "SMS-256",
    "spp": "SPP",
    "espp": "eSPP",
    "ebop": "eBOP",
    "ampm": "AMPM",
    "streamer": "Streamer",
    "dspatch": "DSPatch",
    "alwayscovp": "AlwaysCovP",
    "modcovp": "ModCovP",
    "spp+dspatch": "DSPatch+SPP",
    "spp+bop": "BOP+SPP",
    "spp+sms-256": "SMS(iso)+SPP",
    "spp+ebop": "eBOP+SPP",
    "spp+bop+dspatch": "DSPatch+SPP+BOP",
    "vldp": "VLDP",
    "bingo": "Bingo",
    "markov": "Markov",
    "nextline": "NextLine",
    "nextline-4": "NextLine-4",
    "fdp:streamer": "FDP(Streamer)",
    "fdp:dspatch": "FDP(DSPatch)",
}


def scheme_label(scheme):
    """Paper display name for a registry scheme string."""
    return SCHEME_LABELS.get(scheme, scheme)


def workload_subset(per_category, categories=CATEGORIES, mem_intensive_first=True):
    """Deterministic subset: up to ``per_category`` workloads per category.

    Memory-intensive workloads come first within each category so small
    subsets still exercise the behaviours the paper's averages are made of.
    """
    chosen = []
    for category in categories:
        names = workloads_in_category(category)
        if mem_intensive_first:
            names = sorted(names, key=lambda n: (not WORKLOADS[n].mem_intensive, n))
        chosen.extend(names[:per_category])
    return chosen


def category_of(workload):
    return WORKLOADS[workload].category


def mp_dram(dram=None):
    """The MP machine's DRAM default (2ch DDR4-2133) unless overridden."""
    return dram or MP_DRAM


# -- single-core grids -------------------------------------------------------


def run_grid(
    session,
    workloads,
    schemes,
    length,
    dram=None,
    llc_bytes=DEFAULT_LLC_BYTES,
    record_pollution=False,
    jobs=None,
):
    """Run every (workload × scheme) pair in one batch.

    Returns ``{(workload, scheme): RunResult}``; results also land in the
    session memo, so later single lookups are free.
    """
    workloads = list(workloads)
    schemes = list(schemes)
    specs = [
        RunSpec(workload, scheme, length, dram, llc_bytes, record_pollution)
        for workload in workloads
        for scheme in schemes
    ]
    results = session.run(specs, jobs=jobs)
    keys = [(w, s) for w in workloads for s in schemes]
    return dict(zip(keys, results))


def speedup_ratios(
    session, scheme, workloads, length, dram=None, llc_bytes=DEFAULT_LLC_BYTES
):
    """Per-workload IPC ratios of ``scheme`` over the baseline."""
    workloads = list(workloads)
    grid = run_grid(session, workloads, ["none", scheme], length, dram, llc_bytes)
    out = {}
    for name in workloads:
        base = grid[(name, "none")]
        res = grid[(name, scheme)]
        out[name] = res.ipc / base.ipc if base.ipc > 0 else 1.0
    return out


# -- multi-programmed grids --------------------------------------------------


def warm_mix_grid(session, mixes, schemes, length_per_core, dram=None, jobs=None):
    """Batch-fill everything the multi-programmed figures read.

    ``mixes`` is a list of ``(mix_name, workload_names)``.  Warms every
    (mix × scheme) run plus the per-workload baseline "alone" runs that
    :func:`mix_speedup_ratio` divides by — all through one
    ``Session.run`` call, so run and mix simulations share the pool.
    """
    dram = mp_dram(dram)
    mixes = list(mixes)
    alone = sorted({name for _, names in mixes for name in names})
    specs = [
        RunSpec(name, "none", length_per_core, dram, MP_LLC_BYTES) for name in alone
    ]
    specs.extend(
        MixSpec(mix_name, tuple(names), scheme, length_per_core, dram)
        for mix_name, names in mixes
        for scheme in schemes
    )
    session.run(specs, jobs=jobs)


def mix_speedup_ratio(session, mix_name, workload_names, scheme, length_per_core, dram=None):
    """Weighted-speedup ratio of ``scheme`` over the shared baseline.

    Both runs share the machine; per-core alone-IPCs cancel, so the ratio
    reduces to sum(IPC_i^scheme/IPC_i^alone) / sum(IPC_i^base/IPC_i^alone).
    We use the baseline single-core IPC on the MP machine as 'alone'.
    """
    dram = mp_dram(dram)
    alone = [
        session.run(RunSpec(name, "none", length_per_core, dram, MP_LLC_BYTES)).ipc
        for name in workload_names
    ]
    base = session.run(
        MixSpec(mix_name, tuple(workload_names), "none", length_per_core, dram)
    )
    res = session.run(
        MixSpec(mix_name, tuple(workload_names), scheme, length_per_core, dram)
    )
    ws_base = base.weighted_speedup(alone)
    ws_scheme = res.weighted_speedup(alone)
    return ws_scheme / ws_base if ws_base > 0 else 1.0


def resolve_session(session=None):
    """The session to use: the given one, or the process default."""
    return session if session is not None else default_session()
