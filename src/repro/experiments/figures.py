"""One driver per table/figure of the DSPatch evaluation.

Every function returns a :class:`repro.metrics.stats.FigureResult` whose
rows/columns mirror the paper's series, rendered by ``.render()``.  Scale
comes from :class:`repro.experiments.scale.Scale` (environment-driven)
unless an explicit ``scale`` is passed.

Simulation flows through the session API: every driver accepts an
optional ``session`` (a :class:`repro.engine.Session`) and defaults to
the process-wide one, batching its whole workload × scheme cross product
through ``Session.run`` so ``--jobs`` parallelism covers the entire grid
and results persist in the session's store backend.
"""

from collections import Counter

from repro.constants import LINES_PER_PAGE
from repro.core.bitpattern import (
    compress_pattern,
    expand_pattern,
    popcount,
    quantize_quartile,
)
from repro.core.storage import dspatch_storage_table
from repro.memory.dram import BANDWIDTH_SWEEP, DramConfig, FixedBandwidth
from repro.metrics.pollution import classify_pollution
from repro.metrics.stats import FigureResult, category_geomeans, geomean
from repro.prefetchers.registry import build_prefetcher
from repro.engine import TraceSpec
from repro.experiments import api
from repro.experiments.api import (
    category_of,
    resolve_session,
    scheme_label,
    workload_subset,
)
from repro.experiments.scale import Scale
from repro.workloads.catalog import CATEGORIES, MEMORY_INTENSIVE, WORKLOADS
from repro.workloads.mixes import heterogeneous_mixes, homogeneous_mixes

_CATEGORY_COLUMNS = list(CATEGORIES) + ["GEOMEAN"]


def _scale(scale):
    return scale or Scale.from_env()


def _categories_map(workloads):
    return {name: category_of(name) for name in workloads}


def _category_speedup_rows(session, schemes, workloads, length, dram=None):
    rows = {}
    cats = _categories_map(workloads)
    api.run_grid(session, workloads, ["none", *schemes], length, dram)
    for scheme in schemes:
        ratios = api.speedup_ratios(session, scheme, workloads, length, dram)
        rows[scheme_label(scheme)] = category_geomeans(ratios, cats)
    return rows


def _bandwidth_sweep_rows(session, schemes, workloads, length):
    """{scheme-label: {peak-GBps-label: overall geomean pct}}."""
    rows = {scheme_label(s): {} for s in schemes}
    for dram in BANDWIDTH_SWEEP:
        column = f"{dram.peak_gbps:.1f}"
        api.run_grid(session, workloads, ["none", *schemes], length, dram)
        for scheme in schemes:
            ratios = api.speedup_ratios(session, scheme, workloads, length, dram)
            pct = 100.0 * (geomean(ratios.values()) - 1.0)
            rows[scheme_label(scheme)][column] = pct
    return rows


def _bandwidth_columns():
    return [f"{d.peak_gbps:.1f}" for d in BANDWIDTH_SWEEP]


# --------------------------------------------------------------------------- #
# Figures 1 / 6 / 15: performance scaling with DRAM bandwidth
# --------------------------------------------------------------------------- #


def fig01_bw_scaling_prior(scale=None, session=None):
    """Figure 1: BOP/SMS/SPP speedup vs. the six peak-bandwidth points."""
    scale = _scale(scale)
    session = resolve_session(session)
    workloads = workload_subset(scale.workloads_per_category)
    rows = _bandwidth_sweep_rows(session, ["bop", "sms", "spp"], workloads, scale.trace_len)
    fig = FigureResult(
        "fig01",
        "Figure 1: prior-prefetcher performance scaling with DRAM bandwidth "
        "(geomean % over baseline)",
        _bandwidth_columns(),
        rows,
        notes=["columns are peak DRAM GB/s: 1ch/2ch x DDR4-1600/2133/2400"],
    )
    return fig


def fig06_bw_scaling_enhanced(scale=None, session=None):
    """Figure 6: Figure 1 plus the bandwidth-aware eSPP and eBOP."""
    scale = _scale(scale)
    session = resolve_session(session)
    workloads = workload_subset(scale.workloads_per_category)
    rows = _bandwidth_sweep_rows(
        session, ["bop", "sms", "spp", "espp", "ebop"], workloads, scale.trace_len
    )
    return FigureResult(
        "fig06",
        "Figure 6: bandwidth scaling incl. enhanced eSPP/eBOP (geomean % over baseline)",
        _bandwidth_columns(),
        rows,
        notes=["paper's takeaway: none of the five scales well"],
    )


def fig15_bw_scaling_dspatch(scale=None, session=None):
    """Figure 15: DSPatch+SPP (and eBOP+SPP) bandwidth scaling."""
    scale = _scale(scale)
    session = resolve_session(session)
    workloads = workload_subset(scale.workloads_per_category)
    rows = _bandwidth_sweep_rows(
        session,
        ["bop", "sms", "spp", "spp+ebop", "spp+dspatch"],
        workloads,
        scale.trace_len,
    )
    return FigureResult(
        "fig15",
        "Figure 15: performance scaling with DRAM bandwidth (geomean % over baseline)",
        _bandwidth_columns(),
        rows,
        notes=[
            "paper shape: DSPatch+SPP grows from ~6% over SPP (1ch-2133) to "
            "~10% (2ch-2133) and beats eBOP+SPP with a widening gap"
        ],
    )


# --------------------------------------------------------------------------- #
# Figures 4 / 12 / 14: per-category single-thread comparisons
# --------------------------------------------------------------------------- #


def fig04_prior_prefetchers_by_category(scale=None, session=None):
    """Figure 4: BOP/SMS/SPP per workload category, 1ch DDR4-2133."""
    scale = _scale(scale)
    session = resolve_session(session)
    workloads = workload_subset(scale.workloads_per_category)
    rows = _category_speedup_rows(
        session, ["bop", "sms", "spp"], workloads, scale.trace_len
    )
    return FigureResult(
        "fig04",
        "Figure 4: BOP/SMS/SPP by category (% over baseline, 1ch DDR4-2133)",
        _CATEGORY_COLUMNS,
        rows,
        notes=["paper shape: SPP wins 6 of 9 categories; SMS wins ISPEC17/Cloud/SYSmark"],
    )


def fig12_single_thread(scale=None, session=None):
    """Figure 12: the headline single-thread comparison."""
    scale = _scale(scale)
    session = resolve_session(session)
    workloads = workload_subset(scale.workloads_per_category)
    rows = _category_speedup_rows(
        session,
        ["bop", "sms", "spp", "dspatch", "spp+dspatch"],
        workloads,
        scale.trace_len,
    )
    return FigureResult(
        "fig12",
        "Figure 12: single-thread performance (% over baseline, 1ch DDR4-2133)",
        _CATEGORY_COLUMNS,
        rows,
        notes=[
            "paper: DSPatch+SPP beats standalone SPP by ~6% geomean and wins "
            "every category"
        ],
    )


def fig14_adjunct_prefetchers(scale=None, session=None):
    """Figure 14: BOP / SMS-256 / DSPatch as adjuncts to SPP."""
    scale = _scale(scale)
    session = resolve_session(session)
    workloads = workload_subset(scale.workloads_per_category)
    rows = _category_speedup_rows(
        session,
        ["spp", "spp+bop", "spp+sms-256", "spp+dspatch"],
        workloads,
        scale.trace_len,
    )
    return FigureResult(
        "fig14",
        "Figure 14: adjunct prefetchers to SPP (% over baseline, 1ch DDR4-2133)",
        _CATEGORY_COLUMNS,
        rows,
        notes=["paper: DSPatch+SPP > BOP+SPP (by ~2.1%) > SMS(iso-storage)+SPP"],
    )


# --------------------------------------------------------------------------- #
# Figure 5: SMS storage sweep
# --------------------------------------------------------------------------- #


def fig05_sms_pht_sweep(scale=None, session=None):
    """Figure 5: SMS performance vs. pattern-history-table capacity."""
    scale = _scale(scale)
    session = resolve_session(session)
    workloads = workload_subset(scale.workloads_per_category)
    fig = FigureResult(
        "fig05",
        "Figure 5: SMS performance vs. PHT entries (geomean % over baseline)",
        ["16K", "4K", "1K", "256"],
        notes=["paper: halving from 16.5% (16K, 88KB) to 8.8% (256 entries, 3.5KB)"],
    )
    api.run_grid(
        session, workloads, ["none", "sms", "sms-4k", "sms-1k", "sms-256"], scale.trace_len
    )
    row = {}
    for scheme, column in (("sms", "16K"), ("sms-4k", "4K"), ("sms-1k", "1K"), ("sms-256", "256")):
        ratios = api.speedup_ratios(session, scheme, workloads, scale.trace_len)
        row[column] = 100.0 * (geomean(ratios.values()) - 1.0)
    fig.add_row("SMS", row)
    return fig


# --------------------------------------------------------------------------- #
# Figure 8: goodness quantization worked example
# --------------------------------------------------------------------------- #


def fig08_quantization_example():
    """Figure 8: the paper's worked accuracy/coverage quartile example."""
    program = int("1011010000111100"[::-1], 2)
    predicted = int("1010011000000001"[::-1], 2)
    overlap = program & predicted
    c_real, c_pred, c_acc = popcount(program), popcount(predicted), popcount(overlap)
    accuracy_q = quantize_quartile(c_acc, c_pred)
    coverage_q = quantize_quartile(c_acc, c_real)
    labels = ["<25%", "25-50%", "50-75%", ">=75%"]
    fig = FigureResult(
        "fig08",
        "Figure 8: prediction accuracy/coverage via AND + PopCount",
        ["popcount", "quartile"],
        notes=[f"program={program:016b} predicted={predicted:016b}"],
    )
    fig.add_row("Program", {"popcount": float(c_real), "quartile": "-"})
    fig.add_row("Predicted", {"popcount": float(c_pred), "quartile": "-"})
    fig.add_row("Bitwise-AND", {"popcount": float(c_acc), "quartile": "-"})
    fig.add_row("Accuracy 3/5", {"popcount": float(c_acc), "quartile": labels[accuracy_q]})
    fig.add_row("Coverage 3/8", {"popcount": float(c_acc), "quartile": labels[coverage_q]})
    return fig


# --------------------------------------------------------------------------- #
# Figure 11: delta distribution and compression error
# --------------------------------------------------------------------------- #


def fig11a_delta_distribution(scale=None, session=None):
    """Figure 11(a): distribution of in-page line-address deltas.

    Deltas are tracked per page (successive accesses *to the same page*,
    which survives stream interleaving) and each workload's distribution
    carries equal weight — the paper's "across all workloads" average,
    not a raw pool that would over-weight delta-heavy traces.
    """
    from repro.workloads.analysis import delta_distribution

    scale = _scale(scale)
    session = resolve_session(session)
    workloads = workload_subset(scale.workloads_per_category)
    shares = Counter()
    counted = 0
    for name in workloads:
        trace = session.trace(TraceSpec(name, scale.trace_len))
        deltas, total = delta_distribution(trace, top=10**6)
        if not total:
            continue
        counted += 1
        for delta, count in deltas.items():
            if delta == 1:
                key = "+1"
            elif delta == -1:
                key = "-1"
            elif delta in (2, 3):
                key = "+2,+3"
            else:
                key = "other"
            shares[key] += count / total
    fig = FigureResult(
        "fig11a",
        "Figure 11(a): delta occurrence distribution (mean % of in-page deltas)",
        ["+1", "-1", "+2,+3", "other"],
        notes=["paper: +1 and -1 together exceed ~50-60% of deltas"],
    )
    row = {k: 100.0 * shares.get(k, 0) / counted if counted else 0.0 for k in fig.columns}
    fig.add_row("All workloads", row)
    return fig


def _page_patterns_of(trace):
    """Final observed 64-bit access pattern of every touched page."""
    patterns = {}
    for addr in trace.addrs.tolist():
        page = addr >> 12
        patterns[page] = patterns.get(page, 0) | (1 << ((addr >> 6) & 63))
    return patterns


def fig11b_compression_error(scale=None, session=None):
    """Figure 11(b): misprediction rate induced by 128B compression.

    For each workload, compare each page's true 64B pattern against the
    expansion of its compressed pattern; the extra lines are compression
    mispredictions.  Workloads are bucketed by their average rate exactly
    as the paper's pie chart buckets them.
    """
    scale = _scale(scale)
    session = resolve_session(session)
    workloads = workload_subset(scale.workloads_per_category)
    buckets = Counter()
    rates = {}
    for name in workloads:
        trace = session.trace(TraceSpec(name, scale.trace_len))
        extra = 0
        predicted = 0
        for pattern in _page_patterns_of(trace).values():
            roundtrip = expand_pattern(compress_pattern(pattern, LINES_PER_PAGE))
            predicted += popcount(roundtrip)
            extra += popcount(roundtrip & ~pattern)
        rate = extra / predicted if predicted else 0.0
        rates[name] = rate
        # Rates under 0.5% are boundary pages of a finite trace (a stream's
        # last partially-filled page); the paper's steady-state equivalent
        # is exactly zero.
        if rate < 0.005:
            buckets["Exactly 0%"] += 1
        elif rate < 0.125:
            buckets["0%-12.5%"] += 1
        elif rate < 0.25:
            buckets["12.5%-25%"] += 1
        elif rate < 0.37:
            buckets["25%-37%"] += 1
        elif rate < 0.5:
            buckets["37%-50%"] += 1
        else:
            buckets["Exactly 50%"] += 1
    columns = ["Exactly 0%", "0%-12.5%", "12.5%-25%", "25%-37%", "37%-50%", "Exactly 50%"]
    fig = FigureResult(
        "fig11b",
        "Figure 11(b): workloads bucketed by 128B-compression misprediction rate (%)",
        columns,
        notes=[
            "paper: 42% of workloads see no mispredictions; 70% stay below 25%",
            f"mean rate across workloads: {100.0 * sum(rates.values()) / len(rates):.1f}%",
        ],
    )
    total = sum(buckets.values())
    fig.add_row(
        "Share of workloads",
        {c: 100.0 * buckets.get(c, 0) / total if total else 0.0 for c in columns},
    )
    return fig


# --------------------------------------------------------------------------- #
# Figure 13: memory-intensive per-workload line graph
# --------------------------------------------------------------------------- #


def fig13_memory_intensive_lines(scale=None, max_workloads=None, session=None):
    """Figure 13: SMS / SPP / DSPatch+SPP on the memory-intensive set."""
    scale = _scale(scale)
    session = resolve_session(session)
    names = list(MEMORY_INTENSIVE)
    if max_workloads is None:
        max_workloads = len(names) if scale.full else 12
    names = names[:max_workloads]
    schemes = ["sms", "spp", "spp+dspatch"]
    api.run_grid(session, names, ["none", *schemes], scale.trace_len)
    per_scheme = {s: api.speedup_ratios(session, s, names, scale.trace_len) for s in schemes}
    order = sorted(names, key=lambda n: per_scheme["spp+dspatch"][n])
    fig = FigureResult(
        "fig13",
        "Figure 13: memory-intensive workloads (% over baseline, sorted by DSPatch+SPP)",
        [scheme_label(s) for s in schemes],
        notes=[
            "paper: DSPatch+SPP beats SPP by 9% on this set; loses to SMS only "
            "on TPC-C (huge code footprint)"
        ],
    )
    for name in order:
        fig.add_row(
            name,
            {scheme_label(s): 100.0 * (per_scheme[s][name] - 1.0) for s in schemes},
        )
    geo = {
        scheme_label(s): 100.0 * (geomean(per_scheme[s].values()) - 1.0) for s in schemes
    }
    fig.add_row("GEOMEAN", geo)
    return fig


# --------------------------------------------------------------------------- #
# Figure 16: coverage and mispredictions
# --------------------------------------------------------------------------- #


def fig16_coverage_accuracy(scale=None, session=None):
    """Figure 16: covered / uncovered / mispredicted fractions per category."""
    scale = _scale(scale)
    session = resolve_session(session)
    workloads = workload_subset(scale.workloads_per_category)
    schemes = ["bop", "sms", "spp", "spp+dspatch"]
    grid = api.run_grid(session, workloads, schemes, scale.trace_len)
    fig = FigureResult(
        "fig16",
        "Figure 16: prefetch coverage breakdown (% of baseline L2 misses)",
        ["Covered", "Uncovered", "Mispredicted"],
        notes=[
            "paper: DSPatch+SPP has ~15% more coverage than SPP at ~6.5% more "
            "mispredictions (2:1 ratio)"
        ],
    )
    by_category = {}
    for name in workloads:
        by_category.setdefault(category_of(name), []).append(name)
    for category in list(CATEGORIES) + ["AVG"]:
        names = workloads if category == "AVG" else by_category.get(category, [])
        if not names:
            continue
        for scheme in schemes:
            covered = uncovered = mispredicted = 0
            for name in names:
                res = grid[(name, scheme)]
                covered += res.pf_useful
                uncovered += res.l2_demand_misses
                # Prefetches never demanded: evicted-unused plus those still
                # resident untouched at run end.
                mispredicted += res.pf_issued - res.pf_useful
            base_total = covered + uncovered
            if base_total == 0:
                continue
            fig.add_row(
                f"{category}/{scheme_label(scheme)}",
                {
                    "Covered": 100.0 * covered / base_total,
                    "Uncovered": 100.0 * uncovered / base_total,
                    "Mispredicted": 100.0 * mispredicted / base_total,
                },
            )
    return fig


# --------------------------------------------------------------------------- #
# Figures 17 / 18: multi-programmed results
# --------------------------------------------------------------------------- #


def fig17_mp_homogeneous(scale=None, session=None):
    """Figure 17: homogeneous 4-copy mixes on the MP machine."""
    scale = _scale(scale)
    session = resolve_session(session)
    mixes = homogeneous_mixes()
    if not scale.full:
        # Deterministic spread: pick mixes across categories.
        step = max(1, len(mixes) // scale.mix_count)
        mixes = mixes[::step][: scale.mix_count]
    schemes = ["bop", "sms", "spp", "spp+dspatch"]
    api.warm_mix_grid(session, mixes, ["none", *schemes], scale.mix_trace_len)
    per_scheme = {}
    for scheme in schemes:
        ratios = {}
        for mix_name, names in mixes:
            ratios[mix_name] = api.mix_speedup_ratio(
                session, mix_name, names, scheme, scale.mix_trace_len
            )
        per_scheme[scheme] = ratios
    cats = {mix_name: category_of(mix_name) for mix_name, _ in mixes}
    fig = FigureResult(
        "fig17",
        "Figure 17: multi-programmed homogeneous mixes (% weighted speedup over baseline)",
        _CATEGORY_COLUMNS,
        notes=["paper: DSPatch+SPP improves 5.9% over standalone SPP"],
    )
    for scheme in schemes:
        fig.add_row(scheme_label(scheme), category_geomeans(per_scheme[scheme], cats))
    return fig


def fig18_mp_bandwidth(scale=None, session=None):
    """Figure 18: homogeneous vs heterogeneous mixes at two DRAM speeds."""
    scale = _scale(scale)
    session = resolve_session(session)
    homo = homogeneous_mixes()
    hetero = heterogeneous_mixes(count=scale.mix_count)
    if not scale.full:
        step = max(1, len(homo) // scale.mix_count)
        homo = homo[::step][: scale.mix_count]
    schemes = ["bop", "sms", "spp", "spp+dspatch"]
    drams = {
        "DDR4-2133": DramConfig(speed_grade=2133, channels=2),
        "DDR4-2400": DramConfig(speed_grade=2400, channels=2),
    }
    columns = []
    fig_rows = {scheme_label(s): {} for s in schemes}
    for dram_name, dram in drams.items():
        for flavour, mixes in (("Homogeneous", homo), ("Heterogeneous", hetero)):
            column = f"{flavour}@{dram_name}"
            columns.append(column)
            api.warm_mix_grid(session, mixes, ["none", *schemes], scale.mix_trace_len, dram)
            for scheme in schemes:
                ratios = [
                    api.mix_speedup_ratio(
                        session, mix_name, names, scheme, scale.mix_trace_len, dram
                    )
                    for mix_name, names in mixes
                ]
                fig_rows[scheme_label(scheme)][column] = 100.0 * (geomean(ratios) - 1.0)
    return FigureResult(
        "fig18",
        "Figure 18: multi-programmed mixes at two DRAM bandwidths (% over baseline)",
        columns,
        fig_rows,
        notes=["paper: DSPatch+SPP gains grow with the 2133→2400 bandwidth bump"],
    )


# --------------------------------------------------------------------------- #
# Figure 19: contribution of the accuracy-biased pattern
# --------------------------------------------------------------------------- #


def fig19_accp_contribution(scale=None, max_workloads=None, session=None):
    """Figure 19: full DSPatch vs AlwaysCovP vs ModCovP ablation."""
    scale = _scale(scale)
    session = resolve_session(session)
    names = list(MEMORY_INTENSIVE)
    if max_workloads is None:
        max_workloads = len(names) if scale.full else 12
    names = names[:max_workloads]
    fig = FigureResult(
        "fig19",
        "Figure 19: accuracy-biased pattern ablation (% over baseline, geomean)",
        ["DSPatch", "AlwaysCovP", "ModCovP"],
        notes=["paper: AlwaysCovP loses ~4.5% and ModCovP ~1.4% vs full DSPatch"],
    )
    api.run_grid(
        session,
        names,
        ["none", "spp+dspatch", "spp+alwayscovp", "spp+modcovp"],
        scale.trace_len,
    )
    row = {}
    for scheme, column in (
        ("spp+dspatch", "DSPatch"),
        ("spp+alwayscovp", "AlwaysCovP"),
        ("spp+modcovp", "ModCovP"),
    ):
        ratios = api.speedup_ratios(session, scheme, names, scale.trace_len)
        row[column] = 100.0 * (geomean(ratios.values()) - 1.0)
    fig.add_row("DSPatch+SPP variants", row)
    return fig


# --------------------------------------------------------------------------- #
# Figure 20 (appendix): LLC pollution breakdown
# --------------------------------------------------------------------------- #


def fig20_pollution(scale=None, reuse_window_fraction=0.5, session=None):
    """Figure 20: pollution classes of streamer-prefetch victims vs LLC size.

    At reduced scale the traces cannot fill a multi-megabyte LLC, so the
    three capacities are scaled down 8:1 with their 4:2:1 ratio preserved
    (true sizes under ``REPRO_FULL=1``) — pollution is a capacity-pressure
    phenomenon and the ratio is what shapes the trend.
    """
    scale = _scale(scale)
    session = resolve_session(session)
    workloads = workload_subset(max(1, scale.workloads_per_category // 2))
    if scale.full:
        llc_sizes = {"8MB": 8 << 20, "4MB": 4 << 20, "2MB": 2 << 20}
        size_note = "true paper LLC capacities (REPRO_FULL)"
    else:
        llc_sizes = {"8MB": 1 << 20, "4MB": 512 << 10, "2MB": 256 << 10}
        size_note = "LLC capacities scaled 8:1 for reduced-scale traces (ratio preserved)"
    trace_len = max(scale.trace_len, 12000)
    grids = {
        size: api.run_grid(
            session,
            workloads,
            ["streamer"],
            trace_len,
            llc_bytes=size,
            record_pollution=True,
        )
        for size in llc_sizes.values()
    }
    fig = FigureResult(
        "fig20",
        "Figure 20 (appendix): LLC pollution breakdown under a streaming prefetcher (%)",
        ["NoReuse", "PrefetchedBeforeUse", "BadPollution"],
        notes=[
            "paper (2MB): ~84% NoReuse / ~13% PrefetchedBeforeUse / ~3% BadPollution;",
            size_note,
            f"reuse window = {reuse_window_fraction} of the demand stream",
        ],
    )
    for label, size in llc_sizes.items():
        totals = Counter()
        for name in workloads:
            res = grids[size][(name, "streamer")]
            window = int(len(res.demand_log) * reuse_window_fraction)
            breakdown = classify_pollution(
                [(e.ordinal, e.victim_line) for e in res.pollution_events],
                res.demand_log,
                res.prefetch_fill_log,
                window,
            )
            totals["NoReuse"] += breakdown.no_reuse
            totals["PrefetchedBeforeUse"] += breakdown.prefetched_before_use
            totals["BadPollution"] += breakdown.bad_pollution
        grand = sum(totals.values())
        fig.add_row(
            label,
            {c: 100.0 * totals.get(c, 0) / grand if grand else 0.0 for c in fig.columns},
        )
    return fig


# --------------------------------------------------------------------------- #
# Tables 1 and 3: storage budgets
# --------------------------------------------------------------------------- #


def table1_dspatch_storage():
    """Table 1: DSPatch storage overhead (must equal 3.6 KB)."""
    table = dspatch_storage_table()
    fig = FigureResult(
        "table1",
        "Table 1: DSPatch storage overhead",
        ["entries", "bits", "KB"],
        notes=[f"total: {table['total_bits']} bits = {table['total_kb']:.2f} KB (paper: 3.6 KB)"],
    )
    for row in table["rows"]:
        fig.add_row(
            row["structure"],
            {
                "entries": float(row["entries"]),
                "bits": float(row["bits"]),
                "KB": row["bits"] / 8 / 1024,
            },
        )
    return fig


def table3_prefetcher_storage():
    """Table 3: storage budgets of every evaluated prefetcher."""
    bw = FixedBandwidth(0)
    fig = FigureResult(
        "table3",
        "Table 3: prefetcher storage budgets",
        ["KB"],
        notes=["paper: BOP 1.3KB, SMS 88KB, SPP 6.2KB, DSPatch 3.6KB"],
    )
    for scheme in ("bop", "sms", "sms-256", "spp", "dspatch"):
        prefetcher = build_prefetcher(scheme, bw)
        fig.add_row(scheme_label(scheme), {"KB": prefetcher.storage_kb()})
    return fig


# --------------------------------------------------------------------------- #
# Section 5.1 extra: the SPP+BOP+DSPatch triple hybrid
# --------------------------------------------------------------------------- #


def extra_triple_hybrid(scale=None, session=None):
    """Section 5.1 (text): DSPatch adds ~2.6% on top of SPP+BOP."""
    scale = _scale(scale)
    session = resolve_session(session)
    workloads = workload_subset(scale.workloads_per_category)
    fig = FigureResult(
        "extra-triple",
        "Section 5.1: SPP+BOP vs SPP+BOP+DSPatch (geomean % over baseline)",
        ["SPP+BOP", "SPP+BOP+DSPatch"],
        notes=["paper: the triple adds ~2.6% — BOP and DSPatch coverage do not fully overlap"],
    )
    api.run_grid(session, workloads, ["none", "spp+bop", "spp+bop+dspatch"], scale.trace_len)
    row = {}
    for scheme, column in (("spp+bop", "SPP+BOP"), ("spp+bop+dspatch", "SPP+BOP+DSPatch")):
        ratios = api.speedup_ratios(session, scheme, workloads, scale.trace_len)
        row[column] = 100.0 * (geomean(ratios.values()) - 1.0)
    fig.add_row("Hybrid", row)
    return fig


def quality_profiles(scale=None, session=None):
    """Cross-cutting: scored quality profiles for every registry scheme.

    Lives in :mod:`repro.experiments.quality`; registered here so the
    ``quality`` id flows through ``repro figure`` / ``repro report``
    like any paper figure.
    """
    from repro.experiments.quality import quality_profiles as driver

    return driver(scale, session=session)


#: Registry used by ``python -m repro.experiments.figures <id>`` and tests.
ALL_FIGURES = {
    "fig01": fig01_bw_scaling_prior,
    "fig04": fig04_prior_prefetchers_by_category,
    "fig05": fig05_sms_pht_sweep,
    "fig06": fig06_bw_scaling_enhanced,
    "fig08": fig08_quantization_example,
    "fig11a": fig11a_delta_distribution,
    "fig11b": fig11b_compression_error,
    "fig12": fig12_single_thread,
    "fig13": fig13_memory_intensive_lines,
    "fig14": fig14_adjunct_prefetchers,
    "fig15": fig15_bw_scaling_dspatch,
    "fig16": fig16_coverage_accuracy,
    "fig17": fig17_mp_homogeneous,
    "fig18": fig18_mp_bandwidth,
    "fig19": fig19_accp_contribution,
    "fig20": fig20_pollution,
    "table1": table1_dspatch_storage,
    "table3": table3_prefetcher_storage,
    "extra-triple": extra_triple_hybrid,
    "quality": quality_profiles,
}


def main(argv=None):
    """CLI: render one or more figures, e.g. ``... figures fig12 table1``."""
    import sys

    args = argv if argv is not None else sys.argv[1:]
    targets = args or list(ALL_FIGURES)
    for target in targets:
        if target not in ALL_FIGURES:
            known = ", ".join(ALL_FIGURES)
            raise SystemExit(f"unknown figure {target!r} (known: {known})")
        print(ALL_FIGURES[target]().render())
        print()


if __name__ == "__main__":
    main()
