"""Analytic out-of-order core timing model.

This replaces the paper's in-house cycle-accurate simulator (Table 2:
4-wide OOO, 224-entry ROB) with a retirement-centric model that preserves
the three properties prefetcher evaluations hinge on:

1. **Bounded memory-level parallelism.** A memory operation can issue only
   once it has entered the ROB, i.e. no earlier than the retirement time of
   the instruction ``ROB_SIZE`` positions older.  Independent misses within
   one ROB window overlap; misses further apart serialize — exactly the
   mechanism that limits MLP in a real core.
2. **Dependent-load serialization.** A load flagged ``FLAG_DEP`` (pointer
   chase) additionally waits for the previous load's data.
3. **Retirement bandwidth.** Instructions retire at most ``width`` per
   cycle; a load blocks retirement until its data returns, so exposed miss
   latency directly lengthens execution.

IPC falls out as instructions / final retirement cycle.  Absolute numbers
differ from the paper's Skylake model; relative speed-ups (the paper's
reported metric) are what this model is built to preserve.

``advance`` is the simulator's innermost loop (one call per memory op per
run); it is written allocation-free — the hierarchy returns a plain
``(latency, level)`` tuple, per-level hits are integer counters indexed by
the hierarchy's level codes, and every per-call attribute lookup that can
be hoisted into ``__init__`` or a local is.
"""

import heapq
import math
from bisect import insort
from collections import deque
from dataclasses import dataclass

from repro.cpu.trace import FLAG_DEP, FLAG_WRITE

_INF = float("inf")
#: Largest finite float: ``nextafter(inf, -inf)`` — an always-permissive
#: horizon threshold for the fused driver's single-comparison stop check.
_MAX_FLOAT = math.nextafter(_INF, 0.0)


@dataclass(frozen=True)
class CoreModel:
    """Static core parameters (Table 2)."""

    width: int = 4
    rob_size: int = 224

    def __post_init__(self):
        if self.width <= 0 or self.rob_size <= 0:
            raise ValueError("width and rob_size must be positive")


@dataclass
class CoreStats:
    """Results of executing one trace on one core.

    Per-level hits are plain integer fields (the hot loop increments a
    flat counter list, not a dict); :attr:`level_hits` provides the
    familiar dict view for reporting and tests.
    """

    instructions: int = 0
    memory_ops: int = 0
    cycles: float = 0.0
    l1_hits: int = 0
    l2_hits: int = 0
    llc_hits: int = 0
    dram_hits: int = 0

    @property
    def ipc(self):
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    @property
    def level_hits(self):
        """Dict view of the per-level hit counters (compatibility)."""
        return {
            "L1": self.l1_hits,
            "L2": self.l2_hits,
            "LLC": self.llc_hits,
            "DRAM": self.dram_hits,
        }


class CoreExecution:
    """Steppable execution of one trace against one memory hierarchy.

    The multi-core driver interleaves several of these by always advancing
    the one with the smallest current retirement time, so contention on the
    shared LLC/DRAM is resolved in near-global time order.
    """

    __slots__ = (
        "model",
        "hierarchy",
        "stats",
        "_ops",
        "_pos",
        "_n",
        "_retire",
        "_instr",
        "_last_load_done",
        "_window",
        "_width",
        "_rob_size",
        "_retire_step",
        "_access",
        "_hits",
        "_stats_floor",
    )

    def __init__(self, model, trace, hierarchy):
        self.model = model
        self.hierarchy = hierarchy
        self.stats = CoreStats()
        # One fused (gap, pc, addr, is_write, dep) tuple per op: a single
        # list index + tuple unpack per advance instead of four list
        # indexes, with flag decoding hoisted out of the loop into two
        # vectorized array passes here.
        flags = trace.flags
        self._ops = list(
            zip(
                trace.gaps.tolist(),
                trace.pcs.tolist(),
                trace.addrs.tolist(),
                (flags & FLAG_WRITE).astype(bool).tolist(),
                (flags & FLAG_DEP).astype(bool).tolist(),
            )
        )
        self._pos = 0
        self._n = len(self._ops)
        self._retire = 0.0
        self._instr = 0
        self._last_load_done = 0.0
        # (instruction index, retirement time) checkpoints at memory ops,
        # used to reconstruct the ROB-entry bound by linear interpolation.
        self._window = deque()
        self._width = model.width
        self._rob_size = model.rob_size
        self._retire_step = 1.0 / model.width
        self._access = hierarchy.access
        # Indexed by the hierarchy's level codes (L1/L2/LLC/DRAM = 0..3).
        self._hits = [0, 0, 0, 0]
        self._stats_floor = None

    @property
    def done(self):
        return self._pos >= self._n

    @property
    def time(self):
        """Current retirement time in cycles."""
        return self._retire

    @property
    def ops(self):
        """Memory operations executed so far."""
        return self._pos

    def _retire_floor(self, idx):
        """Retirement time of instruction ``idx`` (ROB-entry bound)."""
        if idx <= 0:
            return 0.0
        window = self._window
        while len(window) > 1 and window[1][0] <= idx:
            window.popleft()
        if not window or window[0][0] > idx:
            # Before the first checkpoint retirement is purely
            # bandwidth-bound.
            return idx / self._width
        base_idx, base_time = window[0]
        return base_time + (idx - base_idx) / self._width

    def advance(self):
        """Execute the next memory operation (and its preceding gap).

        Returns ``False`` when the trace is exhausted.
        """
        pos = self._pos
        if pos >= self._n:
            return False
        self._pos = pos + 1
        gap, pc, addr, is_write, dep = self._ops[pos]
        width = self._width
        retire = self._retire
        instr = self._instr
        if gap:
            instr += gap
            retire += gap / width
        idx = instr
        self._instr = instr + 1

        # Inlined _retire_floor(idx - rob_size): the ROB-entry bound.
        rob_idx = idx - self._rob_size
        if rob_idx <= 0:
            enter = idx / width
        else:
            window = self._window
            while len(window) > 1 and window[1][0] <= rob_idx:
                window.popleft()
            if not window or window[0][0] > rob_idx:
                floor = rob_idx / width
            else:
                base = window[0]
                floor = base[1] + (rob_idx - base[0]) / width
            enter = idx / width
            if floor > enter:
                enter = floor
        if dep and self._last_load_done > enter:
            enter = self._last_load_done
        latency, level = self._access(int(enter), pc, addr, is_write)
        if is_write:
            # Stores retire through the store buffer without waiting for
            # data; their bandwidth/occupancy effects are already modelled
            # by the hierarchy access above.
            retire += self._retire_step
            if enter > retire:
                retire = enter
        else:
            done = enter + latency
            retire += self._retire_step
            if done > retire:
                retire = done
            self._last_load_done = done
        self._retire = retire
        self._window.append((idx, retire))
        self._hits[level] += 1
        return True

    def run_ops(self, max_ops=None):
        """Execute up to ``max_ops`` memory operations (all, if ``None``).

        Semantically identical to calling :meth:`advance` in a loop, but
        the loop lives inside one frame with every hot attribute bound to
        a local — for single-core runs (where no other core interleaves)
        this removes the per-op method-call and attribute-access overhead,
        which is significant at millions of ops.  Returns the number of
        ops executed.
        """
        pos = self._pos
        n = self._n
        end = n if max_ops is None else min(n, pos + max_ops)
        if pos >= end:
            return 0
        ops = self._ops
        width = self._width
        rob_size = self._rob_size
        retire_step = self._retire_step
        access = self._access
        window = self._window
        window_append = window.append
        popleft = window.popleft
        hits = self._hits
        retire = self._retire
        instr = self._instr
        last_load_done = self._last_load_done
        start = pos
        while pos < end:
            gap, pc, addr, is_write, dep = ops[pos]
            pos += 1
            if gap:
                instr += gap
                retire += gap / width
            idx = instr
            instr += 1
            rob_idx = idx - rob_size
            if rob_idx <= 0:
                enter = idx / width
            else:
                while len(window) > 1 and window[1][0] <= rob_idx:
                    popleft()
                if not window or window[0][0] > rob_idx:
                    floor = rob_idx / width
                else:
                    base = window[0]
                    floor = base[1] + (rob_idx - base[0]) / width
                enter = idx / width
                if floor > enter:
                    enter = floor
            if dep and last_load_done > enter:
                enter = last_load_done
            latency, level = access(int(enter), pc, addr, is_write)
            if is_write:
                retire += retire_step
                if enter > retire:
                    retire = enter
            else:
                done = enter + latency
                retire += retire_step
                if done > retire:
                    retire = done
                last_load_done = done
            window_append((idx, retire))
            hits[level] += 1
        self._pos = pos
        self._retire = retire
        self._instr = instr
        self._last_load_done = last_load_done
        return pos - start

    def run_ops_until(self, horizon, max_ops=None, strict=False):
        """Execute memory ops until the retirement time passes ``horizon``.

        The multi-core scheduler's inner batch: the same localized loop as
        :meth:`run_ops`, but before each op it checks the core's current
        retirement time against ``horizon`` and stops once the core is no
        longer the globally minimal one.  With ``strict=False`` the core
        keeps running while ``time <= horizon``; with ``strict=True`` it
        stops at ``time >= horizon`` — the caller sets ``strict`` when the
        competing core wins ties (smaller core index), so the interleave
        order matches a per-op ``(time, index)`` heap exactly.

        ``max_ops`` additionally caps the batch (used to stop exactly on a
        warmup boundary).  Returns the number of ops executed; the op that
        *crosses* the horizon is executed (its cost was committed when the
        core was selected), matching per-op scheduling semantics.
        """
        pos = self._pos
        n = self._n
        end = n if max_ops is None else min(n, pos + max_ops)
        if pos >= end:
            return 0
        ops = self._ops
        width = self._width
        rob_size = self._rob_size
        retire_step = self._retire_step
        access = self._access
        window = self._window
        window_append = window.append
        popleft = window.popleft
        hits = self._hits
        retire = self._retire
        instr = self._instr
        last_load_done = self._last_load_done
        start = pos
        while pos < end:
            if retire > horizon or (strict and retire == horizon):
                break
            gap, pc, addr, is_write, dep = ops[pos]
            pos += 1
            if gap:
                instr += gap
                retire += gap / width
            idx = instr
            instr += 1
            rob_idx = idx - rob_size
            if rob_idx <= 0:
                enter = idx / width
            else:
                while len(window) > 1 and window[1][0] <= rob_idx:
                    popleft()
                if not window or window[0][0] > rob_idx:
                    floor = rob_idx / width
                else:
                    base = window[0]
                    floor = base[1] + (rob_idx - base[0]) / width
                enter = idx / width
                if floor > enter:
                    enter = floor
            if dep and last_load_done > enter:
                enter = last_load_done
            latency, level = access(int(enter), pc, addr, is_write)
            if is_write:
                retire += retire_step
                if enter > retire:
                    retire = enter
            else:
                done = enter + latency
                retire += retire_step
                if done > retire:
                    retire = done
                last_load_done = done
            window_append((idx, retire))
            hits[level] += 1
        self._pos = pos
        self._retire = retire
        self._instr = instr
        self._last_load_done = last_load_done
        return pos - start

    def run(self):
        """Run to completion; returns the final :class:`CoreStats`."""
        self.run_ops()
        return self.finalize()

    def mark_stats_start(self):
        """Start the measured region here (end of warmup).

        Microarchitectural state (caches, predictors, DRAM queues) is
        untouched; only the baseline for instruction/cycle/hit accounting
        moves, mirroring the warmup-then-measure methodology of the paper's
        simulator.
        """
        self._stats_floor = (self._instr, self._retire, tuple(self._hits))

    def finalize(self):
        """Close out stats without requiring the trace to be exhausted.

        Idempotent: the raw per-level hit counters stay untouched inside
        the execution; each call recomputes the measured-region view.
        """
        hits = self._hits
        floor = self._stats_floor
        if floor is None:
            stats = self.stats
            stats.instructions = self._instr
            stats.memory_ops = self._pos
            stats.cycles = max(self._retire, 1e-9)
            stats.l1_hits, stats.l2_hits, stats.llc_hits, stats.dram_hits = hits
            return stats
        floor_instr, floor_retire, floor_hits = floor
        return CoreStats(
            instructions=self._instr - floor_instr,
            memory_ops=self._pos,
            cycles=max(self._retire - floor_retire, 1e-9),
            l1_hits=hits[0] - floor_hits[0],
            l2_hits=hits[1] - floor_hits[1],
            llc_hits=hits[2] - floor_hits[2],
            dram_hits=hits[3] - floor_hits[3],
        )


# -- multi-core interleave drivers -------------------------------------------
#
# All three drivers execute one op at a time in global ``(retirement time,
# core index)`` order, so shared-LLC/DRAM contention resolves identically —
# their results are bit-for-bit interchangeable (pinned by the parity tests
# in tests/test_mp_interleave.py):
#
# - ``interleave_reference`` is the pre-batching per-op heap loop, kept as
#   the executable specification and the bench baseline;
# - ``interleave_two_level`` is the readable form of the batched scheduler:
#   pop the minimum-time core, drive it through ``run_ops_until``;
# - ``interleave_batched`` is the shipped hot path: the same two-level
#   schedule with the op body and the (tiny) schedule inlined into one
#   frame, eliminating the per-op method dispatch and heap traffic.
#
# ``stop_ops``/``on_stop`` implement warmup boundaries: ``on_stop(idx)``
# fires exactly once per core, at the moment core ``idx`` has executed
# ``stop_ops[idx]`` ops — *before* any further op executes, and immediately
# (before the first op) when the checkpoint is already met at entry, so a
# zero-op warmup behaves like the single-core path.  The callback may
# inspect ``executions[idx]`` (its ``time``/``ops``/stats); other cores'
# state is undefined while the drivers run.


def _fire_met_checkpoints(executions, stop_ops, on_stop):
    """Fire checkpoints already reached at entry; returns pending targets."""
    if stop_ops is None:
        return [None] * len(executions)
    pending = []
    for idx, ex in enumerate(executions):
        target = stop_ops[idx]
        if target is not None and ex.ops >= target:
            if on_stop is not None:
                on_stop(idx)
            target = None
        pending.append(target)
    return pending


def interleave_reference(executions, stop_ops=None, on_stop=None):
    """Per-op heap interleave (the pre-batching driver, executable spec).

    Advances whichever core has the smallest ``(time, index)`` by exactly
    one op per heap pop.  Kept for the parity tests and as the baseline leg
    of ``benchmarks/bench_mp_interleave.py``; production runs go through
    :func:`interleave_batched`.
    """
    pending = _fire_met_checkpoints(executions, stop_ops, on_stop)
    heap = [(ex.time, idx) for idx, ex in enumerate(executions) if not ex.done]
    heapq.heapify(heap)
    while heap:
        _, idx = heapq.heappop(heap)
        ex = executions[idx]
        if ex.advance():
            heapq.heappush(heap, (ex.time, idx))
        target = pending[idx]
        if target is not None and ex.ops >= target:
            pending[idx] = None
            if on_stop is not None:
                on_stop(idx)


def interleave_two_level(executions, stop_ops=None, on_stop=None):
    """Two-level batched interleave: pop min core, batch via run_ops_until.

    The readable form of the batched scheduler: the minimum-``(time,
    index)`` core runs in one :meth:`CoreExecution.run_ops_until` batch
    until its retirement time passes the second-smallest schedule entry
    (ties broken by core index, exactly as a per-op heap would) or its
    next warmup checkpoint.  Stopping a batch *early* can never reorder
    ops — the scheduler simply re-selects, degenerating to per-op order in
    the worst case — so correctness only requires never running *past* the
    horizon.
    """
    pending = _fire_met_checkpoints(executions, stop_ops, on_stop)
    sched = sorted((ex.time, idx) for idx, ex in enumerate(executions) if not ex.done)
    while sched:
        _, idx = sched.pop(0)
        ex = executions[idx]
        if sched:
            h_time, h_idx = sched[0]
            strict = idx > h_idx
        else:
            h_time = _INF
            strict = False
        target = pending[idx]
        max_ops = None if target is None else target - ex.ops
        ex.run_ops_until(h_time, max_ops=max_ops, strict=strict)
        if target is not None and ex.ops >= target:
            pending[idx] = None
            if on_stop is not None:
                on_stop(idx)
        if not ex.done:
            insort(sched, (ex.time, idx))


def interleave_batched(executions, stop_ops=None, on_stop=None):
    """Fused batched interleave: the production multi-core driver.

    Semantically identical to :func:`interleave_two_level` (and therefore
    to :func:`interleave_reference`), with the schedule and the op body
    held in one frame: per-core hot state lives in parallel lists, the
    schedule is a sorted list of at most ``len(executions)`` entries with
    inline insertion, and each batch runs the :meth:`CoreExecution.run_ops`
    loop body directly.  This removes the per-op heap push/pop and method
    dispatch the reference driver pays, which is the entire cost the MP
    driver adds over raw single-core ``run_ops`` execution (the memory
    hierarchy dominates everything else; see docs/engine.md).

    Couples to ``CoreExecution``'s slots by design, exactly like
    ``run_ops`` couples to ``advance`` — the parity tests pin all three
    loops to agree bit-for-bit.
    """
    pending = _fire_met_checkpoints(executions, stop_ops, on_stop)
    n_cores = len(executions)
    # Per-core loop-invariant bindings (one tuple unpack per batch) and
    # mutable scalars (unpacked per batch, written back after).
    const_l = [
        (
            ex._ops,
            ex._n,
            ex._width,
            ex._rob_size,
            ex._retire_step,
            ex._access,
            ex._window,
            ex._window.append,
            ex._window.popleft,
            ex._hits,
        )
        for ex in executions
    ]
    state_l = [
        [ex._pos, ex._retire, ex._instr, ex._last_load_done] for ex in executions
    ]

    def _write_back(idx):
        ex = executions[idx]
        ex._pos, ex._retire, ex._instr, ex._last_load_done = state_l[idx]

    nextafter = math.nextafter
    sched = sorted(
        (ex._retire, idx)
        for idx, ex in enumerate(executions)
        if ex._pos < ex._n
    )
    while sched:
        _, idx = sched.pop(0)
        if sched:
            h_time, h_idx = sched[0]
            # Single-comparison stop check: ``retire > threshold`` means
            # ``retire > h_time`` when this core wins ties (smaller index)
            # and ``retire >= h_time`` when it loses them — floats are
            # discrete, so stepping the threshold one ulp down turns the
            # strict comparison into the inclusive one.
            threshold = nextafter(h_time, 0.0) if idx > h_idx else h_time
        else:
            threshold = _MAX_FLOAT
        state = state_l[idx]
        pos, retire, instr, last_load_done = state
        (
            ops,
            n,
            width,
            rob_size,
            retire_step,
            access,
            window,
            window_append,
            popleft,
            hits,
        ) = const_l[idx]
        target = pending[idx]
        # A target beyond the trace never fires (ops cannot reach it) but
        # must not walk the batch past the last op.
        end = n if target is None else min(n, target)
        while pos < end:
            if retire > threshold:
                break
            gap, pc, addr, is_write, dep = ops[pos]
            pos += 1
            if gap:
                instr += gap
                retire += gap / width
            i_idx = instr
            instr += 1
            rob_idx = i_idx - rob_size
            if rob_idx <= 0:
                enter = i_idx / width
            else:
                while len(window) > 1 and window[1][0] <= rob_idx:
                    popleft()
                if not window or window[0][0] > rob_idx:
                    floor = rob_idx / width
                else:
                    base = window[0]
                    floor = base[1] + (rob_idx - base[0]) / width
                enter = i_idx / width
                if floor > enter:
                    enter = floor
            if dep and last_load_done > enter:
                enter = last_load_done
            latency, level = access(int(enter), pc, addr, is_write)
            if is_write:
                retire += retire_step
                if enter > retire:
                    retire = enter
            else:
                done = enter + latency
                retire += retire_step
                if done > retire:
                    retire = done
                last_load_done = done
            window_append((i_idx, retire))
            hits[level] += 1
        state[0] = pos
        state[1] = retire
        state[2] = instr
        state[3] = last_load_done
        if target is not None and pos >= target:
            pending[idx] = None
            if on_stop is not None:
                _write_back(idx)
                on_stop(idx)
        if pos < n:
            # Inline insertion: the schedule holds at most n_cores - 1
            # entries here, so a linear scan beats bisect's call overhead.
            entry = (retire, idx)
            at = 0
            for item in sched:
                if item < entry:
                    at += 1
                else:
                    break
            sched.insert(at, entry)
    for idx in range(n_cores):
        _write_back(idx)
