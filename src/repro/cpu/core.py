"""Analytic out-of-order core timing model.

This replaces the paper's in-house cycle-accurate simulator (Table 2:
4-wide OOO, 224-entry ROB) with a retirement-centric model that preserves
the three properties prefetcher evaluations hinge on:

1. **Bounded memory-level parallelism.** A memory operation can issue only
   once it has entered the ROB, i.e. no earlier than the retirement time of
   the instruction ``ROB_SIZE`` positions older.  Independent misses within
   one ROB window overlap; misses further apart serialize — exactly the
   mechanism that limits MLP in a real core.
2. **Dependent-load serialization.** A load flagged ``FLAG_DEP`` (pointer
   chase) additionally waits for the previous load's data.
3. **Retirement bandwidth.** Instructions retire at most ``width`` per
   cycle; a load blocks retirement until its data returns, so exposed miss
   latency directly lengthens execution.

IPC falls out as instructions / final retirement cycle.  Absolute numbers
differ from the paper's Skylake model; relative speed-ups (the paper's
reported metric) are what this model is built to preserve.
"""

from collections import deque
from dataclasses import dataclass, field

from repro.cpu.trace import FLAG_DEP, FLAG_WRITE


@dataclass(frozen=True)
class CoreModel:
    """Static core parameters (Table 2)."""

    width: int = 4
    rob_size: int = 224

    def __post_init__(self):
        if self.width <= 0 or self.rob_size <= 0:
            raise ValueError("width and rob_size must be positive")


@dataclass
class CoreStats:
    """Results of executing one trace on one core."""

    instructions: int = 0
    memory_ops: int = 0
    cycles: float = 0.0
    level_hits: dict = field(default_factory=lambda: {"L1": 0, "L2": 0, "LLC": 0, "DRAM": 0})

    @property
    def ipc(self):
        return self.instructions / self.cycles if self.cycles > 0 else 0.0


class CoreExecution:
    """Steppable execution of one trace against one memory hierarchy.

    The multi-core driver interleaves several of these by always advancing
    the one with the smallest current retirement time, so contention on the
    shared LLC/DRAM is resolved in near-global time order.
    """

    def __init__(self, model, trace, hierarchy):
        self.model = model
        self.hierarchy = hierarchy
        self.stats = CoreStats()
        self._gaps = trace.gaps.tolist()
        self._pcs = trace.pcs.tolist()
        self._addrs = trace.addrs.tolist()
        self._flags = trace.flags.tolist()
        self._pos = 0
        self._n = len(self._gaps)
        self._retire = 0.0
        self._instr = 0
        self._last_load_done = 0.0
        # (instruction index, retirement time) checkpoints at memory ops,
        # used to reconstruct the ROB-entry bound by linear interpolation.
        self._window = deque()

    @property
    def done(self):
        return self._pos >= self._n

    @property
    def time(self):
        """Current retirement time in cycles."""
        return self._retire

    def _retire_floor(self, idx):
        """Retirement time of instruction ``idx`` (ROB-entry bound)."""
        if idx <= 0:
            return 0.0
        window = self._window
        while len(window) > 1 and window[1][0] <= idx:
            window.popleft()
        if not window or window[0][0] > idx:
            # Before the first checkpoint retirement is purely
            # bandwidth-bound.
            return idx / self.model.width
        base_idx, base_time = window[0]
        return base_time + (idx - base_idx) / self.model.width

    def advance(self):
        """Execute the next memory operation (and its preceding gap).

        Returns ``False`` when the trace is exhausted.
        """
        if self._pos >= self._n:
            return False
        pos = self._pos
        self._pos = pos + 1
        width = self.model.width
        gap = self._gaps[pos]
        if gap:
            self._instr += gap
            self._retire += gap / width
        idx = self._instr
        self._instr += 1

        enter = max(idx / width, self._retire_floor(idx - self.model.rob_size))
        flags = self._flags[pos]
        is_write = bool(flags & FLAG_WRITE)
        if flags & FLAG_DEP:
            enter = max(enter, self._last_load_done)
        result = self.hierarchy.access(int(enter), self._pcs[pos], self._addrs[pos], is_write)
        done = enter + result.latency
        if is_write:
            # Stores retire through the store buffer without waiting for
            # data; their bandwidth/occupancy effects are already modelled
            # by the hierarchy access above.
            self._retire = max(self._retire + 1.0 / width, enter)
        else:
            self._retire = max(self._retire + 1.0 / width, done)
            self._last_load_done = done
        self._window.append((idx, self._retire))
        self.stats.memory_ops += 1
        self.stats.level_hits[result.hit_level] += 1
        return True

    def run(self):
        """Run to completion; returns the final :class:`CoreStats`."""
        while self.advance():
            pass
        return self.finalize()

    def mark_stats_start(self):
        """Start the measured region here (end of warmup).

        Microarchitectural state (caches, predictors, DRAM queues) is
        untouched; only the baseline for instruction/cycle/hit accounting
        moves, mirroring the warmup-then-measure methodology of the paper's
        simulator.
        """
        self._stats_floor = (self._instr, self._retire, dict(self.stats.level_hits))

    def finalize(self):
        """Close out stats without requiring the trace to be exhausted.

        Idempotent: the raw per-level hit counters stay untouched inside
        the execution; each call recomputes the measured-region view.
        """
        floor = getattr(self, "_stats_floor", None)
        if floor is None:
            self.stats.instructions = self._instr
            self.stats.cycles = max(self._retire, 1e-9)
            return self.stats
        floor_instr, floor_retire, floor_hits = floor
        out = CoreStats(
            instructions=self._instr - floor_instr,
            memory_ops=self.stats.memory_ops,
            cycles=max(self._retire - floor_retire, 1e-9),
            level_hits={
                level: count - floor_hits.get(level, 0)
                for level, count in self.stats.level_hits.items()
            },
        )
        return out
