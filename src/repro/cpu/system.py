"""System drivers: single-core and 4-core multi-programmed simulation.

Mirrors the paper's two configurations (Section 4):

- **ST** — one core, private L1/L2, 2MB LLC, one DDR4 channel.
- **MP** — four cores, private L1/L2 per core, shared 8MB LLC, two DDR4
  channels (same LLC capacity per core, half the bandwidth per core).

The multi-core driver interleaves per-core executions in global time order
(always advancing the core with the smallest retirement time) so cores
contend realistically for the shared LLC and DRAM — which is what makes
the accuracy-biased pattern matter in Section 5.4.  Scheduling runs
through the batched interleave driver
(:func:`repro.cpu.core.interleave_batched`); see docs/engine.md for the
design and the parity/performance story.
"""

import gc
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.cpu.core import (
    CoreExecution,
    CoreModel,
    interleave_batched,
    interleave_two_level,
)
from repro.memory.cache import Cache
from repro.constants import MP_LLC_BYTES, ST_LLC_BYTES
from repro.memory.dram import MP_DRAM, ST_DRAM, DramConfig, DramModel
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.memory.observed import ObservedHierarchy
from repro.observe.sinks import CoreScopedSink, LineSink
from repro.prefetchers.base import flush_training_with_cycle
from repro.prefetchers.registry import build_prefetcher
from repro.prefetchers.stride import PcStridePrefetcher


@dataclass(frozen=True)
class SystemConfig:
    """One simulated machine configuration."""

    hierarchy: HierarchyConfig = HierarchyConfig()
    dram: DramConfig = DramConfig()
    core: CoreModel = CoreModel()
    #: Registry name of the L2 prefetcher scheme ("none" for the baseline).
    l2_prefetcher: str = "none"
    #: Whether the baseline L1 PC-stride prefetcher is present (Table 2).
    l1_stride: bool = True
    record_pollution_victims: bool = False
    #: Opt-in event tracing (docs/observability.md).  Neither flag enters
    #: spec fingerprints — tracing never forks the content-addressed
    #: cache — and with both off the drivers build the plain
    #: uninstrumented hierarchy, so results stay bit-identical.
    trace_prefetch: bool = False
    trace_cache: bool = False
    #: Fraction of the trace used to warm caches/predictors before the
    #: measured region starts — the standard warmup-then-measure
    #: methodology of the paper's simulator.  Structures keep their state
    #: across the boundary; only statistics reset.
    warmup_frac: float = 0.25
    #: Hot-loop kernel: "auto" defers to the engine config (REPRO_KERNEL /
    #: ``repro run --kernel``, itself defaulting to the compiled kernel
    #: when a C toolchain is present and the pure-Python kernel otherwise);
    #: "py"/"compiled" force a flat kernel, "object" forces the original
    #: object-model loop.  All choices are bit-identical (pinned by
    #: tests/test_kernel_parity.py) and the field never enters spec
    #: fingerprints, so results share cache entries across kernels.
    #: Runs the kernels cannot express — event tracing on, pollution
    #: recording, non-registry replacement policies — silently use the
    #: object path regardless.
    kernel: str = "auto"

    @staticmethod
    def single_thread(l2_prefetcher="none", dram=None, llc_bytes=ST_LLC_BYTES, **kwargs):
        """The paper's ST configuration: 2MB LLC, single channel."""
        hierarchy = HierarchyConfig().scaled_llc(llc_bytes)
        return SystemConfig(
            hierarchy=hierarchy,
            dram=dram or ST_DRAM,
            l2_prefetcher=l2_prefetcher,
            **kwargs,
        )

    @staticmethod
    def multi_programmed(l2_prefetcher="none", dram=None, llc_bytes=MP_LLC_BYTES, **kwargs):
        """The paper's MP configuration: shared 8MB LLC, two channels."""
        hierarchy = HierarchyConfig().scaled_llc(llc_bytes)
        return SystemConfig(
            hierarchy=hierarchy,
            dram=dram or MP_DRAM,
            l2_prefetcher=l2_prefetcher,
            **kwargs,
        )


@dataclass
class RunResult:
    """Everything a single-core run produces."""

    ipc: float
    instructions: int
    cycles: float
    coverage: float
    accuracy: float
    pf_issued: int
    pf_useful: int
    pf_late: int
    pf_useless: int
    l2_demand_misses: int
    dram_reads: int
    bw_utilization_residency: list
    achieved_gbps: float
    level_hits: dict = field(default_factory=dict)
    pollution_events: list = field(default_factory=list)
    demand_log: list = field(default_factory=list)
    prefetch_fill_log: list = field(default_factory=list)

    @property
    def mpki(self):
        """L2 demand misses per kilo-instruction."""
        return 1000.0 * self.l2_demand_misses / self.instructions if self.instructions else 0.0

    def to_dict(self):
        """JSON-serializable summary (scalar metrics only, no logs)."""
        return {
            "ipc": self.ipc,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "coverage": self.coverage,
            "accuracy": self.accuracy,
            "mpki": self.mpki,
            "pf_issued": self.pf_issued,
            "pf_useful": self.pf_useful,
            "pf_late": self.pf_late,
            "pf_useless": self.pf_useless,
            "l2_demand_misses": self.l2_demand_misses,
            "dram_reads": self.dram_reads,
            "achieved_gbps": self.achieved_gbps,
            "bw_utilization_residency": list(self.bw_utilization_residency),
            "level_hits": dict(self.level_hits),
        }


@contextmanager
def _gc_paused():
    """Pause cyclic GC for the duration of a simulation run.

    The hot loop allocates heavily (cache lines, candidates, tuples) but
    creates no reference cycles, so generational collections only add
    pause time; refcounting reclaims everything promptly and any cycles
    are collected when GC resumes after the run.
    """
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _resolve_kernel(cfg):
    """Concrete hot-loop engine for this run: "object", "py" or "compiled".

    Resolution: an explicit ``SystemConfig.kernel`` wins; "auto" defers to
    the engine config (``repro run --kernel`` / ``REPRO_KERNEL``); a still
    unresolved "auto" picks "compiled" when a toolchain is present and
    "py" otherwise (never an error).  Runs the kernels cannot express —
    tracing, pollution recording, generic replacement policies — fall back
    to the object path whatever was selected; an *explicit* "compiled"
    without a working toolchain raises (loud), while "auto" degrades to
    "py" silently-but-gracefully.
    """
    choice = cfg.kernel
    if choice == "auto":
        # Lazy import: repro.cpu must stay importable without the engine.
        from repro.engine.config import current_config

        choice = current_config().kernel
    if choice == "object":
        return "object"
    if cfg.trace_prefetch or cfg.trace_cache or cfg.record_pollution_victims:
        return "object"
    from repro.kernel.state import VICTIM_MODES

    hier = cfg.hierarchy
    for level in (hier.l1, hier.l2, hier.llc):
        if level.replacement not in VICTIM_MODES:
            return "object"
    from repro.kernel import kernel_available
    from repro.kernel.execution import kernel_unavailable_reason

    if choice == "auto":
        if kernel_available():
            return "compiled"
        kind, reason = kernel_unavailable_reason()
        if kind == "build":
            # A missing toolchain degrades quietly; a broken build is a
            # bug and must not be mistaken for one.
            _warn_kernel_degraded(reason)
        return "py"
    if choice == "compiled" and not kernel_available():
        kind, reason = kernel_unavailable_reason()
        if kind == "toolchain":
            raise RuntimeError(
                "kernel='compiled' requested but no C toolchain is available "
                "(set kernel='py' or 'auto' to use the pure-Python kernel)"
            )
        raise RuntimeError(
            f"kernel='compiled' requested but the kernel failed to build: "
            f"{reason}"
        )
    return choice


_warned_kernel_degraded = False


def _warn_kernel_degraded(reason):
    global _warned_kernel_degraded
    if _warned_kernel_degraded:
        return
    _warned_kernel_degraded = True
    import warnings

    warnings.warn(
        f"compiled kernel unavailable, falling back to the pure-Python "
        f"kernel: {reason}",
        RuntimeWarning,
        stacklevel=3,
    )


def _resolve_sink(cfg, sink):
    """The sink a run should emit to, or ``None`` when tracing is off."""
    if not (cfg.trace_prefetch or cfg.trace_cache):
        return None
    if sink is not None:
        return sink
    import sys

    return LineSink(sys.stderr)


def _make_hierarchy(cfg, dram, llc, l1_pf, l2_pf, sink):
    """Build the hierarchy for one core: plain when nothing observes it.

    The split class is the no-overhead guarantee: with tracing off and no
    pollution recording this returns the exact pre-instrumentation
    :class:`MemoryHierarchy`, so the hot path carries zero new branches
    (asserted by ``benchmarks/bench_observe_overhead.py``).
    """
    if sink is None and not cfg.record_pollution_victims:
        return MemoryHierarchy(
            config=cfg.hierarchy,
            dram=dram,
            llc=llc,
            l1_prefetcher=l1_pf,
            l2_prefetcher=l2_pf,
        )
    return ObservedHierarchy(
        config=cfg.hierarchy,
        dram=dram,
        llc=llc,
        l1_prefetcher=l1_pf,
        l2_prefetcher=l2_pf,
        sink=sink,
        trace_prefetch=cfg.trace_prefetch,
        trace_cache=cfg.trace_cache,
        record_pollution_victims=cfg.record_pollution_victims,
    )


def _result_from(execution, hierarchy, dram):
    stats = execution.finalize()
    coverage, accuracy, _base = hierarchy.coverage_accuracy()
    pf = hierarchy.pf_stats
    return RunResult(
        ipc=stats.ipc,
        instructions=stats.instructions,
        cycles=stats.cycles,
        coverage=coverage,
        accuracy=accuracy,
        pf_issued=pf.issued,
        pf_useful=pf.useful,
        pf_late=pf.late,
        pf_useless=pf.useless,
        l2_demand_misses=hierarchy.l2.demand_misses,
        dram_reads=dram.reads,
        bw_utilization_residency=dram.monitor.bucket_residency(),
        achieved_gbps=dram.achieved_gbps(stats.cycles),
        level_hits=dict(stats.level_hits),
        pollution_events=list(hierarchy.pollution_events),
        demand_log=list(hierarchy.demand_log),
        prefetch_fill_log=list(hierarchy.prefetch_fill_log),
    )


class System:
    """Single-core trace-driven simulation.

    ``sink`` receives trace events when the config enables
    ``trace_prefetch``/``trace_cache`` (stderr lines when omitted); it is
    deliberately *not* part of :class:`SystemConfig` — where the events
    go is an observation concern, not part of the simulated machine.
    """

    def __init__(self, config: SystemConfig = None, sink=None):
        self.config = config or SystemConfig()
        self.sink = sink

    def run(self, trace):
        """Simulate ``trace`` end to end; returns a :class:`RunResult`."""
        cfg = self.config
        kind = _resolve_kernel(cfg)
        if kind != "object":
            return self._run_kernel(trace, kind)
        dram = DramModel(cfg.dram)
        l1_pf = PcStridePrefetcher() if cfg.l1_stride else None
        l2_pf = build_prefetcher(cfg.l2_prefetcher, dram)
        sink = _resolve_sink(cfg, self.sink)
        hierarchy = _make_hierarchy(cfg, dram, None, l1_pf, l2_pf, sink)
        execution = CoreExecution(cfg.core, trace, hierarchy)
        warmup_ops = int(len(trace) * cfg.warmup_frac)
        with _gc_paused():
            execution.run_ops(warmup_ops)
            execution.mark_stats_start()
            hierarchy.reset_stats()
            dram.reset_stats(execution.time)
            execution.run_ops()
        result = _result_from(execution, hierarchy, dram)
        # End-of-run training drain (after stats capture: the drain's
        # bandwidth-bucket queries at the final cycle must not perturb the
        # reported residency).  Pages still resident in e.g. DSPatch's PB
        # learn under the run-final bucket, leaving the prefetcher state
        # consistent for post-run inspection.
        if l2_pf is not None:
            flush_training_with_cycle(l2_pf, int(execution.time))
        return result

    def _run_kernel(self, trace, kind):
        """The same run over a flat kernel (bit-identical; see repro.kernel).

        The object model is built exactly as the object path builds it,
        packed into flat state, driven by the selected kernel, and written
        back before results are assembled — so everything downstream of
        the hot loop (stats assembly, training drain, post-run inspection)
        reads the very objects it always read.
        """
        from repro.kernel.execution import KernelBandwidth, KernelDomain, KernelExecution

        cfg = self.config
        dram = DramModel(cfg.dram)
        # Bandwidth-aware schemes must read the *live* monitor, which lives
        # in the kernel working form while the run is active.
        bandwidth = KernelBandwidth(dram)
        l1_pf = PcStridePrefetcher() if cfg.l1_stride else None
        l2_pf = build_prefetcher(cfg.l2_prefetcher, bandwidth)
        hierarchy = MemoryHierarchy(
            config=cfg.hierarchy,
            dram=dram,
            llc=None,
            l1_prefetcher=l1_pf,
            l2_prefetcher=l2_pf,
        )
        execution = CoreExecution(cfg.core, trace, hierarchy)
        domain = KernelDomain(hierarchy.llc, dram, kind)
        bandwidth.attach(domain)
        kex = KernelExecution(execution, trace, domain)
        warmup_ops = int(len(trace) * cfg.warmup_frac)
        with _gc_paused():
            kex.run_ops(warmup_ops)
            kex.mark_stats_start()
            kex.reset_hierarchy_stats()
            kex.reset_dram_stats(kex.time)
            kex.run_ops()
        # The hierarchy/execution objects are locals of this method and the
        # result reads only counters, so skip rebuilding cache contents.
        kex.write_back(contents=False)
        domain.write_back(contents=False)
        bandwidth.release()
        result = _result_from(execution, hierarchy, dram)
        if l2_pf is not None:
            flush_training_with_cycle(l2_pf, int(execution.time))
        return result


@dataclass
class MultiProgramResult:
    """Results of one multi-programmed mix."""

    per_core: list  # RunResult per core
    #: Global-time span of the measured region: the latest per-core
    #: end-of-run retirement time minus the shared stats-reset time (the
    #: moment the *first* core crossed its warmup boundary).  Unlike the
    #: per-core ``cycles`` fields — measured-region spans that each start
    #: at that core's own warmup boundary — this is one consistent wall
    #: span for the whole mix (what a shared-resource rate like aggregate
    #: DRAM bandwidth should be divided by).
    global_cycles: float

    @property
    def total_cycles(self):
        """Deprecated alias for :attr:`global_cycles`.

        The pre-batching driver reported ``max(core.cycles)``, which mixed
        per-core measured-region spans starting at different warmup
        boundaries; the field now aliases the consistent global span.
        """
        return self.global_cycles

    def weighted_speedup(self, alone_ipcs):
        """Sum of per-core IPC over the same workload's alone-IPC."""
        if len(alone_ipcs) != len(self.per_core):
            raise ValueError("need one alone-IPC per core")
        return sum(
            core.ipc / alone if alone > 0 else 0.0
            for core, alone in zip(self.per_core, alone_ipcs)
        )


class MultiCoreSystem:
    """Four (or N) cores sharing an LLC and DRAM."""

    def __init__(self, config: SystemConfig = None, num_cores=4, sink=None):
        self.config = config or SystemConfig.multi_programmed()
        self.num_cores = num_cores
        self.sink = sink

    def run(self, traces):
        """Simulate one trace per core; returns :class:`MultiProgramResult`."""
        if len(traces) != self.num_cores:
            raise ValueError(f"need exactly {self.num_cores} traces")
        cfg = self.config
        kind = _resolve_kernel(cfg)
        if kind != "object":
            return self._run_kernel(traces, kind)
        dram = DramModel(cfg.dram)
        shared_llc = Cache(cfg.hierarchy.llc)
        sink = _resolve_sink(cfg, self.sink)
        executions = []
        hierarchies = []
        for core_idx, trace in enumerate(traces):
            l1_pf = PcStridePrefetcher() if cfg.l1_stride else None
            l2_pf = build_prefetcher(cfg.l2_prefetcher, dram)
            core_sink = None if sink is None else CoreScopedSink(sink, core_idx)
            hierarchy = _make_hierarchy(cfg, dram, shared_llc, l1_pf, l2_pf, core_sink)
            hierarchies.append(hierarchy)
            executions.append(CoreExecution(cfg.core, trace, hierarchy))

        # Advance cores in global time order through the batched interleave
        # driver.  Each core crosses its own warmup boundary after
        # warmup_frac of its trace — including *before the first op* when
        # the warmup is zero ops, matching the single-core path; shared
        # DRAM stats reset when the first core crosses (per-core results
        # use private hierarchy counters, so the shared reset point is not
        # critical).
        warmup_ops = [int(len(trace) * cfg.warmup_frac) for trace in traces]
        stats_reset_time = None

        def _cross_warmup(idx):
            nonlocal stats_reset_time
            ex = executions[idx]
            ex.mark_stats_start()
            hierarchies[idx].reset_stats()
            if stats_reset_time is None:
                stats_reset_time = ex.time
                dram.reset_stats(ex.time)

        with _gc_paused():
            interleave_batched(executions, warmup_ops, _cross_warmup)

        per_core = [
            _result_from(ex, hier, dram) for ex, hier in zip(executions, hierarchies)
        ]
        # End-of-run training drain, after stats capture (see System.run).
        for ex, hier in zip(executions, hierarchies):
            if hier.l2_prefetcher is not None:
                flush_training_with_cycle(hier.l2_prefetcher, int(ex.time))
        end_time = max((ex.time for ex in executions), default=0.0)
        if stats_reset_time is None:
            stats_reset_time = 0.0
        global_cycles = max(end_time - stats_reset_time, 0.0)
        return MultiProgramResult(per_core=per_core, global_cycles=global_cycles)

    def _run_kernel(self, traces, kind):
        """The same mix over flat kernels, scheduled by the public-API
        batched driver (:func:`interleave_two_level` — parity-pinned
        against :func:`interleave_batched`); bit-identical to the object
        path.
        """
        from repro.kernel.execution import KernelBandwidth, KernelDomain, KernelExecution

        cfg = self.config
        dram = DramModel(cfg.dram)
        shared_llc = Cache(cfg.hierarchy.llc)
        domain = KernelDomain(shared_llc, dram, kind)
        kernel_execs = []
        hierarchies = []
        bandwidths = []
        for trace in traces:
            l1_pf = PcStridePrefetcher() if cfg.l1_stride else None
            bandwidth = KernelBandwidth(dram)
            bandwidth.attach(domain)
            bandwidths.append(bandwidth)
            l2_pf = build_prefetcher(cfg.l2_prefetcher, bandwidth)
            hierarchy = MemoryHierarchy(
                config=cfg.hierarchy,
                dram=dram,
                llc=shared_llc,
                l1_prefetcher=l1_pf,
                l2_prefetcher=l2_pf,
            )
            hierarchies.append(hierarchy)
            execution = CoreExecution(cfg.core, trace, hierarchy)
            kernel_execs.append(KernelExecution(execution, trace, domain))

        warmup_ops = [int(len(trace) * cfg.warmup_frac) for trace in traces]
        stats_reset_time = None

        def _cross_warmup(idx):
            nonlocal stats_reset_time
            kex = kernel_execs[idx]
            kex.mark_stats_start()
            kex.reset_hierarchy_stats()
            if stats_reset_time is None:
                stats_reset_time = kex.time
                kex.reset_dram_stats(kex.time)

        with _gc_paused():
            interleave_two_level(kernel_execs, warmup_ops, _cross_warmup)

        # Per-core objects are locals here and results read only counters,
        # so skip rebuilding cache contents.
        for kex in kernel_execs:
            kex.write_back(contents=False)
        domain.write_back(contents=False)
        for bandwidth in bandwidths:
            bandwidth.release()
        per_core = [
            _result_from(kex.execution, hier, dram)
            for kex, hier in zip(kernel_execs, hierarchies)
        ]
        for kex, hier in zip(kernel_execs, hierarchies):
            if hier.l2_prefetcher is not None:
                flush_training_with_cycle(hier.l2_prefetcher, int(kex.time))
        end_time = max((kex.time for kex in kernel_execs), default=0.0)
        if stats_reset_time is None:
            stats_reset_time = 0.0
        global_cycles = max(end_time - stats_reset_time, 0.0)
        return MultiProgramResult(per_core=per_core, global_cycles=global_cycles)
