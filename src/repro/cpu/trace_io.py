"""Text trace interchange format.

The binary ``.npz`` round-trip lives on :class:`~repro.cpu.trace.Trace`
itself; this module adds a line-oriented text format for interop with
external tools (spreadsheets, awk, other simulators' converters):

    # repro-trace v1
    # gap pc addr flags
    100 0x400000 0x12345040 0
    63 0x400004 0x12345080 W
    ...

One record per line: the instruction gap (decimal), the PC and byte
address (hex), and a flag field that is ``0`` or any combination of ``W``
(write) and ``D`` (address-dependent load).  Lines starting with ``#``
are comments.  The format is deliberately lossless with respect to
:class:`~repro.cpu.trace.Trace`.
"""

import numpy as np

from repro.cpu.trace import FLAG_DEP, FLAG_WRITE, Trace

_HEADER = "# repro-trace v1"


class TraceFormatError(ValueError):
    """Raised when a text trace file cannot be parsed."""


def _flags_to_text(flags):
    if not flags:
        return "0"
    out = ""
    if flags & FLAG_WRITE:
        out += "W"
    if flags & FLAG_DEP:
        out += "D"
    return out


def _flags_from_text(text, lineno):
    if text == "0":
        return 0
    flags = 0
    for ch in text:
        if ch == "W":
            flags |= FLAG_WRITE
        elif ch == "D":
            flags |= FLAG_DEP
        else:
            raise TraceFormatError(f"line {lineno}: unknown flag {ch!r}")
    return flags


def save_text(trace, path):
    """Write ``trace`` to ``path`` in the v1 text format."""
    with open(path, "w") as f:
        f.write(_HEADER + "\n")
        f.write("# gap pc addr flags\n")
        for gap, pc, addr, flags in trace:
            f.write(f"{gap} 0x{pc:x} 0x{addr:x} {_flags_to_text(flags)}\n")


def load_text(path):
    """Parse a v1 text trace file back into a :class:`Trace`."""
    gaps, pcs, addrs, flags = [], [], [], []
    with open(path) as f:
        first = f.readline().rstrip("\n")
        if first != _HEADER:
            raise TraceFormatError(f"missing header line {_HEADER!r}, got {first!r}")
        for lineno, line in enumerate(f, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 4:
                raise TraceFormatError(f"line {lineno}: expected 4 fields, got {len(parts)}")
            try:
                gaps.append(int(parts[0]))
                pcs.append(int(parts[1], 16))
                addrs.append(int(parts[2], 16))
            except ValueError as exc:
                raise TraceFormatError(f"line {lineno}: {exc}") from None
            flags.append(_flags_from_text(parts[3], lineno))
    return Trace(
        np.array(gaps, dtype=np.int64),
        np.array(pcs, dtype=np.int64),
        np.array(addrs, dtype=np.int64),
        np.array(flags, dtype=np.int64),
    )
