"""Program trace representation.

A trace is a sequence of memory operations, each annotated with:

- ``gap`` — the number of non-memory instructions retired since the
  previous memory operation (controls memory intensity / MPKI),
- ``pc`` — the program counter of the memory instruction (the signature
  input for PC-based prefetchers),
- ``addr`` — the byte address touched,
- ``flags`` — :data:`FLAG_WRITE` for stores, :data:`FLAG_DEP` for loads
  whose address depends on the previous load (pointer chasing); dependent
  loads cannot overlap with their producer in the core model.

Traces are stored as parallel numpy arrays for compact generation and fast
iteration, and can round-trip through ``.npz`` files.
"""

import numpy as np

FLAG_WRITE = 1
FLAG_DEP = 2


class Trace:
    """An immutable sequence of memory operations with instruction gaps."""

    def __init__(self, gaps, pcs, addrs, flags):
        self.gaps = np.asarray(gaps, dtype=np.int64)
        self.pcs = np.asarray(pcs, dtype=np.int64)
        self.addrs = np.asarray(addrs, dtype=np.int64)
        flags = np.asarray(flags)
        if flags.dtype != np.uint8:
            # Compatibility: traces written before the uint8 narrowing
            # carry int64 flags; accept any integer encoding whose values
            # fit, and reject (rather than silently wrap) anything else.
            if flags.size and (
                (flags < 0) | (flags > np.iinfo(np.uint8).max)
            ).any():
                raise ValueError("trace flags must fit in uint8")
            flags = flags.astype(np.uint8)
        self.flags = flags
        n = len(self.gaps)
        if not (len(self.pcs) == len(self.addrs) == len(self.flags) == n):
            raise ValueError("trace arrays must have equal length")
        if n and (self.gaps < 0).any():
            raise ValueError("instruction gaps must be non-negative")

    def __len__(self):
        return len(self.gaps)

    def __iter__(self):
        return zip(
            self.gaps.tolist(), self.pcs.tolist(), self.addrs.tolist(), self.flags.tolist()
        )

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return Trace(self.gaps[idx], self.pcs[idx], self.addrs[idx], self.flags[idx])
        return (
            int(self.gaps[idx]),
            int(self.pcs[idx]),
            int(self.addrs[idx]),
            int(self.flags[idx]),
        )

    @property
    def instructions(self):
        """Total instruction count (memory ops + gaps)."""
        return int(self.gaps.sum()) + len(self)

    def mpki_upper_bound(self):
        """Memory ops per kilo-instruction (an upper bound on miss MPKI)."""
        instrs = self.instructions
        return 1000.0 * len(self) / instrs if instrs else 0.0

    @classmethod
    def from_records(cls, records):
        """Build a trace from an iterable of (gap, pc, addr, flags) tuples."""
        records = list(records)
        if not records:
            return cls([], [], [], [])
        gaps, pcs, addrs, flags = zip(*records)
        return cls(gaps, pcs, addrs, flags)

    @classmethod
    def concat(cls, traces):
        """Concatenate traces in order."""
        traces = [t for t in traces if len(t)]
        if not traces:
            return cls([], [], [], [])
        return cls(
            np.concatenate([t.gaps for t in traces]),
            np.concatenate([t.pcs for t in traces]),
            np.concatenate([t.addrs for t in traces]),
            np.concatenate([t.flags for t in traces]),
        )

    def rebase(self, byte_offset):
        """Return a copy with every address shifted by ``byte_offset``.

        Multi-programmed mixes run copies of the same workload on several
        cores; rebasing gives each copy its own physical address space, as
        distinct processes would have.
        """
        return Trace(self.gaps, self.pcs, self.addrs + int(byte_offset), self.flags)

    def save(self, path):
        """Persist to an ``.npz`` file."""
        np.savez_compressed(
            path, gaps=self.gaps, pcs=self.pcs, addrs=self.addrs, flags=self.flags
        )

    @classmethod
    def load(cls, path):
        """Load a trace previously written by :meth:`save`.

        Files written before flags narrowed to ``uint8`` carry int64
        flags; the constructor converts them (and rejects values that do
        not fit) so old ``.npz`` archives keep loading.
        """
        with np.load(path) as data:
            return cls(data["gaps"], data["pcs"], data["addrs"], data["flags"])


class TraceBuilder:
    """Incremental trace construction for the workload generators.

    Storage is chunked: bulk emissions (:meth:`extend_arrays`) keep their
    NumPy arrays as-is, scalar :meth:`append` calls accumulate in a small
    pending buffer, and :meth:`build` concatenates everything exactly
    once.  The array-native generators therefore never round-trip their
    data through per-element Python ``int`` conversions.
    """

    def __init__(self):
        self._chunks = []  # (gaps, pcs, addrs, flags) array quadruples
        self._pending = ([], [], [], [])  # scalar-append buffer
        self._n = 0

    def __len__(self):
        return self._n

    def append(self, gap, pc, addr, write=False, dep=False):
        """Add one memory operation preceded by ``gap`` plain instructions."""
        if gap < 0:
            raise ValueError("gap must be non-negative")
        gaps, pcs, addrs, flags = self._pending
        gaps.append(int(gap))
        pcs.append(int(pc))
        addrs.append(int(addr))
        flags.append((FLAG_WRITE if write else 0) | (FLAG_DEP if dep else 0))
        self._n += 1

    def _flush_pending(self):
        gaps, pcs, addrs, flags = self._pending
        if gaps:
            self._chunks.append(
                (
                    np.asarray(gaps, dtype=np.int64),
                    np.asarray(pcs, dtype=np.int64),
                    np.asarray(addrs, dtype=np.int64),
                    np.asarray(flags, dtype=np.uint8),
                )
            )
            self._pending = ([], [], [], [])

    def extend_arrays(self, gaps, pcs, addrs, flags=None):
        """Bulk-append parallel arrays (the vectorized generators' path).

        The arrays are kept as NumPy chunks (dtype-coerced, no Python
        round-trip) and concatenated once at :meth:`build`.  Callers must
        not mutate the arrays they pass in afterwards.
        """
        gaps = np.asarray(gaps, dtype=np.int64)
        pcs = np.asarray(pcs, dtype=np.int64)
        addrs = np.asarray(addrs, dtype=np.int64)
        n = len(gaps)
        if flags is None:
            flags = np.zeros(n, dtype=np.uint8)
        else:
            flags = np.asarray(flags, dtype=np.uint8)
        if not (len(pcs) == len(addrs) == len(flags) == n):
            raise ValueError("bulk arrays must have equal length")
        if n == 0:
            return
        self._flush_pending()
        self._chunks.append((gaps, pcs, addrs, flags))
        self._n += n

    def build(self):
        """Finalize into an immutable :class:`Trace` (one concatenation)."""
        self._flush_pending()
        chunks = self._chunks
        if not chunks:
            return Trace([], [], [], [])
        if len(chunks) == 1:
            gaps, pcs, addrs, flags = chunks[0]
        else:
            gaps = np.concatenate([c[0] for c in chunks])
            pcs = np.concatenate([c[1] for c in chunks])
            addrs = np.concatenate([c[2] for c in chunks])
            flags = np.concatenate([c[3] for c in chunks])
            self._chunks = [(gaps, pcs, addrs, flags)]
        return Trace(gaps, pcs, addrs, flags)
