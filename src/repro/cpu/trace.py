"""Program trace representation.

A trace is a sequence of memory operations, each annotated with:

- ``gap`` — the number of non-memory instructions retired since the
  previous memory operation (controls memory intensity / MPKI),
- ``pc`` — the program counter of the memory instruction (the signature
  input for PC-based prefetchers),
- ``addr`` — the byte address touched,
- ``flags`` — :data:`FLAG_WRITE` for stores, :data:`FLAG_DEP` for loads
  whose address depends on the previous load (pointer chasing); dependent
  loads cannot overlap with their producer in the core model.

Traces are stored as parallel numpy arrays for compact generation and fast
iteration, and can round-trip through ``.npz`` files.
"""

import numpy as np

FLAG_WRITE = 1
FLAG_DEP = 2


class Trace:
    """An immutable sequence of memory operations with instruction gaps."""

    def __init__(self, gaps, pcs, addrs, flags):
        self.gaps = np.asarray(gaps, dtype=np.int64)
        self.pcs = np.asarray(pcs, dtype=np.int64)
        self.addrs = np.asarray(addrs, dtype=np.int64)
        self.flags = np.asarray(flags, dtype=np.int64)
        n = len(self.gaps)
        if not (len(self.pcs) == len(self.addrs) == len(self.flags) == n):
            raise ValueError("trace arrays must have equal length")
        if n and (self.gaps < 0).any():
            raise ValueError("instruction gaps must be non-negative")

    def __len__(self):
        return len(self.gaps)

    def __iter__(self):
        return zip(
            self.gaps.tolist(), self.pcs.tolist(), self.addrs.tolist(), self.flags.tolist()
        )

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return Trace(self.gaps[idx], self.pcs[idx], self.addrs[idx], self.flags[idx])
        return (
            int(self.gaps[idx]),
            int(self.pcs[idx]),
            int(self.addrs[idx]),
            int(self.flags[idx]),
        )

    @property
    def instructions(self):
        """Total instruction count (memory ops + gaps)."""
        return int(self.gaps.sum()) + len(self)

    def mpki_upper_bound(self):
        """Memory ops per kilo-instruction (an upper bound on miss MPKI)."""
        instrs = self.instructions
        return 1000.0 * len(self) / instrs if instrs else 0.0

    @classmethod
    def from_records(cls, records):
        """Build a trace from an iterable of (gap, pc, addr, flags) tuples."""
        records = list(records)
        if not records:
            return cls([], [], [], [])
        gaps, pcs, addrs, flags = zip(*records)
        return cls(gaps, pcs, addrs, flags)

    @classmethod
    def concat(cls, traces):
        """Concatenate traces in order."""
        traces = [t for t in traces if len(t)]
        if not traces:
            return cls([], [], [], [])
        return cls(
            np.concatenate([t.gaps for t in traces]),
            np.concatenate([t.pcs for t in traces]),
            np.concatenate([t.addrs for t in traces]),
            np.concatenate([t.flags for t in traces]),
        )

    def rebase(self, byte_offset):
        """Return a copy with every address shifted by ``byte_offset``.

        Multi-programmed mixes run copies of the same workload on several
        cores; rebasing gives each copy its own physical address space, as
        distinct processes would have.
        """
        return Trace(self.gaps, self.pcs, self.addrs + int(byte_offset), self.flags)

    def save(self, path):
        """Persist to an ``.npz`` file."""
        np.savez_compressed(
            path, gaps=self.gaps, pcs=self.pcs, addrs=self.addrs, flags=self.flags
        )

    @classmethod
    def load(cls, path):
        """Load a trace previously written by :meth:`save`."""
        with np.load(path) as data:
            return cls(data["gaps"], data["pcs"], data["addrs"], data["flags"])


class TraceBuilder:
    """Incremental trace construction for the workload generators."""

    def __init__(self):
        self._gaps = []
        self._pcs = []
        self._addrs = []
        self._flags = []

    def __len__(self):
        return len(self._gaps)

    def append(self, gap, pc, addr, write=False, dep=False):
        """Add one memory operation preceded by ``gap`` plain instructions."""
        if gap < 0:
            raise ValueError("gap must be non-negative")
        self._gaps.append(int(gap))
        self._pcs.append(int(pc))
        self._addrs.append(int(addr))
        self._flags.append((FLAG_WRITE if write else 0) | (FLAG_DEP if dep else 0))

    def extend_arrays(self, gaps, pcs, addrs, flags=None):
        """Bulk-append parallel arrays (used by vectorized generators)."""
        n = len(gaps)
        if flags is None:
            flags = [0] * n
        if not (len(pcs) == len(addrs) == len(flags) == n):
            raise ValueError("bulk arrays must have equal length")
        self._gaps.extend(int(g) for g in gaps)
        self._pcs.extend(int(p) for p in pcs)
        self._addrs.extend(int(a) for a in addrs)
        self._flags.extend(int(f) for f in flags)

    def build(self):
        """Finalize into an immutable :class:`Trace`."""
        return Trace(self._gaps, self._pcs, self._addrs, self._flags)
