"""CPU substrate: trace format, core timing model, and system drivers."""

from repro.cpu.core import CoreExecution, CoreModel, CoreStats
from repro.cpu.system import (
    MultiCoreSystem,
    MultiProgramResult,
    RunResult,
    System,
    SystemConfig,
)
from repro.cpu.trace import FLAG_DEP, FLAG_WRITE, Trace, TraceBuilder

__all__ = [
    "CoreExecution",
    "CoreModel",
    "CoreStats",
    "FLAG_DEP",
    "FLAG_WRITE",
    "MultiCoreSystem",
    "MultiProgramResult",
    "RunResult",
    "System",
    "SystemConfig",
    "Trace",
    "TraceBuilder",
]
