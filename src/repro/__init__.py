"""repro — a full reproduction of *DSPatch: Dual Spatial Pattern Prefetcher*
(Bera, Nori, Mutlu, Subramoney — MICRO 2019).

The package bundles:

- :mod:`repro.core` — DSPatch itself (Page Buffer, Signature Prediction
  Table, anchored bit-patterns, dual-pattern modulation and the
  bandwidth-driven selection of Figure 10), plus its ablation variants;
- :mod:`repro.prefetchers` — every baseline the paper evaluates (PC-stride,
  SPP/eSPP, BOP/eBOP, SMS, AMPM, a streaming prefetcher) and adjunct
  composition;
- :mod:`repro.memory` — the simulated memory system of Table 2 (three
  cache levels, MSHRs, prefetch-aware LLC replacement, banked DDR4 DRAM
  with the Section 3.2 bandwidth monitor);
- :mod:`repro.cpu` — the trace format, an analytic out-of-order core
  timing model, and single-/multi-core system drivers;
- :mod:`repro.workloads` — 75 seeded synthetic workloads in the paper's
  9 categories, plus multi-programmed mix construction;
- :mod:`repro.metrics` — speedup/coverage aggregation and the appendix's
  pollution classification;
- :mod:`repro.experiments` — one driver per paper figure/table.

Quickstart::

    from repro import System, SystemConfig, build_trace

    trace = build_trace("cloud.bigbench", length=20000)
    baseline = System(SystemConfig.single_thread("none")).run(trace)
    dspatch = System(SystemConfig.single_thread("dspatch+spp")).run(trace)
    print(f"speedup: {dspatch.ipc / baseline.ipc - 1:+.1%}")
"""

from repro.constants import LINE_SIZE, PAGE_SIZE
from repro.core import DSPatch, DSPatchConfig
from repro.engine import (
    InMemoryBackend,
    LocalDirBackend,
    MixSpec,
    RunSpec,
    Session,
    StoreBackend,
    TieredBackend,
    TraceSpec,
    default_session,
)
from repro.core.variants import (
    AlwaysCovP,
    ModCovP,
    NoAnchorDSPatch,
    SingleTriggerDSPatch,
)
from repro.cpu import (
    MultiCoreSystem,
    MultiProgramResult,
    RunResult,
    System,
    SystemConfig,
    Trace,
    TraceBuilder,
)
from repro.memory import (
    BandwidthMonitor,
    Cache,
    CacheConfig,
    DramConfig,
    DramModel,
    FixedBandwidth,
    HierarchyConfig,
    MemoryHierarchy,
)
from repro.prefetchers import (
    AMPM,
    BOP,
    EBOP,
    ESPP,
    SMS,
    SPP,
    CompositePrefetcher,
    NullPrefetcher,
    PcStridePrefetcher,
    StreamPrefetcher,
    available_prefetchers,
    build_prefetcher,
)
from repro.prefetchers.bingo import Bingo
from repro.prefetchers.markov import MarkovPrefetcher
from repro.prefetchers.nextline import NextLinePrefetcher
from repro.prefetchers.throttle import FeedbackThrottle, ThrottleConfig
from repro.prefetchers.vldp import VLDP
from repro.workloads.analysis import analyze_trace
from repro.workloads import (
    CATEGORIES,
    MEMORY_INTENSIVE,
    WORKLOADS,
    build_trace,
    workloads_in_category,
)

__version__ = "1.0.0"

__all__ = [
    "AMPM",
    "AlwaysCovP",
    "BOP",
    "BandwidthMonitor",
    "Bingo",
    "CATEGORIES",
    "Cache",
    "CacheConfig",
    "CompositePrefetcher",
    "DSPatch",
    "DSPatchConfig",
    "DramConfig",
    "DramModel",
    "EBOP",
    "ESPP",
    "FeedbackThrottle",
    "FixedBandwidth",
    "HierarchyConfig",
    "InMemoryBackend",
    "LINE_SIZE",
    "LocalDirBackend",
    "MEMORY_INTENSIVE",
    "MarkovPrefetcher",
    "MemoryHierarchy",
    "MixSpec",
    "ModCovP",
    "MultiCoreSystem",
    "MultiProgramResult",
    "NextLinePrefetcher",
    "NoAnchorDSPatch",
    "NullPrefetcher",
    "PAGE_SIZE",
    "PcStridePrefetcher",
    "RunResult",
    "RunSpec",
    "SMS",
    "SPP",
    "Session",
    "SingleTriggerDSPatch",
    "StoreBackend",
    "StreamPrefetcher",
    "System",
    "SystemConfig",
    "ThrottleConfig",
    "TieredBackend",
    "Trace",
    "TraceBuilder",
    "TraceSpec",
    "VLDP",
    "WORKLOADS",
    "analyze_trace",
    "available_prefetchers",
    "build_prefetcher",
    "build_trace",
    "default_session",
    "workloads_in_category",
]
