"""Multi-programmed workload mixes (Section 4.2).

- *Homogeneous* mixes: four copies of one memory-intensive workload, one
  per core (42 mixes — one per high-MPKI workload).
- *Heterogeneous* mixes: four workloads drawn at random from the 42
  high-MPKI set (the paper generates 75 such mixes; the count here is a
  parameter so benches can scale).

Each core's copy is rebased into its own physical address range, as
separate processes would be.
"""

import numpy as np

from repro.workloads.catalog import MEMORY_INTENSIVE, WORKLOADS
from repro.workloads.generators import GenContext

#: Address-space stride between cores' rebased copies (1 TB apart).
CORE_ADDRESS_STRIDE = 1 << 40


def homogeneous_mixes(workloads=None):
    """One 4-copy mix per memory-intensive workload.

    Returns a list of (mix_name, [workload_name] * 4).
    """
    names = list(workloads) if workloads is not None else list(MEMORY_INTENSIVE)
    return [(name, [name] * 4) for name in names]


def heterogeneous_mixes(count=75, seed=20191012, workloads=None):
    """``count`` random 4-workload mixes from the memory-intensive set.

    The default seed pins the paper-sized draw; benches pass smaller
    counts.  Returns a list of (mix_name, [w0, w1, w2, w3]).
    """
    pool = list(workloads) if workloads is not None else list(MEMORY_INTENSIVE)
    if len(pool) < 4:
        raise ValueError("need at least four workloads to build mixes")
    rng = np.random.default_rng(seed)
    mixes = []
    for i in range(count):
        picks = [pool[int(j)] for j in rng.choice(len(pool), size=4, replace=False)]
        mixes.append((f"hetero-{i:02d}", picks))
    return mixes


def build_mix_traces(workload_names, length_per_core):
    """Generate and rebase one trace per core for a 4-workload mix.

    Copies of the same workload get distinct generator seeds (so the four
    copies are *not* lock-step identical) and distinct address ranges.
    """
    traces = []
    seen = {}
    for core, name in enumerate(workload_names):
        workload = WORKLOADS[name]
        copy_index = seen.get(name, 0)
        seen[name] = copy_index + 1
        ctx = GenContext(workload.seed() + 1009 * copy_index, workload.intensity)
        workload.builder(ctx, length_per_core)
        traces.append(ctx.build().rebase(core * CORE_ADDRESS_STRIDE))
    return traces
