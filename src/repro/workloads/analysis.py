"""Trace analysis: the access-structure statistics the paper reasons with.

These are the quantities the paper's arguments are built on —
:func:`delta_distribution` is Figure 11(a)'s input, :func:`pc_footprint`
is the Section 2.3 storage argument against SMS, and
:func:`page_profile`/:func:`compression_error` feed the Section 3.8
compression study.  The figure drivers and the ``trace-stats`` CLI
subcommand both use this module.
"""

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.constants import LINE_SHIFT, LINES_PER_PAGE, line_offset_in_page, page_number
from repro.core.bitpattern import compress_pattern, expand_pattern, popcount


def delta_distribution(trace, top=8):
    """Distribution of successive in-page line deltas (Figure 11a).

    Returns ``(counts, total)`` where ``counts`` maps each of the ``top``
    most frequent deltas to its occurrence count; deltas between accesses
    to *different* pages are excluded, matching the paper's in-region
    delta statistics.
    """
    last_by_page = {}
    counts = Counter()
    for addr in trace.addrs.tolist():
        page = addr >> 12
        offset = (addr >> LINE_SHIFT) & (LINES_PER_PAGE - 1)
        last = last_by_page.get(page)
        last_by_page[page] = offset
        if last is None or offset == last:
            continue
        counts[offset - last] += 1
    total = sum(counts.values())
    return dict(counts.most_common(top)), total


def pc_footprint(trace):
    """Distinct PCs and distinct (PC, line-offset) trigger signatures.

    The second number is what SMS must store one PHT entry for; the first
    is what DSPatch folds into its 256-entry SPT (Section 3.4).
    """
    pcs = set()
    signatures = set()
    seen_pages = set()
    for pc, addr in zip(trace.pcs.tolist(), trace.addrs.tolist()):
        pcs.add(pc)
        page = addr >> 12
        if page not in seen_pages:
            seen_pages.add(page)
            signatures.add((pc, line_offset_in_page(addr)))
    return len(pcs), len(signatures)


@dataclass
class PageProfile:
    """Aggregate spatial statistics of one trace."""

    pages_touched: int
    accesses: int
    mean_lines_per_page: float
    mean_density: float
    dense_page_fraction: float  # pages with more than half their lines touched

    @property
    def footprint_kb(self):
        return self.pages_touched * 4.0


def page_profile(trace):
    """Per-page footprint statistics (working set and density)."""
    patterns = defaultdict(int)
    for addr in trace.addrs.tolist():
        patterns[page_number(addr)] |= 1 << line_offset_in_page(addr)
    if not patterns:
        return PageProfile(0, 0, 0.0, 0.0, 0.0)
    line_counts = [popcount(p) for p in patterns.values()]
    pages = len(patterns)
    dense = sum(1 for c in line_counts if c > LINES_PER_PAGE // 2)
    mean_lines = sum(line_counts) / pages
    return PageProfile(
        pages_touched=pages,
        accesses=len(trace),
        mean_lines_per_page=mean_lines,
        mean_density=mean_lines / LINES_PER_PAGE,
        dense_page_fraction=dense / pages,
    )


def compression_error(trace):
    """Misprediction rate induced by 128B compression (Figure 11b).

    For every touched page, compare the exact 64-line pattern with the
    compress-then-expand pattern: extra lines are the compression-induced
    overpredictions.  Returns the overall misprediction rate
    (extra / predicted) and the per-page rate histogram buckets the paper
    uses: exactly 0%, 0-12.5%, 12.5-25%, 25-37%, 37-50%, exactly 50%.
    """
    patterns = defaultdict(int)
    for addr in trace.addrs.tolist():
        patterns[page_number(addr)] |= 1 << line_offset_in_page(addr)

    buckets = {
        "exactly-0": 0,
        "0-12.5%": 0,
        "12.5-25%": 0,
        "25-37%": 0,
        "37-50%": 0,
        "exactly-50": 0,
    }
    extra_total = 0
    predicted_total = 0
    for pattern in patterns.values():
        predicted = expand_pattern(compress_pattern(pattern, LINES_PER_PAGE))
        extra = popcount(predicted & ~pattern)
        npred = popcount(predicted)
        extra_total += extra
        predicted_total += npred
        rate = extra / npred if npred else 0.0
        if extra == 0:
            buckets["exactly-0"] += 1
        elif rate < 0.125:
            buckets["0-12.5%"] += 1
        elif rate < 0.25:
            buckets["12.5-25%"] += 1
        elif rate < 0.37:
            buckets["25-37%"] += 1
        elif rate < 0.5:
            buckets["37-50%"] += 1
        else:
            buckets["exactly-50"] += 1
    pages = max(1, len(patterns))
    histogram = {k: v / pages for k, v in buckets.items()}
    overall = extra_total / predicted_total if predicted_total else 0.0
    return overall, histogram


@dataclass
class TraceReport:
    """Everything ``trace-stats`` prints for one workload."""

    name: str
    accesses: int
    instructions: int
    distinct_pcs: int
    trigger_signatures: int
    page: PageProfile = None
    top_deltas: dict = field(default_factory=dict)
    delta_total: int = 0
    compression_misprediction: float = 0.0

    def plus_minus_one_share(self):
        """Fraction of deltas that are +1 or -1 (the Figure 11a headline)."""
        if not self.delta_total:
            return 0.0
        return (self.top_deltas.get(1, 0) + self.top_deltas.get(-1, 0)) / self.delta_total

    def render(self):
        lines = [
            f"workload          {self.name}",
            f"memory ops        {self.accesses}",
            f"instructions      {self.instructions}",
            f"distinct PCs      {self.distinct_pcs}",
            f"trigger sigs      {self.trigger_signatures}   (PC x offset pairs, SMS's PHT load)",
            f"pages touched     {self.page.pages_touched}  ({self.page.footprint_kb:.0f} KB footprint)",
            f"lines per page    {self.page.mean_lines_per_page:.1f}  "
            f"(density {100 * self.page.mean_density:.0f}%, "
            f"{100 * self.page.dense_page_fraction:.0f}% dense pages)",
            f"+1/-1 delta share {100 * self.plus_minus_one_share():.0f}%",
            f"128B-compression  {100 * self.compression_misprediction:.1f}% mispredictions",
        ]
        top = ", ".join(
            f"{delta:+d}: {100 * count / self.delta_total:.0f}%"
            for delta, count in sorted(
                self.top_deltas.items(), key=lambda kv: -kv[1]
            )[:5]
        )
        lines.append(f"top deltas        {top}")
        return "\n".join(lines)


def analyze_trace(trace, name="<trace>"):
    """Build the full :class:`TraceReport` for one trace."""
    pcs, signatures = pc_footprint(trace)
    deltas, total = delta_distribution(trace)
    overall_err, _histogram = compression_error(trace)
    return TraceReport(
        name=name,
        accesses=len(trace),
        instructions=trace.instructions,
        distinct_pcs=pcs,
        trigger_signatures=signatures,
        page=page_profile(trace),
        top_deltas=deltas,
        delta_total=total,
        compression_misprediction=overall_err,
    )
