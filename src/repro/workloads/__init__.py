"""Synthetic workloads standing in for the paper's 75 traces (Section 4.2).

The paper evaluates proprietary SPEC/enterprise traces; this package
provides seeded synthetic generators with the *access-pattern structure*
the paper attributes to each of its nine categories (Table 4), because that
structure — not the literal binaries — is what drives the relative results:

- streaming / strided / stencil patterns (HPC, FSPEC06, FSPEC17) reward
  SPP's delta chains;
- recurring spatial layouts visited in reordered order (ISPEC17, Cloud,
  SYSmark) reward anchored bit-pattern prefetching (DSPatch, SMS);
- enormous trigger-PC footprints (Server / TPC-C) reward SMS's 16K-entry
  PHT over any 256-entry table;
- pointer chasing (mcf) serializes misses and caps everyone's coverage.
"""

from repro.workloads.catalog import (
    CATEGORIES,
    MEMORY_INTENSIVE,
    WORKLOADS,
    Workload,
    build_trace,
    workloads_in_category,
)
from repro.workloads.generators import GenContext
from repro.workloads.mixes import (
    build_mix_traces,
    heterogeneous_mixes,
    homogeneous_mixes,
)

__all__ = [
    "CATEGORIES",
    "GenContext",
    "MEMORY_INTENSIVE",
    "WORKLOADS",
    "Workload",
    "build_mix_traces",
    "build_trace",
    "heterogeneous_mixes",
    "homogeneous_mixes",
    "workloads_in_category",
]
