"""Trace-generation primitives.

Each ``emit_*`` function appends roughly ``n`` memory operations with one
characteristic access structure to a :class:`GenContext`.  Category builders
in :mod:`repro.workloads.catalog` compose these primitives into the 75
workloads.

All randomness flows through the context's seeded generator, so every
workload is reproducible from its name alone.
"""

import numpy as np

from repro.constants import LINES_PER_PAGE, PAGE_SHIFT
from repro.cpu.trace import TraceBuilder

#: Gap (non-memory instructions between memory ops) ranges per intensity.
#:
#: Calibrated so a memory-intensive single-thread baseline uses roughly
#: 20-40% of one DDR4-2133 channel — the paper's premise (Section 1) is
#: that single-thread workloads leave DRAM bandwidth headroom, which is
#: what bandwidth-adaptive prefetching spends.  Prefetching then pushes
#: utilization into the upper quartiles, exercising DSPatch's selection.
INTENSITY_GAPS = {
    "high": (60, 160),
    "medium": (160, 400),
    "low": (400, 1000),
}


class GenContext:
    """Shared state for one workload's generation run."""

    def __init__(self, seed, intensity="high"):
        if intensity not in INTENSITY_GAPS:
            known = ", ".join(sorted(INTENSITY_GAPS))
            raise ValueError(f"unknown intensity {intensity!r} (known: {known})")
        self.rng = np.random.default_rng(seed)
        self.builder = TraceBuilder()
        self.intensity = intensity
        self._page_cursor = 0x100  # leave low pages unused
        self._pc_cursor = 0x400000

    # -- resources -------------------------------------------------------------

    def alloc_pages(self, count):
        """Reserve ``count`` contiguous 4KB pages; returns the base page."""
        base = self._page_cursor
        # Pad allocations so unrelated structures never share a page and
        # set-index aliasing between them is incidental, not systematic.
        self._page_cursor += count + 16
        return base

    def alloc_pc(self):
        """Return a fresh, unique program-counter value."""
        pc = self._pc_cursor
        self._pc_cursor += 4
        return pc

    def alloc_pcs(self, count):
        return [self.alloc_pc() for _ in range(count)]

    # -- emission helpers ----------------------------------------------------------

    def gap(self):
        """Sample an instruction gap for this workload's intensity."""
        lo, hi = INTENSITY_GAPS[self.intensity]
        return int(self.rng.integers(lo, hi + 1))

    def emit(self, pc, page, line_offset, write=False, dep=False, gap=None):
        """Append one access to line ``line_offset`` of ``page``."""
        addr = (page << PAGE_SHIFT) | (line_offset << 6)
        self.builder.append(self.gap() if gap is None else gap, pc, addr, write, dep)

    def emit_line(self, pc, line_addr, write=False, dep=False, gap=None):
        """Append one access to an absolute line address."""
        self.builder.append(
            self.gap() if gap is None else gap, pc, int(line_addr) << 6, write, dep
        )

    def build(self):
        return self.builder.build()


def bounded_zipf(rng, n_items, alpha, size):
    """Sample ``size`` ranks in [0, n_items) with a Zipf(alpha) law."""
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    cumulative = np.cumsum(weights)
    cumulative /= cumulative[-1]
    return np.searchsorted(cumulative, rng.random(size))


# --------------------------------------------------------------------------- #
# Regular patterns: streams, strides, stencils (HPC / FSPEC shapes)
# --------------------------------------------------------------------------- #


def emit_streams(ctx, n, num_streams=4, stride=1, pages_per_stream=64, write_frac=0.1):
    """Interleaved sequential streams — the classic HPC/SPEC-FP shape.

    Local deltas are almost all ``+stride``; SPP and every stream detector
    excel here, and the dense traffic saturates DRAM bandwidth.
    """
    bases = [ctx.alloc_pages(pages_per_stream) << (PAGE_SHIFT - 6) for _ in range(num_streams)]
    pcs = ctx.alloc_pcs(num_streams)
    # Arrays are not page-phase-aligned in real programs: stagger the
    # streams so their page-boundary crossings (and therefore the spatial
    # prefetchers' trigger bursts) do not synchronize.
    positions = [int(ctx.rng.integers(0, LINES_PER_PAGE)) for _ in range(num_streams)]
    limit = pages_per_stream * LINES_PER_PAGE
    for i in range(n):
        s = i % num_streams
        line = bases[s] + positions[s]
        write = ctx.rng.random() < write_frac
        ctx.emit_line(pcs[s], line, write=write)
        positions[s] = (positions[s] + stride) % limit


def emit_strided(ctx, n, stride_lines=4, pages=128):
    """A single strided walker (e.g. column-major array traversal)."""
    base = ctx.alloc_pages(pages) << (PAGE_SHIFT - 6)
    pc = ctx.alloc_pc()
    limit = pages * LINES_PER_PAGE
    pos = 0
    for _ in range(n):
        ctx.emit_line(pc, base + pos)
        pos = (pos + stride_lines) % limit


def emit_stencil(ctx, n, arrays=3, pages_per_array=64):
    """Stencil sweep: each iteration touches neighbours across arrays.

    Produces short repeating delta cycles (e.g. +big, -big+1, ...) that SPP
    learns after warm-up, and dense page patterns that bit-pattern
    prefetchers also capture.
    """
    bases = [ctx.alloc_pages(pages_per_array) << (PAGE_SHIFT - 6) for _ in range(arrays)]
    pcs = ctx.alloc_pcs(arrays * 3)
    limit = pages_per_array * LINES_PER_PAGE - 2
    i = 1
    emitted = 0
    while emitted < n:
        for a in range(arrays):
            for j, off in enumerate((-1, 0, 1)):
                ctx.emit_line(pcs[a * 3 + j], bases[a] + i + off)
                emitted += 1
                if emitted >= n:
                    return
        i = i + 1 if i + 1 < limit else 1


# --------------------------------------------------------------------------- #
# Spatial-layout patterns (ISPEC17 / Cloud / SYSmark shapes)
# --------------------------------------------------------------------------- #


def window_reorder(rng, items, window=6):
    """Shuffle ``items`` locally within a sliding window.

    Models out-of-order-core reordering: accesses move around within an
    instruction-window-sized neighbourhood but the overall progression (and
    in particular the first access — the trigger) is preserved.  This is
    exactly the reordering of Figure 2's streams B-E: same footprint, same
    trigger, different local order.  Full-trace permutation would be far
    harsher than any real core's ROB can produce.
    """
    items = list(items)
    out = []
    buffer = []
    for item in items:
        buffer.append(item)
        if len(buffer) >= window:
            pick = int(rng.integers(0, len(buffer)))
            out.append(buffer.pop(pick))
    while buffer:
        pick = int(rng.integers(0, len(buffer)))
        out.append(buffer.pop(pick))
    return out


def _random_layout(rng, density, cluster=True):
    """One page layout: a set of line offsets, optionally in 128B pairs.

    ``cluster=True`` biases toward adjacent pairs, which keeps the paper's
    observation that +1/-1 deltas dominate (Figure 11a) and that
    128B-granularity compression is usually harmless (Figure 11b).
    """
    count = max(2, int(density * LINES_PER_PAGE))
    offsets = set()
    while len(offsets) < count:
        off = int(rng.integers(0, LINES_PER_PAGE))
        offsets.add(off)
        # Structures larger than one line span adjacent 64B lines, which
        # is where Figure 11a's +1-delta dominance (and the viability of
        # 128B compression) comes from.
        if cluster and off + 1 < LINES_PER_PAGE:
            offsets.add(off + 1)
    return sorted(offsets)


def emit_spatial_layouts(
    ctx,
    n,
    num_layouts=8,
    density=0.25,
    pages=1024,
    reorder=True,
    trigger_jitter=False,
    cluster=True,
    layout_zipf=0.0,
    pc_variants=1,
):
    """Recurring per-page spatial layouts, visited with temporal reordering.

    This is the access structure of Figure 2: the same spatial footprint
    reached through different temporal orders.  Reordering destroys SPP's
    local-delta signatures while anchored bit-patterns (DSPatch) and
    absolute patterns (SMS) survive.  With ``trigger_jitter`` the layout
    additionally lands at a rotated position within each page — only
    *anchored* patterns survive that (DSPatch wins over SMS).

    ``pc_variants`` models multiple call sites reaching the same layout
    (inlined accessors, loop copies): each visit triggers from one of
    several PCs.  SMS must learn one PHT entry per (PC, offset) signature,
    so variants multiply its storage pressure (the Figure 5 effect), while
    DSPatch's PC-only folded signature and SPP's PC-free deltas are
    insensitive to it.
    """
    rng = ctx.rng
    layouts = [_random_layout(rng, density, cluster) for _ in range(num_layouts)]
    trigger_pcs = [ctx.alloc_pcs(pc_variants) for _ in range(num_layouts)]
    body_pcs = ctx.alloc_pcs(num_layouts)
    base_page = ctx.alloc_pages(pages)
    # Allocators place structures at a handful of recurring 128B-aligned
    # positions per layout (a palette), not uniformly at random: the same
    # (PC, offset) signatures recur — so a large PHT *can* hold them all —
    # while their count (layouts x variants x palette) overflows small
    # signature storage.  Anchored patterns are invariant to the shift.
    jitter_palette = [
        [2 * int(rng.integers(0, LINES_PER_PAGE // 2)) for _ in range(8)]
        for _ in range(num_layouts)
    ]
    emitted = 0
    visit = 0
    while emitted < n:
        page = base_page + int(rng.integers(0, pages))
        if layout_zipf > 0:
            layout_idx = int(bounded_zipf(rng, num_layouts, layout_zipf, 1)[0])
        else:
            layout_idx = visit % num_layouts
        visit += 1
        offsets = layouts[layout_idx]
        if trigger_jitter:
            shift = jitter_palette[layout_idx][int(rng.integers(0, 8))]
            offsets = [(o + shift) % LINES_PER_PAGE for o in offsets]
        trigger = offsets[0]
        rest = offsets[1:]
        if reorder:
            # A wide window: the OOO core plus cache-miss completion order
            # scramble a burst's non-trigger accesses heavily (Figure 2's
            # premise) while the trigger itself stays first.
            rest = window_reorder(rng, rest, window=12)
        variant = int(rng.integers(0, pc_variants)) if pc_variants > 1 else 0
        ctx.emit(trigger_pcs[layout_idx][variant], page, trigger)
        emitted += 1
        for off in rest:
            ctx.emit(body_pcs[layout_idx], page, int(off))
            emitted += 1
            if emitted >= n:
                return


def emit_code_heavy(
    ctx, n, num_contexts=3000, density=0.15, pages=512, accesses_per_visit=None
):
    """Thousands of distinct trigger PCs, each with its own small layout.

    Models the enormous code footprints of TPC-C-style server workloads
    ("more than 4000 trigger PCs per kilo instructions") where only SMS's
    16K-entry PHT retains enough signatures; 256-entry tables thrash.
    """
    rng = ctx.rng
    count = max(2, int(density * LINES_PER_PAGE))
    base_page = ctx.alloc_pages(pages)
    pc_base = ctx.alloc_pc()
    # Layouts are derived deterministically from the context id so the
    # table can be virtualized instead of materializing 3000 lists.
    emitted = 0
    while emitted < n:
        context_id = int(rng.integers(0, num_contexts))
        layout_rng = np.random.default_rng(context_id * 7919 + 13)
        offsets = sorted(set(layout_rng.integers(0, LINES_PER_PAGE, count).tolist()))
        page = base_page + int(rng.integers(0, pages))
        pc = pc_base + context_id * 4
        for off in offsets:
            ctx.emit(pc, page, int(off))
            emitted += 1
            if emitted >= n:
                return


def emit_sparse_global(ctx, n, deltas=(0, 7, 19, 33), pages=512, reorder=True):
    """Few accesses per page at fixed relative offsets (global deltas).

    BOP's global-delta scoring and anchored patterns capture this; SPP's
    per-delta confidence stays low because only a handful of accesses hit
    each page before it goes cold.
    """
    rng = ctx.rng
    base_page = ctx.alloc_pages(pages)
    trigger_pc = ctx.alloc_pc()
    body_pc = ctx.alloc_pc()
    emitted = 0
    page_idx = 0
    while emitted < n:
        page = base_page + page_idx % pages
        page_idx += 1
        start = int(rng.integers(0, LINES_PER_PAGE - max(deltas) - 1))
        offsets = [start + d for d in deltas]
        body = offsets[1:]
        if reorder:
            body = window_reorder(rng, body, window=3)
        ctx.emit(trigger_pc, page, offsets[0])
        emitted += 1
        for off in body:
            ctx.emit(body_pc, page, int(off))
            emitted += 1
            if emitted >= n:
                return


# --------------------------------------------------------------------------- #
# Irregular patterns: pointer chasing, key-value, noise
# --------------------------------------------------------------------------- #


def emit_pointer_chase(ctx, n, working_set_pages=2048, spatial_hint=0.0):
    """A dependent-load chain over a large working set (mcf-like).

    Every load's address depends on the previous one (``FLAG_DEP``), so
    misses serialize and exposed latency dominates — any coverage a
    prefetcher finds translates into large speedups.  ``spatial_hint``
    blends in recurring node-field accesses spread over several cache
    lines (node header at +0, fields at +2 and +4 lines), giving spatial
    prefetchers a learnable footprint around each node.
    """
    rng = ctx.rng
    base_page = ctx.alloc_pages(working_set_pages)
    total_lines = working_set_pages * LINES_PER_PAGE
    pc_chase = ctx.alloc_pc()
    pc_fields = ctx.alloc_pcs(2)
    pos = int(rng.integers(0, total_lines))
    # A fixed odd multiplier walks the whole line space pseudo-randomly.
    stride = 0x9E3779B1
    emitted = 0
    base_line = base_page << (PAGE_SHIFT - 6)
    while emitted < n:
        pos = (pos * 1103515245 + stride) % total_lines
        # Anchor nodes to an 8-line slab so field offsets never leave it.
        node = pos & ~7
        line = base_line + node
        ctx.emit_line(pc_chase, line, dep=True)
        emitted += 1
        if spatial_hint and rng.random() < spatial_hint:
            for field_idx, field_off in enumerate((2, 4)):
                if emitted >= n:
                    return
                ctx.emit_line(pc_fields[field_idx], line + field_off)
                emitted += 1


def emit_kv(
    ctx, n, hot_pages=512, record_lines=2, zipf_alpha=1.1, scan_frac=0.05, pc_pool=4
):
    """Key-value lookups with a Zipf-hot set and occasional scans.

    Records span ``record_lines`` adjacent lines (adjacent-pair deltas keep
    Figure 11a's +1 dominance); scans sweep whole pages.  ``pc_pool`` sets
    how many distinct lookup sites the store is accessed from — server and
    cloud stacks reach their KV layers from hundreds of call sites, which
    is what pressures signature-indexed prefetcher storage (Figure 5).
    """
    rng = ctx.rng
    base_page = ctx.alloc_pages(hot_pages)
    pc_lookup = ctx.alloc_pcs(pc_pool)
    pc_scan = ctx.alloc_pc()
    records_per_page = LINES_PER_PAGE // record_lines
    emitted = 0
    while emitted < n:
        if rng.random() < scan_frac:
            page = base_page + int(rng.integers(0, hot_pages))
            for off in range(LINES_PER_PAGE):
                ctx.emit(pc_scan, page, off)
                emitted += 1
                if emitted >= n:
                    return
            continue
        page_rank = int(bounded_zipf(rng, hot_pages, zipf_alpha, 1)[0])
        page = base_page + page_rank
        record = int(rng.integers(0, records_per_page))
        start = record * record_lines
        pc = pc_lookup[record % len(pc_lookup)]
        for k in range(record_lines):
            ctx.emit(pc, page, start + k, write=rng.random() < 0.2)
            emitted += 1
            if emitted >= n:
                return


def emit_random(ctx, n, pages=4096):
    """Uniform random line accesses — unlearnable noise."""
    rng = ctx.rng
    base_page = ctx.alloc_pages(pages)
    pc = ctx.alloc_pc()
    page_draws = rng.integers(0, pages, n)
    offset_draws = rng.integers(0, LINES_PER_PAGE, n)
    for page_off, line_off in zip(page_draws.tolist(), offset_draws.tolist()):
        ctx.emit(pc, base_page + page_off, line_off)


def emit_backref_stream(ctx, n, window_pages=32, backref_frac=0.3, pages=256):
    """Compression-style traffic: a forward stream with window back-refs.

    7-zip/bzip2 shape — a sequential scan plus reads at recent offsets
    inside a sliding window.  Back-reference distances are recency-biased
    (LZ matches overwhelmingly point at nearby history), so most back-refs
    land on pages the stream just left.
    """
    rng = ctx.rng
    base = ctx.alloc_pages(pages) << (PAGE_SHIFT - 6)
    pc_stream = ctx.alloc_pc()
    pc_ref = ctx.alloc_pc()
    limit = pages * LINES_PER_PAGE
    window = window_pages * LINES_PER_PAGE
    pos = window
    emitted = 0
    while emitted < n:
        ctx.emit_line(pc_stream, base + pos % limit)
        emitted += 1
        pos += 1
        if emitted < n and rng.random() < backref_frac:
            # Geometric-ish recency bias: squaring a uniform sample
            # concentrates matches near the stream head while still
            # occasionally reaching the window tail.
            back = 1 + int((rng.random() ** 2) * (window - 1))
            ctx.emit_line(pc_ref, base + (pos - back) % limit)
            emitted += 1


def emit_blocks2d(ctx, n, block_lines=8, image_pages=256, reorder=True):
    """Video-codec shape: 2D macro-block sweeps with intra-block reorder."""
    rng = ctx.rng
    base_page = ctx.alloc_pages(image_pages)
    pc_trigger = ctx.alloc_pc()
    pc_body = ctx.alloc_pc()
    emitted = 0
    page_idx = 0
    while emitted < n:
        page = base_page + page_idx % image_pages
        page_idx += 1
        start = int(rng.integers(0, LINES_PER_PAGE - block_lines))
        offsets = list(range(start, start + block_lines))
        body = offsets[1:]
        if reorder:
            body = window_reorder(rng, body, window=4)
        ctx.emit(pc_trigger, page, offsets[0])
        emitted += 1
        for off in body:
            ctx.emit(pc_body, page, int(off))
            emitted += 1
            if emitted >= n:
                return
