"""Trace-generation primitives (array-native).

Each ``emit_*`` function appends roughly ``n`` memory operations with one
characteristic access structure to a :class:`GenContext`.  Category builders
in :mod:`repro.workloads.catalog` compose these primitives into the 75
workloads.

The pipeline is array-native end-to-end: every primitive computes its
gaps/pcs/addresses/flags as whole NumPy arrays — batched RNG draws,
cumulative-sum and modular index arithmetic, segment tricks for
variable-size visits — and bulk-appends them through
:meth:`GenContext.emit_block` / ``TraceBuilder.extend_arrays``.  Nothing
on the O(n) path runs a per-op Python loop; the only scalar loops left
are bounded by small structural parameters (stream counts, layout
counts), not by trace length.

RNG-stream policy: all randomness flows through the context's seeded
generator, drawn in **batches** (one draw call per decision kind per
chunk, in a fixed documented order), so every workload is reproducible
from its name alone — in-process and across processes.  Batched draws
consume the seeded stream in a different order than the retired scalar
loops did, so traces differ from pre-vectorization ones while keeping
the same access structure; the engine's source-code salt invalidates
previously cached traces automatically (see ``docs/workloads.md``).
"""

import numpy as np

from repro.constants import LINE_SHIFT, LINES_PER_PAGE, PAGE_SHIFT
from repro.cpu.trace import FLAG_DEP, FLAG_WRITE, TraceBuilder

#: Gap (non-memory instructions between memory ops) ranges per intensity.
#:
#: Calibrated so a memory-intensive single-thread baseline uses roughly
#: 20-40% of one DDR4-2133 channel — the paper's premise (Section 1) is
#: that single-thread workloads leave DRAM bandwidth headroom, which is
#: what bandwidth-adaptive prefetching spends.  Prefetching then pushes
#: utilization into the upper quartiles, exercising DSPatch's selection.
INTENSITY_GAPS = {
    "high": (60, 160),
    "medium": (160, 400),
    "low": (400, 1000),
}

#: Page number -> line address shift (4KB page over 64B lines).
_PAGE_LINE_SHIFT = PAGE_SHIFT - LINE_SHIFT


class GenContext:
    """Shared state for one workload's generation run."""

    def __init__(self, seed, intensity="high"):
        if intensity not in INTENSITY_GAPS:
            known = ", ".join(sorted(INTENSITY_GAPS))
            raise ValueError(f"unknown intensity {intensity!r} (known: {known})")
        self.rng = np.random.default_rng(seed)
        self.builder = TraceBuilder()
        self.intensity = intensity
        self._page_cursor = 0x100  # leave low pages unused
        self._pc_cursor = 0x400000

    # -- resources -------------------------------------------------------------

    def alloc_pages(self, count):
        """Reserve ``count`` contiguous 4KB pages; returns the base page."""
        base = self._page_cursor
        # Pad allocations so unrelated structures never share a page and
        # set-index aliasing between them is incidental, not systematic.
        self._page_cursor += count + 16
        return base

    def alloc_pages_batch(self, counts):
        """Reserve several page runs at once; returns their base pages.

        Equivalent to ``[alloc_pages(c) for c in counts]`` without the
        per-run Python loop.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.size == 0:
            return counts
        spans = counts + 16
        bases = self._page_cursor + np.concatenate(
            ([0], np.cumsum(spans[:-1]))
        )
        self._page_cursor += int(spans.sum())
        return bases

    def alloc_pc(self):
        """Return a fresh, unique program-counter value."""
        pc = self._pc_cursor
        self._pc_cursor += 4
        return pc

    def alloc_pcs(self, count):
        """Return ``count`` fresh program counters as one array."""
        pcs = self._pc_cursor + 4 * np.arange(count, dtype=np.int64)
        self._pc_cursor += 4 * count
        return pcs

    # -- emission helpers ----------------------------------------------------------

    def gap(self):
        """Sample one instruction gap for this workload's intensity."""
        lo, hi = INTENSITY_GAPS[self.intensity]
        return int(self.rng.integers(lo, hi + 1))

    def gaps(self, n):
        """Sample ``n`` instruction gaps in one batched draw."""
        lo, hi = INTENSITY_GAPS[self.intensity]
        return self.rng.integers(lo, hi + 1, n)

    def emit(self, pc, page, line_offset, write=False, dep=False, gap=None):
        """Append one access to line ``line_offset`` of ``page``."""
        addr = (page << PAGE_SHIFT) | (line_offset << 6)
        self.builder.append(self.gap() if gap is None else gap, pc, addr, write, dep)

    def emit_line(self, pc, line_addr, write=False, dep=False, gap=None):
        """Append one access to an absolute line address."""
        self.builder.append(
            self.gap() if gap is None else gap, pc, int(line_addr) << 6, write, dep
        )

    def emit_block(self, pcs, lines, writes=None, deps=None, gaps=None):
        """Bulk-append accesses to absolute line addresses.

        ``pcs`` may be a scalar (one PC for the whole block) or a per-op
        array; ``writes``/``deps`` likewise (default all-False); ``gaps``
        defaults to one batched intensity draw.  This is the single
        funnel every vectorized primitive emits through.
        """
        lines = np.asarray(lines, dtype=np.int64)
        n = lines.size
        if n == 0:
            return
        if gaps is None:
            gaps = self.gaps(n)
        pcs = np.asarray(pcs, dtype=np.int64)
        if pcs.ndim == 0:
            pcs = np.broadcast_to(pcs, (n,))
        flags = None
        if writes is not None or deps is not None:
            flags = np.zeros(n, dtype=np.uint8)
            if writes is not None:
                flags |= np.asarray(writes, dtype=bool).astype(np.uint8) * FLAG_WRITE
            if deps is not None:
                flags |= np.asarray(deps, dtype=bool).astype(np.uint8) * FLAG_DEP
        self.builder.extend_arrays(gaps, pcs, lines << LINE_SHIFT, flags)

    def build(self):
        return self.builder.build()


def bounded_zipf(rng, n_items, alpha, size):
    """Sample ``size`` ranks in [0, n_items) with a Zipf(alpha) law."""
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    cumulative = np.cumsum(weights)
    cumulative /= cumulative[-1]
    return np.searchsorted(cumulative, rng.random(size))


def _segments(sizes):
    """Per-op ``(segment_id, within_segment)`` indices for variable-size visits.

    The standard cumulative-sum trick: a visit of size ``s`` contributes
    ``s`` ops whose ``within`` runs 0..s-1, with no Python loop.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    total = int(sizes.sum())
    seg_id = np.repeat(np.arange(sizes.size, dtype=np.int64), sizes)
    starts = np.concatenate(([0], np.cumsum(sizes[:-1])))
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, sizes)
    return seg_id, within


def _local_order(rng, seg_id, within, window, keep_first=True):
    """Permutation reordering ops locally *inside* each visit segment.

    Jitter-key sort: each op's key is its in-segment position plus a
    uniform draw in [0, window), so ops more than ``window`` apart can
    never swap — the same bounded-displacement property as the retired
    buffer-based shuffle.  With ``keep_first`` the segment's first op
    (the trigger) is pinned in place.
    """
    keys = within + rng.random(within.size) * window
    if keep_first:
        keys = np.where(within == 0, -1.0, keys)
    return np.lexsort((keys, seg_id))


# --------------------------------------------------------------------------- #
# Regular patterns: streams, strides, stencils (HPC / FSPEC shapes)
# --------------------------------------------------------------------------- #


def emit_streams(ctx, n, num_streams=4, stride=1, pages_per_stream=64, write_frac=0.1):
    """Interleaved sequential streams — the classic HPC/SPEC-FP shape.

    Local deltas are almost all ``+stride``; SPP and every stream detector
    excel here, and the dense traffic saturates DRAM bandwidth.
    """
    bases = ctx.alloc_pages_batch(
        np.full(num_streams, pages_per_stream)
    ) << _PAGE_LINE_SHIFT
    pcs = ctx.alloc_pcs(num_streams)
    # Arrays are not page-phase-aligned in real programs: stagger the
    # streams so their page-boundary crossings (and therefore the spatial
    # prefetchers' trigger bursts) do not synchronize.
    positions = ctx.rng.integers(0, LINES_PER_PAGE, num_streams)
    limit = pages_per_stream * LINES_PER_PAGE
    idx = np.arange(n, dtype=np.int64)
    s = idx % num_streams  # op i belongs to stream i mod k, as before
    t = idx // num_streams  # per-stream step count
    lines = bases[s] + (positions[s] + t * stride) % limit
    writes = ctx.rng.random(n) < write_frac
    ctx.emit_block(pcs[s], lines, writes=writes)


def emit_strided(ctx, n, stride_lines=4, pages=128):
    """A single strided walker (e.g. column-major array traversal)."""
    base = ctx.alloc_pages(pages) << _PAGE_LINE_SHIFT
    pc = ctx.alloc_pc()
    limit = pages * LINES_PER_PAGE
    lines = base + (np.arange(n, dtype=np.int64) * stride_lines) % limit
    ctx.emit_block(pc, lines)


def emit_stencil(ctx, n, arrays=3, pages_per_array=64):
    """Stencil sweep: each iteration touches neighbours across arrays.

    Produces short repeating delta cycles (e.g. +big, -big+1, ...) that SPP
    learns after warm-up, and dense page patterns that bit-pattern
    prefetchers also capture.
    """
    bases = ctx.alloc_pages_batch(
        np.full(arrays, pages_per_array)
    ) << _PAGE_LINE_SHIFT
    pcs = ctx.alloc_pcs(arrays * 3)
    limit = pages_per_array * LINES_PER_PAGE - 2
    # One iteration emits (array, offset) pairs in a fixed nested order;
    # the whole sweep is the outer sum of the iteration index (1..limit-1,
    # wrapping) and that constant block.
    block = (bases[:, None] + np.array([-1, 0, 1])[None, :]).ravel()
    per_iter = arrays * 3
    iters = -(-n // per_iter)
    i_vals = 1 + np.arange(iters, dtype=np.int64) % (limit - 1)
    lines = (i_vals[:, None] + block[None, :]).ravel()[:n]
    ctx.emit_block(np.tile(pcs, iters)[:n], lines)


# --------------------------------------------------------------------------- #
# Spatial-layout patterns (ISPEC17 / Cloud / SYSmark shapes)
# --------------------------------------------------------------------------- #


def window_reorder(rng, items, window=6):
    """Shuffle ``items`` locally within a sliding window (vectorized).

    Models out-of-order-core reordering: accesses move around within an
    instruction-window-sized neighbourhood but the overall progression is
    preserved.  This is exactly the reordering of Figure 2's streams B-E:
    same footprint, same trigger, different local order.  Implemented as
    a jitter-key sort — key = position + U[0, window) — so two items more
    than ``window`` apart can never swap and displacement stays bounded,
    while full-trace permutation (far harsher than any real ROB) remains
    impossible by construction.  This is the whole-array form of the
    same jitter-key sort :func:`_local_order` applies per visit segment.
    """
    items = np.asarray(items)
    n = items.size
    if n <= 1 or window <= 1:
        return items.copy()
    order = _local_order(
        rng,
        np.zeros(n, dtype=np.int64),
        np.arange(n, dtype=np.int64),
        window,
        keep_first=False,
    )
    return items[order]


def _random_layout(rng, density, cluster=True):
    """One page layout: a sorted array of line offsets, optionally in 128B pairs.

    ``cluster=True`` biases toward adjacent pairs, which keeps the paper's
    observation that +1/-1 deltas dominate (Figure 11a) and that
    128B-granularity compression is usually harmless (Figure 11b).  Draws
    are batched and deduplicated in arrival order (the batched analogue of
    the retired add-until-full set loop), keeping the first ``count``
    distinct offsets so the requested density is respected.
    """
    count = max(2, int(density * LINES_PER_PAGE))
    draws = None
    while True:
        fresh = rng.integers(0, LINES_PER_PAGE, 4 * count)
        if cluster:
            # Structures larger than one line span adjacent 64B lines,
            # which is where Figure 11a's +1-delta dominance (and the
            # viability of 128B compression) comes from.
            paired = np.empty(fresh.size * 2, dtype=np.int64)
            paired[0::2] = fresh
            paired[1::2] = np.minimum(fresh + 1, LINES_PER_PAGE - 1)
            fresh = paired
        draws = fresh if draws is None else np.concatenate([draws, fresh])
        uniq, first_idx = np.unique(draws, return_index=True)
        if uniq.size >= count:
            break
    arrival_order = draws[np.sort(first_idx)][:count]
    return np.sort(arrival_order)


def emit_spatial_layouts(
    ctx,
    n,
    num_layouts=8,
    density=0.25,
    pages=1024,
    reorder=True,
    trigger_jitter=False,
    cluster=True,
    layout_zipf=0.0,
    pc_variants=1,
):
    """Recurring per-page spatial layouts, visited with temporal reordering.

    This is the access structure of Figure 2: the same spatial footprint
    reached through different temporal orders.  Reordering destroys SPP's
    local-delta signatures while anchored bit-patterns (DSPatch) and
    absolute patterns (SMS) survive.  With ``trigger_jitter`` the layout
    additionally lands at a rotated position within each page — only
    *anchored* patterns survive that (DSPatch wins over SMS).

    ``pc_variants`` models multiple call sites reaching the same layout
    (inlined accessors, loop copies): each visit triggers from one of
    several PCs.  SMS must learn one PHT entry per (PC, offset) signature,
    so variants multiply its storage pressure (the Figure 5 effect), while
    DSPatch's PC-only folded signature and SPP's PC-free deltas are
    insensitive to it.
    """
    rng = ctx.rng
    layouts = [_random_layout(rng, density, cluster) for _ in range(num_layouts)]
    sizes = np.array([layout.size for layout in layouts], dtype=np.int64)
    flat = np.concatenate(layouts)
    layout_starts = np.concatenate(([0], np.cumsum(sizes[:-1])))
    trigger_pc_table = np.stack([ctx.alloc_pcs(pc_variants) for _ in range(num_layouts)])
    body_pcs = ctx.alloc_pcs(num_layouts)
    base_page = ctx.alloc_pages(pages)
    # Allocators place structures at a handful of recurring 128B-aligned
    # positions per layout (a palette), not uniformly at random: the same
    # (PC, offset) signatures recur — so a large PHT *can* hold them all —
    # while their count (layouts x variants x palette) overflows small
    # signature storage.  Anchored patterns are invariant to the shift.
    jitter_palette = 2 * rng.integers(0, LINES_PER_PAGE // 2, (num_layouts, 8))
    mean_size = float(sizes.mean())
    emitted = 0
    visit = 0
    while emitted < n:
        v = max(16, int((n - emitted) / mean_size) + 2)
        page_draw = rng.integers(0, pages, v)
        if layout_zipf > 0:
            lidx = bounded_zipf(rng, num_layouts, layout_zipf, v)
        else:
            lidx = (visit + np.arange(v)) % num_layouts
        visit += v
        if trigger_jitter:
            shifts = jitter_palette[lidx, rng.integers(0, 8, v)]
        else:
            shifts = np.zeros(v, dtype=np.int64)
        if pc_variants > 1:
            variants = rng.integers(0, pc_variants, v)
        else:
            variants = np.zeros(v, dtype=np.int64)
        vsizes = sizes[lidx]
        seg_id, within = _segments(vsizes)
        offs = flat[layout_starts[lidx][seg_id] + within]
        offs = (offs + shifts[seg_id]) % LINES_PER_PAGE
        if reorder:
            # A wide window: the OOO core plus cache-miss completion order
            # scramble a burst's non-trigger accesses heavily (Figure 2's
            # premise) while the trigger itself stays first.
            offs = offs[_local_order(rng, seg_id, within, window=12)]
        pcs = np.where(
            within == 0,
            trigger_pc_table[lidx, variants][seg_id],
            body_pcs[lidx][seg_id],
        )
        lines = ((base_page + page_draw)[seg_id] << _PAGE_LINE_SHIFT) + offs
        take = min(n - emitted, lines.size)
        ctx.emit_block(pcs[:take], lines[:take])
        emitted += take


def emit_code_heavy(
    ctx, n, num_contexts=3000, density=0.15, pages=512, accesses_per_visit=None
):
    """Thousands of distinct trigger PCs, each with its own small layout.

    Models the enormous code footprints of TPC-C-style server workloads
    ("more than 4000 trigger PCs per kilo instructions") where only SMS's
    16K-entry PHT retains enough signatures; 256-entry tables thrash.
    Layouts are derived from the context id through a vectorized integer
    hash (the batched analogue of the retired per-context derived RNG), so
    the virtual table of thousands of layouts never materializes.
    """
    rng = ctx.rng
    count = max(2, int(density * LINES_PER_PAGE))
    base_page = ctx.alloc_pages(pages)
    pc_base = ctx.alloc_pc()
    slot_mix = (np.arange(count, dtype=np.uint64) + np.uint64(1)) * np.uint64(
        2246822519
    )
    emitted = 0
    while emitted < n:
        v = max(16, (n - emitted) // count + 2)
        contexts = rng.integers(0, num_contexts, v)
        page_draw = rng.integers(0, pages, v)
        # splitmix-style per-(context, slot) hash -> offsets in [0, 64).
        h = contexts.astype(np.uint64)[:, None] * np.uint64(2654435761)
        h = h + slot_mix[None, :] + np.uint64(13)
        h ^= h >> np.uint64(15)
        h *= np.uint64(0x9E3779B97F4A7C15)
        offs = ((h >> np.uint64(32)) % np.uint64(LINES_PER_PAGE)).astype(np.int64)
        # Sorted, deduplicated per visit — same semantics as the retired
        # ``sorted(set(...))``, via an adjacent-duplicate mask.
        offs = np.sort(offs, axis=1)
        keep = np.ones(offs.shape, dtype=bool)
        keep[:, 1:] = offs[:, 1:] != offs[:, :-1]
        vsizes = keep.sum(axis=1)
        pcs = np.repeat(pc_base + contexts * 4, vsizes)
        pages_per_op = np.repeat(base_page + page_draw, vsizes)
        lines = (pages_per_op << _PAGE_LINE_SHIFT) + offs[keep]
        take = min(n - emitted, lines.size)
        ctx.emit_block(pcs[:take], lines[:take])
        emitted += take


def emit_sparse_global(ctx, n, deltas=(0, 7, 19, 33), pages=512, reorder=True):
    """Few accesses per page at fixed relative offsets (global deltas).

    BOP's global-delta scoring and anchored patterns capture this; SPP's
    per-delta confidence stays low because only a handful of accesses hit
    each page before it goes cold.
    """
    rng = ctx.rng
    deltas = np.asarray(deltas, dtype=np.int64)
    base_page = ctx.alloc_pages(pages)
    trigger_pc = ctx.alloc_pc()
    body_pc = ctx.alloc_pc()
    d = deltas.size
    visits = -(-n // d)
    page_off = np.arange(visits, dtype=np.int64) % pages
    starts = rng.integers(0, LINES_PER_PAGE - int(deltas.max()) - 1, visits)
    seg_id = np.repeat(np.arange(visits, dtype=np.int64), d)
    within = np.tile(np.arange(d, dtype=np.int64), visits)
    offs = starts[seg_id] + deltas[within]
    if reorder:
        offs = offs[_local_order(rng, seg_id, within, window=3)]
    pcs = np.where(within == 0, trigger_pc, body_pc)
    lines = ((base_page + page_off)[seg_id] << _PAGE_LINE_SHIFT) + offs
    ctx.emit_block(pcs[:n], lines[:n])


# --------------------------------------------------------------------------- #
# Irregular patterns: pointer chasing, key-value, noise
# --------------------------------------------------------------------------- #


def _affine_sequence(pos0, steps, mult, add, mod):
    """``steps`` iterates of ``x -> (mult*x + add) % mod`` after ``pos0``.

    The recurrence is affine, so ``k`` composed steps are again affine;
    doubling the known prefix with the composed map yields the whole
    sequence in O(log steps) vectorized passes instead of a scalar loop.
    """
    seq = np.empty(steps + 1, dtype=np.int64)
    seq[0] = pos0 % mod
    a, c = mult % mod, add % mod  # affine^1
    filled = 1
    while filled < steps + 1:
        take = min(filled, steps + 1 - filled)
        seq[filled : filled + take] = (seq[:take] * a + c) % mod
        a, c = (a * a) % mod, (a * c + c) % mod  # affine^filled doubles
        filled += take
    return seq[1:]


def emit_pointer_chase(ctx, n, working_set_pages=2048, spatial_hint=0.0):
    """A dependent-load chain over a large working set (mcf-like).

    Every load's address depends on the previous one (``FLAG_DEP``), so
    misses serialize and exposed latency dominates — any coverage a
    prefetcher finds translates into large speedups.  ``spatial_hint``
    blends in recurring node-field accesses spread over several cache
    lines (node header at +0, fields at +2 and +4 lines), giving spatial
    prefetchers a learnable footprint around each node.
    """
    rng = ctx.rng
    base_page = ctx.alloc_pages(working_set_pages)
    total_lines = working_set_pages * LINES_PER_PAGE
    pc_chase = ctx.alloc_pc()
    pc_fields = ctx.alloc_pcs(2)
    pos0 = int(rng.integers(0, total_lines))
    # A fixed odd multiplier walks the whole line space pseudo-randomly.
    positions = _affine_sequence(pos0, n, 1103515245, 0x9E3779B1, total_lines)
    # Anchor nodes to an 8-line slab so field offsets never leave it.
    nodes = positions & ~np.int64(7)
    chase_lines = (base_page << _PAGE_LINE_SHIFT) + nodes
    if not spatial_hint:
        ctx.emit_block(pc_chase, chase_lines[:n], deps=True)
        return
    hits = rng.random(n) < spatial_hint
    counts = np.where(hits, 3, 1)
    seg_id, within = _segments(counts)
    lines = chase_lines[seg_id] + 2 * within  # within 1 -> +2, 2 -> +4
    field_pcs = pc_fields[np.maximum(within, 1) - 1]
    pcs = np.where(within == 0, pc_chase, field_pcs)
    deps = within == 0
    ctx.emit_block(pcs[:n], lines[:n], deps=deps[:n])


def emit_kv(
    ctx, n, hot_pages=512, record_lines=2, zipf_alpha=1.1, scan_frac=0.05, pc_pool=4
):
    """Key-value lookups with a Zipf-hot set and occasional scans.

    Records span ``record_lines`` adjacent lines (adjacent-pair deltas keep
    Figure 11a's +1 dominance); scans sweep whole pages.  ``pc_pool`` sets
    how many distinct lookup sites the store is accessed from — server and
    cloud stacks reach their KV layers from hundreds of call sites, which
    is what pressures signature-indexed prefetcher storage (Figure 5).
    """
    rng = ctx.rng
    base_page = ctx.alloc_pages(hot_pages)
    pc_lookup = ctx.alloc_pcs(pc_pool)
    pc_scan = ctx.alloc_pc()
    records_per_page = LINES_PER_PAGE // record_lines
    mean_size = scan_frac * LINES_PER_PAGE + (1.0 - scan_frac) * record_lines
    emitted = 0
    while emitted < n:
        v = max(16, int((n - emitted) / mean_size) + 2)
        scans = rng.random(v) < scan_frac
        scan_pages = rng.integers(0, hot_pages, v)
        ranks = bounded_zipf(rng, hot_pages, zipf_alpha, v)
        records = rng.integers(0, records_per_page, v)
        write_draw = rng.random((v, record_lines)) < 0.2
        vsizes = np.where(scans, LINES_PER_PAGE, record_lines)
        seg_id, within = _segments(vsizes)
        page_v = np.where(scans, scan_pages, ranks)
        start_v = np.where(scans, 0, records * record_lines)
        offs = start_v[seg_id] + within
        pcs_v = np.where(scans, pc_scan, pc_lookup[records % pc_pool])
        writes = np.where(
            scans[seg_id],
            False,
            write_draw[seg_id, np.minimum(within, record_lines - 1)],
        )
        lines = ((base_page + page_v)[seg_id] << _PAGE_LINE_SHIFT) + offs
        take = min(n - emitted, lines.size)
        ctx.emit_block(pcs_v[seg_id][:take], lines[:take], writes=writes[:take])
        emitted += take


def emit_random(ctx, n, pages=4096):
    """Uniform random line accesses — unlearnable noise."""
    rng = ctx.rng
    base_page = ctx.alloc_pages(pages)
    pc = ctx.alloc_pc()
    page_draws = rng.integers(0, pages, n)
    offset_draws = rng.integers(0, LINES_PER_PAGE, n)
    lines = ((base_page + page_draws) << _PAGE_LINE_SHIFT) + offset_draws
    ctx.emit_block(pc, lines)


def emit_backref_stream(ctx, n, window_pages=32, backref_frac=0.3, pages=256):
    """Compression-style traffic: a forward stream with window back-refs.

    7-zip/bzip2 shape — a sequential scan plus reads at recent offsets
    inside a sliding window.  Back-reference distances are recency-biased
    (LZ matches overwhelmingly point at nearby history), so most back-refs
    land on pages the stream just left.
    """
    rng = ctx.rng
    base = ctx.alloc_pages(pages) << _PAGE_LINE_SHIFT
    pc_stream = ctx.alloc_pc()
    pc_ref = ctx.alloc_pc()
    limit = pages * LINES_PER_PAGE
    window = window_pages * LINES_PER_PAGE
    # Worst case every op is a stream step; back-refs interleave after
    # their step and the tail is trimmed to exactly n.
    refs = rng.random(n) < backref_frac
    # Geometric-ish recency bias: squaring a uniform sample concentrates
    # matches near the stream head while still occasionally reaching the
    # window tail.
    backs = 1 + ((rng.random(n) ** 2) * (window - 1)).astype(np.int64)
    pos = window + np.arange(n, dtype=np.int64)
    counts = np.where(refs, 2, 1)
    seg_id, within = _segments(counts)
    stream_lines = base + pos % limit
    ref_lines = base + (pos + 1 - backs) % limit
    lines = np.where(within == 0, stream_lines[seg_id], ref_lines[seg_id])
    pcs = np.where(within == 0, pc_stream, pc_ref)
    ctx.emit_block(pcs[:n], lines[:n])


def emit_blocks2d(ctx, n, block_lines=8, image_pages=256, reorder=True):
    """Video-codec shape: 2D macro-block sweeps with intra-block reorder."""
    rng = ctx.rng
    base_page = ctx.alloc_pages(image_pages)
    pc_trigger = ctx.alloc_pc()
    pc_body = ctx.alloc_pc()
    visits = -(-n // block_lines)
    page_off = np.arange(visits, dtype=np.int64) % image_pages
    starts = rng.integers(0, LINES_PER_PAGE - block_lines, visits)
    seg_id = np.repeat(np.arange(visits, dtype=np.int64), block_lines)
    within = np.tile(np.arange(block_lines, dtype=np.int64), visits)
    offs = starts[seg_id] + within
    if reorder:
        offs = offs[_local_order(rng, seg_id, within, window=4)]
    pcs = np.where(within == 0, pc_trigger, pc_body)
    lines = ((base_page + page_off)[seg_id] << _PAGE_LINE_SHIFT) + offs
    ctx.emit_block(pcs[:n], lines[:n])
