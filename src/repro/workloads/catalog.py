"""The 75-workload catalog (Table 4's nine categories).

Workload names are ``"<category>.<name>"`` (e.g. ``"ispec06.mcf"``).  Each
entry composes the primitives of :mod:`repro.workloads.generators` into the
access structure the paper attributes to that application class, with a
seed derived from the workload name so traces are reproducible.

``MEMORY_INTENSIVE`` lists the 42 high-MPKI workloads used for Figure 13's
line graph and for the multi-programmed mixes (Section 4.2).
"""

import zlib
from dataclasses import dataclass

from repro.workloads import generators as g
from repro.workloads.generators import GenContext


@dataclass(frozen=True)
class Workload:
    """One named synthetic workload."""

    name: str
    category: str
    intensity: str  # "high" | "medium" | "low"
    builder: callable
    mem_intensive: bool = False

    def seed(self):
        """Stable seed derived from the workload name."""
        return zlib.crc32(self.name.encode())

    def build(self, length):
        """Generate a trace of roughly ``length`` memory operations."""
        ctx = GenContext(self.seed(), self.intensity)
        self.builder(ctx, length)
        return ctx.build()


def _phases(*parts):
    """Compose phase builders: ``parts`` are (fraction, fn(ctx, n))."""
    total = sum(frac for frac, _ in parts)
    if not 0.99 <= total <= 1.01:
        raise ValueError(f"phase fractions must sum to 1, got {total}")

    def build(ctx, n):
        for frac, fn in parts:
            fn(ctx, max(1, int(n * frac)))

    return build


WORKLOADS = {}
CATEGORIES = (
    "Client",
    "Server",
    "HPC",
    "FSPEC06",
    "ISPEC06",
    "FSPEC17",
    "ISPEC17",
    "Cloud",
    "SYSmark",
)


def _add(category, name, builder, intensity="high", mem_intensive=False):
    full_name = f"{category.lower()}.{name}"
    if full_name in WORKLOADS:
        raise ValueError(f"duplicate workload {full_name}")
    WORKLOADS[full_name] = Workload(full_name, category, intensity, builder, mem_intensive)


# --------------------------------------------------------------------------- #
# Client (7): compression, codecs, interactive apps — mixed streams with
# back-references and block layouts; moderate intensity.
# --------------------------------------------------------------------------- #

_add("Client", "7zip-compress",
     _phases((0.7, lambda c, n: g.emit_backref_stream(c, n, backref_frac=0.35)),
             (0.3, lambda c, n: g.emit_streams(c, n, num_streams=2))),
     mem_intensive=True)
_add("Client", "7zip-decompress",
     _phases((0.8, lambda c, n: g.emit_backref_stream(c, n, backref_frac=0.2)),
             (0.2, lambda c, n: g.emit_streams(c, n, num_streams=2, write_frac=0.5))),
     mem_intensive=True)
_add("Client", "vp9-encode",
     _phases((0.6, lambda c, n: g.emit_blocks2d(c, n, block_lines=8)),
             (0.4, lambda c, n: g.emit_streams(c, n, num_streams=3))),
     mem_intensive=False)
_add("Client", "vp9-decode",
     _phases((0.7, lambda c, n: g.emit_blocks2d(c, n, block_lines=6)),
             (0.3, lambda c, n: g.emit_backref_stream(c, n, backref_frac=0.15))),
     intensity="medium")
_add("Client", "photoview",
     _phases((0.6, lambda c, n: g.emit_blocks2d(c, n, block_lines=12, reorder=False)),
             (0.4, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=6, density=0.3))),
     intensity="medium")
_add("Client", "browser",
     _phases((0.5, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=12, density=0.15,
                                                       pc_variants=8)),
             (0.3, lambda c, n: g.emit_kv(c, n, hot_pages=256, pc_pool=32)),
             (0.2, lambda c, n: g.emit_random(c, n, pages=1024))),
     intensity="medium")
_add("Client", "office-mix",
     _phases((0.5, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=10, density=0.2,
                                                       pc_variants=6)),
             (0.5, lambda c, n: g.emit_backref_stream(c, n, backref_frac=0.1))),
     intensity="low")

# --------------------------------------------------------------------------- #
# Server (8): huge code footprints (TPC-C), transaction processing, big
# data on JVM — many trigger contexts, reordered layouts, scans.
# --------------------------------------------------------------------------- #

_add("Server", "tpcc-1",
     # Context count scales with trace length so trigger PCs recur a
     # realistic ~1-2 times regardless of run scale (the paper: ">4000
     # trigger PCs per kilo instructions" — only a large PHT holds them).
     _phases((0.7, lambda c, n: g.emit_code_heavy(
                 c, n, num_contexts=max(300, min(4000, n // 24)), density=0.12)),
             (0.3, lambda c, n: g.emit_kv(c, n, hot_pages=768, zipf_alpha=0.9,
                                          pc_pool=32))),
     mem_intensive=True)
_add("Server", "tpcc-2",
     _phases((0.6, lambda c, n: g.emit_code_heavy(
                 c, n, num_contexts=max(350, min(6000, n // 18)), density=0.1)),
             (0.4, lambda c, n: g.emit_kv(c, n, hot_pages=1024, zipf_alpha=0.8,
                                          pc_pool=32))),
     mem_intensive=True)
_add("Server", "specjbb",
     _phases((0.5, lambda c, n: g.emit_kv(c, n, hot_pages=512, record_lines=4,
                                          pc_pool=32)),
             (0.3, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=24, density=0.2,
                                                       pc_variants=8)),
             (0.2, lambda c, n: g.emit_streams(c, n, num_streams=2))),
     mem_intensive=True)
_add("Server", "jenterprise",
     _phases((0.5, lambda c, n: g.emit_code_heavy(
                 c, n, num_contexts=max(250, min(1500, n // 30)), density=0.15)),
             (0.5, lambda c, n: g.emit_kv(c, n, hot_pages=640, pc_pool=32))),
     intensity="medium")
_add("Server", "spark-pagerank",
     _phases((0.5, lambda c, n: g.emit_streams(c, n, num_streams=4)),
             (0.3, lambda c, n: g.emit_sparse_global(c, n, deltas=(0, 1, 10, 11, 24, 25))),
             (0.2, lambda c, n: g.emit_pointer_chase(c, n, working_set_pages=1024))),
     mem_intensive=True)
_add("Server", "spark-sql",
     _phases((0.6, lambda c, n: g.emit_streams(c, n, num_streams=6)),
             (0.4, lambda c, n: g.emit_kv(c, n, hot_pages=512, scan_frac=0.15))),
     mem_intensive=False)
_add("Server", "webserver",
     _phases((0.6, lambda c, n: g.emit_kv(c, n, hot_pages=384, zipf_alpha=1.3,
                                          pc_pool=32)),
             (0.4, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=16, density=0.12,
                                                       pc_variants=6))),
     intensity="medium")
_add("Server", "mailserver",
     _phases((0.5, lambda c, n: g.emit_kv(c, n, hot_pages=256)),
             (0.5, lambda c, n: g.emit_backref_stream(c, n, backref_frac=0.1))),
     intensity="low")

# --------------------------------------------------------------------------- #
# HPC (9): dense streaming, stencils, banded solvers — SPP's home turf,
# bandwidth-hungry (paper: DSPatch+SPP gains 26% on NPB).
# --------------------------------------------------------------------------- #

_add("HPC", "linpack",
     _phases((0.8, lambda c, n: g.emit_streams(c, n, num_streams=6, write_frac=0.25)),
             (0.2, lambda c, n: g.emit_strided(c, n, stride_lines=8))),
     mem_intensive=True)
_add("HPC", "npb-cg",
     _phases((0.5, lambda c, n: g.emit_streams(c, n, num_streams=4)),
             (0.5, lambda c, n: g.emit_sparse_global(c, n, deltas=(0, 1, 8, 9, 22, 23), reorder=True))),
     mem_intensive=True)
_add("HPC", "npb-ft",
     _phases((0.6, lambda c, n: g.emit_strided(c, n, stride_lines=16, pages=256)),
             (0.4, lambda c, n: g.emit_streams(c, n, num_streams=4))),
     mem_intensive=True)
_add("HPC", "npb-mg",
     _phases((0.6, lambda c, n: g.emit_stencil(c, n, arrays=3)),
             (0.4, lambda c, n: g.emit_strided(c, n, stride_lines=2))),
     mem_intensive=True)
_add("HPC", "npb-bt",
     _phases((0.7, lambda c, n: g.emit_stencil(c, n, arrays=4)),
             (0.3, lambda c, n: g.emit_streams(c, n, num_streams=5))),
     mem_intensive=True)
_add("HPC", "parsec-fluid",
     _phases((0.6, lambda c, n: g.emit_stencil(c, n, arrays=3)),
             (0.4, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=4, density=0.5,
                                                       reorder=False))),
     mem_intensive=False)
_add("HPC", "parsec-stream",
     _phases((1.0, lambda c, n: g.emit_streams(c, n, num_streams=8, write_frac=0.3)),),
     mem_intensive=True)
_add("HPC", "accel-lbm",
     _phases((0.8, lambda c, n: g.emit_streams(c, n, num_streams=7, write_frac=0.4)),
             (0.2, lambda c, n: g.emit_stencil(c, n, arrays=2))),
     mem_intensive=True)
_add("HPC", "mpi-halo",
     _phases((0.5, lambda c, n: g.emit_streams(c, n, num_streams=3)),
             (0.5, lambda c, n: g.emit_blocks2d(c, n, block_lines=16, reorder=False))),
     intensity="medium")

# --------------------------------------------------------------------------- #
# FSPEC06 (9): floating-point SPEC 2006 — streaming + strided dominate.
# --------------------------------------------------------------------------- #

_add("FSPEC06", "sphinx3",
     _phases((0.7, lambda c, n: g.emit_streams(c, n, num_streams=3)),
             (0.3, lambda c, n: g.emit_kv(c, n, hot_pages=256, record_lines=2))),
     mem_intensive=True)
_add("FSPEC06", "soplex",
     _phases((0.5, lambda c, n: g.emit_strided(c, n, stride_lines=3)),
             (0.5, lambda c, n: g.emit_sparse_global(c, n, deltas=(0, 1, 6, 7, 14, 15)))),
     mem_intensive=True)
_add("FSPEC06", "gemsfdtd",
     _phases((0.7, lambda c, n: g.emit_stencil(c, n, arrays=4)),
             (0.3, lambda c, n: g.emit_strided(c, n, stride_lines=32, pages=512))),
     mem_intensive=True)
_add("FSPEC06", "leslie3d",
     _phases((0.8, lambda c, n: g.emit_stencil(c, n, arrays=3)),
             (0.2, lambda c, n: g.emit_streams(c, n, num_streams=3))),
     mem_intensive=True)
_add("FSPEC06", "libquantum",
     _phases((1.0, lambda c, n: g.emit_streams(c, n, num_streams=1, pages_per_stream=512)),),
     mem_intensive=True)
_add("FSPEC06", "milc",
     _phases((0.6, lambda c, n: g.emit_streams(c, n, num_streams=4)),
             (0.4, lambda c, n: g.emit_strided(c, n, stride_lines=6))),
     mem_intensive=False)
_add("FSPEC06", "cactus",
     _phases((0.7, lambda c, n: g.emit_stencil(c, n, arrays=5)),
             (0.3, lambda c, n: g.emit_strided(c, n, stride_lines=4))),
     intensity="medium")
_add("FSPEC06", "zeusmp",
     _phases((0.6, lambda c, n: g.emit_stencil(c, n, arrays=3)),
             (0.4, lambda c, n: g.emit_streams(c, n, num_streams=2))),
     intensity="medium")
_add("FSPEC06", "bwaves",
     _phases((0.8, lambda c, n: g.emit_streams(c, n, num_streams=5, write_frac=0.2)),
             (0.2, lambda c, n: g.emit_strided(c, n, stride_lines=2))),
     mem_intensive=True)

# --------------------------------------------------------------------------- #
# ISPEC06 (8): integer SPEC 2006 — pointer chasing (mcf), mixed phases
# (gcc), irregular containers (omnetpp).
# --------------------------------------------------------------------------- #

_add("ISPEC06", "gcc",
     _phases((0.4, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=20, density=0.15)),
             (0.3, lambda c, n: g.emit_backref_stream(c, n, backref_frac=0.2)),
             (0.3, lambda c, n: g.emit_kv(c, n, hot_pages=384))),
     mem_intensive=True)
_add("ISPEC06", "mcf",
     _phases((0.5, lambda c, n: g.emit_pointer_chase(c, n, working_set_pages=768,
                                                     spatial_hint=0.6)),
             (0.3, lambda c, n: g.emit_streams(c, n, num_streams=2,
                                               pages_per_stream=256)),
             (0.2, lambda c, n: g.emit_sparse_global(c, n, deltas=(0, 1, 8, 17)))),
     mem_intensive=True)
_add("ISPEC06", "omnetpp",
     _phases((0.6, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=16, density=0.12,
                                                       layout_zipf=0.8)),
             (0.4, lambda c, n: g.emit_pointer_chase(c, n, working_set_pages=1024,
                                                     spatial_hint=0.3))),
     mem_intensive=True)
_add("ISPEC06", "astar",
     _phases((0.5, lambda c, n: g.emit_pointer_chase(c, n, working_set_pages=768,
                                                     spatial_hint=0.4)),
             (0.5, lambda c, n: g.emit_kv(c, n, hot_pages=256))),
     mem_intensive=False)
_add("ISPEC06", "bzip2",
     _phases((0.9, lambda c, n: g.emit_backref_stream(c, n, backref_frac=0.4)),
             (0.1, lambda c, n: g.emit_random(c, n, pages=512))),
     intensity="medium")
_add("ISPEC06", "hmmer",
     _phases((0.8, lambda c, n: g.emit_strided(c, n, stride_lines=1, pages=64)),
             (0.2, lambda c, n: g.emit_kv(c, n, hot_pages=128))),
     intensity="low")
_add("ISPEC06", "sjeng",
     _phases((0.6, lambda c, n: g.emit_kv(c, n, hot_pages=512, zipf_alpha=0.7)),
             (0.4, lambda c, n: g.emit_random(c, n, pages=2048))),
     intensity="low")
_add("ISPEC06", "xalancbmk06",
     _phases((0.7, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=14, density=0.18)),
             (0.3, lambda c, n: g.emit_pointer_chase(c, n, working_set_pages=512,
                                                     spatial_hint=0.4))),
     mem_intensive=True)

# --------------------------------------------------------------------------- #
# FSPEC17 (9): floating-point SPEC 2017.
# --------------------------------------------------------------------------- #

_add("FSPEC17", "lbm17",
     _phases((0.9, lambda c, n: g.emit_streams(c, n, num_streams=8, write_frac=0.45)),
             (0.1, lambda c, n: g.emit_stencil(c, n, arrays=2))),
     mem_intensive=True)
_add("FSPEC17", "cam4",
     _phases((0.6, lambda c, n: g.emit_stencil(c, n, arrays=4)),
             (0.4, lambda c, n: g.emit_strided(c, n, stride_lines=5))),
     mem_intensive=False)
_add("FSPEC17", "nab",
     _phases((0.5, lambda c, n: g.emit_streams(c, n, num_streams=3)),
             (0.5, lambda c, n: g.emit_sparse_global(c, n, deltas=(0, 1, 12, 13, 28, 29)))),
     intensity="medium")
_add("FSPEC17", "pop2",
     _phases((0.7, lambda c, n: g.emit_stencil(c, n, arrays=3)),
             (0.3, lambda c, n: g.emit_streams(c, n, num_streams=4))),
     mem_intensive=True)
_add("FSPEC17", "roms",
     _phases((0.8, lambda c, n: g.emit_stencil(c, n, arrays=4)),
             (0.2, lambda c, n: g.emit_strided(c, n, stride_lines=3))),
     mem_intensive=True)
_add("FSPEC17", "fotonik3d",
     _phases((0.8, lambda c, n: g.emit_streams(c, n, num_streams=6, write_frac=0.3)),
             (0.2, lambda c, n: g.emit_strided(c, n, stride_lines=16, pages=512))),
     mem_intensive=True)
_add("FSPEC17", "wrf",
     _phases((0.6, lambda c, n: g.emit_stencil(c, n, arrays=3)),
             (0.4, lambda c, n: g.emit_blocks2d(c, n, block_lines=10, reorder=False))),
     intensity="medium")
_add("FSPEC17", "cactubssn",
     _phases((0.7, lambda c, n: g.emit_stencil(c, n, arrays=5)),
             (0.3, lambda c, n: g.emit_streams(c, n, num_streams=3))),
     mem_intensive=True)
_add("FSPEC17", "namd",
     _phases((0.6, lambda c, n: g.emit_kv(c, n, hot_pages=96, record_lines=4)),
             (0.4, lambda c, n: g.emit_streams(c, n, num_streams=2))),
     intensity="low")

# --------------------------------------------------------------------------- #
# ISPEC17 (8): integer SPEC 2017 — the category where reordered spatial
# layouts make SPP lose to bit-pattern prefetching (Figure 4 vs 12).
# --------------------------------------------------------------------------- #

_add("ISPEC17", "omnetpp17",
     _phases((0.7, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=12, density=0.14,
                                                       layout_zipf=0.7)),
             (0.3, lambda c, n: g.emit_pointer_chase(c, n, working_set_pages=1024,
                                                     spatial_hint=0.4))),
     mem_intensive=True)
_add("ISPEC17", "xalancbmk17",
     _phases((0.8, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=10, density=0.2,
                                                       pc_variants=4)),
             (0.2, lambda c, n: g.emit_kv(c, n, hot_pages=256, pc_pool=32))),
     mem_intensive=True)
_add("ISPEC17", "leela",
     _phases((0.6, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=8, density=0.1,
                                                       trigger_jitter=True)),
             (0.4, lambda c, n: g.emit_kv(c, n, hot_pages=192, zipf_alpha=1.0))),
     intensity="medium")
_add("ISPEC17", "x264",
     _phases((0.7, lambda c, n: g.emit_blocks2d(c, n, block_lines=8)),
             (0.3, lambda c, n: g.emit_backref_stream(c, n, backref_frac=0.25))),
     intensity="medium")
_add("ISPEC17", "deepsjeng",
     _phases((0.6, lambda c, n: g.emit_kv(c, n, hot_pages=768, zipf_alpha=0.8)),
             (0.4, lambda c, n: g.emit_random(c, n, pages=2048))),
     intensity="medium")
_add("ISPEC17", "mcf17",
     _phases((0.6, lambda c, n: g.emit_pointer_chase(c, n, working_set_pages=2048,
                                                     spatial_hint=0.5)),
             (0.4, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=8, density=0.12))),
     mem_intensive=True)
_add("ISPEC17", "gcc17",
     _phases((0.5, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=24, density=0.15,
                                                       pc_variants=4)),
             (0.5, lambda c, n: g.emit_backref_stream(c, n, backref_frac=0.2))),
     mem_intensive=True)
_add("ISPEC17", "xz",
     _phases((0.8, lambda c, n: g.emit_backref_stream(c, n, backref_frac=0.5,
                                                      window_pages=64)),
             (0.2, lambda c, n: g.emit_streams(c, n, num_streams=2))),
     mem_intensive=True)

# --------------------------------------------------------------------------- #
# Cloud (9): big-data and NoSQL — recurring record layouts under heavy
# reordering; the paper's BigBench shows DSPatch+SPP gaining 20%.
# --------------------------------------------------------------------------- #

_add("Cloud", "bigbench",
     _phases((0.6, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=10, density=0.25,
                                                       layout_zipf=0.6, pc_variants=12)),
             (0.4, lambda c, n: g.emit_kv(c, n, hot_pages=1024, scan_frac=0.1,
                                          pc_pool=32))),
     mem_intensive=True)
_add("Cloud", "cassandra-read",
     _phases((0.7, lambda c, n: g.emit_kv(c, n, hot_pages=1024, record_lines=4,
                                          zipf_alpha=1.0, pc_pool=32)),
             (0.3, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=12, density=0.2,
                                                       pc_variants=8))),
     mem_intensive=True)
_add("Cloud", "cassandra-write",
     _phases((0.6, lambda c, n: g.emit_streams(c, n, num_streams=3, write_frac=0.6)),
             (0.4, lambda c, n: g.emit_kv(c, n, hot_pages=512, record_lines=3))),
     mem_intensive=False)
_add("Cloud", "hbase",
     _phases((0.5, lambda c, n: g.emit_kv(c, n, hot_pages=768, record_lines=2,
                                          pc_pool=32)),
             (0.5, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=16, density=0.18,
                                                       pc_variants=8))),
     mem_intensive=True)
_add("Cloud", "kmeans",
     _phases((0.8, lambda c, n: g.emit_streams(c, n, num_streams=5)),
             (0.2, lambda c, n: g.emit_strided(c, n, stride_lines=4))),
     mem_intensive=True)
_add("Cloud", "streaming",
     _phases((0.7, lambda c, n: g.emit_streams(c, n, num_streams=4, write_frac=0.3)),
             (0.3, lambda c, n: g.emit_kv(c, n, hot_pages=384, scan_frac=0.2))),
     mem_intensive=True)
_add("Cloud", "memcached",
     _phases((0.8, lambda c, n: g.emit_kv(c, n, hot_pages=2048, record_lines=2,
                                          zipf_alpha=1.2, pc_pool=32)),
             (0.2, lambda c, n: g.emit_random(c, n, pages=2048))),
     mem_intensive=True)
_add("Cloud", "nosql-scan",
     _phases((0.6, lambda c, n: g.emit_kv(c, n, hot_pages=512, scan_frac=0.4)),
             (0.4, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=8, density=0.3,
                                                       reorder=True))),
     mem_intensive=False)
_add("Cloud", "analytics",
     _phases((0.5, lambda c, n: g.emit_streams(c, n, num_streams=6)),
             (0.5, lambda c, n: g.emit_sparse_global(c, n, deltas=(0, 1, 12, 13, 26, 27)))),
     intensity="medium")

# --------------------------------------------------------------------------- #
# SYSmark (8): office productivity — recurring document/object layouts
# with reordering and jitter; the paper's SYSmark-excel gains 16%.
# --------------------------------------------------------------------------- #

_add("SYSmark", "excel",
     _phases((0.7, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=8, density=0.25,
                                                       trigger_jitter=True, pc_variants=6)),
             (0.3, lambda c, n: g.emit_streams(c, n, num_streams=2))),
     mem_intensive=True)
_add("SYSmark", "word",
     _phases((0.6, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=12, density=0.18,
                                                       pc_variants=6)),
             (0.4, lambda c, n: g.emit_backref_stream(c, n, backref_frac=0.15))),
     intensity="medium")
_add("SYSmark", "photoshop",
     _phases((0.6, lambda c, n: g.emit_blocks2d(c, n, block_lines=12)),
             (0.4, lambda c, n: g.emit_streams(c, n, num_streams=4))),
     mem_intensive=False)
_add("SYSmark", "sketchup",
     _phases((0.5, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=10, density=0.2,
                                                       trigger_jitter=True)),
             (0.5, lambda c, n: g.emit_stencil(c, n, arrays=2))),
     mem_intensive=True)
_add("SYSmark", "powerpoint",
     _phases((0.6, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=14, density=0.15,
                                                       pc_variants=6)),
             (0.4, lambda c, n: g.emit_kv(c, n, hot_pages=256, pc_pool=32))),
     intensity="medium")
_add("SYSmark", "outlook",
     _phases((0.5, lambda c, n: g.emit_kv(c, n, hot_pages=384, zipf_alpha=1.1,
                                          pc_pool=32)),
             (0.5, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=18, density=0.12,
                                                       pc_variants=8))),
     intensity="medium")
_add("SYSmark", "media-mix",
     _phases((0.5, lambda c, n: g.emit_blocks2d(c, n, block_lines=8)),
             (0.5, lambda c, n: g.emit_backref_stream(c, n, backref_frac=0.2))),
     intensity="medium")
_add("SYSmark", "browser-productivity",
     _phases((0.6, lambda c, n: g.emit_spatial_layouts(c, n, num_layouts=20, density=0.14,
                                                       layout_zipf=0.9, pc_variants=10)),
             (0.4, lambda c, n: g.emit_kv(c, n, hot_pages=512, pc_pool=32))),
     mem_intensive=True)


#: The 42 high-MPKI workloads (Section 4.2) — used for Figure 13 and the
#: multi-programmed mixes.
MEMORY_INTENSIVE = tuple(sorted(name for name, w in WORKLOADS.items() if w.mem_intensive))

_EXPECTED_TOTAL = 75
if len(WORKLOADS) != _EXPECTED_TOTAL:
    raise AssertionError(f"catalog has {len(WORKLOADS)} workloads, expected {_EXPECTED_TOTAL}")
if len(MEMORY_INTENSIVE) != 42:
    raise AssertionError(
        f"memory-intensive subset has {len(MEMORY_INTENSIVE)} workloads, expected 42"
    )


def workloads_in_category(category):
    """All workload names in ``category``, sorted."""
    if category not in CATEGORIES:
        raise ValueError(f"unknown category {category!r} (known: {', '.join(CATEGORIES)})")
    return sorted(name for name, w in WORKLOADS.items() if w.category == category)


def build_trace(name, length):
    """Generate the named workload's trace with ~``length`` memory ops."""
    try:
        workload = WORKLOADS[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}") from None
    return workload.build(length)
