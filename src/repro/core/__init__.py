"""DSPatch — the paper's primary contribution.

The public surface of this package is:

- :class:`repro.core.dspatch.DSPatch` — the full Section 3 prefetcher.
- :class:`repro.core.variants.AlwaysCovP` / :class:`repro.core.variants.ModCovP`
  — the Section 5.5 ablation variants.
- :mod:`repro.core.bitpattern` — anchored-rotation / compression / quartile
  primitives (Sections 3.3, 3.5, 3.8).
- :class:`repro.core.page_buffer.PageBuffer` and
  :class:`repro.core.spt.SignaturePredictionTable` — the two hardware
  structures of Figure 7.
"""

from repro.core.bitpattern import (
    anchor_pattern,
    compress_pattern,
    expand_pattern,
    pattern_from_offsets,
    popcount,
    quantize_quartile,
    rotate_left,
    rotate_right,
    unanchor_pattern,
)
from repro.core.dspatch import DSPatch, DSPatchConfig
from repro.core.page_buffer import PageBuffer, PageBufferEntry
from repro.core.selection import PatternChoice, select_pattern
from repro.core.spt import SignaturePredictionTable, SptEntry, fold_xor_hash
from repro.core.variants import AlwaysCovP, ModCovP

__all__ = [
    "AlwaysCovP",
    "DSPatch",
    "DSPatchConfig",
    "ModCovP",
    "PageBuffer",
    "PageBufferEntry",
    "PatternChoice",
    "SignaturePredictionTable",
    "SptEntry",
    "anchor_pattern",
    "compress_pattern",
    "expand_pattern",
    "fold_xor_hash",
    "pattern_from_offsets",
    "popcount",
    "quantize_quartile",
    "rotate_left",
    "rotate_right",
    "select_pattern",
    "unanchor_pattern",
]
