"""Page Buffer (PB) — DSPatch's access-observation structure.

Per Section 3.3 and Table 1: 64 entries, each tracking one of the
most-recently-accessed 4KB physical pages at the L2 level.  An entry
accumulates the page's observed access bit-pattern (64 bits, one per 64B
line) and records up to two trigger (PC, offset) pairs — the first access
to each 2KB segment (Section 3.7).  The stored PC is already the folded
8-bit SPT signature (Table 1 budgets 8 bits per PC).

On eviction the entry is handed to the learning path: per trigger, the
observed pattern is compressed to 128B granularity, anchored (rotated) to
the trigger offset, and folded into the trigger's SPT entry.
"""

from repro.constants import LINES_PER_PAGE


class PageBufferEntry:
    """Observed state of one 4KB page."""

    __slots__ = ("page", "pattern", "triggers")

    def __init__(self, page):
        self.page = page
        self.pattern = 0
        #: Per 2KB segment: (folded trigger PC signature, line offset) or None.
        self.triggers = [None, None]

    def record(self, line_offset):
        """Accumulate one accessed line into the page's bit-pattern."""
        if not 0 <= line_offset < LINES_PER_PAGE:
            raise ValueError(f"line offset {line_offset} outside page")
        self.pattern |= 1 << line_offset

    def set_trigger(self, segment, pc_signature, line_offset):
        """Record a segment's trigger; only the first one sticks."""
        if self.triggers[segment] is None:
            self.triggers[segment] = (pc_signature, line_offset)
            return True
        return False


class PageBuffer:
    """LRU-managed buffer of the 64 most recently accessed pages."""

    def __init__(self, entries=64):
        if entries <= 0:
            raise ValueError("page buffer needs at least one entry")
        self.entries = entries
        self._pages = {}  # page -> PageBufferEntry, dict order = LRU order
        self.evictions = 0

    def __len__(self):
        return len(self._pages)

    def __contains__(self, page):
        return page in self._pages

    def get(self, page):
        """Return the entry for ``page`` (refreshing LRU) or ``None``."""
        entry = self._pages.pop(page, None)
        if entry is not None:
            self._pages[page] = entry
        return entry

    def insert(self, page):
        """Allocate an entry for ``page``; returns (entry, evicted_entry)."""
        if page in self._pages:
            raise ValueError(f"page {page:#x} already tracked")
        evicted = None
        if len(self._pages) >= self.entries:
            oldest = next(iter(self._pages))
            evicted = self._pages.pop(oldest)
            self.evictions += 1
        entry = PageBufferEntry(page)
        self._pages[page] = entry
        return entry, evicted

    def drain(self):
        """Evict everything (end-of-run learning flush); yields entries."""
        entries = list(self._pages.values())
        self._pages.clear()
        self.evictions += len(entries)
        return entries

    def storage_bits(self):
        """Table 1's stated budget: 158 bits per entry, 64 entries.

        The paper's field list (page 36 + pattern 64 + 2 x [PC 8 + offset
        6]) sums to 128 bits; Table 1 nevertheless states 158 bits per
        entry and a 10112-bit PB total.  We follow the stated total and
        attribute the 30-bit difference to per-entry bookkeeping (valid,
        LRU, segment-trigger state) the field list omits.
        """
        per_entry = 158
        return self.entries * per_entry
