"""Bit-pattern selection for prefetch generation (Figure 10).

Given the broadcast 2-bit DRAM bandwidth-utilization value and the goodness
measures of the stored patterns, decide which pattern drives prefetching:

- utilization >= 75% (bucket 3): use AccP, unless ``MeasureAccP`` is
  saturated (AccP itself is inaccurate) — then prefetch nothing;
- 50% <= utilization < 75% (bucket 2): use AccP if ``MeasureCovP`` is
  saturated (CovP is known bad), otherwise CovP;
- utilization < 50% (buckets 0/1): use CovP; if ``MeasureCovP`` is
  saturated the prefetches are filled at low priority to bound pollution
  (Section 3.6, last paragraph).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class PatternChoice:
    """Outcome of the Figure 10 selection tree."""

    pattern: str  # "cov" | "acc" | "none"
    low_priority: bool = False

    @property
    def prefetches(self):
        return self.pattern != "none"


NO_PREFETCH = PatternChoice("none")

# The decision tree has exactly four distinct outcomes; selection runs per
# trigger half, so the instances are interned rather than re-allocated.
_ACC = PatternChoice("acc")
_COV = PatternChoice("cov")
_COV_LOW = PatternChoice("cov", low_priority=True)


def select_pattern(bw_bucket, measure_covp_saturated, measure_accp_saturated):
    """Apply Figure 10's decision tree; returns a :class:`PatternChoice`."""
    if not 0 <= bw_bucket <= 3:
        raise ValueError("bandwidth bucket must be in 0..3")
    if bw_bucket == 3:
        if measure_accp_saturated:
            return NO_PREFETCH
        return _ACC
    if bw_bucket == 2:
        if measure_covp_saturated:
            return _ACC
        return _COV
    return _COV_LOW if measure_covp_saturated else _COV
