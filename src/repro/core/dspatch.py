"""DSPatch — the Dual Spatial Pattern Prefetcher (Section 3).

Put together from the pieces in this package:

1. Training accesses (L1 misses, Section 4.1) accumulate into the
   :class:`~repro.core.page_buffer.PageBuffer` (Figure 7, step 1).
2. The first access to each 2KB segment of a page is a *trigger*
   (step 2): its folded PC indexes the
   :class:`~repro.core.spt.SignaturePredictionTable`, retrieving the dual
   modulated patterns and their goodness measures (step 3).
3. :func:`~repro.core.selection.select_pattern` picks CovP or AccP using
   the broadcast 2-bit bandwidth-utilization value (step 4, Figure 10);
   the chosen anchored pattern is rotated to the trigger offset and each
   set 128B bit expands to two 64B line prefetches (Section 3.8).
4. On PB eviction (step 5) the observed pattern is compressed, anchored
   per trigger, and folded into the SPT via
   :meth:`~repro.core.spt.SptEntry.update_half` — ORs grow CovP, the AND
   rewrites AccP, and the Measure counters track goodness (Section 3.6).

A segment-0 trigger predicts both 16-bit halves (the full 4KB page); a
segment-1 trigger predicts only its first half — the 2KB region relative
to the trigger (Section 3.7).

Design-choice knobs (the ablation benches exercise these):

- ``compressed=False`` stores uncompressed 64-bit patterns at 64B
  granularity, doubling SPT pattern storage (the Section 3.8 trade-off);
- :class:`~repro.core.variants.NoAnchorDSPatch` stores page-absolute
  patterns instead of trigger-anchored ones (the Figure 2 claim);
- :class:`~repro.core.variants.SingleTriggerDSPatch` allows only one
  trigger per 4KB page (the Section 3.7 claim).

This class is also the *executable spec* for a compiled training twin:
:mod:`repro.kernel.cgen` emits a C transliteration of ``train`` (PB
insert/evict, SPT dual-pattern update, bandwidth-bucketed pattern select),
selected at run time by ``kernel/state.py:_scheme_kind`` for
default-config instances — alone or as the second component of the
``spp+dspatch`` composite — and pinned bit-identical by
``tests/test_kernel_parity.py``.  Behavioral edits here must be mirrored
in the C twin.
"""

from dataclasses import dataclass

from repro.constants import (
    COMPRESSED_BITS_PER_PAGE,
    LINE_SHIFT,
    LINES_PER_PAGE,
    LINES_PER_SEGMENT,
    PAGE_SHIFT,
)

# Address-geometry shifts/masks used in the inlined hot path below,
# derived from the constants module so a geometry change propagates.
_LINE_OFF_MASK = LINES_PER_PAGE - 1
_SEGMENT_SHIFT = LINES_PER_SEGMENT.bit_length() - 1
from repro.core.bitpattern import anchor_pattern, compress_pattern, unanchor_pattern
from repro.core.page_buffer import PageBuffer
from repro.core.selection import select_pattern
from repro.core.spt import COUNTER_MAX, SignaturePredictionTable, fold_xor_hash
from repro.prefetchers.base import PrefetchCandidate, Prefetcher


@dataclass(frozen=True)
class DSPatchConfig:
    """DSPatch structure sizes (Table 1 configuration)."""

    pb_entries: int = 64
    spt_entries: int = 256
    pc_signature_bits: int = 8
    #: Cap on prefetches emitted per trigger.  The paper sets no explicit
    #: limit — a segment-0 trigger may predict the whole 4KB page (two
    #: lines per compressed bit = up to 62 lines); the prefetch queue in
    #: the hierarchy provides the physical bound.
    max_candidates_per_trigger: int = 62
    #: Store patterns at 128B granularity (Section 3.8).  ``False`` keeps
    #: full 64B-granularity patterns — double the SPT pattern storage, no
    #: compression-induced overprediction (the ablation of Figure 11).
    compressed: bool = True
    #: Section 3.6's CovP relearn-from-scratch rule.  ``False`` disables
    #: it (the no-reset ablation): stale patterns from a finished program
    #: phase are never replaced.
    covp_reset: bool = True


class DSPatch(Prefetcher):
    """The Dual Spatial Pattern Prefetcher."""

    name = "dspatch"

    def __init__(self, bandwidth, config: DSPatchConfig = None):
        # A fresh config per instance: sharing one default instance across
        # prefetchers is safe only while DSPatchConfig stays frozen — a
        # mutable-default trap for any future field, so avoid the pattern.
        config = config if config is not None else DSPatchConfig()
        self.config = config
        self.bandwidth = bandwidth
        # Pattern geometry: one stored bit covers 2 lines (128B) in the
        # compressed default, 1 line (64B) in the uncompressed ablation.
        self._comp_shift = 1 if config.compressed else 0
        self._bits_per_page = (
            COMPRESSED_BITS_PER_PAGE if config.compressed else LINES_PER_PAGE
        )
        self._half_bits = self._bits_per_page // 2
        self._half_mask = (1 << self._half_bits) - 1
        self.page_buffer = PageBuffer(config.pb_entries)
        self.spt = SignaturePredictionTable(
            config.spt_entries, self._bits_per_page, config.covp_reset
        )
        self.trainings = 0
        self.triggers = 0
        self.predictions_covp = 0
        self.predictions_accp = 0
        self.predictions_suppressed = 0

    # ------------------------------------------------------------ training

    def train(self, cycle, pc, addr, hit):
        self.trainings += 1
        # Inlined page_number / line_offset_in_page / segment_of_line_offset
        # (one call per training access).
        page = addr >> PAGE_SHIFT
        line_off = (addr >> LINE_SHIFT) & _LINE_OFF_MASK
        segment = line_off >> _SEGMENT_SHIFT

        # Inlined PageBuffer.get (dict pop + reinsert refreshes LRU order;
        # couples to PageBuffer's dict-ordered storage by design).
        pages = self.page_buffer._pages
        entry = pages.pop(page, None)
        candidates = ()
        if entry is not None:
            pages[page] = entry
        else:
            entry, evicted = self.page_buffer.insert(page)
            if evicted is not None:
                self._learn(cycle, evicted)
        if self._trigger_allowed(segment) and entry.triggers[segment] is None:
            signature = fold_xor_hash(pc, self.config.pc_signature_bits)
            entry.set_trigger(segment, signature, line_off)
            self.triggers += 1
            candidates = self._predict(cycle, signature, page, line_off, segment)
        entry.pattern |= 1 << line_off
        return candidates

    # ----------------------------------------------------- variant hooks

    def _trigger_allowed(self, segment):
        """Which 2KB segments may trigger (Section 3.7: both)."""
        return True

    def _anchor(self, pattern, trigger_bit):
        """Anchor a page-absolute pattern to the trigger (Section 3.3)."""
        return anchor_pattern(pattern, trigger_bit, self._bits_per_page)

    def _unanchor(self, pattern, trigger_bit):
        """Project a stored anchored pattern back to page positions."""
        return unanchor_pattern(pattern, trigger_bit, self._bits_per_page)

    def _select(self, cycle, spt_entry, half):
        """Figure 10 selection for one half; ablations override this."""
        bucket = self.bandwidth.bucket(cycle)
        return select_pattern(
            bucket,
            spt_entry.covp_saturated(half),
            spt_entry.accp_saturated(half),
        )

    # ------------------------------------------------------------ prediction

    def _predict(self, cycle, signature, page, trigger_line_off, segment):
        spt_entry = self.spt.lookup_by_signature(signature)
        trigger_bit = trigger_line_off >> self._comp_shift

        # Segment-0 triggers predict the whole page (both anchored halves);
        # segment-1 triggers predict only the 2KB region from the trigger
        # (anchored half 0).  Section 3.7.
        halves = (0, 1) if segment == 0 else (0,)
        anchored = 0
        low_priority = False
        trace_emit = self.trace_emit
        for half in halves:
            choice = self._select(cycle, spt_entry, half)
            if trace_emit is not None:
                # The paper's core decision (Figure 10): which dual pattern
                # drives this trigger, under which bandwidth bucket.
                trace_emit(
                    cycle,
                    self.name,
                    f"select={choice.pattern or 'none'} half={half} "
                    f"bw={self.bandwidth.bucket(cycle)}",
                )
            if choice.pattern == "cov":
                chunk = spt_entry.covp_half(half)
                self.predictions_covp += 1
            elif choice.pattern == "acc":
                chunk = spt_entry.accp_half(half)
                self.predictions_accp += 1
            else:
                self.predictions_suppressed += 1
                continue
            low_priority = low_priority or choice.low_priority
            anchored |= (chunk & self._half_mask) << (half * self._half_bits)

        if anchored == 0:
            return ()
        page_pattern = self._unanchor(anchored, trigger_bit)
        # The trigger's own line needs no prefetch, but its 128B companion
        # (the other line of the trigger's compressed bit) does; _expand
        # skips exactly the trigger line.
        return self._expand(page, page_pattern, trigger_line_off, low_priority)

    def _expand(self, page, page_pattern, trigger_line_off, low_priority):
        """Expand stored page-absolute bits into 64B line prefetches.

        Iterates set bits directly (``while p: lsb = p & -p``) rather than
        scanning all 64 positions; the LSB-first walk preserves the
        ascending line order (and the per-trigger cap cutoff) of a full
        positional scan.
        """
        base_line = page << 6
        comp_shift = self._comp_shift
        lines_per_bit = 1 << comp_shift
        out = []
        append = out.append
        cap = self.config.max_candidates_per_trigger
        p = page_pattern & ((1 << self._bits_per_page) - 1)
        while p:
            lsb = p & -p
            p ^= lsb
            first_line = (lsb.bit_length() - 1) << comp_shift
            for line_off in range(first_line, first_line + lines_per_bit):
                if line_off == trigger_line_off:
                    continue
                append(PrefetchCandidate(base_line + line_off, low_priority))
                if len(out) >= cap:
                    return out
        return out

    # ------------------------------------------------------------- learning

    def _observed_pattern(self, pb_pattern):
        """The PB's 64-line observation at this instance's granularity."""
        if self.config.compressed:
            return compress_pattern(pb_pattern, LINES_PER_PAGE)
        return pb_pattern

    def _learn(self, cycle, pb_entry):
        program = self._observed_pattern(pb_entry.pattern)
        bw_bucket = self.bandwidth.bucket(cycle)
        for segment, trigger in enumerate(pb_entry.triggers):
            if trigger is None:
                continue
            signature, trigger_line_off = trigger
            anchored = self._anchor(program, trigger_line_off >> self._comp_shift)
            spt_entry = self.spt.lookup_by_signature(signature)
            halves = (0, 1) if segment == 0 else (0,)
            for half in halves:
                program_half = (anchored >> (half * self._half_bits)) & self._half_mask
                spt_entry.update_half(half, program_half, bw_bucket)

    def flush_training(self, cycle=0):
        """Learn from every page still resident in the PB (end of run).

        ``cycle`` should be the run's final cycle: the Measure counters
        update under the bandwidth bucket broadcast at learn time
        (Section 3.6), so draining with the default ``cycle=0`` would read
        the bucket at the *start* of the run.  The default stays for
        callers that use a constant bandwidth source.
        """
        for entry in self.page_buffer.drain():
            self._learn(cycle, entry)

    # -------------------------------------------------------------- storage

    def storage_breakdown(self):
        return {
            "page-buffer": self.page_buffer.storage_bits(),
            "signature-prediction-table": self.spt.storage_bits(),
        }

    def reset(self):
        self.page_buffer = PageBuffer(self.config.pb_entries)
        self.spt = SignaturePredictionTable(
            self.config.spt_entries, self._bits_per_page, self.config.covp_reset
        )


# Re-export for introspection convenience.
MEASURE_COUNTER_MAX = COUNTER_MAX
