"""Bit-pattern primitives for DSPatch.

Sections of the paper implemented here:

- Section 3.3 (anchored spatial bit-patterns): a page access pattern is
  *anchored* by rotating it so the trigger access's bit lands at position 0.
  Anchoring is a rotation, not a shift, so bits past the page end wrap around
  (Figure 2's "rotated left" example).
- Section 3.5 (quantifying accuracy and coverage): popcount ratios quantized
  into quartiles with shift-and-compare semantics (Figure 8).
- Section 3.8 (128B-granularity compression): each bit of a compressed
  pattern covers two adjacent 64B lines.
"""

from repro.constants import COMPRESSED_BITS_PER_PAGE, LINES_PER_PAGE


def popcount(pattern):
    """Number of set bits in ``pattern`` (PopCount in Figure 8)."""
    return int(pattern).bit_count()


def _mask(width):
    return (1 << width) - 1


def rotate_left(pattern, amount, width):
    """Rotate ``pattern`` left by ``amount`` within ``width`` bits.

    Bit ``i`` of the input becomes bit ``(i + amount) % width`` of the output.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    amount %= width
    mask = _mask(width)
    pattern &= mask
    if amount == 0:
        return pattern
    return ((pattern << amount) | (pattern >> (width - amount))) & mask


def rotate_right(pattern, amount, width):
    """Rotate ``pattern`` right by ``amount`` within ``width`` bits.

    Bit ``i`` of the input becomes bit ``(i - amount) % width`` of the output.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    amount %= width
    return rotate_left(pattern, width - amount if amount else 0, width)


def anchor_pattern(pattern, trigger_bit, width):
    """Anchor a page-absolute ``pattern`` to its trigger access.

    After anchoring, the trigger's bit sits at position 0 and every other bit
    encodes its (wrapped) delta from the trigger — the representation of
    Figure 2 that exposes both local and global deltas.
    """
    return rotate_right(pattern, trigger_bit, width)


def unanchor_pattern(anchored, trigger_bit, width):
    """Project an anchored pattern back to page-absolute bit positions.

    Inverse of :func:`anchor_pattern`: bit 0 (the trigger) maps back to
    ``trigger_bit``.
    """
    return rotate_left(anchored, trigger_bit, width)


def compress_pattern(pattern64, width=LINES_PER_PAGE):
    """Compress a 64B-granularity pattern to 128B granularity (Section 3.8).

    Bit ``i`` of the result is the OR of bits ``2i`` and ``2i + 1`` of the
    input, so each compressed bit covers two adjacent cache lines.
    """
    if width % 2:
        raise ValueError("width must be even to compress 2:1")
    # Iterate set bits only (while p: lsb = p & -p) instead of scanning
    # all bit positions; each set bit maps to compressed bit (pos >> 1).
    p = int(pattern64) & _mask(width)
    out = 0
    while p:
        lsb = p & -p
        out |= 1 << ((lsb.bit_length() - 1) >> 1)
        p ^= lsb
    return out


def expand_pattern(pattern32, width=COMPRESSED_BITS_PER_PAGE):
    """Expand a 128B-granularity pattern back to 64B granularity.

    Each set compressed bit expands to both of its 64B lines; this is the
    source of the bounded (< 50%, measured ~20%) over-prediction the paper
    quantifies in Figure 11(b).
    """
    p = int(pattern32) & _mask(width)
    out = 0
    while p:
        lsb = p & -p
        out |= 3 << (2 * (lsb.bit_length() - 1))
        p ^= lsb
    return out


def quantize_quartile(numerator, denominator):
    """Quantize ``numerator / denominator`` into quartile buckets 0..3.

    Bucket semantics follow Figure 8: 0 → <25%, 1 → 25-50%, 2 → 50-75%,
    3 → >=75%.  Implemented with shift-and-compare (multiply by 4) exactly as
    cheap hardware would.  A zero denominator quantizes to bucket 0 — there
    is no evidence of goodness.
    """
    if denominator <= 0:
        return 0
    scaled = 4 * numerator
    if scaled >= 3 * denominator:
        return 3
    if scaled >= 2 * denominator:
        return 2
    if scaled >= denominator:
        return 1
    return 0


def prediction_goodness(predicted, program):
    """Quantized accuracy and coverage of a predicted pattern (Figure 8).

    Returns ``(accuracy_quartile, coverage_quartile)`` where accuracy is
    ``popcount(pred & prog) / popcount(pred)`` and coverage is
    ``popcount(pred & prog) / popcount(prog)``.
    """
    c_acc = popcount(predicted & program)
    c_pred = popcount(predicted)
    c_real = popcount(program)
    return quantize_quartile(c_acc, c_pred), quantize_quartile(c_acc, c_real)


def pattern_from_offsets(offsets, width=LINES_PER_PAGE):
    """Build a bit-pattern from an iterable of bit offsets."""
    out = 0
    for off in offsets:
        if not 0 <= off < width:
            raise ValueError(f"offset {off} outside pattern width {width}")
        out |= 1 << off
    return out


def offsets_from_pattern(pattern, width=LINES_PER_PAGE):
    """Return the sorted list of set-bit offsets in ``pattern``."""
    p = int(pattern) & _mask(width)
    out = []
    while p:
        lsb = p & -p
        out.append(lsb.bit_length() - 1)
        p ^= lsb
    return out
