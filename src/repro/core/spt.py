"""Signature Prediction Table (SPT) — DSPatch's pattern store.

Per Sections 3.4 and 3.6 and Table 1: a 256-entry *tagless* direct-mapped
table indexed by a folded-XOR hash of the trigger PC.  Each entry holds:

- ``covp`` — the 32-bit coverage-biased pattern (a 4KB page at 128B
  granularity), grown by ORing in observed program patterns (at most three
  ORs, tracked by the 2-bit ``or_count`` per half);
- ``accp`` — the 32-bit accuracy-biased pattern, replaced on every update
  by ``program & covp``;
- two 2-bit ``measure_covp`` counters (one per 2KB half) that saturate when
  CovP's predictions lack accuracy *or* coverage, triggering a relearn;
- two 2-bit ``measure_accp`` counters that saturate when AccP's predictions
  lack accuracy, throttling prefetching at high bandwidth utilization.

All patterns in the SPT are stored *anchored* to their trigger (bit 0 = the
trigger's 128B block) so one entry serves any trigger offset.
"""

from repro.constants import COMPRESSED_BITS_PER_PAGE, COMPRESSED_BITS_PER_SEGMENT

#: 2-bit saturating counter ceiling for the Measure/OrCount counters.
COUNTER_MAX = 3

#: Quartile threshold for both AccThr and CovThr (Section 3.6: "We use the
#: 50% quartile threshold value for both").  Quartile bucket < 2 means the
#: measured ratio fell below 50%.
GOODNESS_THRESHOLD_QUARTILE = 2

_HALF_MASK = (1 << COMPRESSED_BITS_PER_SEGMENT) - 1


def fold_xor_hash(pc, bits=8):
    """Folded-XOR hash of a PC down to ``bits`` bits (Section 3.4)."""
    mask = (1 << bits) - 1
    value = int(pc)
    out = 0
    while value:
        out ^= value & mask
        value >>= bits
    return out


class SptEntry:
    """One SPT entry: dual modulated patterns plus goodness counters.

    ``half_bits`` is the width of one 2KB-segment pattern — 16 in the
    paper's 128B-compressed configuration (Table 1), 32 for the
    uncompressed 64B-granularity ablation of Section 3.8.
    """

    __slots__ = (
        "covp",
        "accp",
        "measure_covp",
        "or_count",
        "measure_accp",
        "half_bits",
        "allow_reset",
    )

    def __init__(self, half_bits=COMPRESSED_BITS_PER_SEGMENT, allow_reset=True):
        self.covp = 0
        self.accp = 0
        self.measure_covp = [0, 0]
        self.or_count = [0, 0]
        self.measure_accp = [0, 0]
        self.half_bits = half_bits
        #: Section 3.6's relearn-from-scratch rule; the no-reset ablation
        #: disables it to show stale patterns never recover.
        self.allow_reset = allow_reset

    # -- half-pattern accessors -------------------------------------------------

    @property
    def _half_mask(self):
        return (1 << self.half_bits) - 1

    def covp_half(self, half):
        return (self.covp >> (half * self.half_bits)) & self._half_mask

    def accp_half(self, half):
        return (self.accp >> (half * self.half_bits)) & self._half_mask

    def _set_half(self, attr, half, value):
        shift = half * self.half_bits
        current = getattr(self, attr)
        cleared = current & ~(self._half_mask << shift)
        setattr(self, attr, cleared | ((value & self._half_mask) << shift))

    def set_covp_half(self, half, value):
        self._set_half("covp", half, value)

    def set_accp_half(self, half, value):
        self._set_half("accp", half, value)

    # -- saturation queries --------------------------------------------------------

    def covp_saturated(self, half):
        return self.measure_covp[half] >= COUNTER_MAX

    def accp_saturated(self, half):
        return self.measure_accp[half] >= COUNTER_MAX

    # -- learning (Section 3.6) -----------------------------------------------------

    def update_half(self, half, program_half, bw_bucket):
        """Fold one observed (anchored) half-pattern into this entry.

        ``program_half`` is the program's anchored 16-bit half-pattern at PB
        eviction; ``bw_bucket`` is the utilization quartile at that moment.
        Order of operations follows Section 3.6: measure goodness of the
        *stored* patterns first, then modulate CovP (OR / reset), then
        replace AccP with ``program & covp``.

        Runs once per (trigger, half) at every PB eviction, so the quartile
        comparisons are inlined as shift-and-compare predicates: only
        ``quartile < 2`` (ratio below 50%) is ever consumed here, which is
        ``4 * num < 2 * den`` (or an empty denominator) — see Figure 8.
        """
        shift = half * self.half_bits
        mask = self._half_mask
        program_half &= mask
        cov = (self.covp >> shift) & mask
        acc = (self.accp >> shift) & mask
        c_real = program_half.bit_count()

        # --- goodness of CovP's prediction -----------------------------------
        c_acc_cov = (cov & program_half).bit_count()
        c_cov = cov.bit_count()
        four_acc = 4 * c_acc_cov
        accuracy_bad = c_cov <= 0 or four_acc < 2 * c_cov
        coverage_bad = c_real <= 0 or four_acc < 2 * c_real
        measure_covp = self.measure_covp
        if accuracy_bad or coverage_bad:
            if measure_covp[half] < COUNTER_MAX:
                measure_covp[half] += 1

        # --- goodness of AccP's prediction ------------------------------------
        c_acc_acc = (acc & program_half).bit_count()
        c_acc = acc.bit_count()
        measure_accp = self.measure_accp
        if c_acc <= 0 or 4 * c_acc_acc < 2 * c_acc:
            if measure_accp[half] < COUNTER_MAX:
                measure_accp[half] += 1
        elif measure_accp[half] > 0:
            measure_accp[half] -= 1

        # --- modulate CovP: reset or OR ----------------------------------------
        if (
            self.allow_reset
            and measure_covp[half] >= COUNTER_MAX
            and (bw_bucket == 3 or coverage_bad)
        ):
            # Relearn from scratch (Section 3.6 reset rule).
            cov = program_half
            self.or_count[half] = 0
            measure_covp[half] = 0
        elif self.or_count[half] < COUNTER_MAX:
            grown = cov | program_half
            if grown != cov:
                self.or_count[half] += 1
            cov = grown

        cleared = ~(mask << shift)
        self.covp = (self.covp & cleared) | (cov << shift)
        # --- modulate AccP: replace with AND -------------------------------------
        self.accp = (self.accp & cleared) | ((program_half & cov) << shift)


class SignaturePredictionTable:
    """The 256-entry tagless direct-mapped SPT (Table 1).

    ``pattern_bits`` is the stored per-page pattern width: 32 in the
    compressed default, 64 for the uncompressed ablation.
    """

    def __init__(self, entries=256, pattern_bits=COMPRESSED_BITS_PER_PAGE, allow_reset=True):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("SPT entry count must be a positive power of two")
        if pattern_bits % 2:
            raise ValueError("pattern width must be even (two segment halves)")
        self.entries = entries
        self.pattern_bits = pattern_bits
        self.allow_reset = allow_reset
        self._index_bits = entries.bit_length() - 1
        self._table = [
            SptEntry(pattern_bits // 2, allow_reset) for _ in range(entries)
        ]

    def index_of(self, pc):
        """Fold the PC down to the table index; tagless, so aliases share."""
        return fold_xor_hash(pc, self._index_bits)

    def lookup(self, pc):
        """Return the (always valid — tagless) entry for ``pc``."""
        return self._table[self.index_of(pc)]

    def lookup_by_signature(self, signature):
        """Direct access by a pre-folded signature (as the PB stores it)."""
        return self._table[signature & (self.entries - 1)]

    def storage_bits(self):
        """Table 1: CovP(32) + 2xMeasureCovP(2) + 2xOrCount(2) + AccP(32) +
        2xMeasureAccP(2) = 76 bits per entry (compressed configuration)."""
        per_entry = (
            self.pattern_bits  # CovP
            + self.pattern_bits  # AccP
            + 2 * 2  # MeasureCovP
            + 2 * 2  # OrCount
            + 2 * 2  # MeasureAccP
        )
        return self.entries * per_entry

    def reset(self):
        self._table = [
            SptEntry(self.pattern_bits // 2, self.allow_reset)
            for _ in range(self.entries)
        ]
