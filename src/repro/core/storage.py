"""Storage accounting — reproduces Table 1 and Table 3.

Every prefetcher exposes ``storage_breakdown()``; this module renders the
paper's storage tables from those budgets and provides the Table 1
cross-check (DSPatch must come to exactly 29,568 bits = 3.6 KB).
"""

from repro.memory.dram import FixedBandwidth

#: Table 1's stated totals, in bits.
TABLE1_PB_BITS = 64 * 158
TABLE1_SPT_BITS = 256 * 76
TABLE1_TOTAL_BITS = TABLE1_PB_BITS + TABLE1_SPT_BITS


def dspatch_storage_table(dspatch=None):
    """Rows of Table 1 for a (default-configured) DSPatch instance."""
    if dspatch is None:
        from repro.core.dspatch import DSPatch

        dspatch = DSPatch(FixedBandwidth(0))
    breakdown = dspatch.storage_breakdown()
    rows = [
        {
            "structure": "PB",
            "fields": "Page number (36) + Bit-pattern (64) + 2x[PC (8) + Offset (6)] = 158 bits",
            "entries": dspatch.page_buffer.entries,
            "bits": breakdown["page-buffer"],
        },
        {
            "structure": "SPT",
            "fields": "CovP (32) + 2xMeasureCovP (2) + 2xORCount (2) + AccP (32) + 2xMeasureAccP (2) = 76 bits",
            "entries": dspatch.spt.entries,
            "bits": breakdown["signature-prediction-table"],
        },
    ]
    total_bits = sum(row["bits"] for row in rows)
    return {"rows": rows, "total_bits": total_bits, "total_kb": total_bits / 8 / 1024}


def prefetcher_storage_table(prefetchers):
    """Table 3-style rows: per-prefetcher storage budgets in KB."""
    rows = []
    for prefetcher in prefetchers:
        rows.append(
            {
                "name": prefetcher.name,
                "kb": prefetcher.storage_kb(),
                "breakdown": prefetcher.storage_breakdown(),
            }
        )
    return rows
