"""DSPatch ablation variants.

Figure 19 variants (Section 5.5) — never use the accuracy-biased pattern:

- :class:`AlwaysCovP` always predicts with CovP, regardless of bandwidth
  utilization — the paper shows it loses 4.5% performance versus the
  full design.
- :class:`ModCovP` also only uses CovP but *throttles* prediction when
  bandwidth utilization is high (no prefetches in the top quartile, and in
  the 50-75% quartile only when CovP's goodness measure is healthy) — it
  still loses 1.4%, demonstrating that throttling alone cannot replace the
  dual-pattern mechanism.

Learning (the SPT update path) is identical to full DSPatch in both
variants; only the Figure 10 selection differs.

Design-choice ablations (Sections 3.3, 3.7, 3.8 — the claims DESIGN.md
calls out; each has a dedicated bench):

- :class:`NoAnchorDSPatch` stores page-absolute patterns (no trigger
  rotation) — loses the Figure 2 robustness to layout placement.
- :class:`SingleTriggerDSPatch` allows only the segment-0 trigger per
  4KB page — loses the Section 3.7 mid-page entry coverage.
- :func:`uncompressed_dspatch` stores full 64B-granularity patterns —
  no compression overprediction, double the pattern storage
  (Section 3.8's trade-off, Figure 11).
"""

from repro.core.dspatch import DSPatch, DSPatchConfig
from repro.core.selection import NO_PREFETCH, PatternChoice


class AlwaysCovP(DSPatch):
    """DSPatch that always predicts with the coverage-biased pattern."""

    name = "alwayscovp"

    def _select(self, cycle, spt_entry, half):
        return PatternChoice("cov", low_priority=spt_entry.covp_saturated(half))


class ModCovP(DSPatch):
    """DSPatch that only throttles CovP at high bandwidth utilization."""

    name = "modcovp"

    def _select(self, cycle, spt_entry, half):
        bucket = self.bandwidth.bucket(cycle)
        if bucket == 3:
            return NO_PREFETCH
        if bucket == 2 and spt_entry.covp_saturated(half):
            return NO_PREFETCH
        return PatternChoice("cov", low_priority=spt_entry.covp_saturated(half))


class NoAnchorDSPatch(DSPatch):
    """DSPatch storing page-absolute (un-anchored) patterns.

    Disables the Section 3.3 rotation on both the learning and the
    prediction path.  Layouts that always start at the same page offset
    still predict correctly; anything placed at a varying offset (the
    jittered workloads) no longer folds into one pattern — the ablation
    that isolates Figure 2's contribution.
    """

    name = "dspatch-noanchor"

    def _anchor(self, pattern, trigger_bit):
        return pattern

    def _unanchor(self, pattern, trigger_bit):
        return pattern


class SingleTriggerDSPatch(DSPatch):
    """DSPatch with one trigger per 4KB page (segment 0 only).

    The Section 3.7 ablation: a program entering a page through its upper
    2KB half gets no prefetches at all until the lower half is touched.
    """

    name = "dspatch-1trigger"

    def _trigger_allowed(self, segment):
        return segment == 0


def uncompressed_dspatch(bandwidth):
    """DSPatch with full 64B-granularity (64-bit) patterns (Section 3.8).

    Per-entry pattern storage doubles (64b CovP + 64b AccP vs 32b + 32b);
    in exchange there is no 128B-compression overprediction (Figure 11b's
    error source disappears).
    """
    return DSPatch(bandwidth, DSPatchConfig(compressed=False))


def no_reset_dspatch(bandwidth):
    """DSPatch without the Section 3.6 CovP relearn rule.

    A saturated ``MeasureCovP`` normally resets CovP to the current
    program pattern (at high bandwidth utilization or low coverage);
    without it, a pattern learnt in one program phase stays forever, and
    accuracy never recovers after the phase ends.
    """
    return DSPatch(bandwidth, DSPatchConfig(covp_reset=False))
