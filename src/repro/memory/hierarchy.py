"""Three-level memory hierarchy with prefetch training, fill and accounting.

Wiring follows Section 4.1 of the paper exactly:

- The L1 prefetcher (PC stride) trains on every L1 demand access and fills
  the L1.
- The L2 prefetcher trains on L1 misses — *both* demand misses and misses
  of L1 prefetches — and fills prefetched lines into the L2 and the LLC.
- Prefetches that miss on-die go to DRAM and therefore consume bandwidth
  (every burst is a CAS command counted by the Section 3.2 monitor).

Timeliness is modelled through per-line ``ready`` cycles: a demand hitting
a line whose prefetch is still in flight pays the remaining latency (a
*late* useful prefetch).

Coverage / accuracy accounting matches Figure 16's definitions:

- *useful* — a prefetched line's first demand hit (timely or late);
- *uncovered* — a demand L2 miss that had to go below L2 anyway;
- *mispredicted* — a prefetched line evicted from the LLC untouched.
"""

from dataclasses import dataclass, field

from repro.constants import LINE_SHIFT
from repro.memory.cache import Cache, CacheConfig
from repro.memory.dram import DramConfig, DramModel
from repro.memory.mshr import MshrFile


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache geometry for one core (Table 2 defaults, single-thread LLC)."""

    l1: CacheConfig = CacheConfig(
        name="L1D", size_bytes=32 * 1024, ways=8, hit_latency=5, mshrs=16
    )
    l2: CacheConfig = CacheConfig(
        name="L2", size_bytes=256 * 1024, ways=8, hit_latency=8, mshrs=32
    )
    llc: CacheConfig = CacheConfig(
        name="LLC",
        size_bytes=2 * 1024 * 1024,
        ways=16,
        hit_latency=30,
        mshrs=32,
        replacement="pf-dead-block",
    )

    def scaled_llc(self, size_bytes):
        """A copy of this config with a different LLC capacity."""
        llc = CacheConfig(
            name=self.llc.name,
            size_bytes=size_bytes,
            ways=self.llc.ways,
            hit_latency=self.llc.hit_latency,
            mshrs=self.llc.mshrs,
            replacement=self.llc.replacement,
        )
        return HierarchyConfig(l1=self.l1, l2=self.l2, llc=llc)


@dataclass
class PrefetchStats:
    """Counters for one L2 prefetcher's activity."""

    issued: int = 0
    issued_low_priority: int = 0
    filled_from_llc: int = 0
    filled_from_dram: int = 0
    useful: int = 0
    late: int = 0
    useless: int = 0
    dropped_resident: int = 0
    dropped_in_flight: int = 0
    dropped_bandwidth: int = 0

    def accuracy(self):
        """Fraction of issued prefetches that saw a demand use."""
        return self.useful / self.issued if self.issued else 0.0


@dataclass
class AccessResult:
    """Outcome of one demand access through the hierarchy."""

    latency: float
    hit_level: str  # "L1" | "L2" | "LLC" | "DRAM"


@dataclass
class PollutionEvent:
    """An LLC eviction caused by a prefetch fill (appendix study input).

    ``ordinal`` is the demand-access sequence number at eviction time; the
    appendix's reuse window is expressed in the same ordinal space.
    """

    ordinal: int
    victim_line: int


@dataclass
class HierarchyStats:
    """Aggregated statistics exported after a run."""

    l1: dict = field(default_factory=dict)
    l2: dict = field(default_factory=dict)
    llc: dict = field(default_factory=dict)
    prefetch: PrefetchStats = field(default_factory=PrefetchStats)
    dram: dict = field(default_factory=dict)


class MemoryHierarchy:
    """One core's L1/L2 plus a (possibly shared) LLC and DRAM."""

    def __init__(
        self,
        config: HierarchyConfig = None,
        dram: DramModel = None,
        llc: Cache = None,
        l1_prefetcher=None,
        l2_prefetcher=None,
        record_pollution_victims=False,
    ):
        self.config = config or HierarchyConfig()
        self.dram = dram or DramModel(DramConfig())
        self.l1 = Cache(self.config.l1)
        self.l2 = Cache(self.config.l2)
        self.llc = llc or Cache(self.config.llc)
        self.l1_prefetcher = l1_prefetcher
        self.l2_prefetcher = l2_prefetcher
        self.l1_mshr = MshrFile(self.config.l1.mshrs)
        self.l2_mshr = MshrFile(self.config.l2.mshrs)
        self.llc_mshr = MshrFile(self.config.llc.mshrs)
        self.pf_stats = PrefetchStats()
        self._in_flight = {}  # line_addr -> ready cycle of an outstanding prefetch
        #: Bound on outstanding prefetches to DRAM (the prefetch queue).
        #: Under bandwidth saturation fills take longer to complete, so the
        #: queue stays full longer and more prefetches get dropped — the
        #: natural negative feedback of a real memory controller.  Sized to
        #: hold a full-page spatial burst (DSPatch segment-0 triggers can
        #: emit up to 62 lines) plus a steady delta-prefetcher stream.
        self.prefetch_queue_size = 128
        self.record_pollution_victims = record_pollution_victims
        self.pollution_events = []
        #: With pollution recording on: (ordinal, line) demand accesses
        #: below L1 and (ordinal, line) prefetch fills from DRAM — the
        #: classifier inputs for the appendix's Figure 20.
        self.demand_log = []
        self.prefetch_fill_log = []
        self.demand_accesses = 0

    # ------------------------------------------------------------------ API

    def access(self, cycle, pc, addr, is_write=False):
        """Run one demand access; returns an :class:`AccessResult`."""
        cycle = int(cycle)
        self.demand_accesses += 1
        line = addr >> LINE_SHIFT

        l1_line = self.l1.access(line, cycle, is_write)
        self._train_l1(cycle, pc, addr, hit=l1_line is not None)
        if l1_line is not None:
            latency = self.l1.hit_latency + max(0, l1_line.ready - cycle)
            return AccessResult(latency, "L1")

        # L1 miss: train the L2 prefetcher (demand and L1-prefetch misses
        # both reach here; L1-prefetch misses train via _issue_l1_prefetch).
        result = self._below_l1(cycle, pc, addr, is_write, train=True)
        wait = self.l1_mshr.allocate(cycle, cycle + result.latency)
        latency = result.latency + wait
        self.l1.fill(line, cycle, ready=cycle + latency)
        return AccessResult(latency, result.hit_level)

    def _below_l1(self, cycle, pc, addr, is_write, train):
        line = addr >> LINE_SHIFT
        if self.record_pollution_victims:
            self.demand_log.append((self.demand_accesses, line))
        candidates = ()
        l2_line = self.l2.access(line, cycle, is_write)
        if train and self.l2_prefetcher is not None:
            candidates = self.l2_prefetcher.train(cycle, pc, addr, hit=l2_line is not None)
        if l2_line is not None:
            if self.l2.last_access_first_use:
                self._note_use(cycle, line, l2_line)
            latency = self.l2.hit_latency + self._residual(cycle, l2_line)
            self._issue_prefetches(cycle, candidates)
            return AccessResult(latency, "L2")

        inflight_ready = self._in_flight.pop(line, None)
        if inflight_ready is not None and inflight_ready > cycle:
            # The prefetched L2/LLC copy was evicted while its fill was
            # still outstanding; the demand merges with it (promoted to
            # demand priority) and pays the capped remainder.
            residual = min(inflight_ready - cycle, self.dram.demand_merge_bound())
            latency = self.l2.hit_latency + residual
            self.pf_stats.useful += 1
            self.pf_stats.late += 1
            self.l2.fill(line, cycle, ready=cycle + residual)
            self._notify_useful(cycle, line)
            self._issue_prefetches(cycle, candidates)
            return AccessResult(latency, "LLC")

        llc_line = self.llc.access(line, cycle, is_write)
        if llc_line is not None:
            if self.llc.last_access_first_use:
                self._note_use(cycle, line, llc_line)
            latency = self.llc.hit_latency + self._residual(cycle, llc_line)
            self.l2.fill(line, cycle, ready=cycle + latency)
            self._issue_prefetches(cycle, candidates)
            return AccessResult(latency, "LLC")

        # Demand goes to DRAM.
        dram_latency = self.dram.access(cycle, line, is_write)
        latency = self.llc.hit_latency + dram_latency
        latency += self.l2_mshr.allocate(cycle, cycle + latency)
        latency += self.llc_mshr.allocate(cycle, cycle + latency)
        ready = cycle + latency
        self._fill_llc(line, cycle, prefetched=False, ready=ready)
        self.l2.fill(line, cycle, ready=ready)
        self._issue_prefetches(cycle, candidates)
        return AccessResult(latency, "DRAM")

    def _residual(self, cycle, cache_line):
        """Remaining fill latency a demand pays when hitting ``cache_line``.

        A demand that hits a still-in-flight *prefetched* line merges with
        the outstanding request and is promoted to demand priority, so its
        wait is capped at a clean demand round-trip; demand-filled lines
        pay their true remainder.
        """
        residual = max(0, cache_line.ready - cycle)
        if residual and cache_line.prefetched:
            residual = min(residual, self.dram.demand_merge_bound())
        return residual

    # ------------------------------------------------------- L1 prefetching

    def _train_l1(self, cycle, pc, addr, hit):
        if self.l1_prefetcher is None:
            return
        for cand in self.l1_prefetcher.train(cycle, pc, addr, hit):
            self._issue_l1_prefetch(cycle, pc, cand)

    def _issue_l1_prefetch(self, cycle, pc, cand):
        line = cand.line_addr
        if self.l1.contains(line):
            return
        # L1 prefetches compete with demand misses for the 16 L1 MSHRs
        # (Table 2); with none free the prefetch is dropped — this is what
        # keeps a real L1 prefetcher from running arbitrarily far ahead.
        if self.l1_mshr.outstanding(cycle) >= self.l1_mshr.capacity:
            return
        # An L1 prefetch that misses the L1 is itself an L1 miss and
        # therefore trains the L2 prefetcher (Section 4.1).
        result = self._below_l1(cycle, pc, line << LINE_SHIFT, False, train=True)
        self.l1_mshr.allocate(cycle, cycle + result.latency)
        self.l1.fill(line, cycle, prefetched=True, ready=cycle + result.latency)

    # ------------------------------------------------------- L2 prefetching

    def _issue_prefetches(self, cycle, candidates):
        for cand in candidates:
            self._issue_one(cycle, cand)

    def _issue_one(self, cycle, cand):
        line = cand.line_addr
        if self.l2.contains(line):
            self.pf_stats.dropped_resident += 1
            return
        inflight_ready = self._in_flight.get(line)
        if inflight_ready is not None:
            if inflight_ready > cycle:
                self.pf_stats.dropped_in_flight += 1
                return
            del self._in_flight[line]
        llc_line = self.llc.probe(line)
        if llc_line is not None:
            # Promote from LLC into L2.
            self.pf_stats.issued += 1
            if cand.low_priority:
                self.pf_stats.issued_low_priority += 1
            self.pf_stats.filled_from_llc += 1
            ready = cycle + self.llc.hit_latency
            self.l2.fill(
                line, cycle, prefetched=True, low_priority=cand.low_priority, ready=ready
            )
            return
        self._prune_in_flight(cycle)
        if len(self._in_flight) >= self.prefetch_queue_size:
            self.pf_stats.dropped_bandwidth += 1
            return
        dram_latency = self.dram.access(cycle, line, is_write=False, is_prefetch=True)
        if dram_latency is None:
            # Rejected by the memory controller under extreme backlog.
            self.pf_stats.dropped_bandwidth += 1
            return
        self.pf_stats.issued += 1
        if cand.low_priority:
            self.pf_stats.issued_low_priority += 1
        ready = cycle + self.llc.hit_latency + dram_latency
        self.pf_stats.filled_from_dram += 1
        self._in_flight[line] = ready
        if self.record_pollution_victims:
            self.prefetch_fill_log.append((self.demand_accesses, line))
        self._fill_llc(line, cycle, prefetched=True, ready=ready, low_priority=cand.low_priority)
        self.l2.fill(line, cycle, prefetched=True, low_priority=cand.low_priority, ready=ready)

    def _prune_in_flight(self, cycle):
        done = [ln for ln, ready in self._in_flight.items() if ready <= cycle]
        for ln in done:
            del self._in_flight[ln]

    # ---------------------------------------------------------- fill helpers

    def _fill_llc(self, line, cycle, prefetched, ready, low_priority=False):
        evicted = self.llc.fill(
            line, cycle, prefetched=prefetched, low_priority=low_priority, ready=ready
        )
        if evicted is None:
            return
        if evicted.was_prefetched and not evicted.was_used:
            self.pf_stats.useless += 1
            if self.l2_prefetcher is not None:
                self.l2_prefetcher.note_useless_prefetch(cycle, evicted.line_addr)
        if self.record_pollution_victims and prefetched:
            # Victim of a prefetch fill — input to the appendix pollution
            # study, which classifies these victims by their later reuse.
            self.pollution_events.append(
                PollutionEvent(self.demand_accesses, evicted.line_addr)
            )

    def _note_use(self, cycle, line, cache_line):
        """First demand use of a prefetched line: propagate + notify.

        The owning cache has already flagged this access as a first use
        (``last_access_first_use``); hierarchy-level accounting and the
        cross-level used-bit propagation happen here.
        """
        self.pf_stats.useful += 1
        if cache_line.ready > cycle:
            self.pf_stats.late += 1
        self._notify_useful(cycle, line)

    def _notify_useful(self, cycle, line):
        self.llc.touch_for_prefetcher(line)
        self.l2.touch_for_prefetcher(line)
        if self.l2_prefetcher is not None:
            self.l2_prefetcher.note_useful_prefetch(cycle, line)

    # ---------------------------------------------------------------- stats

    def reset_stats(self):
        """Zero all statistics at the warmup boundary.

        Cache contents, prefetcher state and in-flight prefetches survive —
        only the accounting restarts, so coverage/accuracy/misses reflect
        the measured region alone.
        """
        self.pf_stats = PrefetchStats()
        self.l1.reset_stats()
        self.l2.reset_stats()
        self.llc.reset_stats()
        self.l1_mshr.reset_stats()
        self.l2_mshr.reset_stats()
        self.llc_mshr.reset_stats()
        self.pollution_events = []
        self.demand_log = []
        self.prefetch_fill_log = []

    def coverage_accuracy(self):
        """Return (coverage, accuracy, base_misses) per Figure 16 semantics.

        ``coverage`` is useful prefetches over the no-prefetch miss count
        (useful + remaining demand misses below L2); ``accuracy`` is useful
        over issued.
        """
        useful = self.pf_stats.useful
        uncovered = self.l2.demand_misses
        base = useful + uncovered
        coverage = useful / base if base else 0.0
        accuracy = self.pf_stats.accuracy()
        return coverage, accuracy, base

    def stats(self):
        return HierarchyStats(
            l1=self.l1.stats(),
            l2=self.l2.stats(),
            llc=self.llc.stats(),
            prefetch=self.pf_stats,
            dram=self.dram.stats(),
        )
