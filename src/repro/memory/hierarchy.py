"""Three-level memory hierarchy with prefetch training, fill and accounting.

Wiring follows Section 4.1 of the paper exactly:

- The L1 prefetcher (PC stride) trains on every L1 demand access and fills
  the L1.
- The L2 prefetcher trains on L1 misses — *both* demand misses and misses
  of L1 prefetches — and fills prefetched lines into the L2 and the LLC.
- Prefetches that miss on-die go to DRAM and therefore consume bandwidth
  (every burst is a CAS command counted by the Section 3.2 monitor).

Timeliness is modelled through per-line ``ready`` cycles: a demand hitting
a line whose prefetch is still in flight pays the remaining latency (a
*late* useful prefetch).

Coverage / accuracy accounting matches Figure 16's definitions:

- *useful* — a prefetched line's first demand hit (timely or late);
- *uncovered* — a demand L2 miss that had to go below L2 anyway;
- *mispredicted* — a prefetched line evicted from the LLC untouched.

``access`` runs once per memory operation and is the hottest path in the
simulator.  It returns a plain ``(latency, level)`` tuple — ``level`` is
one of the integer codes :data:`L1`/:data:`L2`/:data:`LLC`/:data:`DRAM`
(index into :data:`HIT_LEVEL_NAMES`) — instead of allocating a result
object per access.  :class:`AccessResult` remains available as a
named-tuple view for callers that want attribute access.
"""

from dataclasses import dataclass, field
from typing import NamedTuple

from repro.constants import LINE_SHIFT
from repro.memory.cache import Cache, CacheConfig
from repro.memory.dram import DramConfig, DramModel
from repro.memory.mshr import MshrFile

#: Integer hit-level codes returned by :meth:`MemoryHierarchy.access`.
L1, L2, LLC, DRAM = 0, 1, 2, 3
#: Display names, indexed by level code.
HIT_LEVEL_NAMES = ("L1", "L2", "LLC", "DRAM")


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache geometry for one core (Table 2 defaults, single-thread LLC)."""

    l1: CacheConfig = CacheConfig(
        name="L1D", size_bytes=32 * 1024, ways=8, hit_latency=5, mshrs=16
    )
    l2: CacheConfig = CacheConfig(
        name="L2", size_bytes=256 * 1024, ways=8, hit_latency=8, mshrs=32
    )
    llc: CacheConfig = CacheConfig(
        name="LLC",
        size_bytes=2 * 1024 * 1024,
        ways=16,
        hit_latency=30,
        mshrs=32,
        replacement="pf-dead-block",
    )

    def scaled_llc(self, size_bytes):
        """A copy of this config with a different LLC capacity."""
        llc = CacheConfig(
            name=self.llc.name,
            size_bytes=size_bytes,
            ways=self.llc.ways,
            hit_latency=self.llc.hit_latency,
            mshrs=self.llc.mshrs,
            replacement=self.llc.replacement,
        )
        return HierarchyConfig(l1=self.l1, l2=self.l2, llc=llc)


@dataclass
class PrefetchStats:
    """Counters for one L2 prefetcher's activity."""

    issued: int = 0
    issued_low_priority: int = 0
    filled_from_llc: int = 0
    filled_from_dram: int = 0
    useful: int = 0
    late: int = 0
    useless: int = 0
    dropped_resident: int = 0
    dropped_in_flight: int = 0
    dropped_bandwidth: int = 0

    def accuracy(self):
        """Fraction of issued prefetches that saw a demand use."""
        return self.useful / self.issued if self.issued else 0.0


class AccessResult(NamedTuple):
    """Named-tuple view of one demand access's ``(latency, hit_level)``.

    ``MemoryHierarchy.access`` returns plain tuples for speed; they unpack
    identically.  Test doubles standing in for a hierarchy should return
    an ``AccessResult`` (or plain tuple) whose ``hit_level`` is one of the
    integer codes :data:`L1`/:data:`L2`/:data:`LLC`/:data:`DRAM`.
    """

    latency: float
    hit_level: int


@dataclass
class PollutionEvent:
    """An LLC eviction caused by a prefetch fill (appendix study input).

    ``ordinal`` is the demand-access sequence number at eviction time; the
    appendix's reuse window is expressed in the same ordinal space.
    """

    ordinal: int
    victim_line: int


@dataclass
class HierarchyStats:
    """Aggregated statistics exported after a run."""

    l1: dict = field(default_factory=dict)
    l2: dict = field(default_factory=dict)
    llc: dict = field(default_factory=dict)
    prefetch: PrefetchStats = field(default_factory=PrefetchStats)
    dram: dict = field(default_factory=dict)


class MemoryHierarchy:
    """One core's L1/L2 plus a (possibly shared) LLC and DRAM."""

    __slots__ = (
        "config",
        "dram",
        "l1",
        "l2",
        "llc",
        "l1_prefetcher",
        "l2_prefetcher",
        "l1_mshr",
        "l2_mshr",
        "llc_mshr",
        "pf_stats",
        "_in_flight",
        "prefetch_queue_size",
        "demand_accesses",
        "_l2_train",
        "_dram_access",
        "_merge_bound",
        "_prune_scratch",
    )

    #: Pollution recording and event tracing live on the observed subclass
    #: (:class:`repro.memory.observed.ObservedHierarchy`); the plain class
    #: exposes the same attributes as empty constants so result assembly
    #: reads one shape regardless of which hierarchy ran.
    record_pollution_victims = False
    pollution_events = ()
    demand_log = ()
    prefetch_fill_log = ()

    def __init__(
        self,
        config: HierarchyConfig = None,
        dram: DramModel = None,
        llc: Cache = None,
        l1_prefetcher=None,
        l2_prefetcher=None,
    ):
        self.config = config or HierarchyConfig()
        self.dram = dram or DramModel(DramConfig())
        self.l1 = Cache(self.config.l1)
        self.l2 = Cache(self.config.l2)
        self.llc = llc or Cache(self.config.llc)
        self.l1_prefetcher = l1_prefetcher
        self.l2_prefetcher = l2_prefetcher
        self.l1_mshr = MshrFile(self.config.l1.mshrs)
        self.l2_mshr = MshrFile(self.config.l2.mshrs)
        self.llc_mshr = MshrFile(self.config.llc.mshrs)
        self.pf_stats = PrefetchStats()
        self._in_flight = {}  # line_addr -> ready cycle of an outstanding prefetch
        #: Bound on outstanding prefetches to DRAM (the prefetch queue).
        #: Under bandwidth saturation fills take longer to complete, so the
        #: queue stays full longer and more prefetches get dropped — the
        #: natural negative feedback of a real memory controller.  Sized to
        #: hold a full-page spatial burst (DSPatch segment-0 triggers can
        #: emit up to 62 lines) plus a steady delta-prefetcher stream.
        self.prefetch_queue_size = 128
        self.demand_accesses = 0
        # Hot-path bound methods (the targets never change after init) and
        # the demand-merge latency bound, a pure function of DRAM timings.
        self._l2_train = None if l2_prefetcher is None else l2_prefetcher.train
        self._dram_access = self.dram.access
        self._merge_bound = self.dram.demand_merge_bound()
        # Pooled scratch for _prune_in_flight: the completed-prefetch list
        # is reused across calls instead of allocated per queue-full event.
        self._prune_scratch = []

    # ------------------------------------------------------------------ API

    def access(self, cycle, pc, addr, is_write=False):
        """Run one demand access; returns ``(latency, level_code)``.

        The L1 lookup is inlined (one call per simulated memory op); the
        inlined block mirrors :meth:`repro.memory.cache.Cache.access`
        exactly, including stats and recency bookkeeping.
        """
        cycle = int(cycle)
        self.demand_accesses += 1
        line = addr >> LINE_SHIFT

        l1 = self.l1
        lines = l1._sets[line & l1._set_mask]
        tag = line >> l1._tag_shift
        l1_line = lines.get(tag)
        tick = l1._tick + 1
        l1._tick = tick
        if l1_line is None:
            l1.demand_misses += 1
        else:
            l1.demand_hits += 1
            l1_line.last_touch = tick
            lines.move_to_end(tag)
            if is_write:
                l1_line.dirty = True
            if l1_line.prefetched and not l1_line.used:
                l1.useful_prefetches += 1
                if l1_line.ready > cycle:
                    l1.late_useful_prefetches += 1
                l1_line.used = True
        l1_pf = self.l1_prefetcher
        if l1_pf is not None:
            for cand in l1_pf.train(cycle, pc, addr, l1_line is not None):
                self._issue_l1_prefetch(cycle, pc, cand)
        if l1_line is not None:
            ready = l1_line.ready
            latency = l1.hit_latency
            if ready > cycle:
                latency += ready - cycle
            return latency, L1

        # L1 miss: train the L2 prefetcher (demand and L1-prefetch misses
        # both reach here; L1-prefetch misses train via _issue_l1_prefetch).
        latency, level = self._below_l1(cycle, pc, addr, is_write)
        wait = self.l1_mshr.allocate(cycle, cycle + latency)
        latency += wait
        l1.fill(line, cycle, False, False, cycle + latency, False)
        return latency, level

    def _below_l1(self, cycle, pc, addr, is_write):
        """Demand path below the L1 (inlined L2/LLC lookups — this runs
        once per L1 miss and mirrors ``Cache.access`` exactly, including
        first-use accounting via the caches' stats counters)."""
        line = addr >> LINE_SHIFT
        candidates = ()
        l2 = self.l2
        l2_lines = l2._sets[line & l2._set_mask]
        l2_tag = line >> l2._tag_shift
        l2_line = l2_lines.get(l2_tag)
        tick = l2._tick + 1
        l2._tick = tick
        first_use = False
        if l2_line is None:
            l2.demand_misses += 1
        else:
            l2.demand_hits += 1
            l2_line.last_touch = tick
            l2_lines.move_to_end(l2_tag)
            if is_write:
                l2_line.dirty = True
            if l2_line.prefetched and not l2_line.used:
                l2.useful_prefetches += 1
                first_use = True
                if l2_line.ready > cycle:
                    l2.late_useful_prefetches += 1
                l2_line.used = True
        if self._l2_train is not None:
            candidates = self._l2_train(cycle, pc, addr, l2_line is not None)
        if l2_line is not None:
            if first_use:
                self._note_use(cycle, line, l2_line)
            latency = l2.hit_latency + self._residual(cycle, l2_line)
            if candidates:
                self._issue_prefetches(cycle, candidates)
            return latency, L2

        inflight_ready = self._in_flight.pop(line, None)
        if inflight_ready is not None and inflight_ready > cycle:
            # The prefetched L2/LLC copy was evicted while its fill was
            # still outstanding; the demand merges with it (promoted to
            # demand priority) and pays the capped remainder.
            residual = inflight_ready - cycle
            bound = self._merge_bound
            if residual > bound:
                residual = bound
            latency = l2.hit_latency + residual
            pf = self.pf_stats
            pf.useful += 1
            pf.late += 1
            l2.fill(line, cycle, False, False, cycle + residual, False)
            self._notify_useful(cycle, line)
            if candidates:
                self._issue_prefetches(cycle, candidates)
            return latency, LLC

        llc = self.llc
        llc_lines = llc._sets[line & llc._set_mask]
        llc_tag = line >> llc._tag_shift
        llc_line = llc_lines.get(llc_tag)
        tick = llc._tick + 1
        llc._tick = tick
        if llc_line is None:
            llc.demand_misses += 1
        else:
            llc.demand_hits += 1
            llc_line.last_touch = tick
            llc_lines.move_to_end(llc_tag)
            if is_write:
                llc_line.dirty = True
            if llc_line.prefetched and not llc_line.used:
                llc.useful_prefetches += 1
                if llc_line.ready > cycle:
                    llc.late_useful_prefetches += 1
                llc_line.used = True
                self._note_use(cycle, line, llc_line)
            latency = llc.hit_latency + self._residual(cycle, llc_line)
            l2.fill(line, cycle, False, False, cycle + latency, False)
            if candidates:
                self._issue_prefetches(cycle, candidates)
            return latency, LLC

        # Demand goes to DRAM.
        dram_latency = self._dram_access(cycle, line, is_write)
        latency = llc.hit_latency + dram_latency
        latency += self.l2_mshr.allocate(cycle, cycle + latency)
        latency += self.llc_mshr.allocate(cycle, cycle + latency)
        ready = cycle + latency
        self._fill_llc(line, cycle, prefetched=False, ready=ready)
        l2.fill(line, cycle, False, False, ready, False)
        if candidates:
            self._issue_prefetches(cycle, candidates)
        return latency, DRAM

    def _residual(self, cycle, cache_line):
        """Remaining fill latency a demand pays when hitting ``cache_line``.

        A demand that hits a still-in-flight *prefetched* line merges with
        the outstanding request and is promoted to demand priority, so its
        wait is capped at a clean demand round-trip; demand-filled lines
        pay their true remainder.
        """
        residual = cache_line.ready - cycle
        if residual <= 0:
            return 0
        if cache_line.prefetched:
            bound = self._merge_bound
            if residual > bound:
                return bound
        return residual

    # ------------------------------------------------------- L1 prefetching

    def _issue_l1_prefetch(self, cycle, pc, cand):
        line = cand.line_addr
        if self.l1.contains(line):
            return
        # L1 prefetches compete with demand misses for the 16 L1 MSHRs
        # (Table 2); with none free the prefetch is dropped — this is what
        # keeps a real L1 prefetcher from running arbitrarily far ahead.
        l1_mshr = self.l1_mshr
        if l1_mshr.outstanding(cycle) >= l1_mshr.capacity:
            return
        # An L1 prefetch that misses the L1 is itself an L1 miss and
        # therefore trains the L2 prefetcher (Section 4.1).
        latency, _level = self._below_l1(cycle, pc, line << LINE_SHIFT, False)
        l1_mshr.allocate(cycle, cycle + latency)
        self.l1.fill(line, cycle, True, False, cycle + latency, False)

    # ------------------------------------------------------- L2 prefetching

    def _issue_prefetches(self, cycle, candidates):
        """Issue a batch of prefetch candidates.

        One call per training access that produced candidates, one loop
        iteration per candidate — the body is fully inlined (cache lookup,
        in-flight filter, LLC promote, DRAM issue) with every loop-invariant
        object hoisted, because candidate volume is several times access
        volume under aggressive prefetchers.
        """
        pf = self.pf_stats
        l2 = self.l2
        l2_sets = l2._sets
        l2_mask = l2._set_mask
        l2_shift = l2._tag_shift
        l2_fill = l2.fill
        llc = self.llc
        llc_sets = llc._sets
        llc_mask = llc._set_mask
        llc_shift = llc._tag_shift
        llc_hit_latency = llc.hit_latency
        in_flight = self._in_flight
        queue_size = self.prefetch_queue_size
        dram_access = self._dram_access
        for cand in candidates:
            line = cand.line_addr
            if l2_sets[line & l2_mask].get(line >> l2_shift) is not None:
                pf.dropped_resident += 1
                continue
            inflight_ready = in_flight.get(line)
            if inflight_ready is not None:
                if inflight_ready > cycle:
                    pf.dropped_in_flight += 1
                    continue
                del in_flight[line]
            llc_line = llc_sets[line & llc_mask].get(line >> llc_shift)
            if llc_line is not None:
                # Promote from LLC into L2.
                pf.issued += 1
                if cand.low_priority:
                    pf.issued_low_priority += 1
                pf.filled_from_llc += 1
                l2_fill(line, cycle, True, cand.low_priority, cycle + llc_hit_latency, False)
                continue
            if len(in_flight) >= queue_size:
                # Lazily retire completed prefetches before declaring the
                # queue full (behaviour-identical to eager pruning: stale
                # entries never affect anything but this capacity check).
                self._prune_in_flight(cycle)
                if len(in_flight) >= queue_size:
                    pf.dropped_bandwidth += 1
                    continue
            dram_latency = dram_access(cycle, line, False, True)
            if dram_latency is None:
                # Rejected by the memory controller under extreme backlog.
                pf.dropped_bandwidth += 1
                continue
            pf.issued += 1
            if cand.low_priority:
                pf.issued_low_priority += 1
            ready = cycle + llc_hit_latency + dram_latency
            pf.filled_from_dram += 1
            in_flight[line] = ready
            self._fill_llc(line, cycle, prefetched=True, ready=ready, low_priority=cand.low_priority)
            l2_fill(line, cycle, True, cand.low_priority, ready, False)

    def _issue_one(self, cycle, cand):
        """Issue a single candidate (non-batch convenience wrapper)."""
        self._issue_prefetches(cycle, (cand,))

    def _prune_in_flight(self, cycle):
        in_flight = self._in_flight
        done = self._prune_scratch
        done.clear()
        for ln, ready in in_flight.items():
            if ready <= cycle:
                done.append(ln)
        for ln in done:
            del in_flight[ln]

    # ---------------------------------------------------------- fill helpers

    def _fill_llc(self, line, cycle, prefetched, ready, low_priority=False):
        evicted = self.llc.fill(
            line, cycle, prefetched=prefetched, low_priority=low_priority, ready=ready
        )
        if evicted is None:
            return
        if evicted.was_prefetched and not evicted.was_used:
            self.pf_stats.useless += 1
            if self.l2_prefetcher is not None:
                self.l2_prefetcher.note_useless_prefetch(cycle, evicted.line_addr)

    def _note_use(self, cycle, line, cache_line):
        """First demand use of a prefetched line: propagate + notify.

        The owning cache has already flagged this access as a first use
        (``last_access_first_use``); hierarchy-level accounting and the
        cross-level used-bit propagation happen here.
        """
        self.pf_stats.useful += 1
        if cache_line.ready > cycle:
            self.pf_stats.late += 1
        self._notify_useful(cycle, line)

    def _notify_useful(self, cycle, line):
        self.llc.touch_for_prefetcher(line)
        self.l2.touch_for_prefetcher(line)
        if self.l2_prefetcher is not None:
            self.l2_prefetcher.note_useful_prefetch(cycle, line)

    # ---------------------------------------------------------------- stats

    def reset_stats(self):
        """Zero all statistics at the warmup boundary.

        Cache contents, prefetcher state and in-flight prefetches survive —
        only the accounting restarts, so coverage/accuracy/misses reflect
        the measured region alone.
        """
        self.pf_stats = PrefetchStats()
        self.l1.reset_stats()
        self.l2.reset_stats()
        self.llc.reset_stats()
        self.l1_mshr.reset_stats()
        self.l2_mshr.reset_stats()
        self.llc_mshr.reset_stats()

    def coverage_accuracy(self):
        """Return (coverage, accuracy, base_misses) per Figure 16 semantics.

        ``coverage`` is useful prefetches over the no-prefetch miss count
        (useful + remaining demand misses below L2); ``accuracy`` is useful
        over issued.
        """
        useful = self.pf_stats.useful
        uncovered = self.l2.demand_misses
        base = useful + uncovered
        coverage = useful / base if base else 0.0
        accuracy = self.pf_stats.accuracy()
        return coverage, accuracy, base

    def stats(self):
        return HierarchyStats(
            l1=self.l1.stats(),
            l2=self.l2.stats(),
            llc=self.llc.stats(),
            prefetch=self.pf_stats,
            dram=self.dram.stats(),
        )
