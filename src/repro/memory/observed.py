"""Event-emitting memory hierarchy (the opt-in observability path).

:class:`ObservedHierarchy` subclasses the plain
:class:`repro.memory.hierarchy.MemoryHierarchy` and emits the event
grammar of :mod:`repro.observe.events` around the inherited simulation
logic.  The split is deliberate:

- **tracing off** → the system drivers construct the plain class, whose
  hot path carries *zero* instrumentation — results stay bit-identical
  and throughput untouched by construction, not by branch discipline;
- **tracing on** → this subclass wraps the same inherited methods, so
  the simulated arithmetic is the parent's own code and a traced run
  produces the exact same ``RunResult`` (pinned by
  ``tests/test_observed_hierarchy.py``).

Instead of duplicating the aggressively inlined issue loop, the
override replays it one candidate at a time through the parent and
classifies the outcome from the stats deltas — each candidate resolves
to exactly one of {issue+fill, drop} — which keeps a single source of
truth for the simulation semantics.  Tracing-on throughput is not a
goal; tracing-off throughput is (see ``benchmarks/bench_observe_overhead.py``).

``record_pollution_victims`` rides the same event stream: a
:class:`repro.observe.sinks.PollutionCollector` subscribes internally
and derives the classic ``demand_log`` / ``prefetch_fill_log`` /
``pollution_events`` views, exposed here as properties.
"""

from repro.constants import LINE_SHIFT
from repro.memory.hierarchy import DRAM, L1, MemoryHierarchy, PollutionEvent
from repro.observe.events import (
    DROP,
    EVICTED_UNUSED,
    FAMILY_CACHE,
    FAMILY_PF,
    FILL,
    HIT,
    ISSUE,
    LATE,
    MISS,
    POLLUTING,
    RESET,
    SCHEME,
    USEFUL,
)
from repro.observe.sinks import PollutionCollector


class ObservedHierarchy(MemoryHierarchy):
    """A :class:`MemoryHierarchy` that emits trace events to sinks."""

    __slots__ = (
        "_cache_subs",
        "_pf_subs",
        "_pollution",
        "_late_seen",
        "record_pollution_victims",
    )

    def __init__(
        self,
        config=None,
        dram=None,
        llc=None,
        l1_prefetcher=None,
        l2_prefetcher=None,
        sink=None,
        trace_prefetch=False,
        trace_cache=False,
        record_pollution_victims=False,
    ):
        super().__init__(
            config=config,
            dram=dram,
            llc=llc,
            l1_prefetcher=l1_prefetcher,
            l2_prefetcher=l2_prefetcher,
        )
        self.record_pollution_victims = record_pollution_victims
        self._pollution = PollutionCollector() if record_pollution_victims else None
        pf_subs = []
        cache_subs = []
        if sink is not None:
            if trace_prefetch:
                pf_subs.append(sink.emit)
            if trace_cache:
                cache_subs.append(sink.emit)
        if self._pollution is not None:
            pf_subs.append(self._pollution.emit)
            cache_subs.append(self._pollution.emit)
        self._pf_subs = tuple(pf_subs)
        self._cache_subs = tuple(cache_subs)
        self._late_seen = 0
        if self._pf_subs and l2_prefetcher is not None:
            attach = getattr(l2_prefetcher, "attach_trace", None)
            if attach is not None:
                attach(self._scheme_emit)

    # -------------------------------------------------- derived pollution views

    @property
    def pollution_events(self):
        if self._pollution is None:
            return []
        return [PollutionEvent(o, v) for o, v in self._pollution.victims]

    @property
    def demand_log(self):
        return [] if self._pollution is None else self._pollution.demands

    @property
    def prefetch_fill_log(self):
        return [] if self._pollution is None else self._pollution.fills

    # ------------------------------------------------------------ traced paths

    def access(self, cycle, pc, addr, is_write=False):
        subs = self._cache_subs
        if not subs:
            return MemoryHierarchy.access(self, cycle, pc, addr, is_write)
        latency, level = MemoryHierarchy.access(self, cycle, pc, addr, is_write)
        if level == L1:
            ev = (HIT, self.demand_accesses, int(cycle), addr >> LINE_SHIFT, L1)
            for emit in subs:
                emit(ev)
        return latency, level

    def _below_l1(self, cycle, pc, addr, is_write):
        subs = self._cache_subs
        if not subs:
            return MemoryHierarchy._below_l1(self, cycle, pc, addr, is_write)
        latency, level = MemoryHierarchy._below_l1(self, cycle, pc, addr, is_write)
        kind = MISS if level == DRAM else HIT
        ev = (kind, self.demand_accesses, int(cycle), addr >> LINE_SHIFT, level)
        for emit in subs:
            emit(ev)
        return latency, level

    def _issue_prefetches(self, cycle, candidates):
        subs = self._pf_subs
        if not subs:
            MemoryHierarchy._issue_prefetches(self, cycle, candidates)
            return
        pf = self.pf_stats
        in_flight = self._in_flight
        llc_hit_latency = self.llc.hit_latency
        issue_one = MemoryHierarchy._issue_prefetches
        cyc = int(cycle)
        for cand in candidates:
            line = cand.line_addr
            resident = pf.dropped_resident
            inflight = pf.dropped_in_flight
            bandwidth = pf.dropped_bandwidth
            from_llc = pf.filled_from_llc
            from_dram = pf.filled_from_dram
            # One candidate through the parent's (single-source-of-truth)
            # issue path; the outcome is recovered from the stats deltas.
            issue_one(self, cycle, (cand,))
            ord_ = self.demand_accesses
            if pf.filled_from_dram != from_dram:
                lp = 1 if cand.low_priority else 0
                ready = in_flight.get(line, cyc)
                for emit in subs:
                    emit((ISSUE, ord_, cyc, line, lp, "dram"))
                for emit in subs:
                    emit((FILL, ord_, cyc, line, "dram", ready))
            elif pf.filled_from_llc != from_llc:
                lp = 1 if cand.low_priority else 0
                for emit in subs:
                    emit((ISSUE, ord_, cyc, line, lp, "llc"))
                for emit in subs:
                    emit((FILL, ord_, cyc, line, "llc", cyc + llc_hit_latency))
            elif pf.dropped_resident != resident:
                for emit in subs:
                    emit((DROP, ord_, cyc, line, "resident"))
            elif pf.dropped_in_flight != inflight:
                for emit in subs:
                    emit((DROP, ord_, cyc, line, "inflight"))
            elif pf.dropped_bandwidth != bandwidth:
                for emit in subs:
                    emit((DROP, ord_, cyc, line, "bandwidth"))

    def _fill_llc(self, line, cycle, prefetched, ready, low_priority=False):
        subs = self._pf_subs
        if not subs:
            MemoryHierarchy._fill_llc(self, line, cycle, prefetched, ready, low_priority)
            return
        # Mirrors the parent body exactly, with victim events added.
        evicted = self.llc.fill(
            line, cycle, prefetched=prefetched, low_priority=low_priority, ready=ready
        )
        if evicted is None:
            return
        ord_ = self.demand_accesses
        cyc = int(cycle)
        if evicted.was_prefetched and not evicted.was_used:
            self.pf_stats.useless += 1
            if self.l2_prefetcher is not None:
                self.l2_prefetcher.note_useless_prefetch(cycle, evicted.line_addr)
            ev = (EVICTED_UNUSED, ord_, cyc, evicted.line_addr)
            for emit in subs:
                emit(ev)
        if prefetched:
            ev = (POLLUTING, ord_, cyc, line, evicted.line_addr)
            for emit in subs:
                emit(ev)

    def _notify_useful(self, cycle, line):
        subs = self._pf_subs
        if subs:
            # Both useful paths (first demand use, in-flight merge) bump
            # pf.useful — and pf.late when late — immediately before this
            # notification, so the late delta carries the lateness.
            late_now = self.pf_stats.late
            is_late = 1 if late_now != self._late_seen else 0
            self._late_seen = late_now
            ord_ = self.demand_accesses
            cyc = int(cycle)
            ev = (USEFUL, ord_, cyc, line, is_late)
            for emit in subs:
                emit(ev)
            if is_late:
                ev = (LATE, ord_, cyc, line)
                for emit in subs:
                    emit(ev)
        MemoryHierarchy._notify_useful(self, cycle, line)

    def _scheme_emit(self, cycle, name, info=""):
        ev = (SCHEME, self.demand_accesses, int(cycle), 0, name, str(info))
        for emit in self._pf_subs:
            emit(ev)

    def reset_stats(self):
        MemoryHierarchy.reset_stats(self)
        self._late_seen = 0
        ord_ = self.demand_accesses
        marker_cache = (RESET, ord_, 0, FAMILY_CACHE)
        for emit in self._cache_subs:
            emit(marker_cache)
        marker_pf = (RESET, ord_, 0, FAMILY_PF)
        for emit in self._pf_subs:
            emit(marker_pf)
