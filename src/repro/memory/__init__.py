"""Memory-system substrate: caches, MSHRs, DRAM, and the full hierarchy.

This package implements the simulated machine of Table 2: three levels of
set-associative caches with MSHRs and prefetch-aware replacement, plus a
banked DDR4 DRAM model whose bandwidth monitor provides the 2-bit
utilization signal DSPatch consumes (Section 3.2).
"""

from repro.memory.cache import Cache, CacheConfig, CacheLine, EvictionInfo
from repro.memory.dram import (
    BandwidthMonitor,
    DramConfig,
    DramModel,
    DramTimings,
    FixedBandwidth,
)
from repro.memory.hierarchy import (
    AccessResult,
    HierarchyConfig,
    MemoryHierarchy,
    PrefetchStats,
)
from repro.memory.mshr import MshrFile
from repro.memory.replacement import (
    LruPolicy,
    PrefetchAwareDeadBlock,
    make_replacement_policy,
)

__all__ = [
    "AccessResult",
    "BandwidthMonitor",
    "Cache",
    "CacheConfig",
    "CacheLine",
    "DramConfig",
    "DramModel",
    "DramTimings",
    "EvictionInfo",
    "FixedBandwidth",
    "HierarchyConfig",
    "LruPolicy",
    "MemoryHierarchy",
    "MshrFile",
    "PrefetchAwareDeadBlock",
    "PrefetchStats",
    "make_replacement_policy",
]
