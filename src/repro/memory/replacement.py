"""Replacement policies for the set-associative caches.

Two policies are provided:

- :class:`LruPolicy` — classic least-recently-used, used at L1 and L2
  (Table 2).
- :class:`PrefetchAwareDeadBlock` — the LLC policy, a simplified
  sampling-free variant of the prefetch-aware dead-block predictor the paper
  cites ("Prefetch aware dead-block predictor similar to [39]", Table 2):
  prefetched lines that have not been demanded are predicted dead and are
  preferred victims, and low-priority prefetch fills are inserted near the
  LRU position (Section 3.6's low-priority fill rule).

``victim`` runs once per cache eviction (hundreds of thousands of times per
simulation), so both implementations walk the candidate lines with a plain
loop instead of ``min(..., key=lambda ...)`` — the per-line key-function
call is the dominant cost at this call rate.

Note: :class:`repro.memory.cache.Cache` applies the recency rules
(``on_hit``/``on_fill``) inline — they are identical across both
registered policies — and special-cases both policies' victim selection
against its recency-ordered sets.  The methods here remain the reference
specification of those rules (the tests exercise them directly) and the
generic ``victim()`` fallback for policy subclasses.  A policy whose
``on_hit``/``on_fill`` diverged from these rules would need Cache's
inline path reverted; the registry is deliberately closed to the two
entries below.
"""


class LruPolicy:
    """Least-recently-used victim selection over a set's lines."""

    name = "lru"

    def victim(self, lines):
        """Pick the victim line from ``lines`` (a non-empty iterable)."""
        best = None
        best_touch = None
        for line in lines:
            touch = line.last_touch
            if best is None or touch < best_touch:
                best = line
                best_touch = touch
        return best

    def on_fill(self, line, tick, low_priority):
        if low_priority:
            # Insert near LRU: the line is the first candidate for eviction
            # unless it gets demanded before any other fill arrives.
            line.last_touch = -tick if tick else -1
        else:
            line.last_touch = tick

    def on_hit(self, line, tick):
        line.last_touch = tick


class PrefetchAwareDeadBlock(LruPolicy):
    """Prefetch-aware dead-block replacement (LLC).

    A prefetched line that was never demanded is predicted dead and is
    evicted before any live line; among multiple dead candidates the oldest
    goes first.  Falls back to plain LRU when no dead line exists.
    """

    name = "pf-dead-block"

    def victim(self, lines):
        best = None
        best_touch = None
        dead = None
        dead_touch = None
        for line in lines:
            touch = line.last_touch
            if line.prefetched and not line.used:
                if dead is None or touch < dead_touch:
                    dead = line
                    dead_touch = touch
            elif dead is None and (best is None or touch < best_touch):
                best = line
                best_touch = touch
        return dead if dead is not None else best


_POLICIES = {
    LruPolicy.name: LruPolicy,
    PrefetchAwareDeadBlock.name: PrefetchAwareDeadBlock,
}


def make_replacement_policy(name):
    """Instantiate a replacement policy by its registered name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown replacement policy {name!r} (known: {known})") from None
