"""Replacement policies for the set-associative caches.

Two policies are provided:

- :class:`LruPolicy` — classic least-recently-used, used at L1 and L2
  (Table 2).
- :class:`PrefetchAwareDeadBlock` — the LLC policy, a simplified
  sampling-free variant of the prefetch-aware dead-block predictor the paper
  cites ("Prefetch aware dead-block predictor similar to [39]", Table 2):
  prefetched lines that have not been demanded are predicted dead and are
  preferred victims, and low-priority prefetch fills are inserted near the
  LRU position (Section 3.6's low-priority fill rule).
"""


class LruPolicy:
    """Least-recently-used victim selection over a set's lines."""

    name = "lru"

    def victim(self, lines):
        """Pick the victim line from ``lines`` (a non-empty list)."""
        return min(lines, key=lambda line: line.last_touch)

    def on_fill(self, line, tick, low_priority):
        if low_priority:
            # Insert near LRU: the line is the first candidate for eviction
            # unless it gets demanded before any other fill arrives.
            line.last_touch = -tick if tick else -1
        else:
            line.last_touch = tick

    def on_hit(self, line, tick):
        line.last_touch = tick


class PrefetchAwareDeadBlock(LruPolicy):
    """Prefetch-aware dead-block replacement (LLC).

    A prefetched line that was never demanded is predicted dead and is
    evicted before any live line; among multiple dead candidates the oldest
    goes first.  Falls back to plain LRU when no dead line exists.
    """

    name = "pf-dead-block"

    def victim(self, lines):
        dead = [ln for ln in lines if ln.prefetched and not ln.used]
        if dead:
            return min(dead, key=lambda line: line.last_touch)
        return super().victim(lines)


_POLICIES = {
    LruPolicy.name: LruPolicy,
    PrefetchAwareDeadBlock.name: PrefetchAwareDeadBlock,
}


def make_replacement_policy(name):
    """Instantiate a replacement policy by its registered name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown replacement policy {name!r} (known: {known})") from None
