"""Set-associative cache with prefetch bookkeeping.

The cache is functional (presence/eviction) plus lightly timed: each line
records the cycle its fill completes (``ready``) so a demand that arrives
while a prefetch is still in flight pays only the remaining latency — this
is how prefetch *timeliness* (Section 2, "the fraction of the latency ...
hidden by the prefetcher") is modelled.

Prefetch usefulness is tracked per line: a line filled by a prefetch counts
as *useful* on its first demand hit and as *useless* if it leaves the cache
untouched — the raw ingredients of the paper's coverage / misprediction
accounting (Figure 16).

``access``/``fill``/``probe`` run once or more per simulated memory op, so
set lookup is inlined (mask + shift; set counts are powers of two) and the
recency-update rule — identical across both registered replacement
policies, which differ only in victim selection — is applied directly
instead of through a per-access policy call.

Each set is an ``OrderedDict`` kept in exact recency order (front = LRU):
hits ``move_to_end``, normal fills append, low-priority fills move to the
front.  Because every recency event consumes a unique tick, this order is
identical to sorting by ``last_touch`` (which is still maintained on every
line), so the two registered policies reduce to O(1)/first-match scans —
plain LRU evicts the front line, the prefetch-aware dead-block policy
evicts the first never-demanded prefetched line in recency order (the
oldest such line) and falls back to the front.  Unknown policies would go
through the generic ``victim()`` walk.
"""

from collections import OrderedDict
from dataclasses import dataclass

from repro.memory.replacement import (
    LruPolicy,
    PrefetchAwareDeadBlock,
    make_replacement_policy,
)


class CacheLine:
    """One cache line's metadata (tag plus prefetch bookkeeping)."""

    __slots__ = ("tag", "dirty", "prefetched", "used", "last_touch", "ready")

    def __init__(self, tag, tick, prefetched=False, ready=0):
        self.tag = tag
        self.dirty = False
        self.prefetched = prefetched
        self.used = not prefetched
        self.last_touch = tick
        self.ready = ready


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level (see Table 2)."""

    name: str
    size_bytes: int
    ways: int
    hit_latency: int
    line_size: int = 64
    mshrs: int = 32
    replacement: str = "lru"

    @property
    def num_sets(self):
        sets = self.size_bytes // (self.ways * self.line_size)
        if sets <= 0 or sets & (sets - 1):
            raise ValueError(
                f"{self.name}: derived set count {sets} must be a positive power of two"
            )
        return sets


class EvictionInfo:
    """What :meth:`Cache.fill` evicted, for pollution accounting."""

    __slots__ = ("line_addr", "was_prefetched", "was_used", "was_dirty")

    def __init__(self, line_addr, was_prefetched, was_used, was_dirty=False):
        self.line_addr = line_addr
        self.was_prefetched = was_prefetched
        self.was_used = was_used
        self.was_dirty = was_dirty

    def __eq__(self, other):
        if not isinstance(other, EvictionInfo):
            return NotImplemented
        return (
            self.line_addr == other.line_addr
            and self.was_prefetched == other.was_prefetched
            and self.was_used == other.was_used
            and self.was_dirty == other.was_dirty
        )

    def __repr__(self):
        return (
            f"EvictionInfo(line_addr={self.line_addr}, "
            f"was_prefetched={self.was_prefetched}, was_used={self.was_used}, "
            f"was_dirty={self.was_dirty})"
        )


class Cache:
    """A set-associative cache level."""

    __slots__ = (
        "config",
        "name",
        "num_sets",
        "hit_latency",
        "ways",
        "_sets",
        "_set_mask",
        "_tag_shift",
        "_policy",
        "_victim",
        "_victim_mode",
        "_tick",
        "last_access_first_use",
        "demand_hits",
        "demand_misses",
        "prefetch_probe_hits",
        "useful_prefetches",
        "late_useful_prefetches",
        "useless_evictions",
        "writebacks",
    )

    def __init__(self, config: CacheConfig):
        self.config = config
        self.name = config.name
        self.num_sets = config.num_sets
        self.hit_latency = config.hit_latency
        self.ways = config.ways
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self._set_mask = self.num_sets - 1
        self._tag_shift = self.num_sets.bit_length() - 1
        self._policy = make_replacement_policy(config.replacement)
        self._victim = self._policy.victim
        # Recency-order fast paths (see module docstring): 0 = front-LRU,
        # 1 = first-dead-else-front, 2 = generic victim() walk.
        if type(self._policy) is LruPolicy:
            self._victim_mode = 0
        elif type(self._policy) is PrefetchAwareDeadBlock:
            self._victim_mode = 1
        else:
            self._victim_mode = 2
        self._tick = 0
        #: True when the most recent :meth:`access` was the first demand use
        #: of a prefetched line (read by the hierarchy for accounting).
        self.last_access_first_use = False
        # Statistics
        self.demand_hits = 0
        self.demand_misses = 0
        self.prefetch_probe_hits = 0
        self.useful_prefetches = 0
        self.late_useful_prefetches = 0
        self.useless_evictions = 0
        self.writebacks = 0

    def reset_stats(self):
        """Zero the statistics counters; cache contents are untouched."""
        self.demand_hits = 0
        self.demand_misses = 0
        self.prefetch_probe_hits = 0
        self.useful_prefetches = 0
        self.late_useful_prefetches = 0
        self.useless_evictions = 0
        self.writebacks = 0

    # -- addressing ---------------------------------------------------------

    def _locate(self, line_addr):
        set_idx = line_addr & self._set_mask
        return self._sets[set_idx], line_addr >> self._tag_shift

    def _line_addr_of(self, set_idx, tag):
        return (tag << self._tag_shift) | set_idx

    # -- queries -------------------------------------------------------------

    def probe(self, line_addr):
        """Return the line if present, without touching recency or stats."""
        return self._sets[line_addr & self._set_mask].get(line_addr >> self._tag_shift)

    def contains(self, line_addr):
        """True if ``line_addr`` is resident (no state change)."""
        return (
            self._sets[line_addr & self._set_mask].get(line_addr >> self._tag_shift)
            is not None
        )

    # -- demand path ---------------------------------------------------------

    def access(self, line_addr, cycle, is_write=False):
        """Demand lookup.  Returns the hit :class:`CacheLine` or ``None``.

        On a hit the line's recency is refreshed; if the hit is the first
        demand to a prefetched line, the prefetch is counted useful (late if
        the fill had not completed by ``cycle``).
        """
        lines = self._sets[line_addr & self._set_mask]
        tag = line_addr >> self._tag_shift
        line = lines.get(tag)
        tick = self._tick + 1
        self._tick = tick
        self.last_access_first_use = False
        if line is None:
            self.demand_misses += 1
            return None
        self.demand_hits += 1
        line.last_touch = tick
        lines.move_to_end(tag)
        if is_write:
            line.dirty = True
        if line.prefetched and not line.used:
            self.useful_prefetches += 1
            self.last_access_first_use = True
            if line.ready > cycle:
                self.late_useful_prefetches += 1
            line.used = True
        return line

    def touch_for_prefetcher(self, line_addr):
        """Mark a resident prefetched line as used without a demand access.

        Used by the hierarchy to propagate first-use information from an
        upper level (an L2 demand hit also 'uses' the LLC copy).
        """
        line = self.probe(line_addr)
        if line is not None and line.prefetched and not line.used:
            line.used = True

    # -- fill path -----------------------------------------------------------

    def fill(self, line_addr, cycle, prefetched=False, low_priority=False, ready=None, want_victim=True):
        """Install ``line_addr``; returns :class:`EvictionInfo` or ``None``.

        ``ready`` is the cycle at which the fill's data actually arrives
        (defaults to ``cycle``); demands arriving earlier pay the remainder.
        ``want_victim=False`` skips constructing the :class:`EvictionInfo`
        (eviction *accounting* still happens) for callers that discard the
        return value — the hierarchy's L1/L2 fills, which dominate fill
        volume.
        """
        set_idx = line_addr & self._set_mask
        lines = self._sets[set_idx]
        tag = line_addr >> self._tag_shift
        tick = self._tick + 1
        self._tick = tick
        existing = lines.get(tag)
        if existing is not None:
            # Refill of a resident line (e.g. prefetch to a present line is
            # filtered upstream; a demand refill just refreshes recency).
            existing.last_touch = tick
            lines.move_to_end(tag)
            return None
        evicted = None
        if len(lines) >= self.ways:
            mode = self._victim_mode
            if mode == 0:
                # LRU: recency order makes the front line the victim.
                victim = next(iter(lines.values()))
            elif mode == 1:
                # Dead-block: first never-demanded prefetched line in
                # recency order is the oldest one; front line otherwise.
                victim = None
                for cand in lines.values():
                    if cand.prefetched and not cand.used:
                        victim = cand
                        break
                if victim is None:
                    victim = next(iter(lines.values()))
            else:
                victim = self._victim(lines.values())
            if victim.prefetched and not victim.used:
                self.useless_evictions += 1
            if victim.dirty:
                self.writebacks += 1
            if want_victim:
                evicted = EvictionInfo(
                    (victim.tag << self._tag_shift) | set_idx,
                    victim.prefetched,
                    victim.used,
                    victim.dirty,
                )
            del lines[victim.tag]
            # Recycle the victim's line object for the incoming fill (same
            # dict-insertion position a fresh object would take).
            victim.tag = tag
            victim.dirty = False
            victim.prefetched = prefetched
            victim.used = not prefetched
            victim.last_touch = tick
            victim.ready = ready if ready is not None else cycle
            line = victim
        else:
            line = CacheLine(
                tag, tick, prefetched=prefetched, ready=ready if ready is not None else cycle
            )
        lines[tag] = line
        if low_priority:
            # Insert near LRU (Section 3.6's low-priority fill rule): the
            # line is the first eviction candidate unless demanded first.
            line.last_touch = -tick if tick else -1
            lines.move_to_end(tag, last=False)
        return evicted

    def invalidate(self, line_addr):
        """Drop ``line_addr`` if resident (no writeback modelling)."""
        self._sets[line_addr & self._set_mask].pop(line_addr >> self._tag_shift, None)

    # -- stats ----------------------------------------------------------------

    @property
    def demand_accesses(self):
        return self.demand_hits + self.demand_misses

    def hit_rate(self):
        """Demand hit rate (0.0 when no accesses were made)."""
        total = self.demand_accesses
        return self.demand_hits / total if total else 0.0

    def occupancy(self):
        """Total number of resident lines."""
        return sum(len(s) for s in self._sets)

    def stats(self):
        """Return a dict snapshot of counters for reporting."""
        return {
            "demand_hits": self.demand_hits,
            "demand_misses": self.demand_misses,
            "useful_prefetches": self.useful_prefetches,
            "late_useful_prefetches": self.late_useful_prefetches,
            "useless_evictions": self.useless_evictions,
            "writebacks": self.writebacks,
        }
