"""Set-associative cache with prefetch bookkeeping.

The cache is functional (presence/eviction) plus lightly timed: each line
records the cycle its fill completes (``ready``) so a demand that arrives
while a prefetch is still in flight pays only the remaining latency — this
is how prefetch *timeliness* (Section 2, "the fraction of the latency ...
hidden by the prefetcher") is modelled.

Prefetch usefulness is tracked per line: a line filled by a prefetch counts
as *useful* on its first demand hit and as *useless* if it leaves the cache
untouched — the raw ingredients of the paper's coverage / misprediction
accounting (Figure 16).
"""

from dataclasses import dataclass, field

from repro.memory.replacement import LruPolicy, make_replacement_policy


class CacheLine:
    """One cache line's metadata (tag plus prefetch bookkeeping)."""

    __slots__ = ("tag", "dirty", "prefetched", "used", "last_touch", "ready")

    def __init__(self, tag, tick, prefetched=False, ready=0):
        self.tag = tag
        self.dirty = False
        self.prefetched = prefetched
        self.used = not prefetched
        self.last_touch = tick
        self.ready = ready


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level (see Table 2)."""

    name: str
    size_bytes: int
    ways: int
    hit_latency: int
    line_size: int = 64
    mshrs: int = 32
    replacement: str = "lru"

    @property
    def num_sets(self):
        sets = self.size_bytes // (self.ways * self.line_size)
        if sets <= 0 or sets & (sets - 1):
            raise ValueError(
                f"{self.name}: derived set count {sets} must be a positive power of two"
            )
        return sets


@dataclass
class EvictionInfo:
    """What :meth:`Cache.fill` evicted, for pollution accounting."""

    line_addr: int
    was_prefetched: bool
    was_used: bool
    was_dirty: bool = field(default=False)


class Cache:
    """A set-associative cache level."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.name = config.name
        self.num_sets = config.num_sets
        self.hit_latency = config.hit_latency
        self._sets = [dict() for _ in range(self.num_sets)]
        self._policy = make_replacement_policy(config.replacement)
        self._tick = 0
        #: True when the most recent :meth:`access` was the first demand use
        #: of a prefetched line (read by the hierarchy for accounting).
        self.last_access_first_use = False
        # Statistics
        self.demand_hits = 0
        self.demand_misses = 0
        self.prefetch_probe_hits = 0
        self.useful_prefetches = 0
        self.late_useful_prefetches = 0
        self.useless_evictions = 0
        self.writebacks = 0

    def reset_stats(self):
        """Zero the statistics counters; cache contents are untouched."""
        self.demand_hits = 0
        self.demand_misses = 0
        self.prefetch_probe_hits = 0
        self.useful_prefetches = 0
        self.late_useful_prefetches = 0
        self.useless_evictions = 0
        self.writebacks = 0

    # -- addressing ---------------------------------------------------------

    def _locate(self, line_addr):
        set_idx = line_addr & (self.num_sets - 1)
        tag = line_addr // self.num_sets
        return self._sets[set_idx], tag

    def _line_addr_of(self, set_idx, tag):
        return tag * self.num_sets + set_idx

    # -- queries -------------------------------------------------------------

    def probe(self, line_addr):
        """Return the line if present, without touching recency or stats."""
        lines, tag = self._locate(line_addr)
        return lines.get(tag)

    def contains(self, line_addr):
        """True if ``line_addr`` is resident (no state change)."""
        return self.probe(line_addr) is not None

    # -- demand path ---------------------------------------------------------

    def access(self, line_addr, cycle, is_write=False):
        """Demand lookup.  Returns the hit :class:`CacheLine` or ``None``.

        On a hit the line's recency is refreshed; if the hit is the first
        demand to a prefetched line, the prefetch is counted useful (late if
        the fill had not completed by ``cycle``).
        """
        lines, tag = self._locate(line_addr)
        line = lines.get(tag)
        self._tick += 1
        self.last_access_first_use = False
        if line is None:
            self.demand_misses += 1
            return None
        self.demand_hits += 1
        self._policy.on_hit(line, self._tick)
        if is_write:
            line.dirty = True
        if line.prefetched and not line.used:
            self.useful_prefetches += 1
            self.last_access_first_use = True
            if line.ready > cycle:
                self.late_useful_prefetches += 1
        line.used = True
        return line

    def touch_for_prefetcher(self, line_addr):
        """Mark a resident prefetched line as used without a demand access.

        Used by the hierarchy to propagate first-use information from an
        upper level (an L2 demand hit also 'uses' the LLC copy).
        """
        line = self.probe(line_addr)
        if line is not None and line.prefetched and not line.used:
            line.used = True

    # -- fill path -----------------------------------------------------------

    def fill(self, line_addr, cycle, prefetched=False, low_priority=False, ready=None):
        """Install ``line_addr``; returns :class:`EvictionInfo` or ``None``.

        ``ready`` is the cycle at which the fill's data actually arrives
        (defaults to ``cycle``); demands arriving earlier pay the remainder.
        """
        lines, tag = self._locate(line_addr)
        self._tick += 1
        existing = lines.get(tag)
        if existing is not None:
            # Refill of a resident line (e.g. prefetch to a present line is
            # filtered upstream; a demand refill just refreshes recency).
            self._policy.on_hit(existing, self._tick)
            return None
        evicted = None
        if len(lines) >= self.config.ways:
            victim = self._policy.victim(list(lines.values()))
            victim_addr = self._line_addr_of(line_addr & (self.num_sets - 1), victim.tag)
            evicted = EvictionInfo(
                line_addr=victim_addr,
                was_prefetched=victim.prefetched,
                was_used=victim.used,
                was_dirty=victim.dirty,
            )
            if victim.prefetched and not victim.used:
                self.useless_evictions += 1
            if victim.dirty:
                self.writebacks += 1
            del lines[victim.tag]
        line = CacheLine(tag, self._tick, prefetched=prefetched, ready=ready if ready is not None else cycle)
        self._policy.on_fill(line, self._tick, low_priority)
        lines[tag] = line
        return evicted

    def invalidate(self, line_addr):
        """Drop ``line_addr`` if resident (no writeback modelling)."""
        lines, tag = self._locate(line_addr)
        lines.pop(tag, None)

    # -- stats ----------------------------------------------------------------

    @property
    def demand_accesses(self):
        return self.demand_hits + self.demand_misses

    def hit_rate(self):
        """Demand hit rate (0.0 when no accesses were made)."""
        total = self.demand_accesses
        return self.demand_hits / total if total else 0.0

    def occupancy(self):
        """Total number of resident lines."""
        return sum(len(s) for s in self._sets)

    def stats(self):
        """Return a dict snapshot of counters for reporting."""
        return {
            "demand_hits": self.demand_hits,
            "demand_misses": self.demand_misses,
            "useful_prefetches": self.useful_prefetches,
            "late_useful_prefetches": self.late_useful_prefetches,
            "useless_evictions": self.useless_evictions,
            "writebacks": self.writebacks,
        }
