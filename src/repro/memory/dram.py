"""DDR4 DRAM model with bandwidth-utilization tracking.

Implements the main-memory configuration of Table 2 (per channel: 2 ranks,
8 banks/rank, 64-bit data bus, 2KB row buffer, tCL=tRCD=tRP=15ns,
tRAS=39ns) for the three speed grades the paper sweeps (DDR4-1600 / 2133 /
2400) in one- and two-channel configurations — the six peak-bandwidth
points of Figures 1, 6 and 15.

Timing per request is open-page: a row-buffer hit pays tCL; a miss pays
tRP + tRCD + tCL; the 64B burst then serializes on the channel's shared
data bus.  Every burst is one CAS command.

:class:`BandwidthMonitor` is the Section 3.2 mechanism verbatim: a counter
of CAS commands over a ``4 x tRC``-cycle window, halved at every window
boundary for hysteresis, quantized into quartiles of the peak CAS rate and
exported as a 2-bit value that the prefetchers read.
"""

from dataclasses import dataclass

#: Simulated core frequency (Table 2: 4 GHz x86 cores).
CORE_GHZ = 4.0


@dataclass(frozen=True)
class DramTimings:
    """DDR4 device timings in nanoseconds (Table 2)."""

    tCL_ns: float = 15.0
    tRCD_ns: float = 15.0
    tRP_ns: float = 15.0
    tRAS_ns: float = 39.0

    @property
    def tRC_ns(self):
        """Row-cycle time: minimum gap between two activations of a bank."""
        return self.tRAS_ns + self.tRP_ns

    def to_cycles(self, ns, core_ghz=CORE_GHZ):
        """Convert a nanosecond latency to (integer) core cycles."""
        return max(1, round(ns * core_ghz))


#: Peak per-channel bandwidth in GB/s for each DDR4 speed grade:
#: transfer rate (MT/s) x 8 bytes per transfer.
SPEED_GRADE_GBPS = {
    1600: 12.8,
    2133: 17.064,
    2400: 19.2,
}


@dataclass(frozen=True)
class DramConfig:
    """One main-memory configuration (speed grade x channel count)."""

    speed_grade: int = 2133
    channels: int = 1
    ranks_per_channel: int = 2
    banks_per_rank: int = 8
    row_bytes: int = 2048
    line_size: int = 64
    timings: DramTimings = DramTimings()
    core_ghz: float = CORE_GHZ

    def __post_init__(self):
        if self.speed_grade not in SPEED_GRADE_GBPS:
            known = ", ".join(str(k) for k in sorted(SPEED_GRADE_GBPS))
            raise ValueError(f"unknown speed grade {self.speed_grade} (known: {known})")
        if self.channels < 1 or self.channels & (self.channels - 1):
            raise ValueError("channel count must be a positive power of two")

    @property
    def peak_gbps(self):
        """Aggregate peak bandwidth across all channels."""
        return SPEED_GRADE_GBPS[self.speed_grade] * self.channels

    @property
    def burst_cycles(self):
        """Core cycles to move one 64B line over one channel's data bus."""
        ns = self.line_size / SPEED_GRADE_GBPS[self.speed_grade]
        return max(1, round(ns * self.core_ghz))

    @property
    def banks_per_channel(self):
        return self.ranks_per_channel * self.banks_per_rank

    @property
    def lines_per_row(self):
        return self.row_bytes // self.line_size

    def label(self):
        """Human-readable name, e.g. ``'2ch-2400'`` as in Figure 15."""
        return f"{self.channels}ch-{self.speed_grade}"


class BandwidthMonitor:
    """Section 3.2's windowed CAS counter with quartile quantization.

    The counter accumulates CAS commands and is halved at every window
    boundary (4 x tRC cycles), so at a steady CAS rate ``r`` per window the
    counter converges to ``2r`` — the quartile thresholds are scaled by the
    same factor of two so the exported 2-bit bucket reflects the true
    utilization quartile.
    """

    __slots__ = (
        "window_cycles",
        "peak_cas_per_window",
        "_thresholds",
        "_counter",
        "_window_end",
        "total_cas",
        "_bucket_cycles",
        "_last_sample_cycle",
    )

    def __init__(self, window_cycles, peak_cas_per_window):
        if window_cycles <= 0 or peak_cas_per_window <= 0:
            raise ValueError("window and peak CAS rate must be positive")
        self.window_cycles = window_cycles
        self.peak_cas_per_window = peak_cas_per_window
        self._thresholds = (
            0.25 * peak_cas_per_window,
            0.50 * peak_cas_per_window,
            0.75 * peak_cas_per_window,
        )
        self._counter = 0.0
        self._window_end = window_cycles
        self.total_cas = 0
        self._bucket_cycles = [0, 0, 0, 0]
        self._last_sample_cycle = 0

    def _advance(self, cycle):
        if cycle < self._window_end:
            return
        bucket = self._instant_bucket()
        elapsed = cycle - self._last_sample_cycle
        self._bucket_cycles[bucket] += elapsed
        self._last_sample_cycle = cycle
        while cycle >= self._window_end:
            self._counter /= 2.0
            self._window_end += self.window_cycles

    def record_cas(self, cycle):
        """Count one CAS command issued at ``cycle``."""
        if cycle >= self._window_end:
            self._advance(cycle)
        self._counter += 1.0
        self.total_cas += 1

    def _rate_estimate(self, cycle):
        """Per-window CAS rate implied by the counter at ``cycle``.

        Under a steady rate ``r`` the counter carries ``r`` from the
        previous halving and accumulates ``r * t`` through the current
        window (``t`` = elapsed fraction), so ``counter / (1 + t)``
        recovers ``r`` independent of the sampling phase.
        """
        window_start = self._window_end - self.window_cycles
        elapsed = min(max(cycle - window_start, 0), self.window_cycles)
        t = elapsed / self.window_cycles
        return self._counter / (1.0 + t)

    def _instant_bucket(self, cycle=None):
        lo, mid, hi = self._thresholds
        rate = self._rate_estimate(self._last_sample_cycle if cycle is None else cycle)
        if rate >= hi:
            return 3
        if rate >= mid:
            return 2
        if rate >= lo:
            return 1
        return 0

    def bucket(self, cycle):
        """The 2-bit quantized bandwidth-utilization value at ``cycle``."""
        self._advance(cycle)
        return self._instant_bucket(cycle)

    def utilization(self, cycle):
        """Fractional utilization estimate (rate vs. peak rate)."""
        self._advance(cycle)
        return min(1.0, self._rate_estimate(cycle) / self.peak_cas_per_window)

    def bucket_residency(self):
        """Fraction of sampled time spent in each quartile bucket."""
        total = sum(self._bucket_cycles)
        if total == 0:
            return [1.0, 0.0, 0.0, 0.0]
        return [c / total for c in self._bucket_cycles]

    def reset_stats(self):
        """Zero accumulated statistics; the live counter state survives."""
        self.total_cas = 0
        self._bucket_cycles = [0, 0, 0, 0]


class FixedBandwidth:
    """A constant bandwidth signal — handy for tests and ablations."""

    def __init__(self, bucket_value=0):
        if not 0 <= bucket_value <= 3:
            raise ValueError("bucket must be in 0..3")
        self._bucket = bucket_value

    def bucket(self, cycle):
        return self._bucket

    def set_bucket(self, bucket_value):
        if not 0 <= bucket_value <= 3:
            raise ValueError("bucket must be in 0..3")
        self._bucket = bucket_value


class _Bank:
    __slots__ = ("open_row", "next_activate_cycle", "row_ready_cycle")

    def __init__(self):
        self.open_row = -1
        #: Earliest cycle the next ACT may issue (tRC from the last ACT).
        self.next_activate_cycle = 0
        #: Cycle the open row becomes CAS-ready (ACT + tRP + tRCD).
        self.row_ready_cycle = 0


class _Channel:
    __slots__ = ("banks", "bus_free_cycle", "demand_bus_free_cycle")

    def __init__(self, num_banks):
        self.banks = [_Bank() for _ in range(num_banks)]
        #: End of the full serialized burst queue (capacity truth).
        self.bus_free_cycle = 0
        #: End of the last demand burst (demands serialize among themselves).
        self.demand_bus_free_cycle = 0


class DramModel:
    """Banked, open-page DRAM with per-channel bus serialization.

    Scheduling models a demand-first controller (FR-FCFS with demand
    priority): a demand burst preempts the queued prefetch backlog, waiting
    behind at most ``DEMAND_MAX_PREEMPT_WAIT_BURSTS`` bursts already at the
    bus head, and pushes the rest of the backlog one slot later (capacity
    is conserved — the queue shifts, it does not vanish).  Prefetch bursts
    go to the back of the queue, so prefetch pressure raises *prefetch*
    latency first and demand latency only moderately — exactly the paper's
    "pressure on memory bandwidth ... can increase the latency of responses
    from memory" cost (Section 2.4), without the unrealistic
    demands-stuck-behind-the-whole-prefetch-queue behaviour of a pure FIFO.

    Prefetch requests are additionally rejected under extreme bus backlog
    (a last-resort guard); the first-order prefetch throttle is the
    per-core outstanding-prefetch bound in
    :class:`repro.memory.hierarchy.MemoryHierarchy`.
    """

    #: Maximum bus backlog (in line bursts) before prefetches are dropped.
    PREFETCH_DROP_BACKLOG_BURSTS = 256
    #: How many queued bursts a demand can be forced to wait behind.
    DEMAND_MAX_PREEMPT_WAIT_BURSTS = 2
    #: How many row cycles (tRC) of queued prefetch activations a demand
    #: row-miss can be forced to wait behind at a bank.  Demand ACTs
    #: preempt the rest of the backlog (which is pushed later, conserving
    #: bank capacity), mirroring the bus-level demand priority above.
    DEMAND_MAX_PREEMPT_WAIT_ACTS = 2

    __slots__ = (
        "config",
        "tCL",
        "tRCD",
        "tRP",
        "tRC",
        "burst",
        "_channels",
        "_channel_mask",
        "_bank_mask",
        "_channel_bits",
        "_bank_bits",
        "_row_shift",
        "monitor",
        "reads",
        "writes",
        "row_hits",
        "row_misses",
        "busy_cycles",
        "prefetches_dropped",
        "_last_data_done",
        "_stats_start_cycle",
        "_prefetch_drop_backlog",
        "_demand_preempt_bursts",
        "_demand_preempt_acts",
        "_record_cas",
    )

    def __init__(self, config: DramConfig = DramConfig()):
        self.config = config
        t = config.timings
        ghz = config.core_ghz
        self.tCL = t.to_cycles(t.tCL_ns, ghz)
        self.tRCD = t.to_cycles(t.tRCD_ns, ghz)
        self.tRP = t.to_cycles(t.tRP_ns, ghz)
        self.tRC = t.to_cycles(t.tRC_ns, ghz)
        self.burst = config.burst_cycles
        self._channels = [_Channel(config.banks_per_channel) for _ in range(config.channels)]
        self._channel_mask = config.channels - 1
        self._bank_mask = config.banks_per_channel - 1
        self._channel_bits = (config.channels - 1).bit_length()
        self._bank_bits = (config.banks_per_channel - 1).bit_length()
        self._row_shift = (config.lines_per_row - 1).bit_length()
        window = 4 * self.tRC
        peak_cas = window / self.burst * config.channels
        self.monitor = BandwidthMonitor(window, peak_cas)
        # Hot-path precomputations (constants never change per instance).
        self._prefetch_drop_backlog = self.PREFETCH_DROP_BACKLOG_BURSTS * self.burst
        self._demand_preempt_bursts = self.DEMAND_MAX_PREEMPT_WAIT_BURSTS * self.burst
        self._demand_preempt_acts = self.DEMAND_MAX_PREEMPT_WAIT_ACTS * self.tRC
        self._record_cas = self.monitor.record_cas
        # Statistics
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.busy_cycles = 0
        self.prefetches_dropped = 0
        self._last_data_done = 0
        #: Cycle at which the measured region starts (post-warmup floor).
        self._stats_start_cycle = 0

    def _route(self, line_addr):
        """Line-interleaved channels; row-interleaved banks.

        Consecutive lines (after channel selection) fall in the same row of
        the same bank, so streaming accesses enjoy open-page row hits — the
        standard mapping for spatial locality.
        """
        channel_idx = line_addr & self._channel_mask
        rest = line_addr >> self._channel_bits
        bank_idx = (rest >> self._row_shift) & self._bank_mask
        row = rest >> (self._row_shift + self._bank_bits)
        return self._channels[channel_idx], bank_idx, row

    def access(self, cycle, line_addr, is_write=False, is_prefetch=False):
        """Service one 64B request; returns its latency in core cycles.

        Returns ``None`` for a prefetch rejected by the bounded prefetch
        queue (demands are never rejected).
        """
        cycle = int(cycle)
        burst = self.burst
        # Inlined _route: line-interleaved channels, row-interleaved banks.
        channel = self._channels[line_addr & self._channel_mask]
        rest = line_addr >> self._channel_bits
        bank = channel.banks[(rest >> self._row_shift) & self._bank_mask]
        row = rest >> (self._row_shift + self._bank_bits)
        if is_prefetch:
            if channel.bus_free_cycle - cycle > self._prefetch_drop_backlog:
                self.prefetches_dropped += 1
                return None
        if bank.open_row == row:
            # Row hit: CAS as soon as the open row is ready; hits pipeline.
            self.row_hits += 1
            row_wait = bank.row_ready_cycle
            if not is_prefetch:
                # A demand hit to a row opened by a far-future queued
                # prefetch ACT does not wait for the whole backlog.
                bound = cycle + self._demand_preempt_acts
                if row_wait > bound:
                    row_wait = bound
            cas_start = cycle if cycle > row_wait else row_wait
            bus_ready = cas_start + self.tCL
        else:
            # Row miss: precharge + activate, bounded by the bank's tRC
            # activate-to-activate constraint; subsequent hits to the new
            # row need only wait for row_ready, not tRC.
            self.row_misses += 1
            next_act = bank.next_activate_cycle
            if is_prefetch:
                act_start = cycle if cycle > next_act else next_act
                bank.next_activate_cycle = act_start + self.tRC
            else:
                # Demand ACTs preempt queued prefetch activations, waiting
                # behind at most DEMAND_MAX_PREEMPT_WAIT_ACTS row cycles;
                # the displaced backlog is pushed one tRC later (bank
                # capacity is conserved — the queue shifts, it does not
                # shrink).
                preempt_bound = cycle + self._demand_preempt_acts
                act_start = next_act if next_act < preempt_bound else preempt_bound
                if act_start < cycle:
                    act_start = cycle
                bank.next_activate_cycle = (
                    next_act if next_act > act_start else act_start
                ) + self.tRC
            bank.open_row = row
            row_ready = act_start + self.tRP + self.tRCD
            bank.row_ready_cycle = row_ready
            bus_ready = row_ready + self.tCL
        # The bus is a capacity meter, not a FIFO of possibly-stalled
        # requests: each burst reserves one bus slot in arrival order, but a
        # request whose bank is not yet ready completes later *without*
        # holding the bus back — approximating FR-FCFS, where ready CAS
        # commands bypass stalled ones.
        bus_free = channel.bus_free_cycle
        if is_prefetch:
            slot = bus_free if bus_free > cycle else cycle
            channel.bus_free_cycle = slot + burst
            data_start = bus_ready if bus_ready > slot else slot
            data_done = data_start + burst
        else:
            # Demands preempt: wait behind at most the burst(s) already at
            # the bus head, serialize with other demands, and consume one
            # bus slot of capacity.
            head_wait = bus_free - bus_ready
            if head_wait < 0:
                head_wait = 0
            elif head_wait > self._demand_preempt_bursts:
                head_wait = self._demand_preempt_bursts
            data_start = bus_ready + head_wait
            demand_free = channel.demand_bus_free_cycle
            if demand_free > data_start:
                data_start = demand_free
            data_done = data_start + burst
            channel.demand_bus_free_cycle = data_done
            channel.bus_free_cycle = (bus_free if bus_free > cycle else cycle) + burst
        self.busy_cycles += burst
        if data_done > self._last_data_done:
            self._last_data_done = data_done
        self._record_cas(data_start)
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        return data_done - cycle

    def demand_merge_bound(self):
        """Residual-latency bound when a demand merges an in-flight prefetch.

        The memory controller promotes a demand that hits an outstanding
        prefetch to demand priority, so the demand waits at most a clean
        demand round-trip — not the prefetch's queued completion time.
        """
        return (
            self.tRP
            + self.tRCD
            + self.tCL
            + (1 + self.DEMAND_MAX_PREEMPT_WAIT_BURSTS) * self.burst
        )

    # -- bandwidth signal (Section 3.2) ---------------------------------------

    def bucket(self, cycle):
        """The broadcast 2-bit bandwidth-utilization value."""
        return self.monitor.bucket(cycle)

    def utilization(self, cycle):
        return self.monitor.utilization(cycle)

    def achieved_gbps(self, total_cycles):
        """Average delivered bandwidth over ``total_cycles`` of measurement.

        Clamped to the completion time of the last burst, so a backlogged
        run cannot report more than the physical peak.
        """
        span = max(total_cycles, self._last_data_done - self._stats_start_cycle)
        if span <= 0:
            return 0.0
        bytes_moved = (self.reads + self.writes) * self.config.line_size
        seconds = span / (self.config.core_ghz * 1e9)
        return bytes_moved / seconds / 1e9

    def reset_stats(self, cycle=0):
        """Zero statistics at the warmup boundary; queue state survives."""
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.busy_cycles = 0
        self.prefetches_dropped = 0
        self._stats_start_cycle = int(cycle)
        self.monitor.reset_stats()

    def stats(self):
        return {
            "reads": self.reads,
            "writes": self.writes,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "total_cas": self.monitor.total_cas,
        }


#: The six DRAM configurations of Figures 1, 6 and 15, in peak-GB/s order.
#: The paper's Table 2 machine DRAM configurations (frozen, shared
#: instances): single-thread = one DDR4-2133 channel, multi-programmed =
#: two.  Single source for `SystemConfig` factories and engine specs.
ST_DRAM = DramConfig(speed_grade=2133, channels=1)
MP_DRAM = DramConfig(speed_grade=2133, channels=2)

BANDWIDTH_SWEEP = (
    DramConfig(speed_grade=1600, channels=1),
    DramConfig(speed_grade=2133, channels=1),
    DramConfig(speed_grade=2400, channels=1),
    DramConfig(speed_grade=1600, channels=2),
    DramConfig(speed_grade=2133, channels=2),
    DramConfig(speed_grade=2400, channels=2),
)
