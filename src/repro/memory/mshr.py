"""Miss Status Holding Register (MSHR) file.

Models the finite outstanding-miss capacity of each cache level (Table 2:
16 MSHRs at L1, 32 at L2 and per LLC bank).  The model is analytic: entries
record when their fill completes, and a request arriving at a full MSHR file
must wait for the earliest completion before it can allocate — the
head-of-line delay is returned to the caller and added to the request's
latency.
"""

import heapq


class MshrFile:
    """A bounded set of in-flight misses with completion-time tracking."""

    __slots__ = ("capacity", "_ready_heap", "allocations", "stall_cycles")

    def __init__(self, capacity):
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._ready_heap = []
        self.allocations = 0
        self.stall_cycles = 0

    def outstanding(self, cycle):
        """Number of misses still in flight at ``cycle``."""
        self._drain(cycle)
        return len(self._ready_heap)

    def allocate(self, cycle, completion_cycle):
        """Allocate an entry for a miss completing at ``completion_cycle``.

        Returns the number of cycles the request had to wait for a free
        entry (zero when the file has room).
        """
        heap = self._ready_heap
        while heap and heap[0] <= cycle:
            heapq.heappop(heap)
        wait = 0
        if len(heap) >= self.capacity:
            earliest = heap[0]
            wait = max(0, earliest - cycle)
            until = cycle + wait
            while heap and heap[0] <= until:
                heapq.heappop(heap)
            # If completions tie, at least one slot opened up; if not (all
            # completions are in the future beyond earliest), force-pop one:
            # the entry we waited on has completed by construction.
            if len(heap) >= self.capacity:
                heapq.heappop(heap)
            self.stall_cycles += wait
        heapq.heappush(heap, completion_cycle + wait)
        self.allocations += 1
        return wait

    def _drain(self, cycle):
        heap = self._ready_heap
        while heap and heap[0] <= cycle:
            heapq.heappop(heap)

    def reset(self):
        """Clear all in-flight state and statistics."""
        self._ready_heap.clear()
        self.reset_stats()

    def reset_stats(self):
        """Zero the counters; in-flight entries are untouched."""
        self.allocations = 0
        self.stall_cycles = 0
