"""Virtual memory: page allocation and translation.

The paper (like every spatial prefetcher) operates on *physical* pages
and stops prefetching at the 4KB boundary.  The reason is virtual
memory: consecutive virtual pages map to effectively random physical
frames, so a pattern learned across a page boundary would chase the
wrong physical neighbour.  This module makes that constraint executable:

- :class:`PageAllocator` — maps virtual pages to physical frames on
  first touch, either sequentially (an idealised contiguous allocation)
  or pseudo-randomly (a long-running system's fragmented frame pool);
- :class:`Tlb` — a small set-associative translation cache with miss
  accounting, so translation pressure is visible;
- :func:`translate_trace` — rewrites a virtual-address trace into the
  physical addresses the memory hierarchy (and the prefetchers) see.

The cross-page ablation bench uses this to measure how much an
"ignore-page-boundaries" prefetcher loses once frames are fragmented —
the quantitative justification for DSPatch's per-page patterns.
"""

from dataclasses import dataclass

import numpy as np

from repro.constants import PAGE_SHIFT
from repro.cpu.trace import Trace


class PageAllocator:
    """First-touch virtual-to-physical page mapping.

    ``fragmented=False`` hands out consecutive frames in touch order (the
    best case for cross-page spatial patterns); ``fragmented=True`` draws
    frames pseudo-randomly from a large pool, the steady state of a busy
    machine.
    """

    def __init__(self, fragmented=True, frame_pool_pages=1 << 20, seed=7):
        self.fragmented = fragmented
        self.frame_pool_pages = frame_pool_pages
        self._rng = np.random.default_rng(seed)
        self._mapping = {}
        self._next_frame = 0x100  # skip low frames, like a real allocator
        self._used_frames = set()

    def frame_of(self, virtual_page):
        """Return (allocating on first touch) the physical frame number."""
        frame = self._mapping.get(virtual_page)
        if frame is not None:
            return frame
        if self.fragmented:
            while True:
                frame = int(self._rng.integers(0x100, self.frame_pool_pages))
                if frame not in self._used_frames:
                    break
        else:
            frame = self._next_frame
            self._next_frame += 1
        self._used_frames.add(frame)
        self._mapping[virtual_page] = frame
        return frame

    @property
    def mapped_pages(self):
        return len(self._mapping)

    def contiguity(self):
        """Fraction of virtually-adjacent page pairs that stay physically
        adjacent — ~1.0 for sequential allocation, ~0.0 when fragmented."""
        if len(self._mapping) < 2:
            return 1.0
        adjacent = 0
        pairs = 0
        for vpage, frame in self._mapping.items():
            neighbour = self._mapping.get(vpage + 1)
            if neighbour is None:
                continue
            pairs += 1
            if neighbour == frame + 1:
                adjacent += 1
        return adjacent / pairs if pairs else 1.0


@dataclass
class TlbStats:
    hits: int = 0
    misses: int = 0

    @property
    def miss_rate(self):
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class Tlb:
    """Set-associative translation lookaside buffer (presence only).

    Timing impact is out of scope for the prefetcher study; the structure
    exists so translation locality is measurable (`stats.miss_rate`) and
    so the translation path has a realistic capacity limit.
    """

    def __init__(self, entries=64, ways=4):
        if entries <= 0 or entries % ways:
            raise ValueError("entries must be a positive multiple of ways")
        sets = entries // ways
        if sets & (sets - 1):
            raise ValueError("TLB set count must be a power of two")
        self.entries = entries
        self.ways = ways
        self._sets = [dict() for _ in range(sets)]
        self.stats = TlbStats()

    def access(self, virtual_page):
        """Record one translation; returns True on a TLB hit."""
        idx = virtual_page & (len(self._sets) - 1)
        tlb_set = self._sets[idx]
        if virtual_page in tlb_set:
            tlb_set[virtual_page] = tlb_set.pop(virtual_page)  # refresh LRU
            self.stats.hits += 1
            return True
        if len(tlb_set) >= self.ways:
            del tlb_set[next(iter(tlb_set))]
        tlb_set[virtual_page] = True
        self.stats.misses += 1
        return False


def translate_trace(trace, allocator=None, tlb=None):
    """Rewrite a virtual-address trace into physical addresses.

    Returns ``(physical_trace, allocator)`` so callers can inspect the
    mapping (e.g. its :meth:`~PageAllocator.contiguity`).  A ``tlb``, if
    given, observes every translation.
    """
    allocator = allocator or PageAllocator()
    page_offset_mask = (1 << PAGE_SHIFT) - 1
    out_addrs = np.empty(len(trace), dtype=np.int64)
    for i, addr in enumerate(trace.addrs.tolist()):
        vpage = addr >> PAGE_SHIFT
        if tlb is not None:
            tlb.access(vpage)
        frame = allocator.frame_of(vpage)
        out_addrs[i] = (frame << PAGE_SHIFT) | (addr & page_offset_mask)
    return (
        Trace(trace.gaps.copy(), trace.pcs.copy(), out_addrs, trace.flags.copy()),
        allocator,
    )
