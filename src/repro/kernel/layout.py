"""Flat-state layout: the single source of truth for kernel slot indices.

The kernel subsystem keeps every piece of mutable hot-path state — core
timing scalars, cache stats/ticks, MSHR counters, prefetch accounting,
DRAM queue state, the bandwidth monitor — in four flat arrays:

- per-core ``int64`` slots (:data:`CI64`) and ``float64`` slots
  (:data:`CF64`);
- shared ``int64`` slots (:data:`SI64`) and ``float64`` slots
  (:data:`SF64`) — "shared" because in a multi-programmed run all cores
  point at one copy (the shared LLC, the shared DRAM model and its
  bandwidth monitor live here).

Bulk state (cache line arrays, MSHR heaps, the ROB checkpoint ring, the
stride table, DRAM bank arrays, the crossing buffers) lives in separate
named arrays, indexed by the pointer-table constants (:data:`PTR`).

Three consumers read these dictionaries and therefore can never drift
apart:

- :mod:`repro.kernel.state` sizes and packs the arrays,
- :mod:`repro.kernel.pykernel` (the executable spec) indexes them,
- :mod:`repro.kernel.cgen` emits them as ``#define`` lines into the
  generated C source, so the compiled twin shares the exact layout.
"""


def _index(names):
    return {name: idx for idx, name in enumerate(names)}


#: Per-core int64 slot names, grouped by subsystem.  Mutable state and
#: immutable per-run constants share the array — the constants simply
#: never change after packing, which keeps the pointer plumbing to four
#: scalar arrays total.
CI64_NAMES = (
    # -- core execution ------------------------------------------------------
    "pos",              # next op index
    "end",              # batch bound (exclusive op index)
    "n_ops",            # trace length
    "instr",            # instruction counter
    "win_head",         # ROB checkpoint ring: head index
    "win_len",          # ROB checkpoint ring: live entries
    "win_cap",          # ROB checkpoint ring: capacity (power of two)
    "hit_l1", "hit_l2", "hit_llc", "hit_dram",
    "width", "rob_size",
    "strict",           # run_ops_until tie rule for this batch
    "phase",            # crossing state machine (PH_*)
    # -- L1 ------------------------------------------------------------------
    "l1_ways", "l1_set_mask", "l1_hit_latency", "l1_victim_mode", "l1_tick",
    "l1_demand_hits", "l1_demand_misses", "l1_prefetch_probe_hits",
    "l1_useful_prefetches", "l1_late_useful_prefetches",
    "l1_useless_evictions", "l1_writebacks",
    # -- L2 ------------------------------------------------------------------
    "l2_ways", "l2_set_mask", "l2_hit_latency", "l2_victim_mode", "l2_tick",
    "l2_demand_hits", "l2_demand_misses", "l2_prefetch_probe_hits",
    "l2_useful_prefetches", "l2_late_useful_prefetches",
    "l2_useless_evictions", "l2_writebacks",
    # -- LLC geometry (stats/tick are shared; geometry is identical per core)
    "llc_ways", "llc_set_mask", "llc_hit_latency", "llc_victim_mode",
    # -- MSHRs ---------------------------------------------------------------
    "mshr_l1_cap", "mshr_l1_len", "mshr_l1_allocations", "mshr_l1_stall",
    "mshr_l2_cap", "mshr_l2_len", "mshr_l2_allocations", "mshr_l2_stall",
    "mshr_llc_cap", "mshr_llc_len", "mshr_llc_allocations", "mshr_llc_stall",
    # -- hierarchy -----------------------------------------------------------
    "demand_accesses", "queue_size", "merge_bound", "inflight_len",
    "pf_issued", "pf_issued_low_priority", "pf_filled_from_llc",
    "pf_filled_from_dram", "pf_useful", "pf_late", "pf_useless",
    "pf_dropped_resident", "pf_dropped_in_flight", "pf_dropped_bandwidth",
    # -- L1 stride prefetcher --------------------------------------------------
    "has_l1pf", "has_l2pf", "stride_degree", "stride_mask",
    "stride_conf_threshold", "stride_conf_max", "stride_trainings",
    # -- crossing machinery ----------------------------------------------------
    "scheme_kind",      # SCHEME_*: which compiled training twin drives l2_pf
    "tb_len",           # queued training records in train_buf
    "note_len", "note_cap",                         # queued usefulness notes
    "cand_len", "cand_cap",                         # scheme candidates (in)
    # saved per-op context across a crossing
    "ctx_cycle", "ctx_pc", "ctx_addr", "ctx_is_write", "ctx_idx",
    "ctx_line", "ctx_l1_slot", "ctx_pf_i", "ctx_pf_n",
    # saved below-L1 context (the half-finished lookup)
    "b_line", "b_slot", "b_first_use",
    # -- compiled scheme training (live only when scheme_kind > 0) -----------
    "sp_trainings", "sp_filtered", "sp_fb_issued", "sp_fb_useful",
    "sp_ghr_len",
    "dp_pb_len", "dp_pb_evictions", "dp_trainings", "dp_triggers",
    "dp_pred_covp", "dp_pred_accp", "dp_pred_supp",
)

#: Per-core float64 slot names.
CF64_NAMES = (
    "retire", "last_load_done", "horizon", "retire_step", "ctx_enter",
)

#: Shared int64 slots (one copy per LLC/DRAM domain).
SI64_NAMES = (
    "llc_tick",
    "llc_demand_hits", "llc_demand_misses", "llc_prefetch_probe_hits",
    "llc_useful_prefetches", "llc_late_useful_prefetches",
    "llc_useless_evictions", "llc_writebacks",
    # DRAM timing constants
    "tCL", "tRCD", "tRP", "tRC", "burst",
    "ch_mask", "ch_bits", "bank_mask", "bank_bits", "row_shift",
    "banks_per_channel",
    "pf_drop_backlog", "dem_preempt_bursts", "dem_preempt_acts",
    # DRAM statistics
    "dram_reads", "dram_writes", "dram_row_hits", "dram_row_misses",
    "dram_busy_cycles", "dram_prefetches_dropped",
    "dram_last_data_done", "dram_stats_start",
    # bandwidth monitor
    "mon_window_cycles", "mon_window_end", "mon_total_cas",
    "mon_bucket0", "mon_bucket1", "mon_bucket2", "mon_bucket3",
    "mon_last_sample",
)

#: Shared float64 slots.
SF64_NAMES = (
    "mon_counter", "mon_thr_lo", "mon_thr_mid", "mon_thr_hi",
)

CI64 = _index(CI64_NAMES)
CF64 = _index(CF64_NAMES)
SI64 = _index(SI64_NAMES)
SF64 = _index(SF64_NAMES)

#: Crossing state machine phases (slot ``phase``).
PH_TOP = 0          # between ops
PH_L1PF_TRAIN = 1   # waiting on l2_pf.train for an L1-stride prefetch issue
PH_DEMAND_TRAIN = 2  # waiting on l2_pf.train for the demand L1 miss

#: ``krun`` return codes.
RC_DONE = 0         # batch finished (end / horizon / trace exhausted)
RC_TRAIN = 1        # scheme train requested; train_buf holds the records

#: Note-queue record kinds (triples of ``kind, cycle, line``).
NOTE_USEFUL = 0
NOTE_USELESS = 1

#: Hit-level codes, mirroring :mod:`repro.memory.hierarchy`.
LV_L1, LV_L2, LV_LLC, LV_DRAM = 0, 1, 2, 3

#: Pointer-table entries for the compiled kernel: every array the C side
#: touches, by name.  The Python side fills an ``int64`` table with the
#: arrays' base addresses in exactly this order.
PTR_NAMES = (
    "ci64", "cf64", "si64", "sf64",
    "op_gap", "op_pc", "op_addr", "op_write", "op_dep",
    "l1_valid", "l1_line", "l1_dirty", "l1_pref", "l1_used", "l1_touch", "l1_ready",
    "l2_valid", "l2_line", "l2_dirty", "l2_pref", "l2_used", "l2_touch", "l2_ready",
    "llc_valid", "llc_line", "llc_dirty", "llc_pref", "llc_used", "llc_touch", "llc_ready",
    "win_idx", "win_ret",
    "mshr_l1", "mshr_l2", "mshr_llc",
    "stride_valid", "stride_tag", "stride_last", "stride_stride", "stride_conf",
    "bank_open", "bank_nextact", "bank_rowready",
    "ch_busfree", "ch_demandfree",
    "infl_line", "infl_ready",
    "note_buf", "cand_line", "cand_lp", "pf_buf", "train_buf",
    # compiled scheme training state (1-element dummies when scheme_kind == 0)
    "sp_st_tag", "sp_st_loff", "sp_st_sig",
    "sp_pt_csig", "sp_pt_delta", "sp_pt_cdelta",
    "sp_ghr_sig", "sp_ghr_conf", "sp_ghr_loff", "sp_ghr_delta",
    "sp_flt",
    "dp_pb_page", "dp_pb_pattern", "dp_pb_trig_sig", "dp_pb_trig_off",
    "dp_spt_cov", "dp_spt_acc", "dp_spt_mcov", "dp_spt_or", "dp_spt_macc",
)
PTR = _index(PTR_NAMES)

#: Capacity of the stride-candidate scratch buffer (``pf_buf``): the page
#: bound caps a stride burst at LINES_PER_PAGE targets.
PF_BUF_CAP = 64

#: Initial capacity of the crossing buffers; grown on demand.
CAND_CAP0 = 256

#: Compiled scheme-training twins (slot ``scheme_kind``).  ``SCHEME_PY``
#: means "no C twin": training crosses back into Python via ``train_buf``.
SCHEME_PY = 0
SCHEME_SPP = 1
SCHEME_ESPP = 2
SCHEME_DSPATCH = 3
SCHEME_SPP_DSPATCH = 4  # the Section 5.1 adjunct composite: SPP + DSPatch

#: Capacity (in records) of the batched training-crossing buffer.  Each
#: record is four int64 slots: cycle, pc, addr, hit.
TB_CAP = 16
