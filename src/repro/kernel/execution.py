"""KernelExecution: the CoreExecution-compatible face of the flat kernels.

This is the glue between the system drivers and the two kernels: it packs
the freshly built object model into a :class:`~repro.kernel.state.KernelState`,
selects a runtime (:class:`~repro.kernel.pykernel.PyRuntime` or the
compiled twin from :mod:`repro.kernel.cbuild`), exposes the exact driver
surface of :class:`repro.cpu.core.CoreExecution` (``run_ops``,
``run_ops_until``, ``mark_stats_start``, ``done``/``time``/``ops``), and
writes everything back into the objects at the end so result assembly,
``flush_training`` and post-run inspection are unchanged.

Multi-programmed runs share one :class:`KernelDomain` (the LLC + DRAM +
bandwidth-monitor working state) across all cores and are scheduled by the
existing public-API driver :func:`repro.cpu.core.interleave_two_level`.
"""

import math

from repro.kernel.pykernel import PyRuntime, PyShared
from repro.kernel.state import KernelState, SharedState

_INF = float("inf")
#: Always-permissive horizon for plain ``run_ops`` batches (finite so the
#: compiled kernel can keep the comparison in one double).
_MAX_FLOAT = math.nextafter(_INF, 0.0)


#: Memoized probe result: ``(ok, kind, reason)`` where ``kind`` is
#: ``"toolchain"`` (no compiler — the expected, quiet degradation) or
#: ``"build"`` (compiler present but codegen/compile/load failed — a real
#: bug that callers must surface, never swallow).
_probe = None


def _probe_kernel():
    global _probe
    if _probe is not None:
        return _probe
    try:
        from repro.kernel import cbuild
    except Exception as exc:  # import error in the kernel package itself
        _probe = (False, "build", f"kernel modules failed to import: {exc}")
        return _probe
    if not cbuild.toolchain_available():
        _probe = (False, "toolchain", "no C compiler on PATH")
        return _probe
    try:
        cbuild.load_kernel()
    except Exception as exc:
        _probe = (False, "build", f"{type(exc).__name__}: {exc}")
        return _probe
    _probe = (True, None, None)
    return _probe


def kernel_available():
    """True when the compiled kernel is built and loadable.

    This eagerly builds the kernel (memoized per process), so a broken
    codegen or compile reports as a *build* failure via
    :func:`kernel_unavailable_reason` instead of masquerading as a
    missing toolchain.
    """
    return _probe_kernel()[0]


def kernel_unavailable_reason():
    """``(kind, reason)`` when the compiled kernel is unavailable, else None.

    ``kind`` is ``"toolchain"`` — no C compiler, the legitimate quiet
    fallback — or ``"build"`` — the toolchain is present but the kernel
    failed to generate, compile or load, which is a bug the caller must
    report (and a hard error under an explicit ``--kernel compiled``).
    """
    ok, kind, reason = _probe_kernel()
    return None if ok else (kind, reason)


class KernelBandwidth:
    """Bandwidth signal that follows the state wherever it currently lives.

    Bandwidth-aware schemes hold this object and call ``bucket(cycle)``
    during training.  While a kernel run is active the live monitor state
    is in the kernel domain's working form, so queries route there; before
    attach and after release (post write-back — e.g. the end-of-run
    ``flush_training`` drain) they route to the DRAM object.
    """

    __slots__ = ("_dram", "_domain")

    def __init__(self, dram):
        self._dram = dram
        self._domain = None

    def attach(self, domain):
        self._domain = domain

    def release(self):
        self._domain = None

    def bucket(self, cycle):
        domain = self._domain
        if domain is not None:
            return domain.bucket(cycle)
        return self._dram.bucket(cycle)


class KernelDomain:
    """One LLC/DRAM domain in kernel form, shared by every core in a run."""

    def __init__(self, llc, dram, kind):
        if kind not in ("py", "compiled"):
            raise ValueError(f"unknown kernel kind {kind!r}")
        self.kind = kind
        self.shared_state = SharedState(llc, dram)
        if kind == "py":
            self.shared = PyShared(self.shared_state)
        else:
            from repro.kernel.cbuild import CShared

            self.shared = CShared(self.shared_state)

    def bucket(self, cycle):
        return self.shared.bucket(cycle)

    def write_back(self, contents=True):
        """Restore the shared LLC/DRAM objects (call once, after the run).

        ``contents=False`` restores counters and DRAM/monitor state but
        not the LLC's resident lines — for callers that only assemble
        counter-based results before discarding the objects.
        """
        self.shared.sync_to_state(contents)
        self.shared_state.write_back(contents)


class KernelExecution:
    """Drop-in replacement for ``CoreExecution`` driving a flat kernel.

    Wraps an already-built ``CoreExecution`` (which owns the trace and the
    hierarchy objects); between :meth:`__init__` and :meth:`write_back`
    the packed working form is the truth and the wrapped objects are
    stale.  The driver surface (``run_ops``/``run_ops_until``/``done``/
    ``time``/``ops``/``mark_stats_start``) matches ``CoreExecution``
    exactly, so :func:`repro.cpu.core.interleave_two_level` schedules MP
    mixes over these unchanged.
    """

    def __init__(self, execution, trace, domain):
        self.execution = execution
        self.domain = domain
        hier = execution.hierarchy
        l2_pf = hier.l2_prefetcher
        train = None if l2_pf is None else l2_pf.train
        note_useful = None if l2_pf is None else l2_pf.note_useful_prefetch
        note_useless = None if l2_pf is None else l2_pf.note_useless_prefetch
        # Only the compiled domain may substitute C training twins for the
        # scheme objects; the py kernel trains the live objects directly,
        # so packing them would clobber that work at write_back.
        self.state = KernelState(
            execution,
            trace,
            domain.shared_state,
            compile_scheme=(domain.kind == "compiled"),
        )
        if domain.kind == "py":
            self.runtime = PyRuntime(
                self.state,
                domain.shared,
                train=train,
                note_useful=note_useful,
                note_useless=note_useless,
            )
        else:
            from repro.kernel.cbuild import CRuntime

            self.runtime = CRuntime(
                self.state,
                domain.shared,
                train=train,
                note_useful=note_useful,
                note_useless=note_useless,
            )
        self._written_back = False

    # ----------------------------------------------------- CoreExecution API

    @property
    def done(self):
        return self.runtime.pos >= self.runtime.n_ops

    @property
    def time(self):
        return self.runtime.time

    @property
    def ops(self):
        return self.runtime.pos

    def run_ops(self, max_ops=None):
        runtime = self.runtime
        pos = runtime.pos
        n = runtime.n_ops
        end = n if max_ops is None else min(n, pos + max_ops)
        return runtime.run(end, _MAX_FLOAT, False)

    def run_ops_until(self, horizon, max_ops=None, strict=False):
        runtime = self.runtime
        pos = runtime.pos
        n = runtime.n_ops
        end = n if max_ops is None else min(n, pos + max_ops)
        if horizon == _INF:
            horizon = _MAX_FLOAT
        return runtime.run(end, horizon, strict)

    def mark_stats_start(self):
        """Set the measured-region floor from the live working state."""
        self.execution._stats_floor = self.runtime.snapshot()

    # ------------------------------------------------- warmup-boundary resets

    def reset_hierarchy_stats(self):
        self.runtime.reset_hierarchy_stats()

    def reset_dram_stats(self, cycle):
        self.runtime.reset_dram_stats(cycle)

    # --------------------------------------------------------------- teardown

    def write_back(self, contents=True):
        """Sync working form -> flat state -> objects (idempotent).

        ``contents=False`` skips rebuilding cache line structures; every
        counter and execution scalar is still restored.
        """
        if self._written_back:
            return
        self.runtime.sync_to_state(contents)
        self.state.write_back(contents)
        self._written_back = True

    def finalize(self):
        """Measured-region stats, via the restored object execution."""
        self.write_back()
        return self.execution.finalize()
