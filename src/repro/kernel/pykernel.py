"""kernel_py: the pure-Python per-access kernel (executable spec).

Runs the complete per-op simulate loop — core timing model, L1/L2/LLC
lookups and fills, MSHR accounting, prefetch issue, DRAM timing, the
bandwidth monitor — against flat state unpacked from a
:class:`repro.kernel.state.KernelState`.  It is a line-for-line
transliteration of the object hot path (``CoreExecution.run_ops_until`` +
``MemoryHierarchy.access``/``_below_l1``/``_issue_prefetches`` +
``Cache``/``MshrFile``/``DramModel``), kept bit-identical by the parity
grid in ``tests/test_kernel_parity.py``; the generated-C twin
(:mod:`repro.kernel.cgen`) is in turn a transliteration of this module.

Working form: per-cache ``dict line -> slot`` plus flat Python lists
(recency is the ``touch`` value — ascending touch *is* the OrderedDict
recency order of the object model, so victim selection is an argmin scan
over the set's ways), heap lists for the MSHRs, a plain dict for the
in-flight prefetch queue.  Scheme training crosses back into object land
through ``self._train`` — the prefetcher interface is untouched.  (The
``py`` kernel always trains the live scheme objects; the compiled
kernel's C training twins — ``scheme_kind > 0`` — exist only on the C
side, with ``prefetchers/spp.py`` and ``core/dspatch.py`` as their
executable specs and ``train_buf`` batching the crossings for everything
else.)
"""

import heapq

import numpy as np

from repro.constants import LINE_SHIFT, PAGE_SHIFT
from repro.kernel.layout import CF64, CI64, SF64, SI64
from repro.kernel.state import _CACHE_FIELDS

_PG = PAGE_SHIFT - LINE_SHIFT

#: Cache stats attribute names on the working form, in slot-array order.
_STAT_ATTRS = ("dh", "dm", "pph", "up", "lup", "ue", "wb")
_PF_ATTRS = (
    "pf_issued",
    "pf_issued_low_priority",
    "pf_filled_from_llc",
    "pf_filled_from_dram",
    "pf_useful",
    "pf_late",
    "pf_useless",
    "pf_dropped_resident",
    "pf_dropped_in_flight",
    "pf_dropped_bandwidth",
)


class _PyCache:
    """One cache level in kernel working form."""

    __slots__ = (
        "map",
        "valid",
        "line",
        "dirty",
        "pref",
        "used",
        "touch",
        "ready",
        "set_len",
        "ways",
        "set_mask",
        "hit_lat",
        "mode",
        "tick",
        "dh",
        "dm",
        "pph",
        "up",
        "lup",
        "ue",
        "wb",
    )

    def __init__(self, arrs, ways, set_mask, hit_lat, mode, tick, stats):
        self.valid = arrs["valid"].tolist()
        self.line = arrs["line"].tolist()
        self.dirty = arrs["dirty"].tolist()
        self.pref = arrs["pref"].tolist()
        self.used = arrs["used"].tolist()
        self.touch = arrs["touch"].tolist()
        self.ready = arrs["ready"].tolist()
        self.ways = ways
        self.set_mask = set_mask
        self.hit_lat = hit_lat
        self.mode = mode
        self.tick = tick
        num_sets = set_mask + 1
        set_len = [0] * num_sets
        cmap = {}
        line = self.line
        # Only occupied slots matter; sparse caches skip their empty slots.
        for slot in np.flatnonzero(arrs["valid"]).tolist():
            cmap[line[slot]] = slot
            set_len[slot // ways] += 1
        self.set_len = set_len
        self.map = cmap
        for attr, value in zip(_STAT_ATTRS, stats):
            setattr(self, attr, value)

    def sync(self, arrs):
        arrs["valid"][:] = self.valid
        arrs["line"][:] = self.line
        arrs["dirty"][:] = self.dirty
        arrs["pref"][:] = self.pref
        arrs["used"][:] = self.used
        arrs["touch"][:] = self.touch
        arrs["ready"][:] = self.ready

    def stats(self):
        return [getattr(self, a) for a in _STAT_ATTRS]

    def reset_stats(self):
        for a in _STAT_ATTRS:
            setattr(self, a, 0)

    # The fill path (mirrors Cache.fill exactly; want_info only controls
    # whether the victim's identity is returned for pollution/useless
    # accounting at the LLC).
    def fill(self, line, prefetched, low_priority, ready, want_info):
        tick = self.tick + 1
        self.tick = tick
        cmap = self.map
        slot = cmap.get(line)
        if slot is not None:
            self.touch[slot] = tick
            return None
        ways = self.ways
        set_idx = line & self.set_mask
        base = set_idx * ways
        info = None
        touch = self.touch
        if self.set_len[set_idx] >= ways:
            pref = self.pref
            used = self.used
            end = base + ways
            # Ticks are unique per cache, so min+index over the set's touch
            # values (both C-speed) recover the argmin slot exactly.
            if self.mode == 0:
                vslot = touch.index(min(touch[base:end]), base, end)
            else:
                vslot = -1
                vtouch = 0
                for s in range(base, end):
                    if pref[s] and not used[s]:
                        t = touch[s]
                        if vslot < 0 or t < vtouch:
                            vslot = s
                            vtouch = t
                if vslot < 0:
                    vslot = touch.index(min(touch[base:end]), base, end)
            if pref[vslot] and not used[vslot]:
                self.ue += 1
            if self.dirty[vslot]:
                self.wb += 1
            if want_info:
                info = (self.line[vslot], pref[vslot], used[vslot])
            del cmap[self.line[vslot]]
            slot = vslot
        else:
            slot = self.valid.index(0, base, base + ways)
            self.set_len[set_idx] += 1
            self.valid[slot] = 1
        self.line[slot] = line
        self.dirty[slot] = 0
        if prefetched:
            self.pref[slot] = 1
            self.used[slot] = 0
        else:
            self.pref[slot] = 0
            self.used[slot] = 1
        touch[slot] = -tick if low_priority else tick
        self.ready[slot] = ready
        cmap[line] = slot
        return info

    def touch_for_prefetcher(self, line):
        slot = self.map.get(line)
        if slot is not None and self.pref[slot] and not self.used[slot]:
            self.used[slot] = 1


class _PyMshr:
    __slots__ = ("cap", "heap", "allocs", "stall")

    def __init__(self, cap, heap, allocs, stall):
        self.cap = cap
        self.heap = heap
        self.allocs = allocs
        self.stall = stall

    def outstanding(self, cycle):
        heap = self.heap
        while heap and heap[0] <= cycle:
            heapq.heappop(heap)
        return len(heap)

    def allocate(self, cycle, completion_cycle):
        heap = self.heap
        while heap and heap[0] <= cycle:
            heapq.heappop(heap)
        wait = 0
        if len(heap) >= self.cap:
            earliest = heap[0]
            wait = max(0, earliest - cycle)
            until = cycle + wait
            while heap and heap[0] <= until:
                heapq.heappop(heap)
            if len(heap) >= self.cap:
                heapq.heappop(heap)
            self.stall += wait
        heapq.heappush(heap, completion_cycle + wait)
        self.allocs += 1
        return wait


class PyShared:
    """Shared LLC + DRAM + bandwidth monitor in kernel working form.

    One instance per LLC/DRAM domain; every core's :class:`PyRuntime`
    references the same object, exactly as the object model shares one
    ``Cache``/``DramModel``.
    """

    def __init__(self, shared_state):
        self.state = shared_state
        si = shared_state.si64
        sf = shared_state.sf64

        def g(name):
            return int(si[SI64[name]])

        self.llc = _PyCache(
            shared_state.llc,
            ways=shared_state.llc_obj.ways,
            set_mask=shared_state.llc_obj._set_mask,
            hit_lat=shared_state.llc_obj.hit_latency,
            mode=shared_state.llc_obj._victim_mode,
            tick=g("llc_tick"),
            stats=[
                g("llc_demand_hits"),
                g("llc_demand_misses"),
                g("llc_prefetch_probe_hits"),
                g("llc_useful_prefetches"),
                g("llc_late_useful_prefetches"),
                g("llc_useless_evictions"),
                g("llc_writebacks"),
            ],
        )
        # DRAM constants
        self.tCL = g("tCL")
        self.tRCD = g("tRCD")
        self.tRP = g("tRP")
        self.tRC = g("tRC")
        self.burst = g("burst")
        self.ch_mask = g("ch_mask")
        self.ch_bits = g("ch_bits")
        self.bank_mask = g("bank_mask")
        self.bank_bits = g("bank_bits")
        self.row_shift = g("row_shift")
        self.banks_per_channel = g("banks_per_channel")
        self.pf_drop_backlog = g("pf_drop_backlog")
        self.dem_preempt_bursts = g("dem_preempt_bursts")
        self.dem_preempt_acts = g("dem_preempt_acts")
        # DRAM state + stats
        self.bank_open = shared_state.bank_open.tolist()
        self.bank_nextact = shared_state.bank_nextact.tolist()
        self.bank_rowready = shared_state.bank_rowready.tolist()
        self.ch_busfree = shared_state.ch_busfree.tolist()
        self.ch_demandfree = shared_state.ch_demandfree.tolist()
        self.reads = g("dram_reads")
        self.writes = g("dram_writes")
        self.row_hits = g("dram_row_hits")
        self.row_misses = g("dram_row_misses")
        self.busy_cycles = g("dram_busy_cycles")
        self.prefetches_dropped = g("dram_prefetches_dropped")
        self.last_data_done = g("dram_last_data_done")
        self.stats_start = g("dram_stats_start")
        # Monitor
        self.mon_window = g("mon_window_cycles")
        self.mon_window_end = g("mon_window_end")
        self.mon_total_cas = g("mon_total_cas")
        self.mon_buckets = [g(f"mon_bucket{i}") for i in range(4)]
        self.mon_last_sample = g("mon_last_sample")
        self.mon_counter = float(sf[SF64["mon_counter"]])
        self.thr_lo = float(sf[SF64["mon_thr_lo"]])
        self.thr_mid = float(sf[SF64["mon_thr_mid"]])
        self.thr_hi = float(sf[SF64["mon_thr_hi"]])

    # -- bandwidth monitor (mirrors BandwidthMonitor) -------------------------

    def _rate_estimate(self, cycle):
        window = self.mon_window
        window_start = self.mon_window_end - window
        elapsed = min(max(cycle - window_start, 0), window)
        t = elapsed / window
        return self.mon_counter / (1.0 + t)

    def _instant_bucket(self, cycle):
        rate = self._rate_estimate(cycle)
        if rate >= self.thr_hi:
            return 3
        if rate >= self.thr_mid:
            return 2
        if rate >= self.thr_lo:
            return 1
        return 0

    def _mon_advance(self, cycle):
        if cycle < self.mon_window_end:
            return
        bucket = self._instant_bucket(self.mon_last_sample)
        self.mon_buckets[bucket] += cycle - self.mon_last_sample
        self.mon_last_sample = cycle
        window = self.mon_window
        while cycle >= self.mon_window_end:
            self.mon_counter /= 2.0
            self.mon_window_end += window

    def _record_cas(self, cycle):
        if cycle >= self.mon_window_end:
            self._mon_advance(cycle)
        self.mon_counter += 1.0
        self.mon_total_cas += 1

    def bucket(self, cycle):
        """The live 2-bit bandwidth signal (the scheme adapter's target)."""
        self._mon_advance(cycle)
        return self._instant_bucket(cycle)

    # -- DRAM access (mirrors DramModel.access) -------------------------------

    def dram_access(self, cycle, line_addr, is_write, is_prefetch):
        burst = self.burst
        ch = line_addr & self.ch_mask
        rest = line_addr >> self.ch_bits
        bank = ch * self.banks_per_channel + ((rest >> self.row_shift) & self.bank_mask)
        row = rest >> (self.row_shift + self.bank_bits)
        bus_free = self.ch_busfree[ch]
        if is_prefetch:
            if bus_free - cycle > self.pf_drop_backlog:
                self.prefetches_dropped += 1
                return None
        if self.bank_open[bank] == row:
            self.row_hits += 1
            row_wait = self.bank_rowready[bank]
            if not is_prefetch:
                bound = cycle + self.dem_preempt_acts
                if row_wait > bound:
                    row_wait = bound
            cas_start = cycle if cycle > row_wait else row_wait
            bus_ready = cas_start + self.tCL
        else:
            self.row_misses += 1
            next_act = self.bank_nextact[bank]
            if is_prefetch:
                act_start = cycle if cycle > next_act else next_act
                self.bank_nextact[bank] = act_start + self.tRC
            else:
                preempt_bound = cycle + self.dem_preempt_acts
                act_start = next_act if next_act < preempt_bound else preempt_bound
                if act_start < cycle:
                    act_start = cycle
                self.bank_nextact[bank] = (
                    next_act if next_act > act_start else act_start
                ) + self.tRC
            self.bank_open[bank] = row
            row_ready = act_start + self.tRP + self.tRCD
            self.bank_rowready[bank] = row_ready
            bus_ready = row_ready + self.tCL
        if is_prefetch:
            slot = bus_free if bus_free > cycle else cycle
            self.ch_busfree[ch] = slot + burst
            data_start = bus_ready if bus_ready > slot else slot
            data_done = data_start + burst
        else:
            head_wait = bus_free - bus_ready
            if head_wait < 0:
                head_wait = 0
            elif head_wait > self.dem_preempt_bursts:
                head_wait = self.dem_preempt_bursts
            data_start = bus_ready + head_wait
            demand_free = self.ch_demandfree[ch]
            if demand_free > data_start:
                data_start = demand_free
            data_done = data_start + burst
            self.ch_demandfree[ch] = data_done
            self.ch_busfree[ch] = (bus_free if bus_free > cycle else cycle) + burst
        self.busy_cycles += burst
        if data_done > self.last_data_done:
            self.last_data_done = data_done
        self._record_cas(data_start)
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        return data_done - cycle

    # -- boundary operations ---------------------------------------------------

    def reset_dram_stats(self, cycle):
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.busy_cycles = 0
        self.prefetches_dropped = 0
        self.stats_start = int(cycle)
        self.mon_total_cas = 0
        self.mon_buckets = [0, 0, 0, 0]

    def sync_to_state(self, contents=True):
        st = self.state
        si = st.si64
        sf = st.sf64

        def p(name, value):
            si[SI64[name]] = value

        if contents:
            self.llc.sync(st.llc)
        p("llc_tick", self.llc.tick)
        for name, value in zip(
            (
                "llc_demand_hits",
                "llc_demand_misses",
                "llc_prefetch_probe_hits",
                "llc_useful_prefetches",
                "llc_late_useful_prefetches",
                "llc_useless_evictions",
                "llc_writebacks",
            ),
            self.llc.stats(),
        ):
            p(name, value)
        st.bank_open[:] = self.bank_open
        st.bank_nextact[:] = self.bank_nextact
        st.bank_rowready[:] = self.bank_rowready
        st.ch_busfree[:] = self.ch_busfree
        st.ch_demandfree[:] = self.ch_demandfree
        p("dram_reads", self.reads)
        p("dram_writes", self.writes)
        p("dram_row_hits", self.row_hits)
        p("dram_row_misses", self.row_misses)
        p("dram_busy_cycles", self.busy_cycles)
        p("dram_prefetches_dropped", self.prefetches_dropped)
        p("dram_last_data_done", self.last_data_done)
        p("dram_stats_start", self.stats_start)
        p("mon_window_end", self.mon_window_end)
        p("mon_total_cas", self.mon_total_cas)
        for i in range(4):
            p(f"mon_bucket{i}", self.mon_buckets[i])
        p("mon_last_sample", self.mon_last_sample)
        sf[SF64["mon_counter"]] = self.mon_counter


class PyRuntime:
    """One core's pure-Python kernel over unpacked working state."""

    def __init__(self, state, shared, train=None, note_useful=None, note_useless=None):
        self.state = state
        self.shared = shared
        ci = state.ci64
        cf = state.cf64

        def g(name):
            return int(ci[CI64[name]])

        # Core execution
        self.ops = state.execution._ops
        self.pos = g("pos")
        self.n_ops = g("n_ops")
        self.instr = g("instr")
        self.hits = [g("hit_l1"), g("hit_l2"), g("hit_llc"), g("hit_dram")]
        self.width = g("width")
        self.rob_size = g("rob_size")
        self.retire = float(cf[CF64["retire"]])
        self.last_load_done = float(cf[CF64["last_load_done"]])
        self.retire_step = float(cf[CF64["retire_step"]])
        self.window = state.execution._window

        for name in ("l1", "l2"):
            arrs = {f: getattr(state, f"{name}_{f}") for f in _CACHE_FIELDS}
            cache = _PyCache(
                arrs,
                ways=g(f"{name}_ways"),
                set_mask=g(f"{name}_set_mask"),
                hit_lat=g(f"{name}_hit_latency"),
                mode=g(f"{name}_victim_mode"),
                tick=g(f"{name}_tick"),
                stats=[
                    g(f"{name}_demand_hits"),
                    g(f"{name}_demand_misses"),
                    g(f"{name}_prefetch_probe_hits"),
                    g(f"{name}_useful_prefetches"),
                    g(f"{name}_late_useful_prefetches"),
                    g(f"{name}_useless_evictions"),
                    g(f"{name}_writebacks"),
                ],
            )
            setattr(self, f"{name}c", cache)
        self.llcc = shared.llc

        self.l1m = _PyMshr(
            g("mshr_l1_cap"),
            sorted(state.mshr_l1[: g("mshr_l1_len")].tolist()),
            g("mshr_l1_allocations"),
            g("mshr_l1_stall"),
        )
        self.l2m = _PyMshr(
            g("mshr_l2_cap"),
            sorted(state.mshr_l2[: g("mshr_l2_len")].tolist()),
            g("mshr_l2_allocations"),
            g("mshr_l2_stall"),
        )
        self.llcm = _PyMshr(
            g("mshr_llc_cap"),
            sorted(state.mshr_llc[: g("mshr_llc_len")].tolist()),
            g("mshr_llc_allocations"),
            g("mshr_llc_stall"),
        )

        self.demand_accesses = g("demand_accesses")
        self.queue_size = g("queue_size")
        self.merge_bound = g("merge_bound")
        n_in = g("inflight_len")
        self.in_flight = dict(
            zip(state.infl_line[:n_in].tolist(), state.infl_ready[:n_in].tolist())
        )
        for attr in _PF_ATTRS:
            setattr(self, attr, g(attr))

        # L1 stride prefetcher
        self.has_l1pf = bool(g("has_l1pf"))
        self.stride_degree = g("stride_degree")
        self.stride_mask = g("stride_mask")
        self.stride_cthr = g("stride_conf_threshold")
        self.stride_cmax = g("stride_conf_max")
        self.stride_trainings = g("stride_trainings")
        self.stride_valid = state.stride_valid.tolist()
        self.stride_tag = state.stride_tag.tolist()
        self.stride_last = state.stride_last.tolist()
        self.stride_stride = state.stride_stride.tolist()
        self.stride_conf = state.stride_conf.tolist()

        # Scheme crossing: direct in-line calls (the C twin queues notes
        # and drains them before each train call — equivalent because no
        # note handler observes anything but its own counters).
        self._train = train if g("has_l2pf") else None
        self._note_useful = note_useful if g("has_l2pf") else None
        self._note_useless = note_useless if g("has_l2pf") else None

    # -------------------------------------------------------------- public

    @property
    def done(self):
        return self.pos >= self.n_ops

    @property
    def time(self):
        return self.retire

    @property
    def ops_executed(self):
        return self.pos

    def snapshot(self):
        """(instr, retire, hits) — the ``mark_stats_start`` checkpoint."""
        return self.instr, self.retire, tuple(self.hits)

    def bucket(self, cycle):
        return self.shared.bucket(cycle)

    def reset_hierarchy_stats(self):
        self.l1c.reset_stats()
        self.l2c.reset_stats()
        self.llcc.reset_stats()
        for attr in _PF_ATTRS:
            setattr(self, attr, 0)
        for m in (self.l1m, self.l2m, self.llcm):
            m.allocs = 0
            m.stall = 0

    def reset_dram_stats(self, cycle):
        self.shared.reset_dram_stats(cycle)

    # ------------------------------------------------------------ hot loop

    def run(self, end, horizon, strict):
        """Execute ops until ``pos >= end`` or retirement passes ``horizon``.

        The stop rule is checked before each op, exactly as
        ``CoreExecution.run_ops_until`` does; ``horizon=inf`` makes this
        ``run_ops``.  Returns the number of ops executed.
        """
        ops = self.ops
        pos = self.pos
        start = pos
        if pos >= end:
            return 0
        width = self.width
        rob_size = self.rob_size
        retire_step = self.retire_step
        window = self.window
        window_append = window.append
        popleft = window.popleft
        hits = self.hits
        retire = self.retire
        instr = self.instr
        last_load_done = self.last_load_done

        l1 = self.l1c
        l1_map_get = l1.map.get
        l1_touch = l1.touch
        l1_pref = l1.pref
        l1_used = l1.used
        l1_dirty = l1.dirty
        l1_ready = l1.ready
        l1_hit_lat = l1.hit_lat
        l1_fill = l1.fill
        l1m = self.l1m
        l1m_cap = l1m.cap
        has_l1pf = self.has_l1pf
        s_valid = self.stride_valid
        s_tag = self.stride_tag
        s_last = self.stride_last
        s_stride = self.stride_stride
        s_conf = self.stride_conf
        s_mask = self.stride_mask
        s_cthr = self.stride_cthr
        s_cmax = self.stride_cmax
        s_degree = self.stride_degree
        trainings = self.stride_trainings
        below_l1 = self._below_l1
        demand_accesses = self.demand_accesses

        while pos < end:
            if retire > horizon or (strict and retire == horizon):
                break
            gap, pc, addr, is_write, dep = ops[pos]
            pos += 1
            if gap:
                instr += gap
                retire += gap / width
            idx = instr
            instr += 1
            rob_idx = idx - rob_size
            if rob_idx <= 0:
                enter = idx / width
            else:
                while len(window) > 1 and window[1][0] <= rob_idx:
                    popleft()
                if not window or window[0][0] > rob_idx:
                    floor = rob_idx / width
                else:
                    base = window[0]
                    floor = base[1] + (rob_idx - base[0]) / width
                enter = idx / width
                if floor > enter:
                    enter = floor
            if dep and last_load_done > enter:
                enter = last_load_done

            # ---- MemoryHierarchy.access, inlined -------------------------
            cycle = int(enter)
            demand_accesses += 1
            line = addr >> LINE_SHIFT

            tick = l1.tick + 1
            l1.tick = tick
            l1_slot = l1_map_get(line)
            if l1_slot is None:
                l1.dm += 1
            else:
                l1.dh += 1
                l1_touch[l1_slot] = tick
                if is_write:
                    l1_dirty[l1_slot] = 1
                if l1_pref[l1_slot] and not l1_used[l1_slot]:
                    l1.up += 1
                    if l1_ready[l1_slot] > cycle:
                        l1.lup += 1
                    l1_used[l1_slot] = 1

            if has_l1pf:
                # PcStridePrefetcher.train, inlined.
                trainings += 1
                sidx = (pc ^ (pc >> 12)) & s_mask
                if not s_valid[sidx] or s_tag[sidx] != pc:
                    s_valid[sidx] = 1
                    s_tag[sidx] = pc
                    s_last[sidx] = line
                    s_stride[sidx] = 0
                    s_conf[sidx] = 0
                else:
                    stride = line - s_last[sidx]
                    cands = None
                    if stride != 0:
                        if stride == s_stride[sidx]:
                            conf = s_conf[sidx] + 1
                            s_conf[sidx] = conf if conf < s_cmax else s_cmax
                        else:
                            s_stride[sidx] = stride
                            s_conf[sidx] = 1
                        if s_conf[sidx] >= s_cthr:
                            page = line >> _PG
                            if s_degree == 1:
                                target = line + stride
                                if target >> _PG == page:
                                    cands = (target,)
                            else:
                                cands = []
                                for dist in range(1, s_degree + 1):
                                    target = line + stride * dist
                                    if target >> _PG != page:
                                        break
                                    cands.append(target)
                    s_last[sidx] = line
                    if cands:
                        for cand in cands:
                            # _issue_l1_prefetch, inlined.
                            if cand in l1.map:
                                continue
                            heap = l1m.heap
                            while heap and heap[0] <= cycle:
                                heapq.heappop(heap)
                            if len(heap) >= l1m_cap:
                                continue
                            latency, _level = below_l1(cycle, pc, cand << LINE_SHIFT, False)
                            l1m.allocate(cycle, cycle + latency)
                            l1_fill(cand, True, False, cycle + latency, False)

            if l1_slot is not None:
                # Read through the slot *after* prefetch issues: if a fill
                # recycled this slot the object path would read the recycled
                # CacheLine too.
                ready = l1_ready[l1_slot]
                latency = l1_hit_lat
                if ready > cycle:
                    latency += ready - cycle
                level = 0
            else:
                latency, level = below_l1(cycle, pc, addr, is_write)
                wait = l1m.allocate(cycle, cycle + latency)
                latency += wait
                l1_fill(line, False, False, cycle + latency, False)

            # ---- retirement epilogue --------------------------------------
            if is_write:
                retire += retire_step
                if enter > retire:
                    retire = enter
            else:
                done = enter + latency
                retire += retire_step
                if done > retire:
                    retire = done
                last_load_done = done
            window_append((idx, retire))
            hits[level] += 1

        self.pos = pos
        self.retire = retire
        self.instr = instr
        self.last_load_done = last_load_done
        self.demand_accesses = demand_accesses
        self.stride_trainings = trainings
        return pos - start

    # --------------------------------------------------------- below-L1 path

    def _below_l1(self, cycle, pc, addr, is_write):
        """MemoryHierarchy._below_l1, transliterated to the working form."""
        line = addr >> LINE_SHIFT
        candidates = ()
        l2 = self.l2c
        tick = l2.tick + 1
        l2.tick = tick
        slot = l2.map.get(line)
        first_use = False
        if slot is None:
            l2.dm += 1
        else:
            l2.dh += 1
            l2.touch[slot] = tick
            if is_write:
                l2.dirty[slot] = 1
            if l2.pref[slot] and not l2.used[slot]:
                l2.up += 1
                first_use = True
                if l2.ready[slot] > cycle:
                    l2.lup += 1
                l2.used[slot] = 1
        train = self._train
        if train is not None:
            candidates = train(cycle, pc, addr, slot is not None)
        if slot is not None:
            if first_use:
                self._note_use(cycle, line, l2.ready[slot])
            residual = l2.ready[slot] - cycle
            if residual > 0:
                if l2.pref[slot] and residual > self.merge_bound:
                    residual = self.merge_bound
            else:
                residual = 0
            latency = l2.hit_lat + residual
            if candidates:
                self._issue_prefetches(cycle, candidates)
            return latency, 1

        inflight_ready = self.in_flight.pop(line, None)
        if inflight_ready is not None and inflight_ready > cycle:
            residual = inflight_ready - cycle
            bound = self.merge_bound
            if residual > bound:
                residual = bound
            latency = l2.hit_lat + residual
            self.pf_useful += 1
            self.pf_late += 1
            l2.fill(line, False, False, cycle + residual, False)
            self._notify_useful(cycle, line)
            if candidates:
                self._issue_prefetches(cycle, candidates)
            return latency, 2

        llc = self.llcc
        tick = llc.tick + 1
        llc.tick = tick
        lslot = llc.map.get(line)
        if lslot is None:
            llc.dm += 1
        else:
            llc.dh += 1
            llc.touch[lslot] = tick
            if is_write:
                llc.dirty[lslot] = 1
            if llc.pref[lslot] and not llc.used[lslot]:
                llc.up += 1
                if llc.ready[lslot] > cycle:
                    llc.lup += 1
                llc.used[lslot] = 1
                self._note_use(cycle, line, llc.ready[lslot])
            residual = llc.ready[lslot] - cycle
            if residual > 0:
                if llc.pref[lslot] and residual > self.merge_bound:
                    residual = self.merge_bound
            else:
                residual = 0
            latency = llc.hit_lat + residual
            l2.fill(line, False, False, cycle + latency, False)
            if candidates:
                self._issue_prefetches(cycle, candidates)
            return latency, 2

        dram_latency = self.shared.dram_access(cycle, line, is_write, False)
        latency = llc.hit_lat + dram_latency
        latency += self.l2m.allocate(cycle, cycle + latency)
        latency += self.llcm.allocate(cycle, cycle + latency)
        ready = cycle + latency
        self._fill_llc(line, False, ready, False, cycle)
        l2.fill(line, False, False, ready, False)
        if candidates:
            self._issue_prefetches(cycle, candidates)
        return latency, 3

    def _issue_prefetches(self, cycle, candidates):
        l2 = self.l2c
        l2_map = l2.map
        l2_fill = l2.fill
        llc = self.llcc
        llc_map_get = llc.map.get
        llc_hit_lat = llc.hit_lat
        in_flight = self.in_flight
        queue_size = self.queue_size
        dram_access = self.shared.dram_access
        for cand in candidates:
            line = cand.line_addr
            if line in l2_map:
                self.pf_dropped_resident += 1
                continue
            inflight_ready = in_flight.get(line)
            if inflight_ready is not None:
                if inflight_ready > cycle:
                    self.pf_dropped_in_flight += 1
                    continue
                del in_flight[line]
            if llc_map_get(line) is not None:
                self.pf_issued += 1
                if cand.low_priority:
                    self.pf_issued_low_priority += 1
                self.pf_filled_from_llc += 1
                l2_fill(line, True, cand.low_priority, cycle + llc_hit_lat, False)
                continue
            if len(in_flight) >= queue_size:
                done = [ln for ln, ready in in_flight.items() if ready <= cycle]
                for ln in done:
                    del in_flight[ln]
                if len(in_flight) >= queue_size:
                    self.pf_dropped_bandwidth += 1
                    continue
            dram_latency = dram_access(cycle, line, False, True)
            if dram_latency is None:
                self.pf_dropped_bandwidth += 1
                continue
            self.pf_issued += 1
            if cand.low_priority:
                self.pf_issued_low_priority += 1
            ready = cycle + llc_hit_lat + dram_latency
            self.pf_filled_from_dram += 1
            in_flight[line] = ready
            self._fill_llc(line, True, ready, cand.low_priority, cycle)
            l2_fill(line, True, cand.low_priority, ready, False)

    def _fill_llc(self, line, prefetched, ready, low_priority, cycle):
        info = self.llcc.fill(line, prefetched, low_priority, ready, True)
        if info is None:
            return
        victim_line, was_pref, was_used = info
        if was_pref and not was_used:
            self.pf_useless += 1
            if self._note_useless is not None:
                self._note_useless(cycle, victim_line)

    def _note_use(self, cycle, line, ready):
        self.pf_useful += 1
        if ready > cycle:
            self.pf_late += 1
        self._notify_useful(cycle, line)

    def _notify_useful(self, cycle, line):
        self.llcc.touch_for_prefetcher(line)
        self.l2c.touch_for_prefetcher(line)
        if self._note_useful is not None:
            self._note_useful(cycle, line)

    # ------------------------------------------------------------- sync back

    def sync_to_state(self, contents=True):
        state = self.state
        ci = state.ci64
        cf = state.cf64

        def p(name, value):
            ci[CI64[name]] = value

        p("pos", self.pos)
        p("instr", self.instr)
        p("hit_l1", self.hits[0])
        p("hit_l2", self.hits[1])
        p("hit_llc", self.hits[2])
        p("hit_dram", self.hits[3])
        cf[CF64["retire"]] = self.retire
        cf[CF64["last_load_done"]] = self.last_load_done
        window = self.window
        cap = int(ci[CI64["win_cap"]])
        if len(window) >= cap:
            raise ValueError("ROB checkpoint window exceeds kernel ring capacity")
        for i, (idx, ret) in enumerate(window):
            state.win_idx[i] = idx
            state.win_ret[i] = ret
        p("win_head", 0)
        p("win_len", len(window))

        for name, cache in (("l1", self.l1c), ("l2", self.l2c)):
            if contents:
                cache.sync({f: getattr(state, f"{name}_{f}") for f in _CACHE_FIELDS})
            p(f"{name}_tick", cache.tick)
            for stat_name, value in zip(
                (
                    f"{name}_demand_hits",
                    f"{name}_demand_misses",
                    f"{name}_prefetch_probe_hits",
                    f"{name}_useful_prefetches",
                    f"{name}_late_useful_prefetches",
                    f"{name}_useless_evictions",
                    f"{name}_writebacks",
                ),
                cache.stats(),
            ):
                p(stat_name, value)

        for name, m in (
            ("mshr_l1", self.l1m),
            ("mshr_l2", self.l2m),
            ("mshr_llc", self.llcm),
        ):
            heap = sorted(m.heap)
            arr = getattr(state, name)
            arr[: len(heap)] = heap
            p(f"{name}_len", len(heap))
            p(f"{name}_allocations", m.allocs)
            p(f"{name}_stall", m.stall)

        p("demand_accesses", self.demand_accesses)
        in_flight = self.in_flight
        for i, (ln, ready) in enumerate(in_flight.items()):
            state.infl_line[i] = ln
            state.infl_ready[i] = ready
        p("inflight_len", len(in_flight))
        for attr in _PF_ATTRS:
            p(attr, getattr(self, attr))

        p("stride_trainings", self.stride_trainings)
        state.stride_valid[:] = self.stride_valid
        state.stride_tag[:] = self.stride_tag
        state.stride_last[:] = self.stride_last
        state.stride_stride[:] = self.stride_stride
        state.stride_conf[:] = self.stride_conf
