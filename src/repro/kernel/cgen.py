"""C source generation for the compiled kernel twin.

The emitted translation unit is a line-for-line transliteration of
:mod:`repro.kernel.pykernel` (the executable spec) against the exact
same flat arrays, laid out by :mod:`repro.kernel.layout` — the slot
dictionaries are emitted as ``#define`` lines, so the two kernels can
never disagree about where a counter lives.

Exported symbols:

- ``long krun(void **ptrs)`` — run the current batch.  Returns
  ``RC_DONE`` when the batch bound / horizon is reached, or
  ``RC_TRAIN`` with training records appended to ``train_buf`` (the
  Python driver drains them into the scheme, writes the candidates, and
  re-enters; the kernel resumes mid-op from the saved context).  Schemes
  with a compiled twin (``scheme_kind`` > 0: SPP, eSPP, DSPatch at their
  default configs) never cross — their training loops run in C against
  flat tables and fill the candidate buffers directly.
- ``long kbucket(long long *si, double *sf, long long cycle)`` — the
  bandwidth monitor's live 2-bit signal (advances the monitor exactly
  like ``BandwidthMonitor.bucket``).

Floating-point parity with CPython requires that every double operation
happen in the same order with no contraction — build with
``-ffp-contract=off`` (see :mod:`repro.kernel.cbuild`).
"""

from repro.constants import LINE_SHIFT, PAGE_SHIFT
from repro.kernel import layout
from repro.kernel.layout import CF64, CI64, PTR, SF64, SI64


def _defines():
    lines = []
    for prefix, table in (("CI_", CI64), ("CF_", CF64), ("SI_", SI64), ("SF_", SF64), ("P_", PTR)):
        for name, idx in table.items():
            lines.append(f"#define {prefix}{name} {idx}")
    lines.append(f"#define LINE_SHIFT {LINE_SHIFT}")
    lines.append(f"#define PG_SHIFT {PAGE_SHIFT - LINE_SHIFT}")
    lines.append(f"#define PH_TOP {layout.PH_TOP}")
    lines.append(f"#define PH_L1PF_TRAIN {layout.PH_L1PF_TRAIN}")
    lines.append(f"#define PH_DEMAND_TRAIN {layout.PH_DEMAND_TRAIN}")
    lines.append(f"#define RC_DONE {layout.RC_DONE}")
    lines.append(f"#define RC_TRAIN {layout.RC_TRAIN}")
    lines.append(f"#define NOTE_USEFUL {layout.NOTE_USEFUL}")
    lines.append(f"#define NOTE_USELESS {layout.NOTE_USELESS}")
    lines.append(f"#define TB_CAP {layout.TB_CAP}")
    return "\n".join(lines)


def _scheme_defines():
    """Scheme-twin constants, emitted from the Python defaults.

    The compiled twins run only for schemes at their stock configs
    (:func:`repro.kernel.state._scheme_kind` gates on config equality),
    so the constants are baked in as ``#define``s sourced from the live
    dataclass defaults — the C can never drift from the spec without
    the emitted source (and hence the build digest) changing too.
    """
    from repro.core.dspatch import DSPatchConfig
    from repro.core.spt import COUNTER_MAX
    from repro.prefetchers.spp import SppConfig

    sp = SppConfig()
    dp = DSPatchConfig()
    assert dp.compressed and dp.covp_reset, "C twin hardcodes the stock geometry"
    lines = [
        f"#define SCHEME_SPP {layout.SCHEME_SPP}",
        f"#define SCHEME_ESPP {layout.SCHEME_ESPP}",
        f"#define SCHEME_DSPATCH {layout.SCHEME_DSPATCH}",
        f"#define SCHEME_SPP_DSPATCH {layout.SCHEME_SPP_DSPATCH}",
        f"#define SPP_ST_MASK {sp.st_entries - 1}",
        f"#define SPP_PT_MASK {sp.pt_entries - 1}",
        f"#define SPP_SLOTS {sp.delta_slots}",
        f"#define SPP_CMAX {sp.counter_max}",
        f"#define SPP_GHR {sp.ghr_entries}",
        f"#define SPP_FLT_MASK {sp.filter_entries - 1}",
        f"#define SPP_DEPTH {sp.max_lookahead_depth}",
        f"#define SPP_MAXC {sp.max_candidates_per_train}",
        f"#define SPP_THR_PF {sp.prefetch_threshold!r}",
        f"#define SPP_THR_LA {sp.lookahead_threshold!r}",
        f"#define SPP_THR_RELAX {sp.relaxed_threshold!r}",
        f"#define DP_SPT_MASK {dp.spt_entries - 1}",
        f"#define DP_PB {dp.pb_entries}",
        f"#define DP_CMAX {COUNTER_MAX}",
        f"#define DP_MAXC {dp.max_candidates_per_trigger}",
    ]
    return "\n".join(lines)


_BODY = r"""
#include <stdint.h>

#define CI(n) ci[CI_##n]
#define CF(n) cf[CF_##n]
#define SIG(n) si[SI_##n]
#define SFG(n) sf[SF_##n]

/* One cache level: pointers into the flat slot arrays plus geometry.
   stats[0..6] = demand_hits, demand_misses, prefetch_probe_hits,
   useful, late_useful, useless_evictions, writebacks (layout order). */
typedef struct {
    int64_t *valid, *line, *dirty, *pref, *used, *touch, *ready;
    int64_t *tick, *stats;
    int64_t ways, set_mask, hit_lat, mode;
} cache_t;

typedef struct {
    int64_t *heap, *len, *allocs, *stall;
    int64_t cap;
} mshr_t;

typedef struct {
    int64_t *ci; double *cf;
    int64_t *si; double *sf;
    cache_t l1, l2, llc;
    mshr_t l1m, l2m, llcm;
    int64_t *bank_open, *bank_nextact, *bank_rowready;
    int64_t *ch_busfree, *ch_demandfree;
    int64_t *infl_line, *infl_ready;
    int64_t *note_buf, *cand_line, *cand_lp, *train_buf;
    /* compiled scheme-training state (dummies when scheme_kind == 0) */
    int64_t *sp_st_tag, *sp_st_loff, *sp_st_sig;
    int64_t *sp_pt_csig, *sp_pt_delta, *sp_pt_cdelta;
    int64_t *sp_ghr_sig, *sp_ghr_loff, *sp_ghr_delta;
    double *sp_ghr_conf;
    int64_t *sp_flt;
    int64_t *dp_pb_page, *dp_pb_trig_sig, *dp_pb_trig_off;
    uint64_t *dp_pb_pattern;
    int64_t *dp_spt_cov, *dp_spt_acc, *dp_spt_mcov, *dp_spt_or, *dp_spt_macc;
} kctx_t;

/* ---------------------------------------------------------------- cache */

static int64_t c_find(const cache_t *c, int64_t line) {
    int64_t base = (line & c->set_mask) * c->ways;
    int64_t end = base + c->ways;
    for (int64_t s = base; s < end; s++)
        if (c->valid[s] && c->line[s] == line) return s;
    return -1;
}

/* Cache.fill: resident refresh, else victim select (mode 0 = LRU argmin
   touch, mode 1 = min-touch never-demanded prefetch else argmin) +
   install.  Returns 1 and fills out_v* when a victim was evicted and the
   caller asked for it (out_vline != 0). */
static int c_fill(cache_t *c, int64_t line, int64_t prefetched,
                  int64_t low_priority, int64_t ready,
                  int64_t *out_vline, int64_t *out_vpref, int64_t *out_vused) {
    int64_t tick = ++(*c->tick);
    int64_t base = (line & c->set_mask) * c->ways;
    int64_t end = base + c->ways;
    int64_t slot = -1, free_slot = -1;
    for (int64_t s = base; s < end; s++) {
        if (!c->valid[s]) { if (free_slot < 0) free_slot = s; }
        else if (c->line[s] == line) { slot = s; break; }
    }
    if (slot >= 0) { c->touch[slot] = tick; return 0; }
    int have_info = 0;
    if (free_slot >= 0) {
        slot = free_slot;
        c->valid[slot] = 1;
    } else {
        int64_t vslot = -1, vtouch = 0;
        if (c->mode == 1) {
            for (int64_t s = base; s < end; s++)
                if (c->pref[s] && !c->used[s]) {
                    int64_t t = c->touch[s];
                    if (vslot < 0 || t < vtouch) { vslot = s; vtouch = t; }
                }
        }
        if (vslot < 0) {
            vslot = base; vtouch = c->touch[base];
            for (int64_t s = base + 1; s < end; s++) {
                int64_t t = c->touch[s];
                if (t < vtouch) { vslot = s; vtouch = t; }
            }
        }
        if (c->pref[vslot] && !c->used[vslot]) c->stats[5]++;
        if (c->dirty[vslot]) c->stats[6]++;
        if (out_vline) {
            *out_vline = c->line[vslot];
            *out_vpref = c->pref[vslot];
            *out_vused = c->used[vslot];
            have_info = 1;
        }
        slot = vslot;
    }
    c->line[slot] = line;
    c->dirty[slot] = 0;
    c->pref[slot] = prefetched;
    c->used[slot] = !prefetched;
    c->touch[slot] = low_priority ? -tick : tick;
    c->ready[slot] = ready;
    return have_info;
}

static void c_touch_pf(cache_t *c, int64_t line) {
    int64_t s = c_find(c, line);
    if (s >= 0 && c->pref[s] && !c->used[s]) c->used[s] = 1;
}

/* ----------------------------------------------------------------- MSHR */

static void heap_pop(int64_t *h, int64_t *len) {
    int64_t n = --(*len);
    int64_t v = h[n];
    int64_t i = 0;
    for (;;) {
        int64_t l = 2 * i + 1, m = i;
        if (l < n && h[l] < v) m = l;
        if (l + 1 < n && h[l + 1] < (m == i ? v : h[l])) m = l + 1;
        if (m == i) break;
        h[i] = h[m];
        i = m;
    }
    h[i] = v;
}

static void heap_push(int64_t *h, int64_t *len, int64_t v) {
    int64_t i = (*len)++;
    while (i > 0) {
        int64_t p = (i - 1) >> 1;
        if (h[p] <= v) break;
        h[i] = h[p];
        i = p;
    }
    h[i] = v;
}

static void mshr_drain(mshr_t *m, int64_t cycle) {
    while (*m->len && m->heap[0] <= cycle) heap_pop(m->heap, m->len);
}

/* MshrFile.allocate */
static int64_t mshr_allocate(mshr_t *m, int64_t cycle, int64_t completion) {
    mshr_drain(m, cycle);
    int64_t wait = 0;
    if (*m->len >= m->cap) {
        int64_t earliest = m->heap[0];
        wait = earliest - cycle;
        if (wait < 0) wait = 0;
        int64_t until = cycle + wait;
        while (*m->len && m->heap[0] <= until) heap_pop(m->heap, m->len);
        if (*m->len >= m->cap) heap_pop(m->heap, m->len);
        *m->stall += wait;
    }
    heap_push(m->heap, m->len, completion + wait);
    (*m->allocs)++;
    return wait;
}

/* ---------------------------------------------------- bandwidth monitor */

static double mon_rate(const int64_t *si, const double *sf, int64_t cycle) {
    int64_t window = SIG(mon_window_cycles);
    int64_t elapsed = cycle - (SIG(mon_window_end) - window);
    if (elapsed < 0) elapsed = 0;
    if (elapsed > window) elapsed = window;
    double t = (double)elapsed / (double)window;
    return SFG(mon_counter) / (1.0 + t);
}

static int64_t mon_instant(const int64_t *si, const double *sf, int64_t cycle) {
    double rate = mon_rate(si, sf, cycle);
    if (rate >= SFG(mon_thr_hi)) return 3;
    if (rate >= SFG(mon_thr_mid)) return 2;
    if (rate >= SFG(mon_thr_lo)) return 1;
    return 0;
}

static void mon_advance(int64_t *si, double *sf, int64_t cycle) {
    if (cycle < SIG(mon_window_end)) return;
    int64_t b = mon_instant(si, sf, SIG(mon_last_sample));
    si[SI_mon_bucket0 + b] += cycle - SIG(mon_last_sample);
    SIG(mon_last_sample) = cycle;
    int64_t window = SIG(mon_window_cycles);
    while (cycle >= SIG(mon_window_end)) {
        SFG(mon_counter) /= 2.0;
        SIG(mon_window_end) += window;
    }
}

/* ------------------------------------------------------------------ DRAM */

/* DramModel.access; returns latency, or -1 for a dropped prefetch. */
static int64_t dram_access(kctx_t *k, int64_t cycle, int64_t line_addr,
                           int is_write, int is_prefetch) {
    int64_t *si = k->si;
    double *sf = k->sf;
    int64_t burst = SIG(burst);
    int64_t ch = line_addr & SIG(ch_mask);
    int64_t rest = line_addr >> SIG(ch_bits);
    int64_t bank = ch * SIG(banks_per_channel)
                 + ((rest >> SIG(row_shift)) & SIG(bank_mask));
    int64_t row = rest >> (SIG(row_shift) + SIG(bank_bits));
    int64_t bus_free = k->ch_busfree[ch];
    if (is_prefetch && bus_free - cycle > SIG(pf_drop_backlog)) {
        SIG(dram_prefetches_dropped)++;
        return -1;
    }
    int64_t bus_ready;
    if (k->bank_open[bank] == row) {
        SIG(dram_row_hits)++;
        int64_t row_wait = k->bank_rowready[bank];
        if (!is_prefetch) {
            int64_t bound = cycle + SIG(dem_preempt_acts);
            if (row_wait > bound) row_wait = bound;
        }
        int64_t cas_start = cycle > row_wait ? cycle : row_wait;
        bus_ready = cas_start + SIG(tCL);
    } else {
        SIG(dram_row_misses)++;
        int64_t next_act = k->bank_nextact[bank];
        int64_t act_start;
        if (is_prefetch) {
            act_start = cycle > next_act ? cycle : next_act;
            k->bank_nextact[bank] = act_start + SIG(tRC);
        } else {
            int64_t pb = cycle + SIG(dem_preempt_acts);
            act_start = next_act < pb ? next_act : pb;
            if (act_start < cycle) act_start = cycle;
            k->bank_nextact[bank] =
                (next_act > act_start ? next_act : act_start) + SIG(tRC);
        }
        k->bank_open[bank] = row;
        int64_t row_ready = act_start + SIG(tRP) + SIG(tRCD);
        k->bank_rowready[bank] = row_ready;
        bus_ready = row_ready + SIG(tCL);
    }
    int64_t data_start, data_done;
    if (is_prefetch) {
        int64_t slot = bus_free > cycle ? bus_free : cycle;
        k->ch_busfree[ch] = slot + burst;
        data_start = bus_ready > slot ? bus_ready : slot;
        data_done = data_start + burst;
    } else {
        int64_t head_wait = bus_free - bus_ready;
        if (head_wait < 0) head_wait = 0;
        else if (head_wait > SIG(dem_preempt_bursts)) head_wait = SIG(dem_preempt_bursts);
        data_start = bus_ready + head_wait;
        int64_t demand_free = k->ch_demandfree[ch];
        if (demand_free > data_start) data_start = demand_free;
        data_done = data_start + burst;
        k->ch_demandfree[ch] = data_done;
        k->ch_busfree[ch] = (bus_free > cycle ? bus_free : cycle) + burst;
    }
    SIG(dram_busy_cycles) += burst;
    if (data_done > SIG(dram_last_data_done)) SIG(dram_last_data_done) = data_done;
    /* BandwidthMonitor.record_cas */
    if (data_start >= SIG(mon_window_end)) mon_advance(si, sf, data_start);
    SFG(mon_counter) += 1.0;
    SIG(mon_total_cas)++;
    if (is_write) SIG(dram_writes)++; else SIG(dram_reads)++;
    return data_done - cycle;
}

/* ----------------------------------------------- in-flight prefetch queue */

static int64_t infl_find(const kctx_t *k, int64_t line) {
    int64_t n = k->ci[CI_inflight_len];
    for (int64_t i = 0; i < n; i++)
        if (k->infl_line[i] == line) return i;
    return -1;
}

static void infl_del(kctx_t *k, int64_t i) {
    int64_t n = --k->ci[CI_inflight_len];
    k->infl_line[i] = k->infl_line[n];
    k->infl_ready[i] = k->infl_ready[n];
}

static void infl_sweep(kctx_t *k, int64_t cycle) {
    int64_t n = k->ci[CI_inflight_len];
    int64_t i = 0;
    while (i < n) {
        if (k->infl_ready[i] <= cycle) {
            n--;
            k->infl_line[i] = k->infl_line[n];
            k->infl_ready[i] = k->infl_ready[n];
        } else i++;
    }
    k->ci[CI_inflight_len] = n;
}

/* ------------------------------------------------- scheme note queue */

static void note_push(kctx_t *k, int64_t kind, int64_t cycle, int64_t line) {
    if (!k->ci[CI_has_l2pf]) return;
    int64_t sk = k->ci[CI_scheme_kind];
    if (sk) {
        /* Compiled twins consume notes inline.  SPP's note hooks are
           pure feedback-counter increments (never read by train), so
           immediate counting matches the deferred queue drain exactly;
           DSPatch's note hooks are no-ops. */
        if (sk != SCHEME_DSPATCH) {
            if (kind == NOTE_USEFUL) k->ci[CI_sp_fb_useful]++;
            else k->ci[CI_sp_fb_issued]++;
        }
        return;
    }
    int64_t n = k->ci[CI_note_len];
    int64_t *b = k->note_buf + 3 * n;
    b[0] = kind; b[1] = cycle; b[2] = line;
    k->ci[CI_note_len] = n + 1;
}

static void notify_useful(kctx_t *k, int64_t cycle, int64_t line) {
    c_touch_pf(&k->llc, line);
    c_touch_pf(&k->l2, line);
    note_push(k, NOTE_USEFUL, cycle, line);
}

static void note_use(kctx_t *k, int64_t cycle, int64_t line, int64_t ready) {
    k->ci[CI_pf_useful]++;
    if (ready > cycle) k->ci[CI_pf_late]++;
    notify_useful(k, cycle, line);
}

static void fill_llc_acct(kctx_t *k, int64_t line, int64_t prefetched,
                          int64_t ready, int64_t lp, int64_t cycle) {
    int64_t vline, vpref, vused;
    if (c_fill(&k->llc, line, prefetched, lp, ready, &vline, &vpref, &vused)) {
        if (vpref && !vused) {
            k->ci[CI_pf_useless]++;
            note_push(k, NOTE_USELESS, cycle, vline);
        }
    }
}

/* --------------------------------- compiled scheme-training twins
   Line-for-line transliterations of prefetchers/spp.py and
   core/dspatch.py (the executable specs) against the flat sp_ and dp_
   arrays.  Bandwidth-bucket reads happen at exactly the same points as
   the Python (the monitor mutates on every read), and every double op
   keeps CPython's evaluation order. */

static int64_t k_bucket(kctx_t *k, int64_t cycle) {
    /* BandwidthMonitor.bucket: advance, then the 2-bit instant value. */
    mon_advance(k->si, k->sf, cycle);
    return mon_instant(k->si, k->sf, cycle);
}

/* --- SPP / eSPP --- */

static int64_t spp_advance_sig(int64_t sig, int64_t delta) {
    int64_t mag = (delta >= 0 ? delta : -delta) & 0x3F;
    if (delta < 0) mag |= 0x40;
    return ((sig << 3) ^ mag) & 0xFFF;
}

static void spp_ghr_insert(kctx_t *k, int64_t sig, double conf,
                           int64_t loff, int64_t delta) {
    int64_t len = k->ci[CI_sp_ghr_len];
    if (len < SPP_GHR) len++;
    for (int64_t i = len - 1; i > 0; i--) {
        k->sp_ghr_sig[i] = k->sp_ghr_sig[i - 1];
        k->sp_ghr_conf[i] = k->sp_ghr_conf[i - 1];
        k->sp_ghr_loff[i] = k->sp_ghr_loff[i - 1];
        k->sp_ghr_delta[i] = k->sp_ghr_delta[i - 1];
    }
    k->sp_ghr_sig[0] = sig;
    k->sp_ghr_conf[0] = conf;
    k->sp_ghr_loff[0] = loff;
    k->sp_ghr_delta[0] = delta;
    k->ci[CI_sp_ghr_len] = len;
}

static int64_t spp_ghr_bootstrap(kctx_t *k, int64_t offset) {
    int64_t n = k->ci[CI_sp_ghr_len];
    for (int64_t i = 0; i < n; i++) {
        int64_t landing = k->sp_ghr_loff[i] + k->sp_ghr_delta[i];
        if ((landing >= 64 && landing - 64 == offset) ||
            (landing < 0 && landing + 64 == offset))
            return spp_advance_sig(k->sp_ghr_sig[i], k->sp_ghr_delta[i]);
    }
    return 0;
}

static void spp_pt_update(kctx_t *k, int64_t sig, int64_t delta) {
    int64_t idx = (sig ^ (sig >> 6)) & SPP_PT_MASK;
    int64_t *dl = k->sp_pt_delta + idx * SPP_SLOTS;
    int64_t *cl = k->sp_pt_cdelta + idx * SPP_SLOTS;
    int64_t c_sig = k->sp_pt_csig[idx];
    if (c_sig >= SPP_CMAX) {
        c_sig >>= 1;
        for (int64_t i = 0; i < SPP_SLOTS; i++) cl[i] >>= 1;
    }
    k->sp_pt_csig[idx] = c_sig + 1;
    int64_t victim = 0, victim_count = -1;
    for (int64_t i = 0; i < SPP_SLOTS; i++) {
        if (dl[i] == delta) {
            int64_t count = cl[i] + 1;
            cl[i] = count < SPP_CMAX ? count : SPP_CMAX;
            return;
        }
        if (victim_count < 0 || cl[i] < victim_count) {
            victim = i; victim_count = cl[i];
        }
    }
    dl[victim] = delta;
    cl[victim] = 1;
}

static double spp_threshold(kctx_t *k, int64_t sk, int64_t cycle) {
    if (sk == SCHEME_ESPP && k_bucket(k, cycle) <= 1) return SPP_THR_RELAX;
    return SPP_THR_PF;
}

static void spp_train(kctx_t *k, int64_t sk, int64_t cycle, int64_t pc,
                      int64_t addr) {
    int64_t *ci = k->ci;
    ci[CI_sp_trainings]++;
    ci[CI_cand_len] = 0;
    int64_t page = addr >> (LINE_SHIFT + PG_SHIFT);
    int64_t offset = (addr >> LINE_SHIFT) & 63;
    int64_t sidx = page & SPP_ST_MASK;
    int64_t tag = (page >> 8) & 0xFFFF;
    int64_t signature;
    if (k->sp_st_tag[sidx] >= 0 && k->sp_st_tag[sidx] == tag) {
        int64_t delta = offset - k->sp_st_loff[sidx];
        if (delta == 0) return;
        spp_pt_update(k, k->sp_st_sig[sidx], delta);
        signature = spp_advance_sig(k->sp_st_sig[sidx], delta);
        k->sp_st_sig[sidx] = signature;
        k->sp_st_loff[sidx] = offset;
    } else {
        signature = spp_ghr_bootstrap(k, offset);
        k->sp_st_tag[sidx] = tag;
        k->sp_st_loff[sidx] = offset;
        k->sp_st_sig[sidx] = signature;
        if (signature == 0) return;
    }
    /* _lookahead: the confidence-cascaded walk.  The confidence product
       is computed in CPython's left-associative order. */
    double threshold = spp_threshold(k, sk, cycle);
    int64_t page_base = page << PG_SHIFT;
    uint64_t seen = 1ull << offset;   /* in-page lines as an offset bitmap */
    double confidence = 1.0;
    int64_t off = offset;
    int64_t n_cands = 0, n_filtered = 0;
    for (int64_t depth = 0; depth < SPP_DEPTH; depth++) {
        int64_t idx = (signature ^ (signature >> 6)) & SPP_PT_MASK;
        int64_t c_sig = k->sp_pt_csig[idx];
        if (c_sig == 0) break;
        int64_t *dl = k->sp_pt_delta + idx * SPP_SLOTS;
        int64_t *cl = k->sp_pt_cdelta + idx * SPP_SLOTS;
        double best_conf = 0.0;
        int64_t best_delta = 0;
        for (int64_t s = 0; s < SPP_SLOTS; s++) {
            int64_t c_delta = cl[s];
            if (c_delta == 0) continue;
            int64_t delta = dl[s];
            double conf = confidence * (double)c_delta / (double)c_sig;
            if (conf > best_conf) { best_conf = conf; best_delta = delta; }
            if (conf < threshold) continue;
            int64_t target = off + delta;
            if (target >= 0 && target < 64) {
                int64_t line = page_base + target;
                if (!((seen >> target) & 1)) {
                    /* inlined prefetch filter */
                    int64_t fidx = (line ^ (line >> 10)) & SPP_FLT_MASK;
                    if (k->sp_flt[fidx] == line) n_filtered++;
                    else {
                        k->sp_flt[fidx] = line;
                        seen |= 1ull << target;
                        k->cand_line[n_cands] = line;
                        k->cand_lp[n_cands] = 0;
                        n_cands++;
                    }
                }
            } else {
                /* crossing the page: remember for cross-page bootstrap */
                spp_ghr_insert(k, signature, conf, off, delta);
            }
            if (n_cands >= SPP_MAXC) {
                ci[CI_sp_filtered] += n_filtered;
                ci[CI_cand_len] = n_cands;
                return;
            }
        }
        if (best_delta == 0 || best_conf < SPP_THR_LA) break;
        int64_t next_off = off + best_delta;
        if (next_off < 0 || next_off >= 64) break;
        signature = spp_advance_sig(signature, best_delta);
        off = next_off;
        confidence = best_conf;
    }
    ci[CI_sp_filtered] += n_filtered;
    ci[CI_cand_len] = n_cands;
}

/* --- DSPatch (stock compressed geometry: 32-bit patterns, 16-bit
       halves, one stored bit per 128B line pair) --- */

static int64_t dp_fold8(int64_t pc) {
    uint64_t v = (uint64_t)pc;
    uint64_t out = 0;
    while (v) { out ^= v & 0xFF; v >>= 8; }
    return (int64_t)out;
}

static uint32_t dp_rotl32(uint32_t p, int64_t a) {
    a &= 31;
    if (!a) return p;
    return (p << a) | (p >> (32 - a));
}

static uint32_t dp_rotr32(uint32_t p, int64_t a) {
    a &= 31;
    if (!a) return p;
    return (p >> a) | (p << (32 - a));
}

static uint32_t dp_compress(uint64_t p) {
    uint32_t out = 0;
    while (p) {
        int64_t pos = __builtin_ctzll(p);
        out |= 1u << (pos >> 1);
        p &= p - 1;
    }
    return out;
}

/* SptEntry.update_half (Section 3.6 order: measure, then CovP, then
   AccP).  allow_reset is hardcoded true — the stock config. */
static void dp_update_half(kctx_t *k, int64_t e, int64_t half,
                           int64_t program_half, int64_t bw_bucket) {
    int64_t shift = half * 16;
    int64_t cov = (k->dp_spt_cov[e] >> shift) & 0xFFFF;
    int64_t acc = (k->dp_spt_acc[e] >> shift) & 0xFFFF;
    int64_t c_real = __builtin_popcountll((uint64_t)program_half);
    int64_t c_acc_cov = __builtin_popcountll((uint64_t)(cov & program_half));
    int64_t c_cov = __builtin_popcountll((uint64_t)cov);
    int64_t four_acc = 4 * c_acc_cov;
    int accuracy_bad = (c_cov <= 0) || (four_acc < 2 * c_cov);
    int coverage_bad = (c_real <= 0) || (four_acc < 2 * c_real);
    int64_t m = 2 * e + half;
    if (accuracy_bad || coverage_bad) {
        if (k->dp_spt_mcov[m] < DP_CMAX) k->dp_spt_mcov[m]++;
    }
    int64_t c_acc_acc = __builtin_popcountll((uint64_t)(acc & program_half));
    int64_t c_acc = __builtin_popcountll((uint64_t)acc);
    if (c_acc <= 0 || 4 * c_acc_acc < 2 * c_acc) {
        if (k->dp_spt_macc[m] < DP_CMAX) k->dp_spt_macc[m]++;
    } else if (k->dp_spt_macc[m] > 0) k->dp_spt_macc[m]--;
    if (k->dp_spt_mcov[m] >= DP_CMAX && (bw_bucket == 3 || coverage_bad)) {
        cov = program_half;          /* relearn from scratch */
        k->dp_spt_or[m] = 0;
        k->dp_spt_mcov[m] = 0;
    } else if (k->dp_spt_or[m] < DP_CMAX) {
        int64_t grown = cov | program_half;
        if (grown != cov) k->dp_spt_or[m]++;
        cov = grown;
    }
    int64_t cleared = ~(0xFFFFll << shift);
    k->dp_spt_cov[e] = (k->dp_spt_cov[e] & cleared) | (cov << shift);
    k->dp_spt_acc[e] = (k->dp_spt_acc[e] & cleared)
                     | ((program_half & cov) << shift);
}

/* DSPatch._learn: one bucket read first, then per-trigger SPT folds. */
static void dp_learn(kctx_t *k, int64_t cycle, uint64_t pattern,
                     const int64_t *trig_sig, const int64_t *trig_off) {
    uint32_t program = dp_compress(pattern);
    int64_t bw_bucket = k_bucket(k, cycle);
    for (int64_t segment = 0; segment < 2; segment++) {
        if (trig_sig[segment] < 0) continue;
        uint32_t anchored = dp_rotr32(program, trig_off[segment] >> 1);
        int64_t e = trig_sig[segment] & DP_SPT_MASK;
        int64_t nhalves = segment == 0 ? 2 : 1;
        for (int64_t half = 0; half < nhalves; half++)
            dp_update_half(k, e, half,
                           (int64_t)((anchored >> (half * 16)) & 0xFFFF),
                           bw_bucket);
    }
}

/* DSPatch._predict + _expand: Figure 10 selection per half (one bucket
   read per half, as the Python does), rotate to the trigger, expand
   each compressed bit to its line pair skipping the trigger line. */
static int64_t dp_predict(kctx_t *k, int64_t cycle, int64_t sig,
                          int64_t page, int64_t trig_off, int64_t segment) {
    int64_t *ci = k->ci;
    /* Candidates append after whatever an earlier composite component
       already emitted (base == 0 for standalone DSPatch). */
    int64_t base = ci[CI_cand_len];
    int64_t e = sig & DP_SPT_MASK;
    int64_t trigger_bit = trig_off >> 1;
    int64_t nhalves = segment == 0 ? 2 : 1;
    uint32_t anchored = 0;
    int64_t low_priority = 0;
    for (int64_t half = 0; half < nhalves; half++) {
        int64_t m = 2 * e + half;
        int64_t bucket = k_bucket(k, cycle);
        int cov_sat = k->dp_spt_mcov[m] >= DP_CMAX;
        int acc_sat = k->dp_spt_macc[m] >= DP_CMAX;
        int64_t chunk;
        if (bucket == 3) {
            if (acc_sat) { ci[CI_dp_pred_supp]++; continue; }
            chunk = (k->dp_spt_acc[e] >> (half * 16)) & 0xFFFF;
            ci[CI_dp_pred_accp]++;
        } else if (bucket == 2) {
            if (cov_sat) {
                chunk = (k->dp_spt_acc[e] >> (half * 16)) & 0xFFFF;
                ci[CI_dp_pred_accp]++;
            } else {
                chunk = (k->dp_spt_cov[e] >> (half * 16)) & 0xFFFF;
                ci[CI_dp_pred_covp]++;
            }
        } else {
            chunk = (k->dp_spt_cov[e] >> (half * 16)) & 0xFFFF;
            ci[CI_dp_pred_covp]++;
            if (cov_sat) low_priority = 1;   /* COV_LOW */
        }
        anchored |= (uint32_t)chunk << (half * 16);
    }
    if (!anchored) return base;
    uint32_t p = dp_rotl32(anchored, trigger_bit);
    int64_t base_line = page << PG_SHIFT;
    int64_t n = base, emitted = 0;
    while (p) {
        int64_t first_line = (int64_t)__builtin_ctz(p) << 1;
        p &= p - 1;
        for (int64_t lo = first_line; lo < first_line + 2; lo++) {
            if (lo == trig_off) continue;
            int64_t line = base_line + lo;
            /* Composite merge: earlier components take precedence, so a
               line already emitted (by SPP, at cand 0..base) is dropped —
               but it still counts toward DSPatch's own per-trigger cap,
               which the Python applies before the merge dedup. */
            int dup = 0;
            for (int64_t j = 0; j < base; j++)
                if (k->cand_line[j] == line) { dup = 1; break; }
            if (!dup) {
                k->cand_line[n] = line;
                k->cand_lp[n] = low_priority;
                n++;
            }
            emitted++;
            if (emitted >= DP_MAXC) return n;
        }
    }
    return n;
}

/* DSPatch.train: PB LRU scan over packed arrays (index 0 = oldest,
   matching dict insertion order), insert-then-learn on eviction, then
   the segment trigger and the pattern-bit record. */
static void dp_train(kctx_t *k, int64_t cycle, int64_t pc, int64_t addr) {
    int64_t *ci = k->ci;
    ci[CI_dp_trainings]++;
    int64_t page = addr >> (LINE_SHIFT + PG_SHIFT);
    int64_t line_off = (addr >> LINE_SHIFT) & 63;
    int64_t segment = line_off >> 5;
    int64_t len = ci[CI_dp_pb_len];
    int64_t slot = -1;
    for (int64_t i = 0; i < len; i++)
        if (k->dp_pb_page[i] == page) { slot = i; break; }
    if (slot >= 0) {
        /* LRU refresh: move to the tail, preserving relative order. */
        uint64_t pat = k->dp_pb_pattern[slot];
        int64_t s0 = k->dp_pb_trig_sig[2 * slot];
        int64_t s1 = k->dp_pb_trig_sig[2 * slot + 1];
        int64_t o0 = k->dp_pb_trig_off[2 * slot];
        int64_t o1 = k->dp_pb_trig_off[2 * slot + 1];
        for (int64_t i = slot; i < len - 1; i++) {
            k->dp_pb_page[i] = k->dp_pb_page[i + 1];
            k->dp_pb_pattern[i] = k->dp_pb_pattern[i + 1];
            k->dp_pb_trig_sig[2 * i] = k->dp_pb_trig_sig[2 * i + 2];
            k->dp_pb_trig_sig[2 * i + 1] = k->dp_pb_trig_sig[2 * i + 3];
            k->dp_pb_trig_off[2 * i] = k->dp_pb_trig_off[2 * i + 2];
            k->dp_pb_trig_off[2 * i + 1] = k->dp_pb_trig_off[2 * i + 3];
        }
        slot = len - 1;
        k->dp_pb_page[slot] = page;
        k->dp_pb_pattern[slot] = pat;
        k->dp_pb_trig_sig[2 * slot] = s0;
        k->dp_pb_trig_sig[2 * slot + 1] = s1;
        k->dp_pb_trig_off[2 * slot] = o0;
        k->dp_pb_trig_off[2 * slot + 1] = o1;
    } else {
        uint64_t ev_pat = 0;
        int64_t ev_sig[2] = {-1, -1};
        int64_t ev_off[2] = {0, 0};
        int evicted = 0;
        if (len >= DP_PB) {
            ev_pat = k->dp_pb_pattern[0];
            ev_sig[0] = k->dp_pb_trig_sig[0];
            ev_sig[1] = k->dp_pb_trig_sig[1];
            ev_off[0] = k->dp_pb_trig_off[0];
            ev_off[1] = k->dp_pb_trig_off[1];
            evicted = 1;
            ci[CI_dp_pb_evictions]++;
            for (int64_t i = 0; i < len - 1; i++) {
                k->dp_pb_page[i] = k->dp_pb_page[i + 1];
                k->dp_pb_pattern[i] = k->dp_pb_pattern[i + 1];
                k->dp_pb_trig_sig[2 * i] = k->dp_pb_trig_sig[2 * i + 2];
                k->dp_pb_trig_sig[2 * i + 1] = k->dp_pb_trig_sig[2 * i + 3];
                k->dp_pb_trig_off[2 * i] = k->dp_pb_trig_off[2 * i + 2];
                k->dp_pb_trig_off[2 * i + 1] = k->dp_pb_trig_off[2 * i + 3];
            }
            len--;
        }
        slot = len;
        k->dp_pb_page[slot] = page;
        k->dp_pb_pattern[slot] = 0;
        k->dp_pb_trig_sig[2 * slot] = -1;
        k->dp_pb_trig_sig[2 * slot + 1] = -1;
        k->dp_pb_trig_off[2 * slot] = 0;
        k->dp_pb_trig_off[2 * slot + 1] = 0;
        ci[CI_dp_pb_len] = len + 1;
        /* Python order: PageBuffer.insert first, then _learn(evicted). */
        if (evicted) dp_learn(k, cycle, ev_pat, ev_sig, ev_off);
    }
    if (k->dp_pb_trig_sig[2 * slot + segment] < 0) {
        int64_t signature = dp_fold8(pc);
        k->dp_pb_trig_sig[2 * slot + segment] = signature;
        k->dp_pb_trig_off[2 * slot + segment] = line_off;
        ci[CI_dp_triggers]++;
        ci[CI_cand_len] = dp_predict(k, cycle, signature, page, line_off, segment);
    }
    k->dp_pb_pattern[slot] |= 1ull << line_off;
}

static void scheme_train(kctx_t *k, int64_t sk, int64_t cycle, int64_t pc,
                         int64_t addr) {
    if (sk == SCHEME_SPP_DSPATCH) {
        /* Section 5.1 adjunct composite: SPP trains first (arbitration
           priority), DSPatch appends with the merge dedup in dp_predict. */
        spp_train(k, SCHEME_SPP, cycle, pc, addr);
        dp_train(k, cycle, pc, addr);
    } else if (sk == SCHEME_DSPATCH) {
        k->ci[CI_cand_len] = 0;
        dp_train(k, cycle, pc, addr);
    } else {
        spp_train(k, sk, cycle, pc, addr);
    }
}

/* --------------------------------------------- MemoryHierarchy._below_l1 */

/* Pre-crossing half: the L2 lookup.  Saves the lookup outcome in the
   b_* slots; returns nonzero when the scheme must be trained (the
   caller runs the compiled twin, or appends a train_buf record and
   returns RC_TRAIN). */
static int below_l1_pre(kctx_t *k, int64_t cycle, int64_t addr, int64_t is_write) {
    int64_t *ci = k->ci;
    int64_t line = addr >> LINE_SHIFT;
    cache_t *l2 = &k->l2;
    int64_t tick = ++(*l2->tick);
    int64_t slot = c_find(l2, line);
    int64_t first_use = 0;
    if (slot < 0) l2->stats[1]++;
    else {
        l2->stats[0]++;
        l2->touch[slot] = tick;
        if (is_write) l2->dirty[slot] = 1;
        if (l2->pref[slot] && !l2->used[slot]) {
            l2->stats[3]++;
            first_use = 1;
            if (l2->ready[slot] > cycle) l2->stats[4]++;
            l2->used[slot] = 1;
        }
    }
    ci[CI_b_line] = line;
    ci[CI_b_slot] = slot;
    ci[CI_b_first_use] = first_use;
    return (int)ci[CI_has_l2pf];
}

static void issue_prefetches(kctx_t *k, int64_t cycle) {
    int64_t *ci = k->ci;
    int64_t n = ci[CI_cand_len];
    cache_t *l2 = &k->l2;
    cache_t *llc = &k->llc;
    for (int64_t i = 0; i < n; i++) {
        int64_t line = k->cand_line[i];
        int64_t lp = k->cand_lp[i];
        if (c_find(l2, line) >= 0) { ci[CI_pf_dropped_resident]++; continue; }
        int64_t ifl = infl_find(k, line);
        if (ifl >= 0) {
            if (k->infl_ready[ifl] > cycle) { ci[CI_pf_dropped_in_flight]++; continue; }
            infl_del(k, ifl);
        }
        if (c_find(llc, line) >= 0) {
            ci[CI_pf_issued]++;
            if (lp) ci[CI_pf_issued_low_priority]++;
            ci[CI_pf_filled_from_llc]++;
            c_fill(l2, line, 1, lp, cycle + llc->hit_lat, 0, 0, 0);
            continue;
        }
        if (ci[CI_inflight_len] >= ci[CI_queue_size]) {
            infl_sweep(k, cycle);
            if (ci[CI_inflight_len] >= ci[CI_queue_size]) {
                ci[CI_pf_dropped_bandwidth]++;
                continue;
            }
        }
        int64_t dl = dram_access(k, cycle, line, 0, 1);
        if (dl < 0) { ci[CI_pf_dropped_bandwidth]++; continue; }
        ci[CI_pf_issued]++;
        if (lp) ci[CI_pf_issued_low_priority]++;
        int64_t ready = cycle + llc->hit_lat + dl;
        ci[CI_pf_filled_from_dram]++;
        int64_t m = ci[CI_inflight_len]++;
        k->infl_line[m] = line;
        k->infl_ready[m] = ready;
        fill_llc_acct(k, line, 1, ready, lp, cycle);
        c_fill(l2, line, 1, lp, ready, 0, 0, 0);
    }
    ci[CI_cand_len] = 0;
}

/* Post-crossing half: finish the lookup with the scheme's candidates
   (cand_len == 0 when no scheme).  Returns latency, sets *level. */
static int64_t below_l1_post(kctx_t *k, int64_t cycle, int64_t is_write, int64_t *level) {
    int64_t *ci = k->ci;
    int64_t line = ci[CI_b_line];
    int64_t slot = ci[CI_b_slot];
    cache_t *l2 = &k->l2;
    int64_t ncand = ci[CI_cand_len];
    int64_t merge_bound = ci[CI_merge_bound];
    if (slot >= 0) {
        if (ci[CI_b_first_use]) note_use(k, cycle, line, l2->ready[slot]);
        int64_t residual = l2->ready[slot] - cycle;
        if (residual > 0) {
            if (l2->pref[slot] && residual > merge_bound) residual = merge_bound;
        } else residual = 0;
        int64_t latency = l2->hit_lat + residual;
        if (ncand) issue_prefetches(k, cycle);
        *level = 1;
        return latency;
    }
    int64_t ifl = infl_find(k, line);
    if (ifl >= 0) {
        int64_t infl_ready = k->infl_ready[ifl];
        infl_del(k, ifl);
        if (infl_ready > cycle) {
            int64_t residual = infl_ready - cycle;
            if (residual > merge_bound) residual = merge_bound;
            int64_t latency = l2->hit_lat + residual;
            ci[CI_pf_useful]++;
            ci[CI_pf_late]++;
            c_fill(l2, line, 0, 0, cycle + residual, 0, 0, 0);
            notify_useful(k, cycle, line);
            if (ncand) issue_prefetches(k, cycle);
            *level = 2;
            return latency;
        }
    }
    cache_t *llc = &k->llc;
    int64_t ltick = ++(*llc->tick);
    int64_t ls = c_find(llc, line);
    if (ls < 0) llc->stats[1]++;
    else {
        llc->stats[0]++;
        llc->touch[ls] = ltick;
        if (is_write) llc->dirty[ls] = 1;
        if (llc->pref[ls] && !llc->used[ls]) {
            llc->stats[3]++;
            if (llc->ready[ls] > cycle) llc->stats[4]++;
            llc->used[ls] = 1;
            note_use(k, cycle, line, llc->ready[ls]);
        }
        int64_t residual = llc->ready[ls] - cycle;
        if (residual > 0) {
            if (llc->pref[ls] && residual > merge_bound) residual = merge_bound;
        } else residual = 0;
        int64_t latency = llc->hit_lat + residual;
        c_fill(l2, line, 0, 0, cycle + latency, 0, 0, 0);
        if (ncand) issue_prefetches(k, cycle);
        *level = 2;
        return latency;
    }
    int64_t dl = dram_access(k, cycle, line, (int)is_write, 0);
    int64_t latency = llc->hit_lat + dl;
    latency += mshr_allocate(&k->l2m, cycle, cycle + latency);
    latency += mshr_allocate(&k->llcm, cycle, cycle + latency);
    int64_t ready = cycle + latency;
    fill_llc_acct(k, line, 0, ready, 0, cycle);
    c_fill(l2, line, 0, 0, ready, 0, 0, 0);
    if (ncand) issue_prefetches(k, cycle);
    *level = 3;
    return latency;
}

/* ------------------------------------------------------------- assembly */

static void bind(kctx_t *k, void **P) {
    k->ci = (int64_t *)P[P_ci64];
    k->cf = (double *)P[P_cf64];
    k->si = (int64_t *)P[P_si64];
    k->sf = (double *)P[P_sf64];
    int64_t *ci = k->ci;
    int64_t *si = k->si;

    k->l1.valid = (int64_t *)P[P_l1_valid]; k->l1.line = (int64_t *)P[P_l1_line];
    k->l1.dirty = (int64_t *)P[P_l1_dirty]; k->l1.pref = (int64_t *)P[P_l1_pref];
    k->l1.used = (int64_t *)P[P_l1_used]; k->l1.touch = (int64_t *)P[P_l1_touch];
    k->l1.ready = (int64_t *)P[P_l1_ready];
    k->l1.tick = &ci[CI_l1_tick]; k->l1.stats = &ci[CI_l1_demand_hits];
    k->l1.ways = CI(l1_ways); k->l1.set_mask = CI(l1_set_mask);
    k->l1.hit_lat = CI(l1_hit_latency); k->l1.mode = CI(l1_victim_mode);

    k->l2.valid = (int64_t *)P[P_l2_valid]; k->l2.line = (int64_t *)P[P_l2_line];
    k->l2.dirty = (int64_t *)P[P_l2_dirty]; k->l2.pref = (int64_t *)P[P_l2_pref];
    k->l2.used = (int64_t *)P[P_l2_used]; k->l2.touch = (int64_t *)P[P_l2_touch];
    k->l2.ready = (int64_t *)P[P_l2_ready];
    k->l2.tick = &ci[CI_l2_tick]; k->l2.stats = &ci[CI_l2_demand_hits];
    k->l2.ways = CI(l2_ways); k->l2.set_mask = CI(l2_set_mask);
    k->l2.hit_lat = CI(l2_hit_latency); k->l2.mode = CI(l2_victim_mode);

    k->llc.valid = (int64_t *)P[P_llc_valid]; k->llc.line = (int64_t *)P[P_llc_line];
    k->llc.dirty = (int64_t *)P[P_llc_dirty]; k->llc.pref = (int64_t *)P[P_llc_pref];
    k->llc.used = (int64_t *)P[P_llc_used]; k->llc.touch = (int64_t *)P[P_llc_touch];
    k->llc.ready = (int64_t *)P[P_llc_ready];
    k->llc.tick = &si[SI_llc_tick]; k->llc.stats = &si[SI_llc_demand_hits];
    k->llc.ways = CI(llc_ways); k->llc.set_mask = CI(llc_set_mask);
    k->llc.hit_lat = CI(llc_hit_latency); k->llc.mode = CI(llc_victim_mode);

    k->l1m.heap = (int64_t *)P[P_mshr_l1]; k->l1m.len = &ci[CI_mshr_l1_len];
    k->l1m.allocs = &ci[CI_mshr_l1_allocations]; k->l1m.stall = &ci[CI_mshr_l1_stall];
    k->l1m.cap = CI(mshr_l1_cap);
    k->l2m.heap = (int64_t *)P[P_mshr_l2]; k->l2m.len = &ci[CI_mshr_l2_len];
    k->l2m.allocs = &ci[CI_mshr_l2_allocations]; k->l2m.stall = &ci[CI_mshr_l2_stall];
    k->l2m.cap = CI(mshr_l2_cap);
    k->llcm.heap = (int64_t *)P[P_mshr_llc]; k->llcm.len = &ci[CI_mshr_llc_len];
    k->llcm.allocs = &ci[CI_mshr_llc_allocations]; k->llcm.stall = &ci[CI_mshr_llc_stall];
    k->llcm.cap = CI(mshr_llc_cap);

    k->bank_open = (int64_t *)P[P_bank_open];
    k->bank_nextact = (int64_t *)P[P_bank_nextact];
    k->bank_rowready = (int64_t *)P[P_bank_rowready];
    k->ch_busfree = (int64_t *)P[P_ch_busfree];
    k->ch_demandfree = (int64_t *)P[P_ch_demandfree];
    k->infl_line = (int64_t *)P[P_infl_line];
    k->infl_ready = (int64_t *)P[P_infl_ready];
    k->note_buf = (int64_t *)P[P_note_buf];
    k->cand_line = (int64_t *)P[P_cand_line];
    k->cand_lp = (int64_t *)P[P_cand_lp];
    k->train_buf = (int64_t *)P[P_train_buf];

    k->sp_st_tag = (int64_t *)P[P_sp_st_tag];
    k->sp_st_loff = (int64_t *)P[P_sp_st_loff];
    k->sp_st_sig = (int64_t *)P[P_sp_st_sig];
    k->sp_pt_csig = (int64_t *)P[P_sp_pt_csig];
    k->sp_pt_delta = (int64_t *)P[P_sp_pt_delta];
    k->sp_pt_cdelta = (int64_t *)P[P_sp_pt_cdelta];
    k->sp_ghr_sig = (int64_t *)P[P_sp_ghr_sig];
    k->sp_ghr_conf = (double *)P[P_sp_ghr_conf];
    k->sp_ghr_loff = (int64_t *)P[P_sp_ghr_loff];
    k->sp_ghr_delta = (int64_t *)P[P_sp_ghr_delta];
    k->sp_flt = (int64_t *)P[P_sp_flt];
    k->dp_pb_page = (int64_t *)P[P_dp_pb_page];
    k->dp_pb_pattern = (uint64_t *)P[P_dp_pb_pattern];
    k->dp_pb_trig_sig = (int64_t *)P[P_dp_pb_trig_sig];
    k->dp_pb_trig_off = (int64_t *)P[P_dp_pb_trig_off];
    k->dp_spt_cov = (int64_t *)P[P_dp_spt_cov];
    k->dp_spt_acc = (int64_t *)P[P_dp_spt_acc];
    k->dp_spt_mcov = (int64_t *)P[P_dp_spt_mcov];
    k->dp_spt_or = (int64_t *)P[P_dp_spt_or];
    k->dp_spt_macc = (int64_t *)P[P_dp_spt_macc];
}

/* ------------------------------------------------------------------ krun */

long krun(void **P) {
    kctx_t k;
    bind(&k, P);
    int64_t *ci = k.ci;
    double *cf = k.cf;
    int64_t *op_gap = (int64_t *)P[P_op_gap];
    int64_t *op_pc = (int64_t *)P[P_op_pc];
    int64_t *op_addr = (int64_t *)P[P_op_addr];
    int64_t *op_write = (int64_t *)P[P_op_write];
    int64_t *op_dep = (int64_t *)P[P_op_dep];
    int64_t *win_idx = (int64_t *)P[P_win_idx];
    double *win_ret = (double *)P[P_win_ret];
    int64_t *s_valid = (int64_t *)P[P_stride_valid];
    int64_t *s_tag = (int64_t *)P[P_stride_tag];
    int64_t *s_last = (int64_t *)P[P_stride_last];
    int64_t *s_stride = (int64_t *)P[P_stride_stride];
    int64_t *s_conf = (int64_t *)P[P_stride_conf];
    int64_t *pf_buf = (int64_t *)P[P_pf_buf];

    /* batch bounds + core constants */
    int64_t pos = CI(pos);
    int64_t end = CI(end);
    int64_t strict = CI(strict);
    double horizon = CF(horizon);
    int64_t width = CI(width);
    double width_d = (double)width;
    int64_t rob_size = CI(rob_size);
    double retire_step = CF(retire_step);
    int64_t instr = CI(instr);
    double retire = CF(retire);
    double last_load_done = CF(last_load_done);
    int64_t has_l1pf = CI(has_l1pf);
    int64_t sk = CI(scheme_kind);
    int64_t s_mask = CI(stride_mask);
    int64_t s_cthr = CI(stride_conf_threshold);
    int64_t s_cmax = CI(stride_conf_max);
    int64_t s_degree = CI(stride_degree);

    /* per-op state (restored from ctx slots on a resume) */
    int64_t cycle = 0, pc = 0, addr = 0, is_write = 0, idx = 0;
    int64_t l1_slot = -1, pf_i = 0, pf_n = 0, latency = 0, lvl = 0;
    double enter = 0.0;

#define SAVE_LOCALS do { \
        CI(pos) = pos; CI(instr) = instr; \
        CF(retire) = retire; CF(last_load_done) = last_load_done; \
    } while (0)
#define SAVE_CTX do { \
        CI(ctx_cycle) = cycle; CI(ctx_pc) = pc; CI(ctx_addr) = addr; \
        CI(ctx_is_write) = is_write; CI(ctx_idx) = idx; CF(ctx_enter) = enter; \
        CI(ctx_line) = addr >> LINE_SHIFT; CI(ctx_l1_slot) = l1_slot; \
        CI(ctx_pf_i) = pf_i; CI(ctx_pf_n) = pf_n; \
    } while (0)

    {
        int64_t phase = CI(phase);
        if (phase != PH_TOP) {
            cycle = CI(ctx_cycle); pc = CI(ctx_pc); addr = CI(ctx_addr);
            is_write = CI(ctx_is_write); idx = CI(ctx_idx); enter = CF(ctx_enter);
            l1_slot = CI(ctx_l1_slot); pf_i = CI(ctx_pf_i); pf_n = CI(ctx_pf_n);
            CI(phase) = PH_TOP;
            if (phase == PH_L1PF_TRAIN) goto resume_l1pf;
            goto resume_demand;
        }
    }

    while (pos < end) {
        if (retire > horizon || (strict && retire == horizon)) break;
        {
            int64_t gap = op_gap[pos];
            pc = op_pc[pos];
            addr = op_addr[pos];
            is_write = op_write[pos];
            int64_t dep = op_dep[pos];
            pos++;
            if (gap) {
                instr += gap;
                retire += (double)gap / width_d;
            }
            idx = instr;
            instr++;
            int64_t rob_idx = idx - rob_size;
            if (rob_idx <= 0) {
                enter = (double)idx / width_d;
            } else {
                int64_t head = CI(win_head), len = CI(win_len);
                int64_t mask = CI(win_cap) - 1;
                while (len > 1 && win_idx[(head + 1) & mask] <= rob_idx) {
                    head = (head + 1) & mask;
                    len--;
                }
                CI(win_head) = head;
                CI(win_len) = len;
                double floor_;
                if (!len || win_idx[head] > rob_idx)
                    floor_ = (double)rob_idx / width_d;
                else
                    floor_ = win_ret[head]
                           + (double)(rob_idx - win_idx[head]) / width_d;
                enter = (double)idx / width_d;
                if (floor_ > enter) enter = floor_;
            }
            if (dep && last_load_done > enter) enter = last_load_done;

            /* MemoryHierarchy.access: L1 lookup */
            cycle = (int64_t)enter;
            CI(demand_accesses)++;
            int64_t line = addr >> LINE_SHIFT;
            int64_t t1 = ++(*k.l1.tick);
            l1_slot = c_find(&k.l1, line);
            if (l1_slot < 0) k.l1.stats[1]++;
            else {
                k.l1.stats[0]++;
                k.l1.touch[l1_slot] = t1;
                if (is_write) k.l1.dirty[l1_slot] = 1;
                if (k.l1.pref[l1_slot] && !k.l1.used[l1_slot]) {
                    k.l1.stats[3]++;
                    if (k.l1.ready[l1_slot] > cycle) k.l1.stats[4]++;
                    k.l1.used[l1_slot] = 1;
                }
            }

            /* PcStridePrefetcher.train */
            pf_n = 0;
            pf_i = 0;
            if (has_l1pf) {
                CI(stride_trainings)++;
                int64_t sidx = (pc ^ (pc >> 12)) & s_mask;
                if (!s_valid[sidx] || s_tag[sidx] != pc) {
                    s_valid[sidx] = 1;
                    s_tag[sidx] = pc;
                    s_last[sidx] = line;
                    s_stride[sidx] = 0;
                    s_conf[sidx] = 0;
                } else {
                    int64_t stride = line - s_last[sidx];
                    if (stride != 0) {
                        if (stride == s_stride[sidx]) {
                            int64_t conf = s_conf[sidx] + 1;
                            s_conf[sidx] = conf < s_cmax ? conf : s_cmax;
                        } else {
                            s_stride[sidx] = stride;
                            s_conf[sidx] = 1;
                        }
                        if (s_conf[sidx] >= s_cthr) {
                            int64_t page = line >> PG_SHIFT;
                            for (int64_t d = 1; d <= s_degree; d++) {
                                int64_t target = line + stride * d;
                                if ((target >> PG_SHIFT) != page) break;
                                pf_buf[pf_n++] = target;
                            }
                        }
                    }
                    s_last[sidx] = line;
                }
            }
        }

        /* _issue_l1_prefetch for each stride candidate */
pf_loop:
        while (pf_i < pf_n) {
            int64_t cand = pf_buf[pf_i];
            if (c_find(&k.l1, cand) >= 0) { pf_i++; continue; }
            mshr_drain(&k.l1m, cycle);
            if (*k.l1m.len >= k.l1m.cap) { pf_i++; continue; }
            if (below_l1_pre(&k, cycle, cand << LINE_SHIFT, 0)) {
                if (sk) scheme_train(&k, sk, cycle, pc, cand << LINE_SHIFT);
                else {
                    SAVE_CTX;
                    int64_t n = CI(tb_len);
                    int64_t *tb = k.train_buf + 4 * n;
                    tb[0] = cycle; tb[1] = pc;
                    tb[2] = cand << LINE_SHIFT;
                    tb[3] = CI(b_slot) >= 0;
                    CI(tb_len) = n + 1;
                    CI(phase) = PH_L1PF_TRAIN;
                    SAVE_LOCALS;
                    return RC_TRAIN;
                }
            } else CI(cand_len) = 0;
resume_l1pf:
            latency = below_l1_post(&k, cycle, 0, &lvl);
            mshr_allocate(&k.l1m, cycle, cycle + latency);
            c_fill(&k.l1, CI(b_line), 1, 0, cycle + latency, 0, 0, 0);
            pf_i++;
        }

        /* demand completion (read the slot *after* prefetch issues: a
           fill that recycled this slot is visible, like the object
           path's recycled CacheLine) */
        if (l1_slot >= 0) {
            int64_t rdy = k.l1.ready[l1_slot];
            latency = k.l1.hit_lat + (rdy > cycle ? rdy - cycle : 0);
            lvl = 0;
        } else {
            if (below_l1_pre(&k, cycle, addr, is_write)) {
                if (sk) scheme_train(&k, sk, cycle, pc, addr);
                else {
                    SAVE_CTX;
                    int64_t n = CI(tb_len);
                    int64_t *tb = k.train_buf + 4 * n;
                    tb[0] = cycle; tb[1] = pc; tb[2] = addr;
                    tb[3] = CI(b_slot) >= 0;
                    CI(tb_len) = n + 1;
                    CI(phase) = PH_DEMAND_TRAIN;
                    SAVE_LOCALS;
                    return RC_TRAIN;
                }
            } else CI(cand_len) = 0;
resume_demand:
            latency = below_l1_post(&k, cycle, is_write, &lvl);
            latency += mshr_allocate(&k.l1m, cycle, cycle + latency);
            c_fill(&k.l1, addr >> LINE_SHIFT, 0, 0, cycle + latency, 0, 0, 0);
        }

        /* retirement epilogue */
        if (is_write) {
            retire += retire_step;
            if (enter > retire) retire = enter;
        } else {
            double done = enter + (double)latency;
            retire += retire_step;
            if (done > retire) retire = done;
            last_load_done = done;
        }
        {
            int64_t mask = CI(win_cap) - 1;
            int64_t w = (CI(win_head) + CI(win_len)) & mask;
            win_idx[w] = idx;
            win_ret[w] = retire;
            CI(win_len)++;
        }
        ci[CI_hit_l1 + lvl]++;
    }

    SAVE_LOCALS;
    return RC_DONE;
}

/* ---------------------------------------------------------------- kbucket */

long kbucket(long long *si_, double *sf, long long cycle) {
    int64_t *si = (int64_t *)si_;
    mon_advance(si, sf, (int64_t)cycle);
    return (long)mon_instant(si, sf, (int64_t)cycle);
}
"""


def generate_source():
    """The complete C translation unit for the compiled kernel."""
    return _defines() + "\n" + _scheme_defines() + "\n" + _BODY
