"""KernelState: the packed flat-array form of the simulated machine.

Layer 1 of the kernel subsystem (docs/engine.md, "compiled kernel"):
everything the per-access hot path mutates — cache tags/valid/recency/
dirty/prefetch bits, MSHR heaps, the in-flight prefetch queue, DRAM bank
and bus state, the bandwidth monitor, core retirement state — packed
into flat ``int64``/``float64`` NumPy arrays laid out by
:mod:`repro.kernel.layout`.

The object model is the source of truth at the boundaries:
:meth:`KernelState.from_objects` packs a freshly built (or mid-run)
``CoreExecution`` + ``MemoryHierarchy`` + ``DramModel``, and
:meth:`KernelState.write_back` reconstructs them — OrderedDict sets in
exact recency order, heap lists, ``CacheLine``/``_StrideEntry`` objects —
so stats assembly, ``flush_training``, pollution views and every existing
consumer keep reading the objects they always read.

Shared state (the LLC, DRAM, and bandwidth monitor of a multi-programmed
mix) lives in a :class:`SharedState` that all per-core states reference,
mirroring how the object model shares one ``Cache``/``DramModel``.
"""

from collections import OrderedDict, deque

import numpy as np

from repro.kernel import layout
from repro.kernel.layout import CAND_CAP0, CF64, CI64, PF_BUF_CAP, SF64, SI64
from repro.memory.cache import CacheLine
from repro.prefetchers.base import NullPrefetcher
from repro.prefetchers.stride import PcStridePrefetcher, _StrideEntry

_CACHE_FIELDS = ("valid", "line", "dirty", "pref", "used", "touch", "ready")
#: Cache stats slots, in the order they sit in the slot arrays.
_CACHE_STATS = (
    "demand_hits",
    "demand_misses",
    "prefetch_probe_hits",
    "useful_prefetches",
    "late_useful_prefetches",
    "useless_evictions",
    "writebacks",
)
_PF_STATS = (
    "issued",
    "issued_low_priority",
    "filled_from_llc",
    "filled_from_dram",
    "useful",
    "late",
    "useless",
    "dropped_resident",
    "dropped_in_flight",
    "dropped_bandwidth",
)
#: Replacement-policy name -> fast victim mode (matches Cache._victim_mode).
VICTIM_MODES = {"lru": 0, "pf-dead-block": 1}

#: Scheme arrays that exist even when no compiled twin is active (the
#: pointer table is fixed, so inactive schemes get 1-element dummies).
_SP_I64_ARRAYS = (
    "sp_st_tag", "sp_st_loff", "sp_st_sig",
    "sp_pt_csig", "sp_pt_delta", "sp_pt_cdelta",
    "sp_ghr_sig", "sp_ghr_loff", "sp_ghr_delta",
    "sp_flt",
)
_DP_I64_ARRAYS = (
    "dp_pb_page", "dp_pb_trig_sig", "dp_pb_trig_off",
    "dp_spt_cov", "dp_spt_acc", "dp_spt_mcov", "dp_spt_or", "dp_spt_macc",
)


def _bandwidth_is_packed(bw, dram_obj):
    """True when ``bw`` reads the monitor state packed into this domain.

    Schemes built by the system drivers hold a
    :class:`~repro.kernel.execution.KernelBandwidth` wrapper around the
    DRAM model; during a kernel run its queries hit the same flat monitor
    slots the generated C mutates, so the C twin's inline bucket reads
    are equivalent.  A scheme wired to some *other* monitor must keep the
    Python crossing.
    """
    if bw is dram_obj.monitor or bw is dram_obj:
        return True
    from repro.kernel.execution import KernelBandwidth

    return isinstance(bw, KernelBandwidth) and bw._dram is dram_obj


def _scheme_kind(l2_pf, dram_obj):
    """SCHEME_* id when ``l2_pf`` has a compiled training twin.

    Only the stock registry shapes qualify: the exact class (subclass
    variants override hooks the C twin hardcodes) with its default config
    (the generated C bakes those constants in as ``#define``s), no event
    tracing, and — for the bandwidth-aware schemes — the packed DRAM
    monitor as the bandwidth source.  Everything else keeps the
    ``train_buf`` Python crossing.
    """
    if l2_pf is None or getattr(l2_pf, "trace_emit", None) is not None:
        return layout.SCHEME_PY
    from repro.core.dspatch import DSPatch, DSPatchConfig
    from repro.prefetchers.spp import ESPP, SPP, SppConfig

    cls = type(l2_pf)
    if cls is SPP and l2_pf.config == SppConfig():
        return layout.SCHEME_SPP
    if (
        cls is ESPP
        and l2_pf.config == SppConfig()
        and _bandwidth_is_packed(l2_pf.bandwidth, dram_obj)
    ):
        return layout.SCHEME_ESPP
    if (
        cls is DSPatch
        and l2_pf.config == DSPatchConfig()
        and _bandwidth_is_packed(l2_pf.bandwidth, dram_obj)
    ):
        return layout.SCHEME_DSPATCH
    from repro.prefetchers.composite import CompositePrefetcher

    if cls is CompositePrefetcher and len(l2_pf.components) == 2:
        a, b = l2_pf.components
        if (
            _scheme_kind(a, dram_obj) == layout.SCHEME_SPP
            and _scheme_kind(b, dram_obj) == layout.SCHEME_DSPATCH
        ):
            return layout.SCHEME_SPP_DSPATCH
    return layout.SCHEME_PY


def _next_pow2(n):
    p = 1
    while p < n:
        p <<= 1
    return p


def _i64(n):
    return np.zeros(n, dtype=np.int64)


def _pack_cache(cache):
    """Flatten one Cache's sets into slot arrays (slot = set*ways + way)."""
    ways = cache.ways
    arrs = {f: _i64(cache.num_sets * ways) for f in _CACHE_FIELDS}
    shift = cache._tag_shift
    for set_idx, lines in enumerate(cache._sets):
        base = set_idx * ways
        for way, (tag, cl) in enumerate(lines.items()):
            slot = base + way
            arrs["valid"][slot] = 1
            arrs["line"][slot] = (tag << shift) | set_idx
            arrs["dirty"][slot] = 1 if cl.dirty else 0
            arrs["pref"][slot] = 1 if cl.prefetched else 0
            arrs["used"][slot] = 1 if cl.used else 0
            arrs["touch"][slot] = cl.last_touch
            arrs["ready"][slot] = cl.ready
    return arrs


def _unpack_cache(cache, arrs, tick):
    """Rebuild a Cache's sets from slot arrays, in exact recency order.

    Recency order is ascending ``last_touch`` (every recency event burns a
    unique tick; low-priority fills store the negated tick), so sorting by
    the touch value reproduces the OrderedDict order the object path would
    have — pinned by the parity tests.
    """
    ways = cache.ways
    shift = cache._tag_shift
    sets = [OrderedDict() for _ in range(cache.num_sets)]
    occupied = np.flatnonzero(arrs["valid"])
    if occupied.size:
        # One vectorized (set, touch) sort over the occupied slots only —
        # sparse caches (short runs) never pay for their empty slots.
        set_idx = occupied // ways
        touch_v = arrs["touch"][occupied]
        order = np.lexsort((touch_v, set_idx))
        occ = occupied[order]
        set_l = set_idx[order].tolist()
        touch_l = touch_v[order].tolist()
        line_l = arrs["line"][occ].tolist()
        dirty_l = arrs["dirty"][occ].tolist()
        pref_l = arrs["pref"][occ].tolist()
        used_l = arrs["used"][occ].tolist()
        ready_l = arrs["ready"][occ].tolist()
        for i, si in enumerate(set_l):
            tag = line_l[i] >> shift
            cl = CacheLine(tag, touch_l[i], prefetched=bool(pref_l[i]), ready=ready_l[i])
            cl.dirty = bool(dirty_l[i])
            cl.used = bool(used_l[i])
            sets[si][tag] = cl
    cache._sets = sets
    cache._tick = tick


def _cache_stats_to(ci, prefix, cache, slots):
    for off, field in enumerate(_CACHE_STATS):
        ci[slots[prefix + field]] = getattr(cache, field)


def _cache_stats_from(ci, prefix, cache, slots):
    for off, field in enumerate(_CACHE_STATS):
        setattr(cache, field, int(ci[slots[prefix + field]]))


class SharedState:
    """Flat form of the state one LLC/DRAM domain shares across cores."""

    def __init__(self, llc, dram):
        self.llc_obj = llc
        self.dram_obj = dram
        si = _i64(len(SI64))
        sf = np.zeros(len(SF64), dtype=np.float64)
        self.si64 = si
        self.sf64 = sf
        self.llc = _pack_cache(llc)
        si[SI64["llc_tick"]] = llc._tick
        _cache_stats_to(si, "llc_", llc, SI64)
        # DRAM constants
        si[SI64["tCL"]] = dram.tCL
        si[SI64["tRCD"]] = dram.tRCD
        si[SI64["tRP"]] = dram.tRP
        si[SI64["tRC"]] = dram.tRC
        si[SI64["burst"]] = dram.burst
        si[SI64["ch_mask"]] = dram._channel_mask
        si[SI64["ch_bits"]] = dram._channel_bits
        si[SI64["bank_mask"]] = dram._bank_mask
        si[SI64["bank_bits"]] = dram._bank_bits
        si[SI64["row_shift"]] = dram._row_shift
        si[SI64["banks_per_channel"]] = dram.config.banks_per_channel
        si[SI64["pf_drop_backlog"]] = dram._prefetch_drop_backlog
        si[SI64["dem_preempt_bursts"]] = dram._demand_preempt_bursts
        si[SI64["dem_preempt_acts"]] = dram._demand_preempt_acts
        # DRAM statistics
        si[SI64["dram_reads"]] = dram.reads
        si[SI64["dram_writes"]] = dram.writes
        si[SI64["dram_row_hits"]] = dram.row_hits
        si[SI64["dram_row_misses"]] = dram.row_misses
        si[SI64["dram_busy_cycles"]] = dram.busy_cycles
        si[SI64["dram_prefetches_dropped"]] = dram.prefetches_dropped
        si[SI64["dram_last_data_done"]] = dram._last_data_done
        si[SI64["dram_stats_start"]] = dram._stats_start_cycle
        # Bank and channel queue state
        n_ch = len(dram._channels)
        n_banks = dram.config.banks_per_channel
        self.bank_open = _i64(n_ch * n_banks)
        self.bank_nextact = _i64(n_ch * n_banks)
        self.bank_rowready = _i64(n_ch * n_banks)
        self.ch_busfree = _i64(n_ch)
        self.ch_demandfree = _i64(n_ch)
        for c, channel in enumerate(dram._channels):
            self.ch_busfree[c] = channel.bus_free_cycle
            self.ch_demandfree[c] = channel.demand_bus_free_cycle
            for b, bank in enumerate(channel.banks):
                idx = c * n_banks + b
                self.bank_open[idx] = bank.open_row
                self.bank_nextact[idx] = bank.next_activate_cycle
                self.bank_rowready[idx] = bank.row_ready_cycle
        # Bandwidth monitor
        mon = dram.monitor
        si[SI64["mon_window_cycles"]] = mon.window_cycles
        si[SI64["mon_window_end"]] = mon._window_end
        si[SI64["mon_total_cas"]] = mon.total_cas
        for i in range(4):
            si[SI64[f"mon_bucket{i}"]] = mon._bucket_cycles[i]
        si[SI64["mon_last_sample"]] = mon._last_sample_cycle
        sf[SF64["mon_counter"]] = mon._counter
        lo, mid, hi = mon._thresholds
        sf[SF64["mon_thr_lo"]] = lo
        sf[SF64["mon_thr_mid"]] = mid
        sf[SF64["mon_thr_hi"]] = hi

    def write_back(self, contents=True):
        """Restore the shared LLC and DRAM objects from the flat form.

        ``contents=False`` skips rebuilding the LLC's line structures
        (counters, DRAM and monitor state are always restored) — for
        callers that assemble results from counters and then discard the
        objects, reconstructing every resident line is pure overhead.
        """
        si = self.si64
        sf = self.sf64
        llc = self.llc_obj
        dram = self.dram_obj
        if contents:
            _unpack_cache(llc, self.llc, int(si[SI64["llc_tick"]]))
        _cache_stats_from(si, "llc_", llc, SI64)
        dram.reads = int(si[SI64["dram_reads"]])
        dram.writes = int(si[SI64["dram_writes"]])
        dram.row_hits = int(si[SI64["dram_row_hits"]])
        dram.row_misses = int(si[SI64["dram_row_misses"]])
        dram.busy_cycles = int(si[SI64["dram_busy_cycles"]])
        dram.prefetches_dropped = int(si[SI64["dram_prefetches_dropped"]])
        dram._last_data_done = int(si[SI64["dram_last_data_done"]])
        dram._stats_start_cycle = int(si[SI64["dram_stats_start"]])
        n_banks = dram.config.banks_per_channel
        for c, channel in enumerate(dram._channels):
            channel.bus_free_cycle = int(self.ch_busfree[c])
            channel.demand_bus_free_cycle = int(self.ch_demandfree[c])
            for b, bank in enumerate(channel.banks):
                idx = c * n_banks + b
                bank.open_row = int(self.bank_open[idx])
                bank.next_activate_cycle = int(self.bank_nextact[idx])
                bank.row_ready_cycle = int(self.bank_rowready[idx])
        mon = dram.monitor
        mon._window_end = int(si[SI64["mon_window_end"]])
        mon.total_cas = int(si[SI64["mon_total_cas"]])
        mon._bucket_cycles = [int(si[SI64[f"mon_bucket{i}"]]) for i in range(4)]
        mon._last_sample_cycle = int(si[SI64["mon_last_sample"]])
        mon._counter = float(sf[SF64["mon_counter"]])


class KernelState:
    """Flat form of one core: execution + private L1/L2 + MSHRs + stride."""

    def __init__(self, execution, trace, shared, compile_scheme=False):
        self.execution = execution
        self.hierarchy = execution.hierarchy
        self.shared = shared
        hier = self.hierarchy
        model = execution.model

        ci = _i64(len(CI64))
        cf = np.zeros(len(CF64), dtype=np.float64)
        self.ci64 = ci
        self.cf64 = cf

        # Trace operands, one flat array per field (shared with the trace's
        # own arrays where dtypes already match — the kernel never writes
        # them).
        from repro.cpu.trace import FLAG_DEP, FLAG_WRITE

        self.op_gap = np.ascontiguousarray(trace.gaps, dtype=np.int64)
        self.op_pc = np.ascontiguousarray(trace.pcs, dtype=np.int64)
        self.op_addr = np.ascontiguousarray(trace.addrs, dtype=np.int64)
        flags = trace.flags
        self.op_write = ((flags & FLAG_WRITE) != 0).astype(np.int64)
        self.op_dep = ((flags & FLAG_DEP) != 0).astype(np.int64)

        # Core execution state
        ci[CI64["pos"]] = execution._pos
        ci[CI64["end"]] = execution._pos
        ci[CI64["n_ops"]] = execution._n
        ci[CI64["instr"]] = execution._instr
        hits = execution._hits
        ci[CI64["hit_l1"]] = hits[0]
        ci[CI64["hit_l2"]] = hits[1]
        ci[CI64["hit_llc"]] = hits[2]
        ci[CI64["hit_dram"]] = hits[3]
        ci[CI64["width"]] = model.width
        ci[CI64["rob_size"]] = model.rob_size
        cf[CF64["retire"]] = execution._retire
        cf[CF64["last_load_done"]] = execution._last_load_done
        cf[CF64["retire_step"]] = execution._retire_step
        win_cap = _next_pow2(model.rob_size + 16)
        self.win_idx = _i64(win_cap)
        self.win_ret = np.zeros(win_cap, dtype=np.float64)
        window = execution._window
        if len(window) >= win_cap:
            raise ValueError("ROB checkpoint window exceeds kernel ring capacity")
        for i, (idx, ret) in enumerate(window):
            self.win_idx[i] = idx
            self.win_ret[i] = ret
        ci[CI64["win_head"]] = 0
        ci[CI64["win_len"]] = len(window)
        ci[CI64["win_cap"]] = win_cap

        # Private caches
        for cache in (hier.l1, hier.l2, hier.llc):
            if cache._victim_mode not in (0, 1):
                raise ValueError(
                    f"kernel supports only lru/pf-dead-block replacement "
                    f"({cache.name} uses {cache.config.replacement!r})"
                )
        for name, cache in (("l1", hier.l1), ("l2", hier.l2)):
            arrs = _pack_cache(cache)
            for f in _CACHE_FIELDS:
                setattr(self, f"{name}_{f}", arrs[f])
            ci[CI64[f"{name}_ways"]] = cache.ways
            ci[CI64[f"{name}_set_mask"]] = cache._set_mask
            ci[CI64[f"{name}_hit_latency"]] = cache.hit_latency
            ci[CI64[f"{name}_victim_mode"]] = cache._victim_mode
            ci[CI64[f"{name}_tick"]] = cache._tick
            _cache_stats_to(ci, f"{name}_", cache, CI64)
        llc = hier.llc
        ci[CI64["llc_ways"]] = llc.ways
        ci[CI64["llc_set_mask"]] = llc._set_mask
        ci[CI64["llc_hit_latency"]] = llc.hit_latency
        ci[CI64["llc_victim_mode"]] = llc._victim_mode

        # MSHRs (heap arrays sized to capacity: the allocate rule never
        # lets the heap outgrow it)
        for name, mshr in (
            ("mshr_l1", hier.l1_mshr),
            ("mshr_l2", hier.l2_mshr),
            ("mshr_llc", hier.llc_mshr),
        ):
            heap = sorted(mshr._ready_heap)
            arr = _i64(mshr.capacity)
            arr[: len(heap)] = heap
            setattr(self, name, arr)
            ci[CI64[f"{name}_cap"]] = mshr.capacity
            ci[CI64[f"{name}_len"]] = len(heap)
            ci[CI64[f"{name}_allocations"]] = mshr.allocations
            ci[CI64[f"{name}_stall"]] = mshr.stall_cycles

        # Hierarchy bookkeeping
        ci[CI64["demand_accesses"]] = hier.demand_accesses
        ci[CI64["queue_size"]] = hier.prefetch_queue_size
        ci[CI64["merge_bound"]] = hier._merge_bound
        self.infl_line = _i64(hier.prefetch_queue_size)
        self.infl_ready = _i64(hier.prefetch_queue_size)
        for i, (ln, ready) in enumerate(hier._in_flight.items()):
            self.infl_line[i] = ln
            self.infl_ready[i] = ready
        ci[CI64["inflight_len"]] = len(hier._in_flight)
        pf = hier.pf_stats
        for field in _PF_STATS:
            ci[CI64["pf_" + field]] = getattr(pf, field)

        # Prefetchers
        l1_pf = hier.l1_prefetcher
        l2_pf = hier.l2_prefetcher
        if l1_pf is not None and type(l1_pf) is not PcStridePrefetcher:
            raise ValueError("kernel supports only the stock PC-stride L1 prefetcher")
        ci[CI64["has_l1pf"]] = 0 if l1_pf is None else 1
        ci[CI64["has_l2pf"]] = 0 if (l2_pf is None or type(l2_pf) is NullPrefetcher) else 1
        entries = l1_pf.table_entries if l1_pf is not None else 1
        degree = l1_pf.degree if l1_pf is not None else 1
        if degree > PF_BUF_CAP:
            raise ValueError("stride degree exceeds kernel scratch capacity")
        ci[CI64["stride_degree"]] = degree
        ci[CI64["stride_mask"]] = entries - 1
        ci[CI64["stride_conf_threshold"]] = (
            l1_pf.CONFIDENCE_THRESHOLD if l1_pf is not None else 2
        )
        ci[CI64["stride_conf_max"]] = l1_pf.CONFIDENCE_MAX if l1_pf is not None else 3
        ci[CI64["stride_trainings"]] = l1_pf.trainings if l1_pf is not None else 0
        self.stride_valid = _i64(entries)
        self.stride_tag = _i64(entries)
        self.stride_last = _i64(entries)
        self.stride_stride = _i64(entries)
        self.stride_conf = _i64(entries)
        if l1_pf is not None:
            for i, entry in enumerate(l1_pf._table):
                if entry is not None:
                    self.stride_valid[i] = 1
                    self.stride_tag[i] = entry.tag
                    self.stride_last[i] = entry.last_line
                    self.stride_stride[i] = entry.stride
                    self.stride_conf[i] = entry.confidence

        # Crossing buffers
        self.note_buf = _i64(3 * (CAND_CAP0 + 16))
        self.cand_line = _i64(CAND_CAP0)
        self.cand_lp = _i64(CAND_CAP0)
        self.pf_buf = _i64(PF_BUF_CAP)
        self.train_buf = _i64(4 * layout.TB_CAP)
        ci[CI64["note_cap"]] = CAND_CAP0 + 16
        ci[CI64["cand_cap"]] = CAND_CAP0

        # Compiled scheme-training twin: pack the scheme's tables into flat
        # arrays only for the C kernel (the py kernel trains the live
        # objects directly — packing there would clobber them at
        # write-back).
        kind = _scheme_kind(l2_pf, shared.dram_obj) if compile_scheme else 0
        self.scheme_kind = kind
        ci[CI64["scheme_kind"]] = kind
        for nm in _SP_I64_ARRAYS + _DP_I64_ARRAYS:
            setattr(self, nm, _i64(1))
        self.sp_ghr_conf = np.zeros(1, dtype=np.float64)
        self.dp_pb_pattern = np.zeros(1, dtype=np.uint64)
        if kind in (layout.SCHEME_SPP, layout.SCHEME_ESPP):
            self._pack_spp(l2_pf, ci)
        elif kind == layout.SCHEME_DSPATCH:
            self._pack_dspatch(l2_pf, ci)
        elif kind == layout.SCHEME_SPP_DSPATCH:
            self._pack_spp(l2_pf.components[0], ci)
            self._pack_dspatch(l2_pf.components[1], ci)

    # --------------------------------------------- compiled scheme training

    def _pack_spp(self, pf, ci):
        cfg = pf.config
        n_st = cfg.st_entries
        slots = cfg.delta_slots
        self.sp_st_tag = np.full(n_st, -1, dtype=np.int64)
        self.sp_st_loff = _i64(n_st)
        self.sp_st_sig = _i64(n_st)
        for i, e in enumerate(pf._st):
            if e is not None:
                self.sp_st_tag[i] = e.tag
                self.sp_st_loff[i] = e.last_offset
                self.sp_st_sig[i] = e.signature
        self.sp_pt_csig = np.asarray(pf._pt_c_sig, dtype=np.int64)
        delta = _i64(cfg.pt_entries * slots)
        cdelta = _i64(cfg.pt_entries * slots)
        for i, row in enumerate(pf._pt_slots):
            base = i * slots
            for j, (d, c) in enumerate(row):
                delta[base + j] = d
                cdelta[base + j] = c
        self.sp_pt_delta = delta
        self.sp_pt_cdelta = cdelta
        self.sp_ghr_sig = _i64(cfg.ghr_entries)
        self.sp_ghr_conf = np.zeros(cfg.ghr_entries, dtype=np.float64)
        self.sp_ghr_loff = _i64(cfg.ghr_entries)
        self.sp_ghr_delta = _i64(cfg.ghr_entries)
        for i, g in enumerate(pf._ghr):
            self.sp_ghr_sig[i] = g.signature
            self.sp_ghr_conf[i] = g.confidence
            self.sp_ghr_loff[i] = g.last_offset
            self.sp_ghr_delta[i] = g.delta
        ci[CI64["sp_ghr_len"]] = len(pf._ghr)
        self.sp_flt = np.asarray(pf._filter, dtype=np.int64)
        ci[CI64["sp_trainings"]] = pf.trainings
        ci[CI64["sp_filtered"]] = pf.filtered
        ci[CI64["sp_fb_issued"]] = pf.feedback_issued
        ci[CI64["sp_fb_useful"]] = pf.feedback_useful

    def _pack_dspatch(self, pf, ci):
        cfg = pf.config
        n_pb = cfg.pb_entries
        n_spt = cfg.spt_entries
        self.dp_pb_page = _i64(n_pb)
        # Patterns are 64-bit with bit 63 reachable (line offset 63), so
        # they live in uint64 — int64 would overflow on pack.
        self.dp_pb_pattern = np.zeros(n_pb, dtype=np.uint64)
        self.dp_pb_trig_sig = np.full(2 * n_pb, -1, dtype=np.int64)
        self.dp_pb_trig_off = _i64(2 * n_pb)
        pages = pf.page_buffer._pages
        # Dict order is LRU order (oldest first); the C side keeps the same
        # invariant over the packed arrays.
        for i, entry in enumerate(pages.values()):
            self.dp_pb_page[i] = entry.page
            self.dp_pb_pattern[i] = entry.pattern
            for seg in (0, 1):
                trig = entry.triggers[seg]
                if trig is not None:
                    self.dp_pb_trig_sig[2 * i + seg] = trig[0]
                    self.dp_pb_trig_off[2 * i + seg] = trig[1]
        ci[CI64["dp_pb_len"]] = len(pages)
        ci[CI64["dp_pb_evictions"]] = pf.page_buffer.evictions
        self.dp_spt_cov = _i64(n_spt)
        self.dp_spt_acc = _i64(n_spt)
        self.dp_spt_mcov = _i64(2 * n_spt)
        self.dp_spt_or = _i64(2 * n_spt)
        self.dp_spt_macc = _i64(2 * n_spt)
        for i, e in enumerate(pf.spt._table):
            self.dp_spt_cov[i] = e.covp
            self.dp_spt_acc[i] = e.accp
            for h in (0, 1):
                self.dp_spt_mcov[2 * i + h] = e.measure_covp[h]
                self.dp_spt_or[2 * i + h] = e.or_count[h]
                self.dp_spt_macc[2 * i + h] = e.measure_accp[h]
        ci[CI64["dp_trainings"]] = pf.trainings
        ci[CI64["dp_triggers"]] = pf.triggers
        ci[CI64["dp_pred_covp"]] = pf.predictions_covp
        ci[CI64["dp_pred_accp"]] = pf.predictions_accp
        ci[CI64["dp_pred_supp"]] = pf.predictions_suppressed

    def _write_back_spp(self, pf, ci):
        from repro.prefetchers.spp import _GhrEntry, _StEntry

        pf.trainings = int(ci[CI64["sp_trainings"]])
        pf.filtered = int(ci[CI64["sp_filtered"]])
        pf.feedback_issued = int(ci[CI64["sp_fb_issued"]])
        pf.feedback_useful = int(ci[CI64["sp_fb_useful"]])
        tags = self.sp_st_tag.tolist()
        loffs = self.sp_st_loff.tolist()
        sigs = self.sp_st_sig.tolist()
        st = [None] * len(tags)
        for i, tag in enumerate(tags):
            if tag >= 0:
                st[i] = _StEntry(tag, loffs[i], sigs[i])
        pf._st = st
        pf._pt_c_sig = self.sp_pt_csig.tolist()
        slots = pf.config.delta_slots
        deltas = self.sp_pt_delta.tolist()
        counts = self.sp_pt_cdelta.tolist()
        pf._pt_slots = [
            list(zip(deltas[i : i + slots], counts[i : i + slots]))
            for i in range(0, len(deltas), slots)
        ]
        pf._ghr = [
            _GhrEntry(
                int(self.sp_ghr_sig[i]),
                float(self.sp_ghr_conf[i]),
                int(self.sp_ghr_loff[i]),
                int(self.sp_ghr_delta[i]),
            )
            for i in range(int(ci[CI64["sp_ghr_len"]]))
        ]
        pf._filter = self.sp_flt.tolist()

    def _write_back_dspatch(self, pf, ci):
        from repro.core.page_buffer import PageBufferEntry

        pf.trainings = int(ci[CI64["dp_trainings"]])
        pf.triggers = int(ci[CI64["dp_triggers"]])
        pf.predictions_covp = int(ci[CI64["dp_pred_covp"]])
        pf.predictions_accp = int(ci[CI64["dp_pred_accp"]])
        pf.predictions_suppressed = int(ci[CI64["dp_pred_supp"]])
        pb = pf.page_buffer
        pb.evictions = int(ci[CI64["dp_pb_evictions"]])
        pages = {}
        for i in range(int(ci[CI64["dp_pb_len"]])):
            entry = PageBufferEntry(int(self.dp_pb_page[i]))
            entry.pattern = int(self.dp_pb_pattern[i])
            for seg in (0, 1):
                sig = int(self.dp_pb_trig_sig[2 * i + seg])
                if sig >= 0:
                    entry.triggers[seg] = (sig, int(self.dp_pb_trig_off[2 * i + seg]))
            pages[entry.page] = entry
        pb._pages = pages
        for i, e in enumerate(pf.spt._table):
            e.covp = int(self.dp_spt_cov[i])
            e.accp = int(self.dp_spt_acc[i])
            e.measure_covp = [
                int(self.dp_spt_mcov[2 * i]),
                int(self.dp_spt_mcov[2 * i + 1]),
            ]
            e.or_count = [int(self.dp_spt_or[2 * i]), int(self.dp_spt_or[2 * i + 1])]
            e.measure_accp = [
                int(self.dp_spt_macc[2 * i]),
                int(self.dp_spt_macc[2 * i + 1]),
            ]

    # ------------------------------------------------------------- plumbing

    def array_map(self):
        """Every kernel array by its :data:`layout.PTR` name."""
        shared = self.shared
        m = {
            "ci64": self.ci64,
            "cf64": self.cf64,
            "si64": shared.si64,
            "sf64": shared.sf64,
            "op_gap": self.op_gap,
            "op_pc": self.op_pc,
            "op_addr": self.op_addr,
            "op_write": self.op_write,
            "op_dep": self.op_dep,
            "win_idx": self.win_idx,
            "win_ret": self.win_ret,
            "mshr_l1": self.mshr_l1,
            "mshr_l2": self.mshr_l2,
            "mshr_llc": self.mshr_llc,
            "stride_valid": self.stride_valid,
            "stride_tag": self.stride_tag,
            "stride_last": self.stride_last,
            "stride_stride": self.stride_stride,
            "stride_conf": self.stride_conf,
            "bank_open": shared.bank_open,
            "bank_nextact": shared.bank_nextact,
            "bank_rowready": shared.bank_rowready,
            "ch_busfree": shared.ch_busfree,
            "ch_demandfree": shared.ch_demandfree,
            "infl_line": self.infl_line,
            "infl_ready": self.infl_ready,
            "note_buf": self.note_buf,
            "cand_line": self.cand_line,
            "cand_lp": self.cand_lp,
            "pf_buf": self.pf_buf,
            "train_buf": self.train_buf,
            "sp_ghr_conf": self.sp_ghr_conf,
            "dp_pb_pattern": self.dp_pb_pattern,
        }
        for nm in _SP_I64_ARRAYS + _DP_I64_ARRAYS:
            m[nm] = getattr(self, nm)
        for lvl in ("l1", "l2"):
            for f in _CACHE_FIELDS:
                m[f"{lvl}_{f}"] = getattr(self, f"{lvl}_{f}")
        for f in _CACHE_FIELDS:
            m[f"llc_{f}"] = shared.llc[f]
        assert set(m) == set(layout.PTR_NAMES)
        return m

    # ------------------------------------------------------------ write-back

    def write_back(self, contents=True):
        """Restore the core's objects (execution, hierarchy) from flat form.

        Shared state (LLC/DRAM) is restored separately via
        :meth:`SharedState.write_back` — once per domain, not per core.
        ``contents=False`` skips rebuilding L1/L2 line structures (all
        counters and execution state are always restored).
        """
        ci = self.ci64
        cf = self.cf64
        ex = self.execution
        hier = self.hierarchy

        ex._pos = int(ci[CI64["pos"]])
        ex._instr = int(ci[CI64["instr"]])
        ex._retire = float(cf[CF64["retire"]])
        ex._last_load_done = float(cf[CF64["last_load_done"]])
        ex._hits = [
            int(ci[CI64["hit_l1"]]),
            int(ci[CI64["hit_l2"]]),
            int(ci[CI64["hit_llc"]]),
            int(ci[CI64["hit_dram"]]),
        ]
        head = int(ci[CI64["win_head"]])
        length = int(ci[CI64["win_len"]])
        cap = int(ci[CI64["win_cap"]])
        win_idx = self.win_idx
        win_ret = self.win_ret
        window = deque()
        for i in range(length):
            j = (head + i) & (cap - 1)
            window.append((int(win_idx[j]), float(win_ret[j])))
        ex._window = window

        for name, cache in (("l1", hier.l1), ("l2", hier.l2)):
            if contents:
                arrs = {f: getattr(self, f"{name}_{f}") for f in _CACHE_FIELDS}
                _unpack_cache(cache, arrs, int(ci[CI64[f"{name}_tick"]]))
            _cache_stats_from(ci, f"{name}_", cache, CI64)

        for name, mshr in (
            ("mshr_l1", hier.l1_mshr),
            ("mshr_l2", hier.l2_mshr),
            ("mshr_llc", hier.llc_mshr),
        ):
            length = int(ci[CI64[f"{name}_len"]])
            mshr._ready_heap = sorted(getattr(self, name)[:length].tolist())
            mshr.allocations = int(ci[CI64[f"{name}_allocations"]])
            mshr.stall_cycles = int(ci[CI64[f"{name}_stall"]])

        hier.demand_accesses = int(ci[CI64["demand_accesses"]])
        n_in = int(ci[CI64["inflight_len"]])
        hier._in_flight = dict(
            zip(self.infl_line[:n_in].tolist(), self.infl_ready[:n_in].tolist())
        )
        pf = hier.pf_stats
        for field in _PF_STATS:
            setattr(pf, field, int(ci[CI64["pf_" + field]]))

        l1_pf = hier.l1_prefetcher
        if l1_pf is not None:
            l1_pf.trainings = int(ci[CI64["stride_trainings"]])
            valid = self.stride_valid.tolist()
            tags = self.stride_tag.tolist()
            lasts = self.stride_last.tolist()
            strides = self.stride_stride.tolist()
            confs = self.stride_conf.tolist()
            table = [None] * len(valid)
            for i in range(len(valid)):
                if valid[i]:
                    entry = _StrideEntry(tags[i], lasts[i])
                    entry.stride = strides[i]
                    entry.confidence = confs[i]
                    table[i] = entry
            l1_pf._table = table

        # Compiled scheme training: restore the scheme objects
        # unconditionally (even with contents=False) — flush_training and
        # post-run inspection read them right after write-back.
        if self.scheme_kind:
            l2_pf = hier.l2_prefetcher
            if self.scheme_kind == layout.SCHEME_DSPATCH:
                self._write_back_dspatch(l2_pf, ci)
            elif self.scheme_kind == layout.SCHEME_SPP_DSPATCH:
                self._write_back_spp(l2_pf.components[0], ci)
                self._write_back_dspatch(l2_pf.components[1], ci)
            else:
                self._write_back_spp(l2_pf, ci)
