"""Build and drive the compiled kernel twin.

The C source from :mod:`repro.kernel.cgen` is compiled once per source
digest into a shared library under ``<cache_dir>/ckernel/`` (atomic
rename, so concurrent workers race benignly) and loaded with ctypes.
``CShared``/``CRuntime`` present the exact driver surface of
``PyShared``/``PyRuntime`` — :class:`repro.kernel.execution.KernelExecution`
does not know which twin it is holding.

The crossing protocol: ``krun`` returns ``RC_TRAIN`` with one or more
training records (cycle, pc, addr, hit) appended to ``train_buf``; the
driver first drains the queued usefulness notes (keeping every
scheme-visible event in object-path order), then feeds the records to
``scheme.train`` in arrival order, writes the *last* record's candidates
into the ``cand_line``/``cand_lp`` arrays (grown on demand), and
re-enters ``krun``, which resumes mid-op from the saved context.  The
kernel may batch a record only when its candidates are not consumed by
its own access — every current scheme's candidates are, so the kernel
flushes at depth 1; the record-buffer ABI is what lets a future
fire-and-forget scheme amortize the boundary.  Schemes with a compiled
twin (``scheme_kind`` > 0) never cross at all.

The build cache under ``<cache_dir>/ckernel/`` is keyed by a digest of
the emitted C *and* the generator source, the compile flags and the
compiler — editing :mod:`repro.kernel.cgen` can never load a stale
``.so``.  Failures past the toolchain probe raise
:class:`KernelBuildError` so callers can tell "no compiler" from "the
kernel is broken".
"""

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

import numpy as np

from repro.kernel import layout
from repro.kernel.layout import CF64, CI64, PTR, SF64, SI64

_CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math")

_lib = None


class KernelBuildError(RuntimeError):
    """A toolchain exists but generating/compiling/loading the kernel failed.

    Distinct from the plain ``RuntimeError`` raised when no compiler is on
    PATH: a build error means the kernel itself is broken and must never be
    silently degraded to the object path.
    """


def _reset_for_tests():
    """Drop the in-process library memo so the next load re-resolves."""
    global _lib
    _lib = None


def _compiler():
    for cc in ("cc", "gcc", "clang"):
        path = shutil.which(cc)
        if path:
            return path
    return None


def toolchain_available():
    """True when a C compiler is on PATH (the ``auto`` gate)."""
    return _compiler() is not None


def _build_dir():
    from repro.engine.config import current_config

    # The kernel binary is a build artifact keyed by source digest, not a
    # simulation result, so it lives under the cache root even when the
    # result cache itself is disabled.
    return current_config().cache_dir / "ckernel"


def _build_digest(source, cc):
    """Cache key for the built artifact.

    Covers the emitted C, the generator module's own source, the compile
    flags and the compiler path — any edit to :mod:`repro.kernel.cgen`
    (including ones that only change how constants are derived), a flag
    change or a compiler switch forces a rebuild instead of loading a
    stale ``.so`` whose bytes happen to sit at the old path.
    """
    from repro.kernel import cgen

    h = hashlib.sha256()
    h.update(source.encode())
    try:
        with open(cgen.__file__, "rb") as fh:
            h.update(fh.read())
    except OSError:
        pass
    h.update(repr(_CFLAGS).encode())
    h.update((cc or "").encode())
    return h.hexdigest()[:16]


def artifact_path():
    """Path the current generator output resolves to (test hook)."""
    from repro.kernel import cgen

    source = cgen.generate_source()
    return _build_dir() / f"kernel-{_build_digest(source, _compiler())}.so"


def load_kernel():
    """Compile (if needed) and load the kernel library (memoized)."""
    global _lib
    if _lib is not None:
        return _lib
    from repro.kernel import cgen

    cc = _compiler()
    try:
        source = cgen.generate_source()
    except Exception as exc:
        raise KernelBuildError(f"kernel codegen failed: {exc}") from exc
    digest = _build_digest(source, cc)
    build_dir = _build_dir()
    so_path = build_dir / f"kernel-{digest}.so"
    if not so_path.exists():
        if cc is None:
            raise RuntimeError("no C compiler available to build the kernel")
        build_dir.mkdir(parents=True, exist_ok=True)
        fd, c_path = tempfile.mkstemp(suffix=".c", dir=str(build_dir))
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(source)
            fd2, tmp_so = tempfile.mkstemp(suffix=".so", dir=str(build_dir))
            os.close(fd2)
            try:
                proc = subprocess.run(
                    [cc, *_CFLAGS, "-o", tmp_so, c_path],
                    capture_output=True,
                    text=True,
                )
                if proc.returncode != 0:
                    raise KernelBuildError(
                        f"kernel compilation failed:\n{proc.stderr}"
                    )
                os.replace(tmp_so, so_path)
            except BaseException:
                if os.path.exists(tmp_so):
                    os.unlink(tmp_so)
                raise
        finally:
            if os.path.exists(c_path):
                os.unlink(c_path)
    try:
        lib = ctypes.CDLL(str(so_path))
        lib.krun.argtypes = [ctypes.POINTER(ctypes.c_void_p)]
        lib.krun.restype = ctypes.c_long
        lib.kbucket.argtypes = [ctypes.c_void_p, ctypes.c_void_p, ctypes.c_longlong]
        lib.kbucket.restype = ctypes.c_long
    except (OSError, AttributeError) as exc:
        raise KernelBuildError(f"kernel library failed to load: {exc}") from exc
    _lib = lib
    return _lib


class CShared:
    """Shared LLC/DRAM domain, compiled form.

    The compiled kernel mutates the shared flat arrays in place, so there
    is no unpacked working copy: ``sync_to_state`` is a no-op and
    ``bucket`` queries route to the C monitor (which advances/halves the
    same state ``krun`` updates).
    """

    def __init__(self, shared_state):
        self.state = shared_state
        self._lib = load_kernel()
        self._si = shared_state.si64.ctypes.data_as(ctypes.c_void_p)
        self._sf = shared_state.sf64.ctypes.data_as(ctypes.c_void_p)

    def bucket(self, cycle):
        return int(self._lib.kbucket(self._si, self._sf, int(cycle)))

    def reset_dram_stats(self, cycle):
        si = self.state.si64
        for name in (
            "dram_reads",
            "dram_writes",
            "dram_row_hits",
            "dram_row_misses",
            "dram_busy_cycles",
            "dram_prefetches_dropped",
            "mon_total_cas",
            "mon_bucket0",
            "mon_bucket1",
            "mon_bucket2",
            "mon_bucket3",
        ):
            si[SI64[name]] = 0
        si[SI64["dram_stats_start"]] = int(cycle)

    def sync_to_state(self, contents=True):
        pass


#: Per-core stat slots zeroed at the warmup boundary (mirrors
#: ``PyRuntime.reset_hierarchy_stats``).
_CORE_RESET_SLOTS = tuple(
    name
    for name in CI64
    if name.startswith(("l1_demand", "l1_prefetch_probe", "l1_useful", "l1_late",
                        "l1_useless", "l1_writebacks",
                        "l2_demand", "l2_prefetch_probe", "l2_useful", "l2_late",
                        "l2_useless", "l2_writebacks", "pf_"))
    or name.endswith(("_allocations", "_stall"))
)
_LLC_RESET_SLOTS = tuple(
    name
    for name in SI64
    if name.startswith("llc_") and name != "llc_tick"
)


class CRuntime:
    """One core's compiled kernel: drives ``krun`` and the crossings."""

    def __init__(self, state, shared, train=None, note_useful=None, note_useless=None):
        self.state = state
        self.shared = shared
        self._lib = load_kernel()
        self._ci = state.ci64
        self._cf = state.cf64
        has_l2pf = bool(self._ci[CI64["has_l2pf"]])
        self._train = train if has_l2pf else None
        self._note_useful = note_useful if has_l2pf else None
        self._note_useless = note_useless if has_l2pf else None
        self._rebuild_table()

    def _rebuild_table(self):
        amap = self.state.array_map()
        self._arrays = amap  # hold references; the C side keeps raw pointers
        tbl = (ctypes.c_void_p * len(layout.PTR_NAMES))()
        for name, i in PTR.items():
            tbl[i] = amap[name].ctypes.data
        self._tbl = tbl
        # memoryviews return plain Python ints, bypassing numpy's boxed
        # scalars in the per-crossing hot loop; rebuilt here because the
        # candidate/note buffers can be reallocated on growth.
        self._mci = memoryview(self._ci)
        self._mcand_line = memoryview(self.state.cand_line)
        self._mcand_lp = memoryview(self.state.cand_lp)
        self._mtb = memoryview(self.state.train_buf)

    # ------------------------------------------------------------ properties

    @property
    def pos(self):
        return int(self._ci[CI64["pos"]])

    @property
    def n_ops(self):
        return int(self._ci[CI64["n_ops"]])

    @property
    def time(self):
        return float(self._cf[CF64["retire"]])

    def snapshot(self):
        ci = self._ci
        return (
            int(ci[CI64["instr"]]),
            float(self._cf[CF64["retire"]]),
            (
                int(ci[CI64["hit_l1"]]),
                int(ci[CI64["hit_l2"]]),
                int(ci[CI64["hit_llc"]]),
                int(ci[CI64["hit_dram"]]),
            ),
        )

    # ---------------------------------------------------------------- driving

    def run(self, end, horizon, strict):
        ci = self._ci
        mci = self._mci
        start = mci[CI64["pos"]]
        ci[CI64["end"]] = int(end)
        ci[CI64["strict"]] = 1 if strict else 0
        self._cf[CF64["horizon"]] = horizon
        krun = self._lib.krun
        train = self._train
        put = self._put_candidates
        tbl = self._tbl
        rc_train = layout.RC_TRAIN
        i_note_len = CI64["note_len"]
        i_tb_len = CI64["tb_len"]
        tb = self._mtb
        while True:
            rc = krun(tbl)
            if mci[i_note_len]:
                self._drain_notes()
            if rc != rc_train:
                break
            # Drain the batched training records in arrival order.  Only
            # the final record's candidates are installed: the kernel is
            # suspended inside that record's access, and it only defers a
            # record past its own access when the scheme's candidates are
            # not consumed by it.
            n = mci[i_tb_len]
            cands = None
            for i in range(0, 4 * n, 4):
                cands = train(tb[i], tb[i + 1], tb[i + 2], bool(tb[i + 3]))
            mci[i_tb_len] = 0
            put(cands)
        return mci[CI64["pos"]] - start

    def _drain_notes(self):
        mci = self._mci
        n = mci[CI64["note_len"]]
        if n > mci[CI64["note_cap"]]:
            raise RuntimeError("kernel note queue overflow")
        vals = self.state.note_buf[: 3 * n].tolist()
        useful = self._note_useful
        useless = self._note_useless
        kind_useful = layout.NOTE_USEFUL
        for i in range(0, 3 * n, 3):
            if vals[i] == kind_useful:
                useful(vals[i + 1], vals[i + 2])
            else:
                useless(vals[i + 1], vals[i + 2])
        mci[CI64["note_len"]] = 0

    def _put_candidates(self, cands):
        mci = self._mci
        if not cands:
            mci[CI64["cand_len"]] = 0
            return
        cl = cands if isinstance(cands, (list, tuple)) else list(cands)
        n = len(cl)
        if n > mci[CI64["cand_cap"]]:
            state = self.state
            new_cap = mci[CI64["cand_cap"]]
            while new_cap < n:
                new_cap *= 2
            state.cand_line = np.zeros(new_cap, dtype=np.int64)
            state.cand_lp = np.zeros(new_cap, dtype=np.int64)
            state.note_buf = np.zeros(3 * (new_cap + 16), dtype=np.int64)
            self._ci[CI64["cand_cap"]] = new_cap
            self._ci[CI64["note_cap"]] = new_cap + 16
            self._rebuild_table()
        cand_line = self._mcand_line
        cand_lp = self._mcand_lp
        for i, cand in enumerate(cl):
            cand_line[i] = cand.line_addr
            cand_lp[i] = 1 if cand.low_priority else 0
        mci[CI64["cand_len"]] = n
    # ----------------------------------------------------- boundary operations

    def reset_hierarchy_stats(self):
        ci = self._ci
        for name in _CORE_RESET_SLOTS:
            ci[CI64[name]] = 0
        si = self.shared.state.si64
        for name in _LLC_RESET_SLOTS:
            si[SI64[name]] = 0

    def reset_dram_stats(self, cycle):
        self.shared.reset_dram_stats(cycle)

    def sync_to_state(self, contents=True):
        """No-op: the compiled kernel works in the state arrays directly."""
