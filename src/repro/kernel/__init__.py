"""Flat-state kernel core: packed hierarchy state + per-access kernels.

``repro.kernel`` factors the per-op simulate loop out of the object model
into a packed :class:`~repro.kernel.state.KernelState` of flat int arrays
plus two interchangeable kernels that drive it:

- :mod:`repro.kernel.pykernel` — the pure-Python executable spec;
- :mod:`repro.kernel.cgen`/:mod:`repro.kernel.cbuild` — a generated-C
  twin compiled at runtime when a toolchain is available.

Both produce bit-identical results to the object path (pinned by
``tests/test_kernel_parity.py``); the object model remains reconstructable
from the packed state via ``KernelState.write_back``.
"""

from repro.kernel.execution import (  # noqa: F401
    KernelExecution,
    kernel_available,
    kernel_unavailable_reason,
)
