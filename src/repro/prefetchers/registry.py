"""Named prefetcher configurations used throughout the evaluation.

``build_prefetcher(name, bandwidth)`` constructs any scheme the paper
evaluates; composite names use ``+`` (e.g. ``"dspatch+spp"``).  The
bandwidth argument is the Section 3.2 utilization signal — required by the
bandwidth-aware schemes (DSPatch and its variants, eSPP, eBOP) and ignored
by the rest.
"""

from repro.prefetchers.ampm import AMPM
from repro.prefetchers.base import NullPrefetcher
from repro.prefetchers.bingo import Bingo
from repro.prefetchers.bop import BOP, EBOP, BopConfig
from repro.prefetchers.composite import CompositePrefetcher
from repro.prefetchers.markov import MarkovPrefetcher
from repro.prefetchers.nextline import NextLinePrefetcher
from repro.prefetchers.sms import SMS, sms_with_pht_entries
from repro.prefetchers.spp import ESPP, SPP
from repro.prefetchers.streamer import StreamPrefetcher
from repro.prefetchers.vldp import VLDP


def _dspatch_builders():
    # Imported lazily: repro.core depends on repro.prefetchers.base, so a
    # top-level import here would be circular.
    from repro.core.dspatch import DSPatch, DSPatchConfig
    from repro.core.variants import (
        AlwaysCovP,
        ModCovP,
        NoAnchorDSPatch,
        SingleTriggerDSPatch,
        no_reset_dspatch,
        uncompressed_dspatch,
    )

    return {
        "dspatch": lambda bw: DSPatch(bw),
        "alwayscovp": lambda bw: AlwaysCovP(bw),
        "modcovp": lambda bw: ModCovP(bw),
        "dspatch-noanchor": lambda bw: NoAnchorDSPatch(bw),
        "dspatch-1trigger": lambda bw: SingleTriggerDSPatch(bw),
        "dspatch-64b": uncompressed_dspatch,
        "dspatch-noreset": no_reset_dspatch,
        "dspatch-spt512": lambda bw: DSPatch(bw, DSPatchConfig(spt_entries=512)),
        "dspatch-spt128": lambda bw: DSPatch(bw, DSPatchConfig(spt_entries=128)),
        "dspatch-spt64": lambda bw: DSPatch(bw, DSPatchConfig(spt_entries=64)),
        "dspatch-pb128": lambda bw: DSPatch(bw, DSPatchConfig(pb_entries=128)),
        "dspatch-pb32": lambda bw: DSPatch(bw, DSPatchConfig(pb_entries=32)),
    }


_SIMPLE_BUILDERS = {
    "none": lambda bw: NullPrefetcher(),
    "spp": lambda bw: SPP(),
    "espp": lambda bw: ESPP(bw),
    "bop": lambda bw: BOP(),
    "bop1": lambda bw: BOP(BopConfig(degree=1)),
    "ebop": lambda bw: EBOP(bw),
    "sms": lambda bw: SMS(),
    "sms-4k": lambda bw: sms_with_pht_entries(4096),
    "sms-1k": lambda bw: sms_with_pht_entries(1024),
    "sms-256": lambda bw: sms_with_pht_entries(256),
    "ampm": lambda bw: AMPM(),
    "streamer": lambda bw: StreamPrefetcher(),
    # Related-work extensions (Section 6 families).
    "vldp": lambda bw: VLDP(),
    "bingo": lambda bw: Bingo(),
    "markov": lambda bw: MarkovPrefetcher(),
    "nextline": lambda bw: NextLinePrefetcher(),
    "nextline-4": lambda bw: NextLinePrefetcher(degree=4),
}
_DSPATCH_NAMES = (
    "dspatch",
    "alwayscovp",
    "modcovp",
    "dspatch-noanchor",
    "dspatch-1trigger",
    "dspatch-64b",
    "dspatch-noreset",
    "dspatch-spt512",
    "dspatch-spt128",
    "dspatch-spt64",
    "dspatch-pb128",
    "dspatch-pb32",
)


def available_prefetchers():
    """Names accepted by :func:`build_prefetcher` (composites excluded)."""
    return sorted(list(_SIMPLE_BUILDERS) + list(_DSPATCH_NAMES))


def build_prefetcher(name, bandwidth):
    """Construct the prefetcher configuration called ``name``.

    ``name`` may be a single scheme (``"spp"``), a ``+``-joined adjunct
    composition (``"dspatch+spp"``; components are listed in arbitration
    priority order), or an ``fdp:``-prefixed scheme that wraps the rest
    in the feedback-directed throttle (``"fdp:streamer"``).
    """
    name = name.strip().lower()
    if "+" in name:
        components = [build_prefetcher(part, bandwidth) for part in name.split("+")]
        return CompositePrefetcher(components, name=name)
    if name.startswith("fdp:"):
        from repro.prefetchers.throttle import FeedbackThrottle

        return FeedbackThrottle(build_prefetcher(name[len("fdp:"):], bandwidth))
    builder = _SIMPLE_BUILDERS.get(name)
    if builder is None and name in _DSPATCH_NAMES:
        builder = _dspatch_builders()[name]
    if builder is None:
        known = ", ".join(available_prefetchers())
        raise ValueError(f"unknown prefetcher {name!r} (known: {known})") from None
    return builder(bandwidth)
