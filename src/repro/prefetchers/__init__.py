"""Prefetcher implementations: DSPatch's baselines and adjunct compositions.

Every prefetcher in the paper's evaluation is implemented here from its
original description:

- :class:`repro.prefetchers.stride.PcStridePrefetcher` — the baseline L1
  PC-stride prefetcher [38] (Table 2).
- :class:`repro.prefetchers.spp.SPP` — Signature Pattern Prefetcher [54]
  with lookahead and cascaded confidence (Section 2.1); ``eSPP`` adds the
  bandwidth-aware confidence threshold.
- :class:`repro.prefetchers.bop.BOP` — Best Offset Prefetcher [62]
  (Section 2.2); ``eBOP`` adds the bandwidth-aware dynamic degree.
- :class:`repro.prefetchers.sms.SMS` — Spatial Memory Streaming [73]
  (Section 2.3) with a configurable pattern-history table for the Figure 5
  storage sweep and the iso-storage 256-entry variant of Figure 14.
- :class:`repro.prefetchers.ampm.AMPM` — access-map pattern matching [43]
  (Section 4.1 mentions it under-performs; we include it for completeness).
- :class:`repro.prefetchers.streamer.StreamPrefetcher` — the aggressive,
  fairly inaccurate streaming prefetcher [29] used in the appendix pollution
  study.
- :class:`repro.prefetchers.composite.CompositePrefetcher` — adjunct
  composition (DSPatch+SPP, BOP+SPP, ...) with duplicate suppression.
"""

from repro.prefetchers.ampm import AMPM
from repro.prefetchers.base import (
    BandwidthSource,
    NullPrefetcher,
    PrefetchCandidate,
    Prefetcher,
)
from repro.prefetchers.bop import BOP, EBOP, BopConfig
from repro.prefetchers.composite import CompositePrefetcher
from repro.prefetchers.registry import available_prefetchers, build_prefetcher
from repro.prefetchers.sms import SMS, SmsConfig, sms_with_pht_entries
from repro.prefetchers.spp import ESPP, SPP, SppConfig
from repro.prefetchers.streamer import StreamPrefetcher
from repro.prefetchers.stride import PcStridePrefetcher

__all__ = [
    "AMPM",
    "BOP",
    "BandwidthSource",
    "BopConfig",
    "CompositePrefetcher",
    "EBOP",
    "ESPP",
    "NullPrefetcher",
    "PcStridePrefetcher",
    "PrefetchCandidate",
    "Prefetcher",
    "SMS",
    "SPP",
    "SmsConfig",
    "SppConfig",
    "StreamPrefetcher",
    "available_prefetchers",
    "build_prefetcher",
    "sms_with_pht_entries",
]
