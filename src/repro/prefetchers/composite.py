"""Adjunct prefetcher composition.

Section 5.1 evaluates DSPatch "as a lightweight adjunct spatial prefetcher"
to SPP: both prefetchers train on the same L1-miss stream and both emit
candidates.  :class:`CompositePrefetcher` implements that composition for
any set of components (DSPatch+SPP, BOP+SPP, SMS+SPP, and the
SPP+BOP+DSPatch triple of Section 5.1's last paragraph), suppressing
duplicate candidates so a line requested by several components is issued
once — earlier components take precedence, matching a fixed arbitration
priority in hardware.
"""

from repro.prefetchers.base import Prefetcher, flush_training_with_cycle


class CompositePrefetcher(Prefetcher):
    """Run several prefetchers on the same training stream."""

    def __init__(self, components, name=None):
        components = list(components)
        if not components:
            raise ValueError("composite needs at least one component")
        self.components = components
        self.name = name or "+".join(c.name for c in components)
        # Pooled merge scratch: ``train`` runs once per training access
        # and its output is consumed (issued) before the next call, so
        # the merged list and seen-set are reused instead of allocated
        # fresh per access.
        self._merged = []
        self._seen = set()

    def train(self, cycle, pc, addr, hit):
        # Fast path: most training calls yield candidates from at most one
        # component, and components rarely emit internal duplicates — the
        # full merge (pooled set + list rebuild) is deferred until a second
        # component contributes or a duplicate is detected.  Earlier
        # components take precedence on duplicates, and the no-duplicates
        # output invariant holds even within one component's list.
        # The returned list may be the pooled scratch: per the base-class
        # contract it is invalidated by the next train call.
        first = None
        merged = None
        seen = None
        for component in self.components:
            cands = component.train(cycle, pc, addr, hit)
            if not cands:
                continue
            if first is None:
                first = cands
                continue
            if merged is None:
                merged, seen = self._dedup_pooled(first)
            for cand in cands:
                line = cand.line_addr
                if line not in seen:
                    seen.add(line)
                    merged.append(cand)
        if merged is not None:
            return merged
        if first is None:
            return ()
        seen = self._seen
        seen.clear()
        for cand in first:
            seen.add(cand.line_addr)
        if len(seen) == len(first):
            return first
        return self._dedup_pooled(first)[0]

    def _dedup_pooled(self, candidates):
        """Order-preserving dedup into the pooled (list, seen-line set)."""
        merged = self._merged
        merged.clear()
        seen = self._seen
        seen.clear()
        for cand in candidates:
            line = cand.line_addr
            if line not in seen:
                seen.add(line)
                merged.append(cand)
        return merged, seen

    def flush_training(self, cycle=0):
        """Forward end-of-run learning to components that support it.

        ``cycle`` (the run's final cycle) is forwarded so bandwidth-aware
        components (DSPatch) learn under the correct bucket; components
        written against the pre-cycle zero-argument interface still work.
        """
        for component in self.components:
            flush_training_with_cycle(component, cycle)

    def note_useful_prefetch(self, cycle, line_addr):
        for component in self.components:
            component.note_useful_prefetch(cycle, line_addr)

    def note_useless_prefetch(self, cycle, line_addr):
        for component in self.components:
            component.note_useless_prefetch(cycle, line_addr)

    def attach_trace(self, emit):
        """Propagate the scheme-event hook to every component."""
        self.trace_emit = emit
        for component in self.components:
            component.attach_trace(emit)

    def storage_breakdown(self):
        merged = {}
        for component in self.components:
            for key, bits in component.storage_breakdown().items():
                merged[f"{component.name}/{key}"] = bits
        return merged

    def reset(self):
        for component in self.components:
            component.reset()
