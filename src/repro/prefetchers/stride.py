"""PC-based stride prefetcher — the baseline L1 prefetcher.

Table 2: "L1D prefetch: PC-based stride prefetcher [38], tracks 64 PCs".
Classic Fu/Patel/Janssens design: a per-PC table records the last address
and last stride; two consecutive identical strides earn enough confidence
to prefetch ``degree`` lines ahead along the stride.
"""

from repro.constants import LINE_SHIFT, PAGE_SHIFT
from repro.prefetchers.base import PrefetchCandidate, Prefetcher


class _StrideEntry:
    __slots__ = ("tag", "last_line", "stride", "confidence")

    def __init__(self, tag, last_line):
        self.tag = tag
        self.last_line = last_line
        self.stride = 0
        self.confidence = 0


class PcStridePrefetcher(Prefetcher):
    """Per-PC constant-stride detector with a small direct-mapped table."""

    name = "pc-stride"

    #: Confidence needed before prefetching (two matching strides).
    CONFIDENCE_THRESHOLD = 2
    #: Saturating confidence ceiling (2-bit counter).
    CONFIDENCE_MAX = 3

    def __init__(self, table_entries=64, degree=1):
        if table_entries <= 0 or table_entries & (table_entries - 1):
            raise ValueError("table size must be a power of two")
        self.table_entries = table_entries
        self.degree = degree
        self._table = [None] * table_entries
        self.trainings = 0

    def _index(self, pc):
        return (pc ^ (pc >> 12)) & (self.table_entries - 1)

    def train(self, cycle, pc, addr, hit):
        self.trainings += 1
        line = addr >> LINE_SHIFT
        idx = (pc ^ (pc >> 12)) & (self.table_entries - 1)
        entry = self._table[idx]
        tag = pc
        if entry is None or entry.tag != tag:
            self._table[idx] = _StrideEntry(tag, line)
            return ()
        stride = line - entry.last_line
        candidates = ()
        if stride != 0:
            if stride == entry.stride:
                entry.confidence = min(self.CONFIDENCE_MAX, entry.confidence + 1)
            else:
                entry.stride = stride
                entry.confidence = 1
            if entry.confidence >= self.CONFIDENCE_THRESHOLD:
                candidates = self._generate(line, stride)
        entry.last_line = line
        return candidates

    def _generate(self, line, stride):
        page_shift = PAGE_SHIFT - LINE_SHIFT
        page = line >> page_shift
        if self.degree == 1:
            # Fast path for the default degree-1 configuration.
            target = line + stride
            if target >> page_shift != page:
                return ()  # stay within the physical page
            return (PrefetchCandidate(target),)
        out = []
        for dist in range(1, self.degree + 1):
            target = line + stride * dist
            if target >> page_shift != page:
                break  # stay within the physical page
            out.append(PrefetchCandidate(target))
        return out

    def storage_breakdown(self):
        # tag (16b folded PC) + last line offset-in-page context (48b line
        # address in the model; a real design stores fewer bits) + stride
        # (7b signed) + confidence (2b).
        bits_per_entry = 16 + 48 + 7 + 2
        return {"stride-table": self.table_entries * bits_per_entry}

    def reset(self):
        self._table = [None] * self.table_entries
