"""Common prefetcher interface.

L2 prefetchers are trained on L1 misses — both demand misses and misses of
L1 prefetches — and their candidates fill the L2 and the LLC (Section 4.1).
The hierarchy calls :meth:`Prefetcher.train` once per training access and
issues whatever candidates come back, after presence/in-flight filtering.

Bandwidth-aware prefetchers (DSPatch, eSPP, eBOP) receive a
``BandwidthSource`` — any object with a ``bucket(cycle) -> int`` method
returning the 2-bit utilization value of Section 3.2.  The DRAM model
provides the real signal; :class:`repro.memory.dram.FixedBandwidth` provides
a constant one for tests and ablations.
"""

import inspect
from typing import Protocol


def flush_training_with_cycle(prefetcher, cycle):
    """Call ``prefetcher.flush_training(cycle)`` if the hook exists.

    Tolerates the legacy zero-argument signature, decided by
    introspection rather than by catching ``TypeError`` — a ``TypeError``
    raised *inside* a flush must propagate, not silently trigger a second
    (partially re-executed) zero-argument call.
    """
    flush = getattr(prefetcher, "flush_training", None)
    if flush is None:
        return
    try:
        params = inspect.signature(flush).parameters
    except (TypeError, ValueError):
        params = None  # C-implemented or otherwise unsignaturable
    if params is not None and not params:
        flush()
    else:
        flush(cycle)


class BandwidthSource(Protocol):
    """Anything that can report the 2-bit DRAM bandwidth-utilization value."""

    def bucket(self, cycle) -> int:
        """Return the quantized utilization quartile (0..3) at ``cycle``."""
        ...


class PrefetchCandidate:
    """One line-granular prefetch request emitted by a prefetcher."""

    __slots__ = ("line_addr", "low_priority")

    def __init__(self, line_addr, low_priority=False):
        self.line_addr = line_addr
        self.low_priority = low_priority

    def __repr__(self):
        tag = " low" if self.low_priority else ""
        return f"PrefetchCandidate(0x{self.line_addr:x}{tag})"

    def __eq__(self, other):
        return (
            isinstance(other, PrefetchCandidate)
            and other.line_addr == self.line_addr
            and other.low_priority == self.low_priority
        )

    def __hash__(self):
        return hash((self.line_addr, self.low_priority))


class Prefetcher:
    """Base class for all prefetchers."""

    name = "base"

    #: Scheme-event emission hook, installed by an observed hierarchy when
    #: prefetch tracing is on (``None`` otherwise) — every registry scheme
    #: inherits it through this base class.
    trace_emit = None

    def train(self, cycle, pc, addr, hit):
        """Observe one training access; return prefetch candidates.

        ``addr`` is a byte address; ``hit`` says whether the access hit in
        the cache level the prefetcher sits at (some baselines ignore it).

        The returned sequence is only valid until the next ``train`` call
        on the same prefetcher: implementations may reuse a pooled list
        (``CompositePrefetcher`` does).  The hierarchy issues candidates
        immediately; any caller that wants to keep them must copy.
        """
        raise NotImplementedError

    def storage_bits(self):
        """Total hardware budget in bits (Tables 1 and 3)."""
        return sum(self.storage_breakdown().values())

    def storage_breakdown(self):
        """Per-structure bit counts; keys name the hardware structures."""
        return {}

    def storage_kb(self):
        """Storage in kilobytes, as the paper quotes it."""
        return self.storage_bits() / 8 / 1024

    # Optional tracing hooks (docs/observability.md).  The observed
    # hierarchy attaches an emitter when ``--trace-prefetch`` is on;
    # schemes call ``trace_event`` at interesting internal decisions
    # (pattern selection, throttle transitions).  Unattached, the call is
    # one attribute load — cheap enough to leave in scheme code.

    def attach_trace(self, emit):
        """Install the ``emit(cycle, name, info)`` scheme-event hook."""
        self.trace_emit = emit

    def trace_event(self, cycle, info=""):
        """Emit a ``scheme`` trace event if a hook is attached."""
        emit = self.trace_emit
        if emit is not None:
            emit(cycle, self.name, info)

    # Optional feedback hooks; the hierarchy calls these so prefetchers that
    # track their own usefulness (SPP's feedback counters) can do so.

    def note_useful_prefetch(self, cycle, line_addr):
        """A previously issued prefetch was demanded before eviction."""

    def note_useless_prefetch(self, cycle, line_addr):
        """A previously issued prefetch left the cache untouched."""

    def reset(self):
        """Drop all learned state (not statistics structures' contents)."""


class NullPrefetcher(Prefetcher):
    """The no-op prefetcher: the paper's no-L2-prefetch baseline."""

    name = "none"

    def train(self, cycle, pc, addr, hit):
        return ()

    def storage_breakdown(self):
        return {}
