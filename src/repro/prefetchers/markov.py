"""Markov (temporal correlation) prefetcher.

Markov prefetching [49] (Joseph & Grunwald, ISCA'97) is the root of the
temporal-prefetcher family the paper surveys in Section 6 (STeMS, ISB,
Domino): a correlation table maps each miss address to the addresses that
historically followed it, and a hit prefetches the top successors.

The paper's point about this family — "it has multi-megabyte storage
requirements, which necessitates storing meta-data in memory" — falls out
of :meth:`storage_breakdown`: every tracked line costs a full tag plus
``successors`` more line addresses, so useful coverage on a working set
of N lines costs ~N x 90 bits.  The default configuration (64K entries,
~1.3MB) is the smallest that shows temporal prefetching working at all
on our trace scale; DSPatch does its job in 3.6KB.
"""

from dataclasses import dataclass

from repro.constants import LINE_SHIFT
from repro.prefetchers.base import PrefetchCandidate, Prefetcher


@dataclass(frozen=True)
class MarkovConfig:
    """Markov correlation-table geometry."""

    table_entries: int = 65536
    successors: int = 2
    degree: int = 2


class _Node:
    __slots__ = ("successors", "counts")

    def __init__(self):
        self.successors = []
        self.counts = []

    def observe(self, line, max_successors):
        try:
            idx = self.successors.index(line)
            self.counts[idx] += 1
            # Keep successors sorted by count (simple bubble step).
            while idx > 0 and self.counts[idx] > self.counts[idx - 1]:
                self.counts[idx], self.counts[idx - 1] = (
                    self.counts[idx - 1],
                    self.counts[idx],
                )
                self.successors[idx], self.successors[idx - 1] = (
                    self.successors[idx - 1],
                    self.successors[idx],
                )
                idx -= 1
            return
        except ValueError:
            pass
        if len(self.successors) >= max_successors:
            # Replace the weakest successor.
            self.successors[-1] = line
            self.counts[-1] = 1
        else:
            self.successors.append(line)
            self.counts.append(1)


class MarkovPrefetcher(Prefetcher):
    """First-order Markov miss-correlation prefetcher."""

    name = "markov"

    def __init__(self, config: MarkovConfig = MarkovConfig()):
        self.config = config
        self._table = {}  # line -> _Node, dict order = LRU order
        self._last_line = None
        self.trainings = 0

    def train(self, cycle, pc, addr, hit):
        self.trainings += 1
        line = addr >> LINE_SHIFT
        previous = self._last_line
        self._last_line = line
        if previous is not None and previous != line:
            node = self._table.pop(previous, None)
            if node is None:
                if len(self._table) >= self.config.table_entries:
                    del self._table[next(iter(self._table))]
                node = _Node()
            node.observe(line, self.config.successors)
            self._table[previous] = node

        node = self._table.get(line)
        if node is None:
            return ()
        self._table[line] = self._table.pop(line)  # refresh LRU position
        out = []
        frontier = line
        for _ in range(self.config.degree):
            nxt = self._table.get(frontier)
            if nxt is None or not nxt.successors:
                break
            best = nxt.successors[0]
            if best != line:
                out.append(PrefetchCandidate(best))
            frontier = best
        return out

    def storage_breakdown(self):
        cfg = self.config
        # Tag (36b line address) + per-successor (36b address + 4b count).
        per_entry = 36 + cfg.successors * (36 + 4)
        return {"correlation-table": cfg.table_entries * per_entry}

    def reset(self):
        self._table = {}
        self._last_line = None
