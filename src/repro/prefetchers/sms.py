"""Spatial Memory Streaming (SMS).

SMS [73] (Section 2.3) is the classic bit-pattern prefetcher DSPatch is
measured against.  Per Table 3: 2KB regions, a 64-entry Accumulation Table
(AT), a 32-entry Filter Table (FT) and a 16K-entry, 16-way Pattern History
Table (PHT) keyed by the (trigger PC, trigger offset) signature.

Flow: the first access to an untracked region is its *trigger*; the region
enters the FT.  A second (distinct) access promotes it to the AT, which
accumulates the region's access bit-pattern.  When an AT entry is evicted,
its pattern is stored in the PHT under the trigger signature.  A trigger
whose signature hits in the PHT prefetches every set bit of the stored
pattern (the offset is part of the signature, so patterns are
region-absolute — unlike DSPatch's anchored patterns, SMS needs the offset
in the signature, which multiplies its storage; Figure 5 shows how its
performance collapses when the PHT shrinks toward DSPatch's budget).
"""

from dataclasses import dataclass

from repro.constants import LINE_SHIFT
from repro.prefetchers.base import PrefetchCandidate, Prefetcher


@dataclass(frozen=True)
class SmsConfig:
    """SMS structure sizes; defaults are the paper's 88KB configuration."""

    region_bytes: int = 2048
    at_entries: int = 64
    ft_entries: int = 32
    pht_entries: int = 16384
    pht_ways: int = 16

    @property
    def lines_per_region(self):
        return self.region_bytes // 64

    @property
    def pht_sets(self):
        sets = self.pht_entries // self.pht_ways
        if sets <= 0 or sets & (sets - 1):
            raise ValueError("PHT sets must be a positive power of two")
        return sets


class _RegionEntry:
    __slots__ = ("pattern", "trigger_pc", "trigger_offset")

    def __init__(self, trigger_pc, trigger_offset):
        self.pattern = 1 << trigger_offset
        self.trigger_pc = trigger_pc
        self.trigger_offset = trigger_offset


class SMS(Prefetcher):
    """Spatial Memory Streaming (Somogyi et al., ISCA'06)."""

    name = "sms"

    def __init__(self, config: SmsConfig = SmsConfig()):
        self.config = config
        region = config.region_bytes
        if region & (region - 1):
            raise ValueError("region size must be a power of two")
        self._region_shift = region.bit_length() - 1
        self._offset_mask = config.lines_per_region - 1
        self._at = {}  # region -> _RegionEntry, dict order = LRU order
        self._ft = {}  # region -> _RegionEntry
        self._pht = [dict() for _ in range(config.pht_sets)]  # sig tag -> pattern
        self.trainings = 0
        self.pht_stores = 0
        self.pht_hits = 0

    # -- signature ---------------------------------------------------------------

    def _signature(self, pc, offset):
        return ((pc << 5) ^ (pc >> 11) ^ offset) & 0xFFFFFFFF

    def _pht_locate(self, signature):
        set_idx = signature & (self.config.pht_sets - 1)
        tag = signature >> (self.config.pht_sets - 1).bit_length()
        return self._pht[set_idx], tag

    def _pht_store(self, entry):
        if entry.pattern.bit_count() < 2:
            # A region touched once carries no spatial information.
            return
        signature = self._signature(entry.trigger_pc, entry.trigger_offset)
        pht_set, tag = self._pht_locate(signature)
        if tag in pht_set:
            del pht_set[tag]  # refresh LRU position
        elif len(pht_set) >= self.config.pht_ways:
            oldest = next(iter(pht_set))
            del pht_set[oldest]
        pht_set[tag] = entry.pattern
        self.pht_stores += 1

    def _pht_lookup(self, pc, offset):
        signature = self._signature(pc, offset)
        pht_set, tag = self._pht_locate(signature)
        pattern = pht_set.get(tag)
        if pattern is not None:
            # Refresh LRU position.
            del pht_set[tag]
            pht_set[tag] = pattern
            self.pht_hits += 1
        return pattern

    # -- training -----------------------------------------------------------------

    def train(self, cycle, pc, addr, hit):
        self.trainings += 1
        line = addr >> LINE_SHIFT
        region = addr >> self._region_shift
        offset = line & self._offset_mask

        entry = self._at.get(region)
        if entry is not None:
            entry.pattern |= 1 << offset
            del self._at[region]  # refresh LRU position
            self._at[region] = entry
            return ()

        entry = self._ft.pop(region, None)
        if entry is not None:
            entry.pattern |= 1 << offset
            self._promote(region, entry)
            return ()

        # Trigger access to a fresh region.
        pht_hits_before = self.pht_hits
        candidates = self._predict(pc, offset, region)
        if self.trace_emit is not None:
            # The scheme's core decision: a fresh-region trigger either
            # replays a recorded PHT pattern or starts cold.
            hit = "hit" if self.pht_hits > pht_hits_before else "miss"
            self.trace_emit(
                cycle,
                self.name,
                f"trigger region={region:#x} pht={hit} cands={len(candidates)}",
            )
        self._ft_insert(region, _RegionEntry(pc, offset))
        return candidates

    def _promote(self, region, entry):
        if len(self._at) >= self.config.at_entries:
            old_region, old_entry = next(iter(self._at.items()))
            del self._at[old_region]
            self._pht_store(old_entry)
        self._at[region] = entry

    def _ft_insert(self, region, entry):
        if len(self._ft) >= self.config.ft_entries:
            oldest = next(iter(self._ft))
            del self._ft[oldest]
        self._ft[region] = entry

    def _predict(self, pc, offset, region):
        pattern = self._pht_lookup(pc, offset)
        if pattern is None:
            return ()
        region_base_line = region << (self._region_shift - LINE_SHIFT)
        out = []
        for bit in range(self.config.lines_per_region):
            if bit != offset and (pattern >> bit) & 1:
                out.append(PrefetchCandidate(region_base_line + bit))
        return out

    def flush_training(self, cycle=0):
        """Store every live AT entry to the PHT (end-of-run convenience).

        ``cycle`` is accepted for interface uniformity (composites forward
        the run's final cycle); SMS learning is bandwidth-oblivious.
        """
        for entry in self._at.values():
            self._pht_store(entry)
        self._at.clear()

    # -- storage ---------------------------------------------------------------------

    def storage_breakdown(self):
        cfg = self.config
        pattern_bits = cfg.lines_per_region
        at_bits = cfg.at_entries * (26 + pattern_bits + 16 + 5)
        ft_bits = cfg.ft_entries * (26 + 16 + 5)
        pht_bits = cfg.pht_entries * (16 + pattern_bits)
        return {
            "accumulation-table": at_bits,
            "filter-table": ft_bits,
            "pattern-history-table": pht_bits,
        }

    def reset(self):
        self._at = {}
        self._ft = {}
        self._pht = [dict() for _ in range(self.config.pht_sets)]


def sms_with_pht_entries(entries):
    """SMS sized to ``entries`` PHT entries (Figure 5 sweep / iso-storage).

    Associativity is kept at 16 ways where possible (the paper's sweep is
    '16K entries, 16-way' shrunk by entry count).
    """
    ways = 16 if entries >= 16 else entries
    return SMS(SmsConfig(pht_entries=entries, pht_ways=ways))
