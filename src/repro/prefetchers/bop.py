"""Best Offset Prefetcher (BOP) and its bandwidth-aware variant eBOP.

BOP [62] (Section 2.2) learns a small set of *global* deltas that best
explain recent accesses.  Structures per Table 3: a 256-entry Recent
Requests (RR) table and a score table over the candidate-offset list, with
MaxRound=100, MaxScore=31, BadScore=1.

Learning proceeds in rounds: each trained access tests one candidate offset
``O`` — if ``line - O`` is found in the RR table, ``O`` scores a point.
A round ends when every offset has been tested; the learning phase ends
when an offset reaches MaxScore or MaxRound rounds elapse, at which point
the top-``degree`` scoring offsets become the active prefetch offsets (no
prefetching if the best score is not above BadScore).

Timeliness is built into the scoring, exactly as in Michaud's design:
addresses enter the RR table only at (modelled) *fill-completion* time,
one memory round-trip after the access.  An offset therefore scores only
if prefetching ``X`` at the time ``X - O`` was accessed would have
completed before ``X``'s own access — small offsets with no lead time
never win, which is what keeps BOP's prefetches timely.

eBOP (Section 2.5) makes the degree bandwidth-aware: 1 by default, 2 when
more than 25% of the bandwidth is headroom, 4 when more than 50% is — the
paper's strawman that scales best among prior prefetchers (Figure 6) but
still leaves coverage on the table.
"""

from collections import deque
from dataclasses import dataclass, field

from repro.constants import LINE_SHIFT, LINES_PER_PAGE
from repro.prefetchers.base import PrefetchCandidate, Prefetcher


def default_offset_list():
    """Candidate global deltas: the original BOP's factorized offset list.

    Michaud's design scores offsets whose prime factors are all <= 5 (they
    compose well under recursion); within a 4KB page that gives 26 positive
    values, mirrored negative (Section 2.2 notes 126 deltas are *possible*;
    the original tracks this curated subset to keep rounds short).
    """
    positives = [
        o
        for o in range(1, LINES_PER_PAGE)
        if _largest_prime_factor(o) <= 5
    ]
    return tuple(positives + [-o for o in positives])


def _largest_prime_factor(value):
    factor = 2
    largest = 1
    while factor * factor <= value:
        while value % factor == 0:
            largest = factor
            value //= factor
        factor += 1
    return max(largest, value) if value > 1 else largest


@dataclass(frozen=True)
class BopConfig:
    """BOP parameters (Table 3)."""

    rr_entries: int = 256
    max_round: int = 100
    max_score: int = 31
    bad_score: int = 1
    degree: int = 2
    offsets: tuple = field(default_factory=default_offset_list)
    #: Modelled memory round-trip in core cycles: accesses enter the RR
    #: table this long after they occur (fill-completion time), which is
    #: what makes the offset scoring timeliness-aware.
    fill_delay_cycles: int = 300


class BOP(Prefetcher):
    """Best Offset Prefetcher (Michaud, HPCA'16), degree-generalized."""

    name = "bop"

    def __init__(self, config: BopConfig = BopConfig()):
        if config.rr_entries & (config.rr_entries - 1):
            raise ValueError("RR entry count must be a power of two")
        self.config = config
        self._rr = [-1] * config.rr_entries
        #: Accesses awaiting their modelled fill completion before they
        #: become visible in the RR table: (ready_cycle, line) FIFO.
        self._pending_fills = deque()
        self._scores = dict.fromkeys(config.offsets, 0)
        self._test_pos = 0
        self._round = 0
        #: Offsets currently used for prefetch generation (ranked); the
        #: original design starts with offset 1 until learning converges.
        self.active_offsets = [1]
        self.learning_phases = 0
        self.trainings = 0

    # -- RR table ---------------------------------------------------------------

    def _rr_index(self, line):
        return (line ^ (line >> 8)) & (self.config.rr_entries - 1)

    def _rr_insert(self, line):
        self._rr[self._rr_index(line)] = line

    def _rr_contains(self, line):
        return self._rr[self._rr_index(line)] == line

    # -- degree (overridden by eBOP) ---------------------------------------------

    def _degree(self, cycle):
        return self.config.degree

    # -- learning -----------------------------------------------------------------

    def _finish_phase(self):
        cfg = self.config
        ranked = sorted(self._scores.items(), key=lambda kv: -kv[1])
        self.active_offsets = [off for off, score in ranked[: max(cfg.degree, 4)] if score > cfg.bad_score]
        self._scores = dict.fromkeys(cfg.offsets, 0)
        self._test_pos = 0
        self._round = 0
        self.learning_phases += 1

    def _drain_pending(self, cycle):
        """Move accesses whose modelled fill has completed into the RR."""
        pending = self._pending_fills
        while pending and pending[0][0] <= cycle:
            self._rr_insert(pending.popleft()[1])

    def train(self, cycle, pc, addr, hit):
        self.trainings += 1
        cfg = self.config
        line = addr >> LINE_SHIFT
        offset_in_page = line & (LINES_PER_PAGE - 1)
        self._drain_pending(cycle)

        test_offset = cfg.offsets[self._test_pos]
        base_offset = offset_in_page - test_offset
        if 0 <= base_offset < LINES_PER_PAGE:
            # Inlined _rr_contains.
            probe = line - test_offset
            if self._rr[(probe ^ (probe >> 8)) & (cfg.rr_entries - 1)] == probe:
                score = self._scores[test_offset] + 1
                self._scores[test_offset] = score
                if score >= cfg.max_score:
                    self._finish_phase()
        self._test_pos += 1
        if self._test_pos >= len(cfg.offsets):
            self._test_pos = 0
            self._round += 1
            if self._round >= cfg.max_round:
                self._finish_phase()

        self._pending_fills.append((cycle + cfg.fill_delay_cycles, line))
        return self._generate(cycle, line, offset_in_page)

    def _generate(self, cycle, line, offset_in_page):
        active = self.active_offsets
        if not active:
            return ()
        degree = self._degree(cycle)
        out = []
        if degree > len(active):
            degree = len(active)
        for i in range(degree):
            off = active[i]
            target_offset = offset_in_page + off
            if 0 <= target_offset < LINES_PER_PAGE:
                out.append(PrefetchCandidate(line + off))
        return out

    # -- storage --------------------------------------------------------------------

    def storage_breakdown(self):
        cfg = self.config
        rr_bits = cfg.rr_entries * 36  # line-address tags (Table 3: ~1.3KB total)
        score_bits = len(cfg.offsets) * 5  # 5-bit scores (MaxScore=31)
        best_bits = 4 * 7  # up to four ranked 7-bit signed offsets
        return {"rr-table": rr_bits, "score-table": score_bits, "best-offsets": best_bits}

    def reset(self):
        self._rr = [-1] * self.config.rr_entries
        self._pending_fills.clear()
        self._scores = dict.fromkeys(self.config.offsets, 0)
        self._test_pos = 0
        self._round = 0
        self.active_offsets = []


class EBOP(BOP):
    """eBOP — BOP with bandwidth-aware dynamic degree (Section 2.5)."""

    name = "ebop"

    def __init__(self, bandwidth, config: BopConfig = None):
        super().__init__(config or BopConfig(degree=1))
        self.bandwidth = bandwidth

    def _degree(self, cycle):
        bucket = self.bandwidth.bucket(cycle)
        if bucket <= 1:  # utilization < 50% -> headroom > 50%
            return 4
        if bucket == 2:  # utilization 50-75% -> headroom 25-50%
            return 2
        return 1
