"""Feedback-Directed Prefetching (FDP) throttle wrapper.

Section 6's last paragraph: "prior prefetch-throttling proposals can be
orthogonally applied to DSPatch as well to further adjust its prefetch
aggressiveness."  This module makes that sentence executable:
:class:`FeedbackThrottle` wraps *any* prefetcher with the accuracy-driven
aggressiveness controller of Srinath et al. [74] (HPCA'07):

- the wrapper samples its own prefetch accuracy over fixed-size windows of
  issued prefetches (the hierarchy's usefulness callbacks feed it);
- measured accuracy moves an aggressiveness level up or down;
- the level caps how many of the wrapped prefetcher's candidates are
  forwarded per training event (degree clamping), with the lowest level
  dropping prefetches entirely.

The wrapper is transparent for storage accounting (two counters plus the
level register) and for the usefulness callbacks, which are forwarded to
the wrapped prefetcher unchanged.
"""

from dataclasses import dataclass

from repro.prefetchers.base import Prefetcher, flush_training_with_cycle


@dataclass(frozen=True)
class ThrottleConfig:
    """FDP controller parameters.

    Levels map to per-train candidate caps; accuracy thresholds follow the
    original proposal's high/low watermark scheme.
    """

    #: Candidate cap per aggressiveness level (level 0 = prefetching off).
    level_caps: tuple = (0, 1, 2, 4, 8, 64)
    initial_level: int = 3
    #: Issued-prefetch window between controller decisions.
    window: int = 128
    #: Accuracy watermarks.  The original FDP quotes 0.40/0.75 against its
    #: own accuracy definition; these defaults are calibrated to the
    #: accuracy range this simulator's feedback produces, so the
    #: controller operates rather than idling in the dead zone.
    accuracy_high: float = 0.80
    accuracy_low: float = 0.60

    def __post_init__(self):
        if not self.level_caps:
            raise ValueError("need at least one aggressiveness level")
        if not 0 <= self.initial_level < len(self.level_caps):
            raise ValueError("initial level out of range")
        if not 0.0 <= self.accuracy_low <= self.accuracy_high <= 1.0:
            raise ValueError("need 0 <= low <= high <= 1")


class FeedbackThrottle(Prefetcher):
    """Wrap a prefetcher with FDP-style accuracy-driven throttling."""

    def __init__(self, inner, config: ThrottleConfig = ThrottleConfig()):
        self.inner = inner
        self.config = config
        self.name = f"fdp({inner.name})"
        self.level = config.initial_level
        self._window_useful = 0
        self._window_useless = 0
        self.level_ups = 0
        self.level_downs = 0

    # ------------------------------------------------------------- control

    def _decide(self, cycle=0):
        """One controller step at the end of a feedback window."""
        total = self._window_useful + self._window_useless
        if total < self.config.window:
            return
        accuracy = self._window_useful / total
        before = self.level
        if accuracy >= self.config.accuracy_high:
            if self.level < len(self.config.level_caps) - 1:
                self.level += 1
                self.level_ups += 1
        elif accuracy < self.config.accuracy_low:
            if self.level > 0:
                self.level -= 1
                self.level_downs += 1
        if self.level != before:
            self.trace_event(cycle, f"level={self.level} acc={accuracy:.2f}")
        self._window_useful = 0
        self._window_useless = 0

    # ------------------------------------------------------------ training

    def train(self, cycle, pc, addr, hit):
        candidates = self.inner.train(cycle, pc, addr, hit)
        cap = self.config.level_caps[self.level]
        if cap == 0:
            return ()
        if len(candidates) <= cap:
            return candidates
        return list(candidates)[:cap]

    # ------------------------------------------------------------ feedback

    def note_useful_prefetch(self, cycle, line_addr):
        self._window_useful += 1
        self._decide(cycle)
        self.inner.note_useful_prefetch(cycle, line_addr)

    def note_useless_prefetch(self, cycle, line_addr):
        self._window_useless += 1
        self._decide(cycle)
        self.inner.note_useless_prefetch(cycle, line_addr)

    # -------------------------------------------------------------- plumbing

    def storage_breakdown(self):
        out = {f"{self.inner.name}/{k}": v for k, v in self.inner.storage_breakdown().items()}
        out["fdp-controller"] = 2 * 16 + 3  # two window counters + level
        return out

    def attach_trace(self, emit):
        """Propagate the scheme-event hook to the wrapped prefetcher."""
        self.trace_emit = emit
        self.inner.attach_trace(emit)

    def flush_training(self, cycle=0):
        flush_training_with_cycle(self.inner, cycle)

    def reset(self):
        self.inner.reset()
        self.level = self.config.initial_level
        self._window_useful = 0
        self._window_useless = 0
