"""Bingo spatial data prefetcher (simplified).

Bingo [26] (Bakhshalipour et al., HPCA'19) is the most recent bit-pattern
prefetcher the paper compares against in Section 6: it fuses a *long*
event (PC + full region address) and a *short* event (PC + region offset)
into a single pattern-history table.  Lookup tries the precise long event
first and falls back to the short event, so one table gets the accuracy
of address correlation where history exists and the generalization of
offset correlation where it does not.

The paper's criticism — Bingo "still consumes over 100KB of area" — is
visible in :meth:`storage_breakdown`: region-address tags plus
uncompressed per-region patterns dwarf DSPatch's 3.6KB.

This implementation keeps Bingo's published structure (accumulation
table + pattern history keyed by both events) at a configurable scale;
the default approximates the original's 2KB regions and 16K-entry
history.
"""

from dataclasses import dataclass

from repro.constants import LINE_SHIFT
from repro.prefetchers.base import PrefetchCandidate, Prefetcher


@dataclass(frozen=True)
class BingoConfig:
    """Bingo structure sizes (scaled from the HPCA'19 configuration)."""

    region_bytes: int = 2048
    at_entries: int = 64
    pht_entries: int = 16384
    pht_ways: int = 16

    @property
    def lines_per_region(self):
        return self.region_bytes // 64

    @property
    def pht_sets(self):
        sets = self.pht_entries // self.pht_ways
        if sets <= 0 or sets & (sets - 1):
            raise ValueError("PHT sets must be a positive power of two")
        return sets


class _RegionEntry:
    __slots__ = ("pattern", "trigger_pc", "trigger_offset", "region")

    def __init__(self, region, trigger_pc, trigger_offset):
        self.region = region
        self.pattern = 1 << trigger_offset
        self.trigger_pc = trigger_pc
        self.trigger_offset = trigger_offset


class Bingo(Prefetcher):
    """Bingo: dual-event (long/short) bit-pattern prefetcher."""

    name = "bingo"

    def __init__(self, config: BingoConfig = BingoConfig()):
        self.config = config
        region = config.region_bytes
        if region & (region - 1):
            raise ValueError("region size must be a power of two")
        self._region_shift = region.bit_length() - 1
        self._offset_mask = config.lines_per_region - 1
        self._at = {}  # region -> _RegionEntry, dict order = LRU order
        # One PHT, two key spaces: entries are keyed by the long event
        # (PC + region address) and shadowed by the short event
        # (PC + offset).  The short index keeps the *most recent* pattern
        # for that event, which is Bingo's fallback semantics.
        self._pht_long = [dict() for _ in range(config.pht_sets)]
        self._pht_short = {}
        self.trainings = 0
        self.long_hits = 0
        self.short_hits = 0

    # -- events ------------------------------------------------------------------

    def _long_event(self, pc, region):
        return ((pc << 7) ^ region) & 0xFFFFFFFFFF

    def _short_event(self, pc, offset):
        return ((pc << 5) ^ offset) & 0xFFFFFFFF

    def _pht_locate(self, long_key):
        set_idx = long_key & (self.config.pht_sets - 1)
        tag = long_key >> (self.config.pht_sets - 1).bit_length()
        return self._pht_long[set_idx], tag

    # -- training -----------------------------------------------------------------

    def train(self, cycle, pc, addr, hit):
        self.trainings += 1
        line = addr >> LINE_SHIFT
        region = addr >> self._region_shift
        offset = line & self._offset_mask

        entry = self._at.get(region)
        if entry is not None:
            entry.pattern |= 1 << offset
            self._at[region] = self._at.pop(region)  # refresh LRU position
            return ()

        long_before, short_before = self.long_hits, self.short_hits
        candidates = self._predict(pc, offset, region)
        if self.trace_emit is not None:
            # The scheme's core decision: which event matched the PHT — the
            # precise long event (PC+address) or the short fallback
            # (PC+offset) — and how wide the replayed footprint is.
            if self.long_hits > long_before:
                match = "long"
            elif self.short_hits > short_before:
                match = "short"
            else:
                match = "none"
            self.trace_emit(
                cycle,
                self.name,
                f"match={match} region={region:#x} cands={len(candidates)}",
            )
        if len(self._at) >= self.config.at_entries:
            victim_region, victim = next(iter(self._at.items()))
            del self._at[victim_region]
            self._store(victim)
        self._at[region] = _RegionEntry(region, pc, offset)
        return candidates

    def _store(self, entry):
        if entry.pattern.bit_count() < 2:
            return
        long_key = self._long_event(entry.trigger_pc, entry.region)
        pht_set, tag = self._pht_locate(long_key)
        if tag in pht_set:
            del pht_set[tag]
        elif len(pht_set) >= self.config.pht_ways:
            del pht_set[next(iter(pht_set))]
        pht_set[tag] = entry.pattern
        # The short event shadows the long entries; bounded by the same
        # entry budget (modelled as a capped dict).
        short_key = self._short_event(entry.trigger_pc, entry.trigger_offset)
        if short_key in self._pht_short:
            del self._pht_short[short_key]
        elif len(self._pht_short) >= self.config.pht_entries:
            del self._pht_short[next(iter(self._pht_short))]
        self._pht_short[short_key] = entry.pattern

    # -- prediction ------------------------------------------------------------------

    def _predict(self, pc, offset, region):
        long_key = self._long_event(pc, region)
        pht_set, tag = self._pht_locate(long_key)
        pattern = pht_set.get(tag)
        if pattern is not None:
            self.long_hits += 1
        else:
            pattern = self._pht_short.get(self._short_event(pc, offset))
            if pattern is not None:
                self.short_hits += 1
        if pattern is None:
            return ()
        region_base_line = region << (self._region_shift - LINE_SHIFT)
        return [
            PrefetchCandidate(region_base_line + bit)
            for bit in range(self.config.lines_per_region)
            if bit != offset and (pattern >> bit) & 1
        ]

    def flush_training(self, cycle=0):
        """Store every live AT entry (end-of-run convenience).

        ``cycle`` is accepted for interface uniformity (composites forward
        the run's final cycle); Bingo learning is bandwidth-oblivious.
        """
        for entry in list(self._at.values()):
            self._store(entry)
        self._at.clear()

    # -- storage --------------------------------------------------------------------

    def storage_breakdown(self):
        cfg = self.config
        pattern_bits = cfg.lines_per_region
        # Long-event tags are wide (PC hash + region address bits).
        pht_bits = cfg.pht_entries * (30 + pattern_bits)
        short_bits = cfg.pht_entries * 16  # short-event shadow index
        at_bits = cfg.at_entries * (26 + pattern_bits + 16 + 5)
        return {
            "pattern-history-table": pht_bits,
            "short-event-index": short_bits,
            "accumulation-table": at_bits,
        }

    def reset(self):
        self._at = {}
        self._pht_long = [dict() for _ in range(self.config.pht_sets)]
        self._pht_short = {}
