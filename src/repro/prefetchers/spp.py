"""Signature Pattern Prefetcher (SPP) and its bandwidth-aware variant eSPP.

SPP [54] (Section 2.1) is the state-of-the-art delta prefetcher the paper
baselines against.  Structures per Table 3: a 256-entry Signature Table
(per-page compressed delta-history signature), a 512-entry Pattern Table
(signature -> up to four candidate deltas with confidence counters), an
8-entry Global History Register for cross-page bootstrap, and global
feedback counters.

Key mechanism: *lookahead with cascaded confidence*.  From the current
signature, every stored delta whose cascaded confidence (product of the
per-level ``c_delta / c_sig`` ratios) clears the prefetch threshold is
prefetched; the highest-confidence delta advances the speculative signature
one level deeper, until confidence decays below the threshold.

eSPP (Section 2.5) lowers the confidence threshold from 25% to 12.5% when
more than half the DRAM bandwidth is unused — the paper's strawman
bandwidth-aware tuning of SPP, shown in Figure 6 to scale poorly.

This module is also the *executable spec* for the compiled training twin:
:mod:`repro.kernel.cgen` emits a C transliteration of ``train`` (including
``_lookahead``'s float arithmetic in this exact operation order), selected
at run time by ``kernel/state.py:_scheme_kind`` for default-config
instances and pinned bit-identical by ``tests/test_kernel_parity.py``.
Behavioral edits here must be mirrored in the C twin.
"""

from dataclasses import dataclass

from repro.constants import LINES_PER_PAGE, PAGE_SHIFT, line_offset_in_page, page_number
from repro.prefetchers.base import PrefetchCandidate, Prefetcher

SIGNATURE_BITS = 12
SIGNATURE_MASK = (1 << SIGNATURE_BITS) - 1


def encode_delta(delta):
    """7-bit sign-magnitude delta encoding used in the signature hash."""
    magnitude = abs(delta) & 0x3F
    return magnitude | (0x40 if delta < 0 else 0)


def advance_signature(signature, delta):
    """Fold ``delta`` into the 12-bit compressed delta-path signature."""
    return ((signature << 3) ^ encode_delta(delta)) & SIGNATURE_MASK


@dataclass(frozen=True)
class SppConfig:
    """SPP structure sizes (Table 3 configuration)."""

    st_entries: int = 256
    pt_entries: int = 512
    ghr_entries: int = 8
    delta_slots: int = 4
    counter_max: int = 15
    prefetch_threshold: float = 0.25
    lookahead_threshold: float = 0.25
    #: eSPP's relaxed threshold when bandwidth headroom exceeds 50%.
    relaxed_threshold: float = 0.125
    #: Lookahead is confidence-bounded (the paper's design): the walk ends
    #: when cascaded confidence falls below the threshold or leaves the
    #: page.  The depth cap is a safety bound well above what confidence
    #: decay allows in practice, not a tuning knob.
    max_lookahead_depth: int = 64
    max_candidates_per_train: int = 24
    #: Prefetch filter: recently issued lines are not re-requested (the
    #: original SPP's filter; its storage is what brings the total to the
    #: paper's 6.2KB).
    filter_entries: int = 1024


class _StEntry:
    __slots__ = ("tag", "last_offset", "signature")

    def __init__(self, tag, last_offset, signature=0):
        self.tag = tag
        self.last_offset = last_offset
        self.signature = signature


class _GhrEntry:
    __slots__ = ("signature", "confidence", "last_offset", "delta")

    def __init__(self, signature, confidence, last_offset, delta):
        self.signature = signature
        self.confidence = confidence
        self.last_offset = last_offset
        self.delta = delta


class SPP(Prefetcher):
    """Signature Pattern Prefetcher with lookahead (Kim et al., MICRO'16)."""

    name = "spp"

    def __init__(self, config: SppConfig = SppConfig()):
        if config.st_entries & (config.st_entries - 1) or config.pt_entries & (
            config.pt_entries - 1
        ):
            raise ValueError("ST and PT entry counts must be powers of two")
        self.config = config
        self._st = [None] * config.st_entries
        # Pattern table: per entry a ``c_sig`` counter (flat list) plus a
        # list of ``(delta, c_delta)`` tuple slots.  Tuple-pair iteration is
        # the fastest slot walk CPython offers (C-level list iteration with
        # 2-tuple unpack), and the lookahead loop below is the simulator's
        # hottest prefetcher code.
        self._pt_c_sig = [0] * config.pt_entries
        self._pt_slots = [[(0, 0)] * config.delta_slots for _ in range(config.pt_entries)]
        self._ghr = []
        self._filter = [-1] * config.filter_entries
        self.trainings = 0
        self.filtered = 0
        self.feedback_issued = 0
        self.feedback_useful = 0

    # -- thresholds (overridden by eSPP) --------------------------------------

    def _threshold(self, cycle):
        return self.config.prefetch_threshold

    # -- table plumbing --------------------------------------------------------

    def _pt_index(self, signature):
        return (signature ^ (signature >> 6)) & (self.config.pt_entries - 1)

    def _pt_update(self, signature, delta):
        cfg = self.config
        idx = (signature ^ (signature >> 6)) & (cfg.pt_entries - 1)
        cmax = cfg.counter_max
        c_sigs = self._pt_c_sig
        slots = self._pt_slots[idx]
        c_sig = c_sigs[idx]
        if c_sig >= cmax:
            # Aging: halve every counter so old history decays (the original
            # design's saturation handling).
            c_sig >>= 1
            slots[:] = [(d, c >> 1) for d, c in slots]
        c_sigs[idx] = c_sig + 1
        victim = 0
        victim_count = None
        for i, (d, c) in enumerate(slots):
            if d == delta:
                count = c + 1
                slots[i] = (d, count if count < cmax else cmax)
                return
            if victim_count is None or c < victim_count:
                # First-minimum victim slot, tracked inline (no key-fn min).
                victim = i
                victim_count = c
        slots[victim] = (delta, 1)

    def _filter_admits(self, line):
        """True if ``line`` was not recently issued (and record it)."""
        idx = (line ^ (line >> 10)) & (self.config.filter_entries - 1)
        if self._filter[idx] == line:
            self.filtered += 1
            return False
        self._filter[idx] = line
        return True

    def _ghr_insert(self, signature, confidence, last_offset, delta):
        self._ghr.insert(0, _GhrEntry(signature, confidence, last_offset, delta))
        del self._ghr[self.config.ghr_entries :]

    def _ghr_bootstrap(self, offset):
        """Find a GHR entry whose cross-page stride lands on ``offset``."""
        for entry in self._ghr:
            landing = entry.last_offset + entry.delta
            if landing >= LINES_PER_PAGE and landing - LINES_PER_PAGE == offset:
                return advance_signature(entry.signature, entry.delta)
            if landing < 0 and landing + LINES_PER_PAGE == offset:
                return advance_signature(entry.signature, entry.delta)
        return 0

    # -- main algorithm ---------------------------------------------------------

    def train(self, cycle, pc, addr, hit):
        self.trainings += 1
        page = page_number(addr)
        offset = line_offset_in_page(addr)
        idx = page & (self.config.st_entries - 1)
        tag = (page >> 8) & 0xFFFF
        entry = self._st[idx]
        if entry is not None and entry.tag == tag:
            delta = offset - entry.last_offset
            if delta == 0:
                return ()
            self._pt_update(entry.signature, delta)
            entry.signature = advance_signature(entry.signature, delta)
            entry.last_offset = offset
        else:
            signature = self._ghr_bootstrap(offset)
            entry = _StEntry(tag, offset, signature)
            self._st[idx] = entry
            if signature == 0:
                return ()
        cands = self._lookahead(cycle, entry.signature, page, offset)
        if self.trace_emit is not None:
            # The scheme's core decision: one confidence-cascaded walk from
            # the current signature, under the (possibly bandwidth-relaxed)
            # threshold.
            self.trace_emit(
                cycle,
                self.name,
                f"lookahead sig={entry.signature:#06x} "
                f"thr={self._threshold(cycle)} cands={len(cands)}",
            )
        return cands

    def _lookahead(self, cycle, signature, page, base_offset):
        """Confidence-cascaded lookahead walk (the simulator's hottest
        prefetcher loop — table indexing, signature advance and the
        prefetch filter are inlined; arithmetic is unchanged)."""
        cfg = self.config
        threshold = self._threshold(cycle)
        page_base = page << (PAGE_SHIFT - 6)
        candidates = []
        append = candidates.append
        seen = {page_base + base_offset}
        seen_add = seen.add
        confidence = 1.0
        offset = base_offset
        pt_c_sig = self._pt_c_sig
        pt_slots = self._pt_slots
        pt_mask = cfg.pt_entries - 1
        flt = self._filter
        flt_mask = cfg.filter_entries - 1
        lookahead_threshold = cfg.lookahead_threshold
        max_candidates = cfg.max_candidates_per_train
        lpp = LINES_PER_PAGE
        n_cands = 0
        n_filtered = 0
        for _ in range(cfg.max_lookahead_depth):
            idx = (signature ^ (signature >> 6)) & pt_mask
            c_sig = pt_c_sig[idx]
            if c_sig == 0:
                break
            best_conf = 0.0
            best_delta = 0
            for delta, c_delta in pt_slots[idx]:
                if c_delta == 0:
                    continue
                conf = confidence * c_delta / c_sig
                if conf > best_conf:
                    best_conf = conf
                    best_delta = delta
                if conf < threshold:
                    continue
                target = offset + delta
                if 0 <= target < lpp:
                    line = page_base + target
                    if line not in seen:
                        # Inlined _filter_admits (recently issued lines are
                        # not re-requested).
                        fidx = (line ^ (line >> 10)) & flt_mask
                        if flt[fidx] == line:
                            n_filtered += 1
                        else:
                            flt[fidx] = line
                            seen_add(line)
                            append(PrefetchCandidate(line))
                            n_cands += 1
                else:
                    # Crossing the page: remember for cross-page bootstrap.
                    self._ghr_insert(signature, conf, offset, delta)
                if n_cands >= max_candidates:
                    self.filtered += n_filtered
                    return candidates
            if best_delta == 0 or best_conf < lookahead_threshold:
                break
            next_offset = offset + best_delta
            if not 0 <= next_offset < lpp:
                break
            # Inlined advance_signature/encode_delta.
            magnitude = (best_delta if best_delta >= 0 else -best_delta) & 0x3F
            if best_delta < 0:
                magnitude |= 0x40
            signature = ((signature << 3) ^ magnitude) & SIGNATURE_MASK
            offset = next_offset
            confidence = best_conf
        self.filtered += n_filtered
        return candidates

    # -- feedback ------------------------------------------------------------

    def note_useful_prefetch(self, cycle, line_addr):
        self.feedback_useful += 1

    def note_useless_prefetch(self, cycle, line_addr):
        self.feedback_issued += 1

    def global_accuracy(self):
        """Rough global accuracy estimate from the feedback counters."""
        seen = self.feedback_useful + self.feedback_issued
        return self.feedback_useful / seen if seen else 1.0

    # -- storage ----------------------------------------------------------------

    def storage_breakdown(self):
        cfg = self.config
        st_bits = cfg.st_entries * (16 + 6 + SIGNATURE_BITS)
        pt_bits = cfg.pt_entries * (4 + cfg.delta_slots * (7 + 4))
        ghr_bits = cfg.ghr_entries * (SIGNATURE_BITS + 4 + 6 + 7)
        filter_bits = cfg.filter_entries * 16
        return {
            "signature-table": st_bits,
            "pattern-table": pt_bits,
            "ghr": ghr_bits,
            "prefetch-filter": filter_bits,
            "feedback": 10,
        }

    def reset(self):
        cfg = self.config
        self._st = [None] * cfg.st_entries
        self._pt_c_sig = [0] * cfg.pt_entries
        self._pt_slots = [[(0, 0)] * cfg.delta_slots for _ in range(cfg.pt_entries)]
        self._ghr = []
        self._filter = [-1] * cfg.filter_entries


class ESPP(SPP):
    """eSPP — SPP with a bandwidth-aware confidence threshold (Section 2.5).

    When the 2-bit utilization bucket reports less than 50% utilization
    (buckets 0 and 1), the prefetch threshold relaxes from 25% to 12.5%.
    """

    name = "espp"

    def __init__(self, bandwidth, config: SppConfig = SppConfig()):
        super().__init__(config)
        self.bandwidth = bandwidth

    def _threshold(self, cycle):
        if self.bandwidth.bucket(cycle) <= 1:
            return self.config.relaxed_threshold
        return self.config.prefetch_threshold
