"""Variable Length Delta Prefetcher (VLDP).

VLDP [72] (Shevgoor et al., MICRO'15) is the delta-history prefetcher the
paper cites as SPP's closest ancestor (Section 6, "Delta-based
Prefetchers").  Where SPP compresses delta history into one hashed
signature, VLDP keeps explicit per-page delta histories and consults a
cascade of Delta Prediction Tables (DPTs), one per history length —
longest matching history wins, echoing TAGE.

Structures (sized after the original paper's ~1KB budget):

- **DHB** — Delta History Buffer: per-page entry with the last offset and
  up to ``history_len`` recent deltas.
- **DPT[k]** — for each history length ``k`` (1..3): a table mapping the
  tuple of the last ``k`` deltas to the predicted next delta, with a
  2-bit replace-hysteresis counter.
- **OPT** — Offset Prediction Table: first-access prediction keyed by the
  page offset of the first access (covers the trigger miss a pure
  delta predictor cannot).

Prediction walks forward: the matched delta is applied, the speculative
history is extended, and the cascade is consulted again up to ``degree``
steps — VLDP's "multi-degree" mode.
"""

from dataclasses import dataclass

from repro.constants import LINES_PER_PAGE, line_offset_in_page, page_number
from repro.prefetchers.base import PrefetchCandidate, Prefetcher


@dataclass(frozen=True)
class VldpConfig:
    """VLDP structure sizes (the original's ~1KB configuration)."""

    dhb_entries: int = 16
    dpt_entries: int = 64
    history_len: int = 3
    opt_entries: int = 64
    degree: int = 4


class _DhbEntry:
    __slots__ = ("last_offset", "deltas", "num_times_used")

    def __init__(self, last_offset):
        self.last_offset = last_offset
        self.deltas = []
        self.num_times_used = 0


class _DptEntry:
    __slots__ = ("key", "delta", "confidence")

    def __init__(self, key, delta):
        self.key = key
        self.delta = delta
        self.confidence = 1


class VLDP(Prefetcher):
    """Variable Length Delta Prefetcher (Shevgoor et al., MICRO'15)."""

    name = "vldp"

    def __init__(self, config: VldpConfig = VldpConfig()):
        if config.history_len < 1:
            raise ValueError("history length must be at least 1")
        self.config = config
        self._dhb = {}  # page -> _DhbEntry, dict order = LRU order
        self._dpts = [dict() for _ in range(config.history_len)]  # key tuple -> _DptEntry
        self._opt = {}  # first offset -> (delta, confidence)
        self.trainings = 0

    # -- table plumbing --------------------------------------------------------

    def _dpt_update(self, history, next_delta):
        """Train every history length whose suffix matches."""
        for k in range(1, min(len(history), self.config.history_len) + 1):
            key = tuple(history[-k:])
            table = self._dpts[k - 1]
            entry = table.get(key)
            if entry is None:
                if len(table) >= self.config.dpt_entries:
                    table.pop(next(iter(table)))
                table[key] = _DptEntry(key, next_delta)
            elif entry.delta == next_delta:
                entry.confidence = min(3, entry.confidence + 1)
            else:
                # 2-bit hysteresis before replacing the stored delta.
                entry.confidence -= 1
                if entry.confidence <= 0:
                    entry.delta = next_delta
                    entry.confidence = 1
            # Refresh LRU position.
            table[key] = table.pop(key)

    def _dpt_lookup(self, history):
        """Longest-history match wins (the TAGE-like cascade)."""
        for k in range(min(len(history), self.config.history_len), 0, -1):
            entry = self._dpts[k - 1].get(tuple(history[-k:]))
            if entry is not None:
                return entry.delta
        return None

    def _opt_update(self, first_offset, second_offset):
        delta = second_offset - first_offset
        stored = self._opt.get(first_offset)
        if stored is None:
            if len(self._opt) >= self.config.opt_entries:
                self._opt.pop(next(iter(self._opt)))
            self._opt[first_offset] = (delta, 1)
        elif stored[0] == delta:
            self._opt[first_offset] = (delta, min(3, stored[1] + 1))
        else:
            confidence = stored[1] - 1
            if confidence <= 0:
                self._opt[first_offset] = (delta, 1)
            else:
                self._opt[first_offset] = (stored[0], confidence)

    # -- main algorithm ---------------------------------------------------------

    def train(self, cycle, pc, addr, hit):
        self.trainings += 1
        page = page_number(addr)
        offset = line_offset_in_page(addr)

        entry = self._dhb.pop(page, None)
        if entry is None:
            if len(self._dhb) >= self.config.dhb_entries:
                del self._dhb[next(iter(self._dhb))]
            self._dhb[page] = _DhbEntry(offset)
            # First access: the OPT may cover the second access.
            stored = self._opt.get(offset)
            if stored is not None and stored[1] >= 2:
                target = offset + stored[0]
                if 0 <= target < LINES_PER_PAGE:
                    return [PrefetchCandidate((page << 6) + target)]
            return ()

        delta = offset - entry.last_offset
        self._dhb[page] = entry  # refresh LRU position
        if delta == 0:
            return ()
        if not entry.deltas:
            self._opt_update(entry.last_offset, offset)
        self._dpt_update(entry.deltas, delta) if entry.deltas else None
        entry.deltas.append(delta)
        del entry.deltas[: -self.config.history_len]
        entry.last_offset = offset
        return self._walk(page, offset, list(entry.deltas))

    def _walk(self, page, offset, history):
        """Chain predictions up to ``degree`` steps ahead."""
        out = []
        position = offset
        for _ in range(self.config.degree):
            delta = self._dpt_lookup(history)
            if delta is None:
                break
            position += delta
            if not 0 <= position < LINES_PER_PAGE:
                break
            out.append(PrefetchCandidate((page << 6) + position))
            history.append(delta)
            del history[: -self.config.history_len]
        return out

    # -- storage ----------------------------------------------------------------

    def storage_breakdown(self):
        cfg = self.config
        dhb_bits = cfg.dhb_entries * (36 + 6 + cfg.history_len * 7)
        dpt_bits = sum(
            cfg.dpt_entries * ((k + 1) * 7 + 2) for k in range(1, cfg.history_len + 1)
        )
        opt_bits = cfg.opt_entries * (6 + 7 + 2)
        return {"dhb": dhb_bits, "dpt-cascade": dpt_bits, "opt": opt_bits}

    def reset(self):
        self._dhb = {}
        self._dpts = [dict() for _ in range(self.config.history_len)]
        self._opt = {}
