"""Next-line prefetcher.

The simplest spatial prefetcher [50]: every training access prefetches
the next ``degree`` sequential lines (bounded to the page).  Zero learned
state — its storage is a degree register.  Useful as a floor baseline in
the related-work bench: anything that loses to next-line on a workload is
not earning its storage there.
"""

from repro.constants import LINE_SHIFT, LINES_PER_PAGE, line_offset_in_page
from repro.prefetchers.base import PrefetchCandidate, Prefetcher


class NextLinePrefetcher(Prefetcher):
    """Prefetch the next N sequential lines on every access."""

    name = "nextline"

    def __init__(self, degree=1):
        if degree < 1:
            raise ValueError("degree must be at least 1")
        self.degree = degree
        self.trainings = 0

    def train(self, cycle, pc, addr, hit):
        self.trainings += 1
        line = addr >> LINE_SHIFT
        offset = line_offset_in_page(addr)
        out = []
        for dist in range(1, self.degree + 1):
            if offset + dist >= LINES_PER_PAGE:
                break
            out.append(PrefetchCandidate(line + dist))
        return out

    def storage_breakdown(self):
        return {"degree-register": 4}
