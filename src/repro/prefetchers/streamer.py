"""Aggressive streaming prefetcher for the appendix pollution study.

The appendix uses "an aggressive but fairly inaccurate streaming
prefetcher [29]" to generate inaccurate prefetches whose LLC victims are
then classified (Figure 20).  This is a classic next-N-lines stream
detector: two ascending (or descending) accesses within a page arm a
stream, after which every access prefetches ``degree`` lines ahead in the
stream direction — accurate on dense streams, wasteful at stream ends and
on irregular traffic, which is precisely the point.
"""

from repro.constants import LINE_SHIFT, LINES_PER_PAGE, line_offset_in_page, page_number
from repro.prefetchers.base import PrefetchCandidate, Prefetcher


class _StreamEntry:
    __slots__ = ("last_offset", "direction", "confidence")

    def __init__(self, last_offset):
        self.last_offset = last_offset
        self.direction = 0
        self.confidence = 0


class StreamPrefetcher(Prefetcher):
    """Next-N-lines stream prefetcher (Chen & Baer style)."""

    name = "streamer"

    def __init__(self, tracked_pages=16, degree=4):
        self.tracked_pages = tracked_pages
        self.degree = degree
        self._streams = {}  # page -> _StreamEntry, dict order = LRU order
        self.trainings = 0

    def train(self, cycle, pc, addr, hit):
        self.trainings += 1
        page = page_number(addr)
        offset = line_offset_in_page(addr)
        line = addr >> LINE_SHIFT
        entry = self._streams.pop(page, None)
        if entry is None:
            if len(self._streams) >= self.tracked_pages:
                oldest = next(iter(self._streams))
                del self._streams[oldest]
            self._streams[page] = _StreamEntry(offset)
            return ()
        direction = 1 if offset > entry.last_offset else -1 if offset < entry.last_offset else 0
        if direction and direction == entry.direction:
            entry.confidence = min(3, entry.confidence + 1)
        elif direction:
            entry.direction = direction
            entry.confidence = 1
        entry.last_offset = offset
        self._streams[page] = entry
        if entry.confidence < 1 or entry.direction == 0:
            return ()
        out = []
        for dist in range(1, self.degree + 1):
            target = offset + entry.direction * dist
            if not 0 <= target < LINES_PER_PAGE:
                break
            out.append(PrefetchCandidate(line + entry.direction * dist))
        return out

    def storage_breakdown(self):
        # page tag (36b) + last offset (6b) + direction (1b) + confidence (2b)
        return {"stream-table": self.tracked_pages * (36 + 6 + 1 + 2)}

    def reset(self):
        self._streams = {}
