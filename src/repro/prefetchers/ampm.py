"""Access Map Pattern Matching (AMPM) prefetcher.

AMPM [43] is evaluated in the paper (Section 4.1) but "under-performs all
other prefetchers in single-thread simulations", so it is excluded from the
figures; we implement it for completeness and for the extra ablation bench.

The design keeps an access bitmap per recently touched page ("access map")
and, on each access at offset ``o``, tests candidate strides ``k``: if
``o - k`` and ``o - 2k`` were both accessed, the pattern is assumed to
continue and ``o + k`` is prefetched.
"""

from repro.constants import LINES_PER_PAGE, line_offset_in_page, page_number
from repro.prefetchers.base import PrefetchCandidate, Prefetcher


class AMPM(Prefetcher):
    """Access-map pattern matching over 4KB zones (Ishii et al., ICS'09)."""

    name = "ampm"

    def __init__(self, map_entries=64, max_stride=16, degree=2):
        self.map_entries = map_entries
        self.max_stride = max_stride
        self.degree = degree
        self._maps = {}  # page -> access bitmap, dict order = LRU order
        self.trainings = 0

    def train(self, cycle, pc, addr, hit):
        self.trainings += 1
        page = page_number(addr)
        offset = line_offset_in_page(addr)
        bitmap = self._maps.pop(page, 0)
        if not bitmap and len(self._maps) >= self.map_entries:
            oldest = next(iter(self._maps))
            del self._maps[oldest]
        bitmap |= 1 << offset
        self._maps[page] = bitmap

        base_line = (page << 6)
        out = []
        for k in self._candidate_strides():
            back1 = offset - k
            back2 = offset - 2 * k
            if not (0 <= back1 < LINES_PER_PAGE and 0 <= back2 < LINES_PER_PAGE):
                continue
            if (bitmap >> back1) & 1 and (bitmap >> back2) & 1:
                for dist in range(1, self.degree + 1):
                    target = offset + k * dist
                    if not 0 <= target < LINES_PER_PAGE:
                        break
                    if not (bitmap >> target) & 1:
                        out.append(PrefetchCandidate(base_line + target))
                break  # first matching stride wins
        return out

    def _candidate_strides(self):
        for k in range(1, self.max_stride + 1):
            yield k
            yield -k

    def storage_breakdown(self):
        # page tag (36b) + 64b access map per entry.
        return {"access-maps": self.map_entries * (36 + LINES_PER_PAGE)}

    def reset(self):
        self._maps = {}
