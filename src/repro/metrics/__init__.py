"""Metrics: aggregation helpers and the appendix pollution classifier."""

from repro.metrics.pollution import PollutionBreakdown, classify_pollution
from repro.metrics.stats import (
    FigureResult,
    category_geomeans,
    geomean,
    render_series,
    render_table,
    speedup_pct,
)

__all__ = [
    "FigureResult",
    "PollutionBreakdown",
    "category_geomeans",
    "classify_pollution",
    "geomean",
    "render_series",
    "render_table",
    "speedup_pct",
]
