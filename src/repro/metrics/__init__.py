"""Metrics: aggregation, the pollution classifier, and quality scoring."""

from repro.metrics.pollution import PollutionBreakdown, classify_pollution
from repro.metrics.quality import (
    METRIC_NAMES,
    QualityCounters,
    QualityProfile,
    counters_from_events,
    counters_from_result,
    validity_issues,
)
from repro.metrics.stats import (
    FigureResult,
    category_geomeans,
    geomean,
    render_series,
    render_table,
    speedup_pct,
)

__all__ = [
    "FigureResult",
    "METRIC_NAMES",
    "PollutionBreakdown",
    "QualityCounters",
    "QualityProfile",
    "category_geomeans",
    "classify_pollution",
    "counters_from_events",
    "counters_from_result",
    "geomean",
    "render_series",
    "render_table",
    "speedup_pct",
    "validity_issues",
]
