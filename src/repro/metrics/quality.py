"""Scored prefetcher-quality metrics.

The paper evaluates prefetchers almost entirely through IPC speedup;
this module adds the *why* behind those speedups as four first-class
rates per (scheme, workload) pair:

- **accuracy** — useful / issued: how often an issued prefetch was
  eventually demanded;
- **coverage** — useful / (useful + L2 demand misses): the share of
  would-be misses the prefetcher absorbed;
- **timeliness** — 1 - late / useful: the share of useful prefetches
  that arrived before their demand (a late prefetch still helps — the
  demand merges with the in-flight fill — but hides less latency);
- **pollution** — useless / issued: the share of issued prefetches that
  were evicted from the LLC without ever being demanded.

All four are computable two ways, and the two must agree exactly:

- the **cheap path** (:func:`counters_from_result`) reads the aggregate
  counters every :class:`~repro.cpu.system.RunResult` already carries —
  no tracing required, cache hits suffice;
- the **exact path** (:func:`counters_from_events`) folds a per-event
  trace (:mod:`repro.observe`) into the same counters, consuming only
  events after the *last* reset marker — the post-warmup region the
  aggregate counters describe.

**Validity gates run first.**  A profile whose counters violate the
structural invariants (negative counts, more late than useful
prefetches, any rate outside [0, 1]) is marked invalid, its issues are
recorded, and its score is pinned to 0.0 rather than computed from
garbage.  Note that ``useful <= issued`` is *not* an invariant: a
prefetch issued during warmup and first demanded after the statistics
reset is counted useful in a window where its issue was not — the
rate gates catch the pathological version of this honestly.

The composite **score** is the unweighted mean of accuracy, coverage,
timeliness and (1 - pollution): 1.0 is a perfect prefetcher, 0.5 is the
do-nothing point (``none`` scores exactly 0.5 — zero accuracy and
coverage, but nothing late and nothing polluting).
"""

from dataclasses import dataclass

from repro.observe.events import (
    EVICTED_UNUSED,
    HIT,
    ISSUE,
    LATE,
    MISS,
    RESET,
    USEFUL,
)

#: Hierarchy level codes at or above which a demand lookup counts as an
#: L2 demand miss (served by the LLC or DRAM) — see LEVEL_NAMES.
_L2_MISS_LEVEL = 2

#: The four rate metrics, in reporting order.
METRIC_NAMES = ("accuracy", "coverage", "timeliness", "pollution")


@dataclass(frozen=True)
class QualityCounters:
    """The five aggregate counts every quality rate derives from."""

    issued: int = 0
    useful: int = 0
    late: int = 0
    useless: int = 0
    l2_demand_misses: int = 0

    def to_dict(self):
        return {
            "issued": self.issued,
            "useful": self.useful,
            "late": self.late,
            "useless": self.useless,
            "l2_demand_misses": self.l2_demand_misses,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(**{k: int(data[k]) for k in cls.__dataclass_fields__})


def counters_from_result(result):
    """Cheap path: counters straight off a ``RunResult``."""
    return QualityCounters(
        issued=result.pf_issued,
        useful=result.pf_useful,
        late=result.pf_late,
        useless=result.pf_useless,
        l2_demand_misses=result.l2_demand_misses,
    )


def counters_from_events(events):
    """Exact path: fold an event trace into :class:`QualityCounters`.

    Only events after the *last* reset marker count (the warmup
    boundary re-zeroes the aggregate counters this path must match).
    Needs both families traced: prefetch events supply the prefetch
    counts, cache events supply the L2 demand misses.
    """
    events = list(events)
    start = 0
    for i, event in enumerate(events):
        if event[0] == RESET:
            start = i + 1
    issued = useful = late = useless = l2_misses = 0
    for event in events[start:]:
        kind = event[0]
        if kind == ISSUE:
            issued += 1
        elif kind == USEFUL:
            useful += 1
        elif kind == LATE:
            late += 1
        elif kind == EVICTED_UNUSED:
            useless += 1
        elif kind in (HIT, MISS) and event[4] >= _L2_MISS_LEVEL:
            l2_misses += 1
    return QualityCounters(issued, useful, late, useless, l2_misses)


def validity_issues(counters):
    """Structural-invariant violations in ``counters`` (empty = clean)."""
    issues = []
    for name, value in counters.to_dict().items():
        if value < 0:
            issues.append(f"negative {name} ({value})")
    if counters.late > counters.useful:
        issues.append(
            f"late ({counters.late}) exceeds useful ({counters.useful})"
        )
    return issues


def _ratio(numerator, denominator):
    return numerator / denominator if denominator else 0.0


@dataclass(frozen=True)
class QualityProfile:
    """Gated, scored quality rates for one (scheme, workload) run."""

    scheme: str
    workload: str
    counters: QualityCounters
    accuracy: float
    coverage: float
    timeliness: float
    pollution: float
    valid: bool
    issues: tuple
    score: float

    @classmethod
    def from_counters(cls, counters, scheme="", workload=""):
        """Gate, compute the rates, and score — the one constructor."""
        issues = validity_issues(counters)
        accuracy = _ratio(counters.useful, counters.issued)
        coverage = _ratio(
            counters.useful, counters.useful + counters.l2_demand_misses
        )
        timeliness = (
            1.0 - _ratio(counters.late, counters.useful)
            if counters.useful
            else 1.0
        )
        pollution = _ratio(counters.useless, counters.issued)
        rates = {
            "accuracy": accuracy,
            "coverage": coverage,
            "timeliness": timeliness,
            "pollution": pollution,
        }
        for name, value in rates.items():
            if not 0.0 <= value <= 1.0:
                issues.append(f"{name} out of [0, 1] ({value:.4f})")
        valid = not issues
        score = (
            (accuracy + coverage + timeliness + (1.0 - pollution)) / 4.0
            if valid
            else 0.0
        )
        return cls(
            scheme=scheme,
            workload=workload,
            counters=counters,
            accuracy=accuracy,
            coverage=coverage,
            timeliness=timeliness,
            pollution=pollution,
            valid=valid,
            issues=tuple(issues),
            score=score,
        )

    @classmethod
    def from_result(cls, result, scheme="", workload=""):
        """Cheap path: profile from a ``RunResult``'s aggregate counters."""
        return cls.from_counters(
            counters_from_result(result), scheme=scheme, workload=workload
        )

    @classmethod
    def from_events(cls, events, scheme="", workload=""):
        """Exact path: profile from a per-event trace."""
        return cls.from_counters(
            counters_from_events(events), scheme=scheme, workload=workload
        )

    def rates(self):
        """The four rate metrics as a dict, in :data:`METRIC_NAMES` order."""
        return {name: getattr(self, name) for name in METRIC_NAMES}

    def to_dict(self):
        """JSON-serializable form (the drift-gate baseline format)."""
        out = {
            "scheme": self.scheme,
            "workload": self.workload,
            "counters": self.counters.to_dict(),
            "valid": self.valid,
            "issues": list(self.issues),
            "score": self.score,
        }
        out.update(self.rates())
        return out

    @classmethod
    def from_dict(cls, data):
        """Rebuild a profile from :meth:`to_dict` output.

        The rates/score are *recomputed* from the stored counters (the
        counters are the source of truth); a hand-edited baseline whose
        rates disagree with its counters is thereby self-correcting.
        """
        return cls.from_counters(
            QualityCounters.from_dict(data["counters"]),
            scheme=data.get("scheme", ""),
            workload=data.get("workload", ""),
        )
