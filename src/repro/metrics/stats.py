"""Statistics helpers and the figure-result container.

The paper reports geometric-mean "performance delta over baseline"
percentages per workload category; these helpers implement exactly that
aggregation plus plain-text rendering for the benchmark harness.
"""

import math
from dataclasses import dataclass, field


def geomean(values):
    """Geometric mean of positive values (empty input -> 0.0)."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup_pct(scheme_ipc, baseline_ipc):
    """Performance delta over baseline in percent, the paper's metric."""
    if baseline_ipc <= 0:
        raise ValueError("baseline IPC must be positive")
    return 100.0 * (scheme_ipc / baseline_ipc - 1.0)


def category_geomeans(per_workload_speedups, categories_of):
    """Aggregate per-workload speedups into per-category geomeans.

    ``per_workload_speedups`` maps workload name -> speedup ratio (not
    percent); ``categories_of`` maps workload name -> category.  Returns
    ``{category: pct, ..., "GEOMEAN": pct}`` with the overall geomean over
    all workloads, mirroring the paper's figures.
    """
    buckets = {}
    for name, ratio in per_workload_speedups.items():
        buckets.setdefault(categories_of[name], []).append(ratio)
    out = {}
    for category, ratios in sorted(buckets.items()):
        out[category] = 100.0 * (geomean(ratios) - 1.0)
    all_ratios = list(per_workload_speedups.values())
    out["GEOMEAN"] = 100.0 * (geomean(all_ratios) - 1.0) if all_ratios else 0.0
    return out


@dataclass
class FigureResult:
    """One reproduced table/figure: labelled rows and columns plus notes."""

    figure_id: str
    title: str
    columns: list
    rows: dict = field(default_factory=dict)  # row label -> {column -> value}
    notes: list = field(default_factory=list)

    def add_row(self, label, values_by_column):
        self.rows[label] = dict(values_by_column)

    def value(self, row, column):
        return self.rows[row][column]

    def render(self, fmt="{:+.1f}"):
        """Plain-text table, one row per series (as the paper's figures)."""
        return render_table(self.title, self.columns, self.rows, fmt, self.notes)

    def render_chart(self, kind="auto", **kwargs):
        """ASCII chart of the same data (line for numeric x, else bars).

        The paper's bandwidth-scaling figures are line graphs over GB/s
        and the category figures are grouped bars; ``kind="auto"`` picks
        by whether the columns are numeric.
        """
        from repro.metrics.asciichart import bar_chart, line_chart

        if kind == "auto":
            numeric = all(isinstance(c, (int, float)) for c in self.columns)
            kind = "line" if numeric and len(self.columns) >= 2 else "bar"
        if kind == "line":
            return line_chart(self.rows, title=self.title, **kwargs)
        if kind == "bar":
            return bar_chart(self.rows, title=self.title, **kwargs)
        raise ValueError(f"unknown chart kind {kind!r} (use 'auto', 'line' or 'bar')")


def _format_cell(value, fmt):
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    return fmt.format(value)


def render_table(title, columns, rows, fmt="{:+.1f}", notes=()):
    """Render a dict-of-dicts table as aligned plain text."""
    col_labels = [str(c) for c in columns]
    header = [""] + col_labels
    body = []
    for label, values in rows.items():
        body.append([str(label)] + [_format_cell(values.get(c), fmt) for c in columns])
    widths = [max(len(row[i]) for row in [header] + body) for i in range(len(header))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    for note in notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_series(title, xs, series, fmt="{:+.1f}"):
    """Render {series_name: {x: y}} as a table with x values as columns."""
    return render_table(title, xs, series, fmt)
