"""Plain-text chart rendering for the figure harness.

The paper's evaluation figures are line graphs (performance vs. DRAM
bandwidth, per-workload s-curves) and bar charts (per-category speedups).
:func:`line_chart` and :func:`bar_chart` render both as fixed-width text
so a bench run reproduces not just the numbers but a readable picture of
the figure, with no plotting dependency.

Both functions accept ``{series_name: {x: y}}`` data — the same layout
:class:`repro.metrics.stats.FigureResult` stores.
"""

import math

#: Glyphs assigned to series, in insertion order.
SERIES_GLYPHS = "*o+x#@%&"


def _finite_values(series):
    out = []
    for points in series.values():
        for value in points.values():
            if value is not None and math.isfinite(value):
                out.append(value)
    return out


def _scale(lo, hi):
    """Pad a value range so extreme points do not sit on the border."""
    if hi <= lo:
        hi = lo + 1.0
    pad = 0.05 * (hi - lo)
    return lo - pad, hi + pad


def line_chart(series, width=68, height=18, x_label="", y_label="", title=""):
    """Render ``{name: {x: y}}`` as an ASCII line chart.

    X positions are scaled numerically (the bandwidth sweep's GB/s points
    are not equidistant); each series draws with its own glyph and the
    legend maps glyphs back to names.
    """
    if not series:
        raise ValueError("no series to draw")
    xs = sorted({x for points in series.values() for x in points})
    if len(xs) < 2:
        raise ValueError("a line chart needs at least two x positions")
    values = _finite_values(series)
    if not values:
        raise ValueError("no finite y values to draw")
    y_lo, y_hi = _scale(min(values), max(values))
    x_lo, x_hi = min(xs), max(xs)

    grid = [[" "] * width for _ in range(height)]

    def col_of(x):
        return round((x - x_lo) / (x_hi - x_lo) * (width - 1))

    def row_of(y):
        frac = (y - y_lo) / (y_hi - y_lo)
        return (height - 1) - round(frac * (height - 1))

    for idx, (name, points) in enumerate(series.items()):
        glyph = SERIES_GLYPHS[idx % len(SERIES_GLYPHS)]
        ordered = sorted((x, y) for x, y in points.items() if y is not None)
        # Connect consecutive points with linearly interpolated steps.
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            c0, c1 = col_of(x0), col_of(x1)
            for col in range(c0, c1 + 1):
                t = (col - c0) / max(1, c1 - c0)
                y = y0 + t * (y1 - y0)
                grid[row_of(y)][col] = glyph
        for x, y in ordered:  # plotted points win over interpolation
            grid[row_of(y)][col_of(x)] = glyph

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_here = y_hi - (y_hi - y_lo) * i / (height - 1)
        label = f"{y_here:8.1f} |" if i % 3 == 0 else "         |"
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    left = f"{x_lo:g}"
    right = f"{x_hi:g}"
    lines.append(
        "          " + left + " " * max(1, width - len(left) - len(right)) + right
    )
    if x_label:
        lines.append(f"          x: {x_label}" + (f"   y: {y_label}" if y_label else ""))
    legend = "   ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append("          " + legend)
    return "\n".join(lines)


def bar_chart(series, width=50, title="", fmt="{:+.1f}"):
    """Render ``{name: {column: value}}`` as grouped horizontal bars.

    One block per column, one bar per series — the shape of the paper's
    per-category bar figures, readable in a terminal.
    """
    if not series:
        raise ValueError("no series to draw")
    columns = []
    for points in series.values():
        for column in points:
            if column not in columns:
                columns.append(column)
    values = _finite_values(series)
    if not values:
        raise ValueError("no finite values to draw")
    v_lo = min(0.0, min(values))
    v_hi = max(values)
    span = max(v_hi - v_lo, 1e-9)
    name_w = max(len(str(name)) for name in series)

    lines = []
    if title:
        lines.append(title)
    for column in columns:
        lines.append(f"{column}:")
        for name, points in series.items():
            value = points.get(column)
            if value is None:
                continue
            filled = round((value - v_lo) / span * width)
            zero = round((0.0 - v_lo) / span * width)
            if value >= 0:
                bar = " " * zero + "#" * max(0, filled - zero)
            else:
                bar = " " * filled + "#" * max(0, zero - filled)
            lines.append(f"  {str(name).ljust(name_w)} |{bar.ljust(width)} " + fmt.format(value))
        lines.append("")
    return "\n".join(lines).rstrip()
