"""LLC pollution classification (appendix, Figure 20).

The appendix classifies LLC victim addresses evicted by inaccurate
prefetches into three classes:

- **NoReuse** — the victim sees no demand within the reuse window of its
  eviction: it was already dead, so the eviction caused no pollution;
- **PrefetchedBeforeUse** — the victim is prefetched back before its next
  demand: extra memory traffic but no added demand miss;
- **BadPollution** — the victim's next demand goes back to main memory:
  a true pollution casualty.

The paper uses a 10M-instruction reuse window; the classifier takes the
window in *demand accesses* so it scales with trace length.
"""

from dataclasses import dataclass


@dataclass
class PollutionBreakdown:
    """Victim counts per class, plus fraction helpers."""

    no_reuse: int = 0
    prefetched_before_use: int = 0
    bad_pollution: int = 0

    @property
    def total(self):
        return self.no_reuse + self.prefetched_before_use + self.bad_pollution

    def fractions(self):
        """Return the three fractions in Figure 20's stacking order."""
        total = self.total
        if total == 0:
            return {"NoReuse": 1.0, "PrefetchedBeforeUse": 0.0, "BadPollution": 0.0}
        return {
            "NoReuse": self.no_reuse / total,
            "PrefetchedBeforeUse": self.prefetched_before_use / total,
            "BadPollution": self.bad_pollution / total,
        }


def classify_pollution(victim_events, demand_events, prefetch_fills, reuse_window):
    """Classify LLC victims of prefetch fills per the appendix's taxonomy.

    ``victim_events`` — [(event_index, victim_line)] evictions caused by
    prefetch fills, in occurrence order; ``demand_events`` — [(event_index,
    line)] demand accesses below L1; ``prefetch_fills`` — [(event_index,
    line)] prefetch fills into on-die caches.  ``event_index`` is any shared
    monotonically comparable ordinal (we use the demand-access ordinal).
    ``reuse_window`` is how far ahead (in the same ordinal) to look for the
    victim's next use.
    """
    # Build per-line sorted event lists for binary search.
    from bisect import bisect_right
    from collections import defaultdict

    demands_by_line = defaultdict(list)
    for idx, line in demand_events:
        demands_by_line[line].append(idx)
    fills_by_line = defaultdict(list)
    for idx, line in prefetch_fills:
        fills_by_line[line].append(idx)

    breakdown = PollutionBreakdown()
    for evict_idx, victim in victim_events:
        demand_list = demands_by_line.get(victim)
        next_demand = None
        if demand_list:
            pos = bisect_right(demand_list, evict_idx)
            if pos < len(demand_list):
                next_demand = demand_list[pos]
        if next_demand is None or next_demand - evict_idx > reuse_window:
            breakdown.no_reuse += 1
            continue
        fill_list = fills_by_line.get(victim)
        refetched = False
        if fill_list:
            pos = bisect_right(fill_list, evict_idx)
            if pos < len(fill_list) and fill_list[pos] <= next_demand:
                refetched = True
        if refetched:
            breakdown.prefetched_before_use += 1
        else:
            breakdown.bad_pollution += 1
    return breakdown
