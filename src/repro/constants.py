"""Address-geometry constants shared across the simulator.

The paper (Table 2) models 64-byte cache lines and 4KB physical pages.
DSPatch additionally splits each page into two 2KB segments (Section 3.7)
and compresses bit-patterns to a 128-byte granularity (Section 3.8).
"""

LINE_SIZE = 64
LINE_SHIFT = 6

PAGE_SIZE = 4096
PAGE_SHIFT = 12

#: Number of 64B cache lines in a 4KB page (uncompressed bit-pattern width).
LINES_PER_PAGE = PAGE_SIZE // LINE_SIZE

#: Number of 64B lines in a 2KB segment (half-page trigger granularity).
LINES_PER_SEGMENT = LINES_PER_PAGE // 2

#: Width of a 128B-granularity compressed page pattern (Section 3.8).
COMPRESSED_BITS_PER_PAGE = LINES_PER_PAGE // 2

#: Width of one compressed half (2KB segment) of a page pattern.
COMPRESSED_BITS_PER_SEGMENT = COMPRESSED_BITS_PER_PAGE // 2

#: Table 2 LLC capacities: single-thread (2MB) and multi-programmed
#: shared (8MB) machines.  Single source for `SystemConfig` factory
#: defaults and the engine's spec defaults.
ST_LLC_BYTES = 2 * 1024 * 1024
MP_LLC_BYTES = 8 * 1024 * 1024


def line_address(addr):
    """Return the cache-line address (byte address >> 6) of ``addr``."""
    return addr >> LINE_SHIFT


def page_number(addr):
    """Return the 4KB physical page number of byte address ``addr``."""
    return addr >> PAGE_SHIFT


def line_offset_in_page(addr):
    """Return the 64B-line offset (0..63) of ``addr`` within its 4KB page."""
    return (addr >> LINE_SHIFT) & (LINES_PER_PAGE - 1)


def segment_of_line_offset(line_off):
    """Return the 2KB segment index (0 or 1) of a line offset in a page."""
    return line_off >> 5
