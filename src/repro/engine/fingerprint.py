"""Content-addressed cache keys for simulation artifacts.

Every persistent artifact (a generated trace, a single-core run, a
multi-programmed run) is stored under a fingerprint: the SHA-256 of a
canonical JSON description of *everything that determines the result* —
the workload, scheme, trace length, DRAM/LLC/core configuration — plus a
**code-version salt** derived from the simulator sources themselves.

The salt makes invalidation automatic: any edit to a module that can
change simulation results (cpu/, memory/, core/, prefetchers/,
workloads/, constants.py, or the engine itself) produces a new salt, so
stale results are unreachable rather than merely unlikely.  There is no
manual version number to forget to bump.
"""

import hashlib
import json
from dataclasses import asdict, is_dataclass
from pathlib import Path

#: Sub-trees of ``src/repro`` whose source participates in the salt.
#: Anything that can change a simulation result (or the on-disk encoding
#: of one) must be listed here.
_SALTED_SOURCES = (
    "constants.py",
    "cpu",
    "memory",
    "core",
    "kernel",
    "prefetchers",
    "workloads",
    "engine",
)

_code_salt = None


def code_salt():
    """Hex digest covering the simulator's source code (memoized)."""
    global _code_salt
    if _code_salt is None:
        h = hashlib.sha256()
        root = Path(__file__).resolve().parent.parent
        for name in _SALTED_SOURCES:
            path = root / name
            files = [path] if path.is_file() else sorted(path.rglob("*.py"))
            for f in files:
                h.update(str(f.relative_to(root)).encode())
                h.update(b"\0")
                h.update(f.read_bytes())
                h.update(b"\0")
        _code_salt = h.hexdigest()[:16]
    return _code_salt


def _canonical(value):
    """Reduce config objects to JSON-serializable canonical form."""
    if is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": type(value).__name__, **_canonical(asdict(value))}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot fingerprint value of type {type(value).__name__}")


def fingerprint(kind, **fields):
    """Content digest for one artifact: ``kind`` + canonical fields + salt."""
    payload = json.dumps(
        {"kind": kind, "salt": code_salt(), "fields": _canonical(fields)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def trace_fingerprint(workload, length):
    """Key for a generated workload trace."""
    return fingerprint("trace", workload=workload, length=length)


def run_fingerprint(workload, scheme, length, dram, llc_bytes, record_pollution):
    """Key for a memoized single-core run (``Session.run(RunSpec(...))``)."""
    return fingerprint(
        "run",
        workload=workload,
        scheme=scheme,
        length=length,
        dram=dram,
        llc_bytes=llc_bytes,
        record_pollution=record_pollution,
    )


def mix_fingerprint(mix_name, workload_names, scheme, length_per_core, dram, llc_bytes=None):
    """Key for a memoized multi-programmed run.

    ``llc_bytes`` defaults to the MP machine's shared-LLC capacity (what
    every pre-spec caller implicitly simulated).
    """
    from repro.constants import MP_LLC_BYTES

    return fingerprint(
        "mix",
        mix_name=mix_name,
        workloads=list(workload_names),
        scheme=scheme,
        length_per_core=length_per_core,
        dram=dram,
        llc_bytes=MP_LLC_BYTES if llc_bytes is None else llc_bytes,
    )
