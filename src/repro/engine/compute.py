"""Pure computation layer: disk-cache-aware trace/run/mix production.

These functions are the single implementation behind both the in-process
memoization in :mod:`repro.experiments.runner` and the process-pool
workers in :mod:`repro.engine.parallel`.  Each one:

1. consults the on-disk store (if enabled) under the artifact's
   content-addressed fingerprint;
2. on a miss, computes the artifact exactly the way the pre-engine
   sequential code did (same construction order, same arithmetic — results
   are bit-for-bit identical whether computed here, loaded from disk, or
   produced by a worker process);
3. writes the fresh artifact back to the store.
"""

from repro.cpu.system import MultiCoreSystem, System, SystemConfig
from repro.engine.config import active_store
from repro.engine.fingerprint import mix_fingerprint, run_fingerprint, trace_fingerprint

#: In-process trace memo shared by every compute path (direct calls, the
#: runner's ``get_trace``, and per-worker compute in the pool), so one
#: process never materializes the same (workload, length) trace twice —
#: with the disk layer disabled this is the only trace cache.
#: ``runner.clear_run_cache`` clears it alongside the run memos.
TRACE_MEMO = {}


def produce_trace(workload, length):
    """Memoized load-or-build of one workload trace (``.npz`` on disk)."""
    from repro.workloads.catalog import WORKLOADS

    key = (workload, length)
    trace = TRACE_MEMO.get(key)
    if trace is not None:
        return trace
    store = active_store()
    digest = trace_fingerprint(workload, length)
    if store is not None:
        trace = store.load_trace(digest)
        if trace is not None:
            TRACE_MEMO[key] = trace
            return trace
    trace = WORKLOADS[workload].build(length)
    if store is not None:
        store.save_trace(digest, trace)
    TRACE_MEMO[key] = trace
    return trace


def produce_run(workload, scheme, length, dram, llc_bytes, record_pollution):
    """Load-or-compute one single-core run; returns a ``RunResult``."""
    store = active_store()
    digest = run_fingerprint(workload, scheme, length, dram, llc_bytes, record_pollution)
    if store is not None:
        result = store.load_result(digest)
        if result is not None:
            return result
    config = SystemConfig.single_thread(
        scheme, dram=dram, llc_bytes=llc_bytes, record_pollution_victims=record_pollution
    )
    result = System(config).run(produce_trace(workload, length))
    if store is not None:
        store.save_result(
            digest,
            result,
            meta={"kind": "run", "workload": workload, "scheme": scheme, "length": length},
        )
    return result


def produce_mix(mix_name, workload_names, scheme, length_per_core, dram):
    """Load-or-compute one 4-core mix; returns a ``MultiProgramResult``."""
    from repro.workloads.mixes import build_mix_traces

    store = active_store()
    digest = mix_fingerprint(mix_name, workload_names, scheme, length_per_core, dram)
    if store is not None:
        result = store.load_result(digest)
        if result is not None:
            return result
    config = SystemConfig.multi_programmed(scheme, dram=dram)
    traces = build_mix_traces(workload_names, length_per_core)
    result = MultiCoreSystem(config).run(traces)
    if store is not None:
        store.save_result(
            digest,
            result,
            meta={"kind": "mix", "mix": mix_name, "scheme": scheme, "length": length_per_core},
        )
    return result
