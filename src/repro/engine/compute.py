"""Computation layer: pure simulation plus backend-aware production.

Two levels live here, both spec-driven:

- **pure compute** (:func:`build_trace_artifact`, :func:`simulate_run`,
  :func:`simulate_mix`) — the exact pre-engine sequential code path
  (same construction order, same arithmetic), no caching.  Results are
  bit-for-bit identical whether computed in-process, by a pool worker,
  or loaded back from any store backend;
- **backend-aware production** (:func:`produce_trace_with`,
  :func:`produce_run_with`, :func:`produce_mix_with`) — consult a
  :class:`~repro.engine.backends.StoreBackend` under the spec's
  content-addressed fingerprint, compute on a miss, write the fresh
  artifact back.  These are what :class:`repro.engine.session.Session`
  (and its pool workers) execute.

The legacy positional-argument entry points (``produce_trace``,
``produce_run``, ``produce_mix``) remain as thin delegates to the
default session so pre-session callers keep working unchanged.
"""

from repro.cpu.system import MultiCoreSystem, System, SystemConfig
from repro.engine.specs import MixSpec, RunSpec, TraceSpec

#: In-process trace memo of the **default session** (kept at module level
#: so every path — direct engine calls, the session API, forked
#: pool workers — shares one dict, exactly as before the session API).
#: Explicit sessions own private memos instead.
TRACE_MEMO = {}


# -- pure compute (no caching) ---------------------------------------------


def build_trace_artifact(spec):
    """Generate one workload trace exactly as the catalog builds it."""
    from repro.workloads.catalog import WORKLOADS

    return WORKLOADS[spec.workload].build(spec.length)


def simulate_run(spec, trace):
    """One single-core run of ``trace`` on the machine ``spec`` describes."""
    config = SystemConfig.single_thread(
        spec.scheme,
        dram=spec.dram,
        llc_bytes=spec.llc_bytes,
        record_pollution_victims=spec.record_pollution,
    )
    return System(config).run(trace)


def simulate_mix(spec):
    """One multi-programmed run of the mix ``spec`` describes.

    Executes through :class:`MultiCoreSystem`'s batched interleave driver
    (``repro.cpu.core.interleave_batched``); the engine's code-version salt
    covers ``cpu/``, so the driver change (and its warmup-boundary fixes)
    invalidated previously cached mix results automatically.
    """
    from repro.workloads.mixes import build_mix_traces

    config = SystemConfig.multi_programmed(
        spec.scheme, dram=spec.dram, llc_bytes=spec.llc_bytes
    )
    traces = build_mix_traces(list(spec.workloads), spec.length_per_core)
    return MultiCoreSystem(config).run(traces)


# -- backend-aware production ----------------------------------------------


def load_artifact(spec, backend):
    """Probe ``backend`` for one spec's artifact; ``None`` on a miss."""
    if backend is None:
        return None
    if isinstance(spec, TraceSpec):
        return backend.load_trace(spec.fingerprint())
    return backend.load_result(spec.fingerprint())


def save_artifact(spec, result, backend):
    """Persist one computed artifact under its spec's fingerprint."""
    if backend is None:
        return
    if isinstance(spec, TraceSpec):
        backend.save_trace(spec.fingerprint(), result)
    elif isinstance(spec, RunSpec):
        backend.save_result(
            spec.fingerprint(),
            result,
            meta={
                "kind": "run",
                "workload": spec.workload,
                "scheme": spec.scheme,
                "length": spec.length,
            },
        )
    elif isinstance(spec, MixSpec):
        backend.save_result(
            spec.fingerprint(),
            result,
            meta={
                "kind": "mix",
                "mix": spec.mix_name,
                "scheme": spec.scheme,
                "length": spec.length_per_core,
            },
        )


def produce_trace_with(spec, backend, memo):
    """Memoized load-or-build of one trace through ``backend``."""
    key = (spec.workload, spec.length)
    trace = memo.get(key)
    if trace is not None:
        return trace
    if backend is not None:
        digest = spec.fingerprint()
        trace = backend.load_trace(digest)
        if trace is not None:
            memo[key] = trace
            return trace
    trace = build_trace_artifact(spec)
    save_artifact(spec, trace, backend)
    memo[key] = trace
    return trace


def produce_run_with(spec, backend, trace_memo):
    """Load-or-compute one single-core run; returns a ``RunResult``."""
    digest = spec.fingerprint()
    if backend is not None:
        result = backend.load_result(digest)
        if result is not None:
            return result
    trace = produce_trace_with(spec.trace_spec, backend, trace_memo)
    result = simulate_run(spec, trace)
    save_artifact(spec, result, backend)
    return result


def produce_mix_with(spec, backend):
    """Load-or-compute one mix; returns a ``MultiProgramResult``."""
    digest = spec.fingerprint()
    if backend is not None:
        result = backend.load_result(digest)
        if result is not None:
            return result
    result = simulate_mix(spec)
    save_artifact(spec, result, backend)
    return result


# -- legacy positional entry points ----------------------------------------


def produce_trace(workload, length):
    """Legacy entry point: the default session's trace production."""
    from repro.engine.session import default_session

    return default_session().trace(TraceSpec(workload, length))


def produce_run(workload, scheme, length, dram, llc_bytes, record_pollution):
    """Legacy entry point: one single-core run via the default session."""
    from repro.engine.session import default_session

    return default_session().run(
        RunSpec(workload, scheme, length, dram, llc_bytes, record_pollution)
    )


def produce_mix(mix_name, workload_names, scheme, length_per_core, dram):
    """Legacy entry point: one mix via the default session."""
    from repro.engine.session import default_session

    return default_session().run(
        MixSpec(mix_name, tuple(workload_names), scheme, length_per_core, dram)
    )
