"""Pluggable store backends for simulation artifacts.

A backend persists two artifact kinds under content-addressed digests
(see :mod:`repro.engine.fingerprint`): pickled *results* (``RunResult`` /
``MultiProgramResult``) and ``.npz``-encoded *traces*.  The
:class:`StoreBackend` protocol is the full surface a
:class:`repro.engine.session.Session` needs; anything implementing it
can be plugged in via ``Session(backend=...)``.

Three implementations ship here:

- :class:`LocalDirBackend` — the on-disk directory store (what
  ``engine/store.py`` historically called ``ResultStore``);
- :class:`InMemoryBackend` — a process-local store that round-trips
  artifacts through ``pickle`` bytes, for hermetic tests and ephemeral
  sessions;
- :class:`TieredBackend` — a read-through pair: a writable local backend
  over a read-only shared one (a network mount, a CI artifact dir), the
  first step toward host-portable shared caches — the content-addressed
  keys already make entries portable.
"""

import os
import pickle
import re
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.cpu.trace import Trace

#: Shape of a valid store key: the spec fingerprint, 64 lowercase hex.
_DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")


def _fsync_directory(path):
    """Flush a directory's metadata (the rename itself) to disk.

    Best-effort and POSIX-only: without it an ``os.replace`` survives a
    process crash but not a power loss — the file's *bytes* are synced
    separately, this pins the *name*.  Filesystems that refuse directory
    fds (or non-POSIX platforms) degrade silently; the write is still
    crash-atomic, just not power-loss-durable.
    """
    if not hasattr(os, "O_DIRECTORY"):
        return
    try:
        fd = os.open(path, os.O_RDONLY | os.O_DIRECTORY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@runtime_checkable
class StoreBackend(Protocol):
    """What a session-pluggable artifact store must implement.

    ``load_*`` return ``None`` on a miss; ``save_*`` are best-effort
    (a failing backend must degrade to no-persistence, never fail the
    simulation that produced the artifact).
    """

    #: Whether writes made in one process are visible from another (true
    #: for filesystem-backed stores).  Sessions use this to decide how to
    #: involve the backend in process-pool execution.
    shared_across_processes: bool

    def load_result(self, digest): ...

    def save_result(self, digest, result, meta=None): ...

    def load_trace(self, digest): ...

    def save_trace(self, digest, trace): ...

    def clear(self): ...

    def stats(self): ...


class LocalDirBackend:
    """Content-addressed persistence in a local directory tree.

    Layout (under ``root``)::

        results/<aa>/<digest>.pkl   # pickled {"meta": ..., "result": ...}
        traces/<aa>/<digest>.npz    # Trace round-trip (Trace.save/load)

    ``<aa>`` is the first two hex digits of the digest (fan-out so a
    large cache does not put tens of thousands of files in one
    directory).  Writes go through a temp file + ``os.replace`` so
    concurrent writers (the process-pool workers) can never expose a
    torn file; both writers produce identical bytes-for-key content, so
    the race is benign.

    Results are pickled, not JSON-encoded: the acceptance bar for the
    cache is *bit-for-bit* identity with a fresh computation, and pickle
    round-trips floats and dataclasses losslessly.  Keys embed a
    source-code salt (see :mod:`repro.engine.fingerprint`), so
    unpickling never crosses a code version.  Corrupt or unreadable
    entries are treated as misses.

    Writes are best-effort: the store is an optimization, so an
    unwritable cache directory degrades to no-persistence (with one
    warning on stderr) instead of failing the simulation that produced
    the result.
    """

    #: Roots that already warned about failed writes (class-level so the
    #: warning fires once per location, not once per store instance).
    _warned_roots = set()

    shared_across_processes = True

    def __init__(self, root, touch_on_load=True):
        self.root = Path(root)
        #: Whether cache hits refresh the artifact's mtime (LRU recency
        #: for ``gc``).  Disabled for stores mounted read-only — e.g. the
        #: shared tier of a :class:`TieredBackend`, whose eviction order
        #: belongs to the owning host, not its readers.
        self.touch_on_load = touch_on_load

    def _write_failed(self, exc):
        root = str(self.root)
        if root not in LocalDirBackend._warned_roots:
            LocalDirBackend._warned_roots.add(root)
            print(
                f"warning: engine cache at {root} is not writable ({exc}); "
                "results will not persist",
                file=sys.stderr,
            )

    # -- paths ---------------------------------------------------------------

    def _result_path(self, digest):
        return self.root / "results" / digest[:2] / f"{digest}.pkl"

    def _trace_path(self, digest):
        return self.root / "traces" / digest[:2] / f"{digest}.npz"

    @staticmethod
    def _atomic_write(path, writer):
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as f:
                writer(f)
                # Durability, not just atomicity: sync the bytes before
                # publishing the name.  Without this, a power loss after
                # the rename can leave a *published* torn file — which
                # the corrupt-entry handling then masks as a permanent
                # silent miss.
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
            _fsync_directory(path.parent)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- results -------------------------------------------------------------

    @staticmethod
    def _touch(path):
        """Best-effort mtime bump on a cache hit.

        ``gc`` evicts oldest-mtime-first, so refreshing the mtime on every
        load turns the mtime order into a true least-recently-*used* order
        rather than least-recently-written.
        """
        try:
            os.utime(path, None)
        except OSError:
            pass

    def load_result(self, digest):
        """Return the stored object for ``digest`` or ``None`` on a miss."""
        path = self._result_path(digest)
        try:
            with open(path, "rb") as f:
                result = pickle.load(f)["result"]
        except Exception:
            # A truncated or corrupted pickle stream can raise nearly
            # anything (UnpicklingError, EOFError, ValueError, ImportError,
            # MemoryError...); every decode failure is a miss — the entry
            # is recomputed and rewritten, never fatal.
            return None
        if self.touch_on_load:
            self._touch(path)
        return result

    def save_result(self, digest, result, meta=None):
        """Persist ``result`` under ``digest`` (atomic, best-effort)."""
        payload = {"meta": meta or {}, "result": result}
        try:
            self._atomic_write(
                self._result_path(digest),
                lambda f: pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL),
            )
        except OSError as exc:
            self._write_failed(exc)

    # -- traces --------------------------------------------------------------

    def load_trace(self, digest):
        """Return the stored :class:`Trace` for ``digest`` or ``None``."""
        path = self._trace_path(digest)
        try:
            trace = Trace.load(path)
        except Exception:
            # A truncated .npz raises zipfile.BadZipFile (not an OSError),
            # corrupt arrays raise ValueError/KeyError; all of it is a miss.
            return None
        if self.touch_on_load:
            self._touch(path)
        return trace

    def save_trace(self, digest, trace):
        """Persist ``trace`` under ``digest`` (atomic, best-effort)."""
        path = self._trace_path(digest)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".npz")
        except OSError as exc:
            self._write_failed(exc)
            return
        os.close(fd)
        try:
            trace.save(tmp)
            # Same durability contract as _atomic_write: the .npz was
            # written (and closed) by numpy, so reopen to sync its bytes
            # before the rename publishes the name.
            sync_fd = os.open(tmp, os.O_RDONLY)
            try:
                os.fsync(sync_fd)
            finally:
                os.close(sync_fd)
            os.replace(tmp, path)
            _fsync_directory(path.parent)
        except OSError as exc:
            self._write_failed(exc)
            try:
                os.unlink(tmp)
            except OSError:
                pass
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance ---------------------------------------------------------

    def clear(self):
        """Delete every cached artifact (results and traces)."""
        for sub in ("results", "traces"):
            shutil.rmtree(self.root / sub, ignore_errors=True)

    #: Temp files younger than this are presumed to belong to a live
    #: writer; older ones are orphans from a killed process and become
    #: ordinary eviction candidates so gc can reclaim their bytes.
    _TMP_GRACE_SECONDS = 3600.0

    def _artifacts(self):
        """All (mtime, size, path) triples under results/ and traces/."""
        entries = []
        now = time.time()
        for sub in ("results", "traces"):
            base = self.root / sub
            if not base.is_dir():
                continue
            for path in base.rglob("*"):
                if not path.is_file():
                    continue
                try:
                    st = path.stat()
                except OSError:
                    continue  # racing writer/evictor; skip
                if (
                    path.name.startswith(".tmp-")
                    and now - st.st_mtime < self._TMP_GRACE_SECONDS
                ):
                    # In-progress _atomic_write temp file: deleting it
                    # would yank it out from under a live writer.
                    continue
                entries.append((st.st_mtime, st.st_size, path))
        return entries

    def gc(self, max_bytes):
        """Size-bounded eviction: keep the store at or below ``max_bytes``.

        Artifacts are evicted least-recently-used first (mtime order —
        loads refresh mtimes, so this is true LRU for anything read
        through the store), across results and traces together.  Returns
        a summary dict for the CLI: removed/kept counts and byte totals.
        Deletions are best-effort; a file that vanishes or resists
        unlinking is skipped, never fatal.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        entries = self._artifacts()
        total = sum(size for _, size, _ in entries)
        removed = 0
        freed = 0
        if total > max_bytes:
            entries.sort(key=lambda e: (e[0], str(e[2])))  # oldest first
            for _mtime, size, path in entries:
                if total - freed <= max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                freed += size
                removed += 1
                # Empty <aa>/ shard directories are left in place: there
                # are at most 256 per kind, and removing one can race a
                # concurrent writer between its mkdir and mkstemp.
        return {
            "removed": removed,
            "freed_bytes": freed,
            "kept": len(entries) - removed,
            "remaining_bytes": total - freed,
        }

    def stats(self):
        """Entry counts and total bytes, for ``repro cache`` / tests."""
        out = {}
        total_bytes = 0
        for sub in ("results", "traces"):
            base = self.root / sub
            files = [p for p in base.rglob("*") if p.is_file()] if base.is_dir() else []
            out[sub] = len(files)
            total_bytes += sum(p.stat().st_size for p in files)
        out["bytes"] = total_bytes
        return out

    def _decodable(self, kind, path):
        """Can this artifact actually be loaded?  (The scrub's oracle —
        the same decode the hot path performs, so anything verify passes
        the cache will serve.)"""
        try:
            if kind == "results":
                with open(path, "rb") as f:
                    payload = pickle.load(f)
                return isinstance(payload, dict) and "result" in payload
            Trace.load(path)
            return True
        except Exception:
            return False

    def verify(self, repair=False):
        """Scrub the store: check every entry decodes and sits under the
        name/shard the layout contract demands.

        The load paths deliberately treat corrupt entries as misses so a
        torn file can never crash a run — but that also makes them
        *silent permanent* misses.  ``verify`` is the loud counterpart:
        it walks ``results/`` and ``traces/``, re-decodes every
        artifact, and reports entries that are corrupt (undecodable) or
        foreign (name is not a ``<digest 64-hex><right suffix>`` under
        its own ``<aa>`` shard).  With ``repair=True`` both kinds are
        moved to ``corrupt/`` under the store root — non-destructive
        quarantine, so the bytes stay inspectable while the key becomes
        an honest recomputable miss.

        Returns a report dict: counts plus ``entries`` — a list of
        ``(reason, path)`` pairs (reason in ``"corrupt"``/``"foreign"``).
        In-progress ``.tmp-`` writer files are skipped, like ``gc``.
        """
        report = {
            "checked": 0,
            "ok": 0,
            "corrupt": 0,
            "foreign": 0,
            "quarantined": 0,
            "entries": [],
        }
        suffixes = {"results": ".pkl", "traces": ".npz"}
        for kind in ("results", "traces"):
            base = self.root / kind
            if not base.is_dir():
                continue
            for path in sorted(p for p in base.rglob("*") if p.is_file()):
                if path.name.startswith(".tmp-"):
                    continue
                report["checked"] += 1
                digest = path.stem
                well_named = (
                    _DIGEST_RE.match(digest) is not None
                    and path.suffix == suffixes[kind]
                    and path.parent.name == digest[:2]
                    and path.parent.parent == base
                )
                if not well_named:
                    reason = "foreign"
                elif not self._decodable(kind, path):
                    reason = "corrupt"
                else:
                    report["ok"] += 1
                    continue
                report[reason] += 1
                report["entries"].append((reason, str(path)))
                if repair and self._quarantine(path):
                    report["quarantined"] += 1
        return report

    def _quarantine(self, path):
        """Move one bad entry to ``corrupt/`` (best-effort); True on success."""
        target_dir = self.root / "corrupt"
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            target = target_dir / path.name
            counter = 0
            while target.exists():
                counter += 1
                target = target_dir / f"{path.name}.{counter}"
            os.replace(path, target)
            return True
        except OSError as exc:
            self._write_failed(exc)
            return False


class InMemoryBackend:
    """Process-local store holding artifacts as ``pickle`` bytes.

    Artifacts are serialized on save and deserialized on load, so a hit
    returns a *distinct* object with a bit-identical payload — the same
    observable behaviour as the disk store, which is what makes this
    backend a faithful stand-in for tests.  Traces round-trip the same
    way (``Trace`` pickles its arrays losslessly).
    """

    shared_across_processes = False

    def __init__(self):
        self._results = {}
        self._traces = {}

    def load_result(self, digest):
        blob = self._results.get(digest)
        return None if blob is None else pickle.loads(blob)

    def save_result(self, digest, result, meta=None):
        self._results[digest] = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)

    def load_trace(self, digest):
        blob = self._traces.get(digest)
        return None if blob is None else pickle.loads(blob)

    def save_trace(self, digest, trace):
        self._traces[digest] = pickle.dumps(trace, protocol=pickle.HIGHEST_PROTOCOL)

    def clear(self):
        self._results.clear()
        self._traces.clear()

    def stats(self):
        return {
            "results": len(self._results),
            "traces": len(self._traces),
            "bytes": sum(len(b) for b in self._results.values())
            + sum(len(b) for b in self._traces.values()),
        }


class TieredBackend:
    """Read-through pair: a writable ``local`` over a ``shared`` tier.

    Loads consult ``local`` first, then ``shared``; a shared hit is
    promoted into ``local`` — exactly once, since the promoted copy
    serves every later load — so subsequent loads (and gc recency) are
    local.  ``clear`` and ``gc`` touch **only** the local tier.

    By default (``write_through=False``) saves also touch only the local
    tier: the shared tier is read-only by contract (a network mount, a
    CI-published artifact directory, another host's cache) and must
    never be written.  ``write_through=True`` additionally pushes every
    save to the shared tier — the composition the engine builds for a
    *remote* shared store (``--remote-cache``), where publishing fresh
    results is the whole point and the remote backend handles its own
    read-only/offline degradation.
    """

    def __init__(self, local, shared, write_through=False):
        self.local = local
        self.shared = shared
        self.write_through = write_through

    @property
    def shared_across_processes(self):
        """Cross-process iff both tiers are."""
        return bool(
            getattr(self.local, "shared_across_processes", False)
            and getattr(self.shared, "shared_across_processes", False)
        )

    def load_result(self, digest):
        result = self.local.load_result(digest)
        if result is not None:
            return result
        result = self.shared.load_result(digest)
        if result is not None:
            # Promotion targets the local tier directly (never through
            # write_through): the artifact came *from* the shared tier,
            # so pushing it back would be a pointless redundant write.
            self.local.save_result(digest, result, meta={"promoted": True})
        return result

    def save_result(self, digest, result, meta=None):
        self.local.save_result(digest, result, meta=meta)
        if self.write_through:
            self.shared.save_result(digest, result, meta=meta)

    def load_trace(self, digest):
        trace = self.local.load_trace(digest)
        if trace is not None:
            return trace
        trace = self.shared.load_trace(digest)
        if trace is not None:
            self.local.save_trace(digest, trace)
        return trace

    def save_trace(self, digest, trace):
        self.local.save_trace(digest, trace)
        if self.write_through:
            self.shared.save_trace(digest, trace)

    def clear(self):
        self.local.clear()

    def gc(self, max_bytes):
        return self.local.gc(max_bytes)

    def verify(self, repair=False):
        """Scrub the writable tier (the only one this process owns)."""
        if hasattr(self.local, "verify"):
            return self.local.verify(repair=repair)
        return None

    def stats(self):
        """Local-tier stats plus the shared tier's entry counts.

        ``setdefault`` so nesting (local-over-shared-dir, all over a
        remote tier) keeps the innermost shared counts — the outer
        (remote) tier reports through its own backend's ``stats``.
        """
        out = dict(self.local.stats())
        try:
            shared = self.shared.stats()
        except OSError:
            shared = {}
        out.setdefault("shared_results", shared.get("results", 0))
        out.setdefault("shared_traces", shared.get("traces", 0))
        # A remote shared tier counts the round trips its /v1/has batch
        # probes avoided; surface it so `repro cache` can show the win.
        savings = getattr(self.shared, "probe_savings", None)
        if savings is not None:
            out.setdefault("probe_round_trips_saved", savings)
        return out
