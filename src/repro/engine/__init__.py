"""Simulation engine: persistent caching and parallel execution.

The engine sits between the figure drivers (``repro.experiments``) and
the raw simulators (``repro.cpu`` / ``repro.memory``), adding two
properties the per-figure memoization in ``runner`` cannot provide:

- **persistence** — results and traces live in a content-addressed
  on-disk store keyed by workload/scheme/config *and* a source-code
  salt, so a re-run of any bench or driver pays disk-load cost, not
  simulation cost, and stale results are structurally unreachable;
- **parallelism** — independent (workload, scheme, config) runs fan out
  over a process pool with deterministic, input-order result merge.

See ``docs/engine.md`` for the cache layout and the determinism
guarantees.
"""

from repro.engine.config import (
    EngineConfig,
    active_store,
    configure,
    current_config,
    reset_config,
)
from repro.engine.compute import produce_mix, produce_run, produce_trace
from repro.engine.fingerprint import (
    code_salt,
    fingerprint,
    mix_fingerprint,
    run_fingerprint,
    trace_fingerprint,
)
from repro.engine.parallel import execute_spec, execute_specs, mix_spec, run_spec
from repro.engine.store import ResultStore

__all__ = [
    "EngineConfig",
    "ResultStore",
    "active_store",
    "code_salt",
    "configure",
    "current_config",
    "execute_spec",
    "execute_specs",
    "fingerprint",
    "mix_fingerprint",
    "mix_spec",
    "produce_mix",
    "produce_run",
    "produce_trace",
    "reset_config",
    "run_fingerprint",
    "run_spec",
    "trace_fingerprint",
]
