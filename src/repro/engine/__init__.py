"""Simulation engine: sessions, persistent caching, parallel execution.

The engine sits between the figure drivers (``repro.experiments``) and
the raw simulators (``repro.cpu`` / ``repro.memory``).  Its public
surface is the **session API**:

- :class:`TraceSpec` / :class:`RunSpec` / :class:`MixSpec` — immutable
  specs that canonicalize one experiment and own its content-addressed
  fingerprint (workload/scheme/config + a source-code salt);
- :class:`Session` — owns an engine configuration, the in-process memo
  layers and a pluggable :class:`StoreBackend`; ``Session.run(specs)``
  executes any batch with deterministic input-order merge and optional
  process-pool fan-out;
- :class:`LocalDirBackend` / :class:`InMemoryBackend` /
  :class:`TieredBackend` / :class:`RemoteBackend` / :class:`S3Backend`
  — store backends (on-disk, ephemeral, read-through
  local-over-shared, an HTTP(S) client for a ``repro serve`` cache
  server, and a stdlib-only SigV4 client for any S3-compatible object
  store);
- the **sweep farm** (:class:`WorkQueue` / :class:`QueueClient` /
  :func:`run_worker`) — ``Session.run(specs, distributed=True)`` offers
  a batch to ``repro work`` peers through the cache server's
  lease-based work queue, and transparently finishes locally whatever
  the farm never delivers.

Quick tour::

    from repro.engine import RunSpec, Session

    session = Session(cache_dir="/tmp/my-cache", jobs=4)
    base, res = session.run([
        RunSpec("cloud.bigbench", "none", 16000),
        RunSpec("cloud.bigbench", "spp+dspatch", 16000),
    ])
    print(res.ipc / base.ipc)

The pre-session functional API (``produce_*``, ``execute_specs``,
``configure``/``active_store``) remains available and executes through
the default session.  See ``docs/api.md`` for the migration table and
``docs/engine.md`` for cache layout and determinism guarantees.
"""

from repro.engine.backends import (
    InMemoryBackend,
    LocalDirBackend,
    StoreBackend,
    TieredBackend,
)
from repro.engine.config import (
    EngineConfig,
    active_store,
    backend_for,
    configure,
    current_config,
    reset_config,
)
from repro.engine.compute import produce_mix, produce_run, produce_trace
from repro.engine.fingerprint import (
    code_salt,
    fingerprint,
    mix_fingerprint,
    run_fingerprint,
    trace_fingerprint,
)
from repro.engine.parallel import execute_spec, execute_specs, mix_spec, run_spec
from repro.engine.remote import CacheServer, RemoteBackend, make_server, serve_background
from repro.engine.s3 import S3Backend
from repro.engine.session import Session, default_session
from repro.engine.specs import MixSpec, RunSpec, TraceSpec
from repro.engine.store import ResultStore
from repro.engine.workqueue import (
    QueueClient,
    WorkQueue,
    run_worker,
    spec_from_wire,
    spec_to_wire,
)

__all__ = [
    "CacheServer",
    "EngineConfig",
    "InMemoryBackend",
    "LocalDirBackend",
    "MixSpec",
    "QueueClient",
    "RemoteBackend",
    "ResultStore",
    "RunSpec",
    "S3Backend",
    "Session",
    "StoreBackend",
    "TieredBackend",
    "TraceSpec",
    "WorkQueue",
    "active_store",
    "backend_for",
    "code_salt",
    "configure",
    "current_config",
    "default_session",
    "execute_spec",
    "execute_specs",
    "fingerprint",
    "make_server",
    "mix_fingerprint",
    "mix_spec",
    "produce_mix",
    "produce_run",
    "produce_trace",
    "reset_config",
    "run_fingerprint",
    "run_spec",
    "run_worker",
    "serve_background",
    "spec_from_wire",
    "spec_to_wire",
    "trace_fingerprint",
]
