"""On-disk result and trace store.

Layout (under the engine cache directory)::

    <cache_dir>/
      results/<aa>/<digest>.pkl   # pickled {"meta": ..., "result": ...}
      traces/<aa>/<digest>.npz    # Trace round-trip (Trace.save/load)

``<aa>`` is the first two hex digits of the digest (fan-out so a large
cache does not put tens of thousands of files in one directory).  Writes
go through a temp file + ``os.replace`` so concurrent writers (the
process-pool workers) can never expose a torn file; both writers produce
identical bytes-for-key content, so the race is benign.

Results are pickled, not JSON-encoded: the acceptance bar for the cache
is *bit-for-bit* identity with a fresh computation, and pickle round-trips
floats and dataclasses losslessly.  Keys embed a source-code salt (see
:mod:`repro.engine.fingerprint`), so unpickling never crosses a code
version.  Corrupt or unreadable entries are treated as misses.
"""

import os
import pickle
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.cpu.trace import Trace


class ResultStore:
    """Content-addressed persistence for runs, mixes and traces.

    Writes are best-effort: the store is an optimization, so an
    unwritable cache directory degrades to no-persistence (with one
    warning on stderr) instead of failing the simulation that produced
    the result.
    """

    #: Roots that already warned about failed writes (class-level so the
    #: warning fires once per location, not once per store instance).
    _warned_roots = set()

    def __init__(self, root):
        self.root = Path(root)

    def _write_failed(self, exc):
        root = str(self.root)
        if root not in ResultStore._warned_roots:
            ResultStore._warned_roots.add(root)
            print(
                f"warning: engine cache at {root} is not writable ({exc}); "
                "results will not persist",
                file=sys.stderr,
            )

    # -- paths ---------------------------------------------------------------

    def _result_path(self, digest):
        return self.root / "results" / digest[:2] / f"{digest}.pkl"

    def _trace_path(self, digest):
        return self.root / "traces" / digest[:2] / f"{digest}.npz"

    @staticmethod
    def _atomic_write(path, writer):
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as f:
                writer(f)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- results -------------------------------------------------------------

    @staticmethod
    def _touch(path):
        """Best-effort mtime bump on a cache hit.

        ``gc`` evicts oldest-mtime-first, so refreshing the mtime on every
        load turns the mtime order into a true least-recently-*used* order
        rather than least-recently-written.
        """
        try:
            os.utime(path, None)
        except OSError:
            pass

    def load_result(self, digest):
        """Return the stored object for ``digest`` or ``None`` on a miss."""
        path = self._result_path(digest)
        try:
            with open(path, "rb") as f:
                result = pickle.load(f)["result"]
        except (OSError, pickle.UnpicklingError, KeyError, EOFError, AttributeError):
            return None
        self._touch(path)
        return result

    def save_result(self, digest, result, meta=None):
        """Persist ``result`` under ``digest`` (atomic, best-effort)."""
        payload = {"meta": meta or {}, "result": result}
        try:
            self._atomic_write(
                self._result_path(digest),
                lambda f: pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL),
            )
        except OSError as exc:
            self._write_failed(exc)

    # -- traces --------------------------------------------------------------

    def load_trace(self, digest):
        """Return the stored :class:`Trace` for ``digest`` or ``None``."""
        path = self._trace_path(digest)
        try:
            trace = Trace.load(path)
        except (OSError, KeyError, ValueError):
            return None
        self._touch(path)
        return trace

    def save_trace(self, digest, trace):
        """Persist ``trace`` under ``digest`` (atomic, best-effort)."""
        path = self._trace_path(digest)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".npz")
        except OSError as exc:
            self._write_failed(exc)
            return
        os.close(fd)
        try:
            trace.save(tmp)
            os.replace(tmp, path)
        except OSError as exc:
            self._write_failed(exc)
            try:
                os.unlink(tmp)
            except OSError:
                pass
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance ---------------------------------------------------------

    def clear(self):
        """Delete every cached artifact (results and traces)."""
        for sub in ("results", "traces"):
            shutil.rmtree(self.root / sub, ignore_errors=True)

    #: Temp files younger than this are presumed to belong to a live
    #: writer; older ones are orphans from a killed process and become
    #: ordinary eviction candidates so gc can reclaim their bytes.
    _TMP_GRACE_SECONDS = 3600.0

    def _artifacts(self):
        """All (mtime, size, path) triples under results/ and traces/."""
        entries = []
        now = time.time()
        for sub in ("results", "traces"):
            base = self.root / sub
            if not base.is_dir():
                continue
            for path in base.rglob("*"):
                if not path.is_file():
                    continue
                try:
                    st = path.stat()
                except OSError:
                    continue  # racing writer/evictor; skip
                if (
                    path.name.startswith(".tmp-")
                    and now - st.st_mtime < self._TMP_GRACE_SECONDS
                ):
                    # In-progress _atomic_write temp file: deleting it
                    # would yank it out from under a live writer.
                    continue
                entries.append((st.st_mtime, st.st_size, path))
        return entries

    def gc(self, max_bytes):
        """Size-bounded eviction: keep the store at or below ``max_bytes``.

        Artifacts are evicted least-recently-used first (mtime order —
        loads refresh mtimes, so this is true LRU for anything read
        through the store), across results and traces together.  Returns
        a summary dict for the CLI: removed/kept counts and byte totals.
        Deletions are best-effort; a file that vanishes or resists
        unlinking is skipped, never fatal.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        entries = self._artifacts()
        total = sum(size for _, size, _ in entries)
        removed = 0
        freed = 0
        if total > max_bytes:
            entries.sort(key=lambda e: (e[0], str(e[2])))  # oldest first
            for _mtime, size, path in entries:
                if total - freed <= max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                freed += size
                removed += 1
                # Empty <aa>/ shard directories are left in place: there
                # are at most 256 per kind, and removing one can race a
                # concurrent writer between its mkdir and mkstemp.
        return {
            "removed": removed,
            "freed_bytes": freed,
            "kept": len(entries) - removed,
            "remaining_bytes": total - freed,
        }

    def stats(self):
        """Entry counts and total bytes, for ``repro cache`` / tests."""
        out = {}
        total_bytes = 0
        for sub in ("results", "traces"):
            base = self.root / sub
            files = [p for p in base.rglob("*") if p.is_file()] if base.is_dir() else []
            out[sub] = len(files)
            total_bytes += sum(p.stat().st_size for p in files)
        out["bytes"] = total_bytes
        return out
