"""On-disk result and trace store.

Layout (under the engine cache directory)::

    <cache_dir>/
      results/<aa>/<digest>.pkl   # pickled {"meta": ..., "result": ...}
      traces/<aa>/<digest>.npz    # Trace round-trip (Trace.save/load)

``<aa>`` is the first two hex digits of the digest (fan-out so a large
cache does not put tens of thousands of files in one directory).  Writes
go through a temp file + ``os.replace`` so concurrent writers (the
process-pool workers) can never expose a torn file; both writers produce
identical bytes-for-key content, so the race is benign.

Results are pickled, not JSON-encoded: the acceptance bar for the cache
is *bit-for-bit* identity with a fresh computation, and pickle round-trips
floats and dataclasses losslessly.  Keys embed a source-code salt (see
:mod:`repro.engine.fingerprint`), so unpickling never crosses a code
version.  Corrupt or unreadable entries are treated as misses.
"""

import os
import pickle
import shutil
import sys
import tempfile
from pathlib import Path

from repro.cpu.trace import Trace


class ResultStore:
    """Content-addressed persistence for runs, mixes and traces.

    Writes are best-effort: the store is an optimization, so an
    unwritable cache directory degrades to no-persistence (with one
    warning on stderr) instead of failing the simulation that produced
    the result.
    """

    #: Roots that already warned about failed writes (class-level so the
    #: warning fires once per location, not once per store instance).
    _warned_roots = set()

    def __init__(self, root):
        self.root = Path(root)

    def _write_failed(self, exc):
        root = str(self.root)
        if root not in ResultStore._warned_roots:
            ResultStore._warned_roots.add(root)
            print(
                f"warning: engine cache at {root} is not writable ({exc}); "
                "results will not persist",
                file=sys.stderr,
            )

    # -- paths ---------------------------------------------------------------

    def _result_path(self, digest):
        return self.root / "results" / digest[:2] / f"{digest}.pkl"

    def _trace_path(self, digest):
        return self.root / "traces" / digest[:2] / f"{digest}.npz"

    @staticmethod
    def _atomic_write(path, writer):
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as f:
                writer(f)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- results -------------------------------------------------------------

    def load_result(self, digest):
        """Return the stored object for ``digest`` or ``None`` on a miss."""
        path = self._result_path(digest)
        try:
            with open(path, "rb") as f:
                return pickle.load(f)["result"]
        except (OSError, pickle.UnpicklingError, KeyError, EOFError, AttributeError):
            return None

    def save_result(self, digest, result, meta=None):
        """Persist ``result`` under ``digest`` (atomic, best-effort)."""
        payload = {"meta": meta or {}, "result": result}
        try:
            self._atomic_write(
                self._result_path(digest),
                lambda f: pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL),
            )
        except OSError as exc:
            self._write_failed(exc)

    # -- traces --------------------------------------------------------------

    def load_trace(self, digest):
        """Return the stored :class:`Trace` for ``digest`` or ``None``."""
        path = self._trace_path(digest)
        try:
            return Trace.load(path)
        except (OSError, KeyError, ValueError):
            return None

    def save_trace(self, digest, trace):
        """Persist ``trace`` under ``digest`` (atomic, best-effort)."""
        path = self._trace_path(digest)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".npz")
        except OSError as exc:
            self._write_failed(exc)
            return
        os.close(fd)
        try:
            trace.save(tmp)
            os.replace(tmp, path)
        except OSError as exc:
            self._write_failed(exc)
            try:
                os.unlink(tmp)
            except OSError:
                pass
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance ---------------------------------------------------------

    def clear(self):
        """Delete every cached artifact (results and traces)."""
        for sub in ("results", "traces"):
            shutil.rmtree(self.root / sub, ignore_errors=True)

    def stats(self):
        """Entry counts and total bytes, for ``repro cache`` / tests."""
        out = {}
        total_bytes = 0
        for sub in ("results", "traces"):
            base = self.root / sub
            files = [p for p in base.rglob("*") if p.is_file()] if base.is_dir() else []
            out[sub] = len(files)
            total_bytes += sum(p.stat().st_size for p in files)
        out["bytes"] = total_bytes
        return out
