"""Compatibility shim: the directory store now lives in ``backends.py``.

``ResultStore`` was the engine's original on-disk store class.  The
session API generalized it into the pluggable :class:`StoreBackend`
protocol, and the directory implementation moved to
:class:`repro.engine.backends.LocalDirBackend` unchanged.  The old name
keeps working for existing imports (tests, external scripts)::

    from repro.engine.store import ResultStore   # == LocalDirBackend
"""

from repro.engine.backends import LocalDirBackend

#: Historical name of the on-disk store.
ResultStore = LocalDirBackend

__all__ = ["ResultStore"]
