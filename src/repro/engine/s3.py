"""Durable object-store tier: a stdlib-only S3 client for the cache.

``S3Backend`` implements the :class:`~repro.engine.backends.StoreBackend`
protocol against any S3-compatible endpoint (AWS, MinIO, Ceph RGW,
...), so a team's content-addressed artifact store can outlive every
coordinator host.  There is deliberately no boto dependency: the wire
protocol we need is four verbs (GET/PUT/DELETE an object, list a
prefix) plus AWS Signature Version 4, and all of it fits in this file
on ``hashlib``/``hmac``/``http.client``.

Transport posture is inherited from
:class:`~repro.engine.remote.ResilientHttpClient` — the same keep-alive
pool, bounded retries with backoff (429/5xx throttling included),
circuit breaker, TLS (``https`` endpoints, optional pinned CA) and
warn-once total degradation as the cache-server client.  A slow,
throttling, corrupt or mis-credentialed object store turns into cache
misses and no-op saves with one warning per process; it can never crash
or wedge a simulation run.

Layout inside the bucket (under an optional key prefix taken from the
endpoint URL's path)::

    results/<digest>.pkl     pickled RunResult payloads
    traces/<digest>.npz      Trace archives

Integrity: every PUT carries the body's SHA-256 as ``x-amz-meta-sha256``
object metadata; GETs verify it (when present) before decoding, exactly
like the cache-server wire's ``X-Repro-Sha256``.  The SigV4 signature
additionally covers ``x-amz-content-sha256``, so a payload corrupted in
flight also fails the server's own signature/body check.

Credentials come from the standard environment (``AWS_ACCESS_KEY_ID`` /
``AWS_SECRET_ACCESS_KEY``, with ``REPRO_S3_ACCESS_KEY`` /
``REPRO_S3_SECRET_KEY`` taking precedence, and ``AWS_REGION`` or
``REPRO_S3_REGION`` for the region).  *Missing* credentials are a loud
construction-time error — that is a configuration mistake, not a
network fault.  *Rejected* credentials at runtime (expired STS token,
clock skew, revoked key: HTTP 403) degrade warn-once like any other
fault, because by then a sweep is running and must not die.
"""

from __future__ import annotations

import hashlib
import hmac
import io
import os
import pickle
import re
import sys
import time
from urllib.parse import urlsplit

from repro.cpu.trace import Trace
from repro.engine.remote import ResilientHttpClient

__all__ = ["S3Backend", "sigv4_authorization", "sigv4_signing_key", "uri_encode"]

_EMPTY_SHA256 = hashlib.sha256(b"").hexdigest()

#: RFC 3986 unreserved characters — everything else is percent-encoded.
_UNRESERVED = frozenset(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-._~"
)


# -- SigV4 (https://docs.aws.amazon.com/IAM/latest/UserGuide/create-signed-request.html)


def uri_encode(text, encode_slash=True):
    """AWS-flavoured percent-encoding (uppercase hex, ``~`` untouched).

    ``encode_slash=False`` is the object-key/path variant: each ``/``
    separates key segments and stays literal.
    """
    out = []
    for byte in str(text).encode("utf-8"):
        char = chr(byte)
        if char in _UNRESERVED or (char == "/" and not encode_slash):
            out.append(char)
        else:
            out.append("%{:02X}".format(byte))
    return "".join(out)


def _canonical_query(query):
    """``(key, value)`` pairs -> sorted, encoded canonical query string."""
    pairs = sorted((uri_encode(k), uri_encode(v)) for k, v in query)
    return "&".join(f"{key}={value}" for key, value in pairs)


def sigv4_signing_key(secret_key, datestamp, region, service):
    """The chained-HMAC signing key (AWS4 -> date -> region -> service)."""
    key = hmac.new(
        ("AWS4" + secret_key).encode(), datestamp.encode(), hashlib.sha256
    ).digest()
    for part in (region, service, "aws4_request"):
        key = hmac.new(key, part.encode(), hashlib.sha256).digest()
    return key


def sigv4_authorization(
    method,
    canonical_uri,
    query,
    headers,
    payload_hash,
    access_key,
    secret_key,
    region,
    service,
    amz_date,
):
    """The ``Authorization`` header value for one request.

    ``canonical_uri`` must already be URI-encoded (S3 signs the
    single-encoded path); ``query`` is raw ``(key, value)`` pairs;
    ``headers`` is every header to sign (must include ``host``);
    ``amz_date`` is the ISO-basic timestamp (``YYYYMMDDTHHMMSSZ``).
    """
    lowered = {
        name.lower(): " ".join(str(value).split()) for name, value in headers.items()
    }
    names = sorted(lowered)
    canonical_headers = "".join(f"{name}:{lowered[name]}\n" for name in names)
    signed_headers = ";".join(names)
    canonical_request = "\n".join(
        [
            method,
            canonical_uri,
            _canonical_query(query),
            canonical_headers,
            signed_headers,
            payload_hash,
        ]
    )
    datestamp = amz_date[:8]
    scope = f"{datestamp}/{region}/{service}/aws4_request"
    string_to_sign = "\n".join(
        [
            "AWS4-HMAC-SHA256",
            amz_date,
            scope,
            hashlib.sha256(canonical_request.encode()).hexdigest(),
        ]
    )
    signature = hmac.new(
        sigv4_signing_key(secret_key, datestamp, region, service),
        string_to_sign.encode(),
        hashlib.sha256,
    ).hexdigest()
    return (
        f"AWS4-HMAC-SHA256 Credential={access_key}/{scope}, "
        f"SignedHeaders={signed_headers}, Signature={signature}"
    )


def _env_credentials():
    """(access_key, secret_key, region) from the environment, parts may be None."""
    access = os.environ.get("REPRO_S3_ACCESS_KEY") or os.environ.get(
        "AWS_ACCESS_KEY_ID"
    )
    secret = os.environ.get("REPRO_S3_SECRET_KEY") or os.environ.get(
        "AWS_SECRET_ACCESS_KEY"
    )
    region = os.environ.get("REPRO_S3_REGION") or os.environ.get("AWS_REGION")
    return access, secret, region


# -- backend -----------------------------------------------------------------


class S3Backend(ResilientHttpClient):
    """:class:`StoreBackend` over an S3-compatible endpoint.

    ``url`` is ``http(s)://host[:port]/bucket[/prefix...]`` —
    path-style addressing, which every S3-compatible store accepts and
    which keeps one TLS certificate valid for every bucket.  The
    optional prefix namespaces this store inside a shared bucket.

    All four protocol operations degrade totally: any transport fault,
    throttle storm, checksum mismatch or credential rejection is a miss
    (loads) or a no-op (saves) after one stderr warning.  ``clear`` and
    ``stats`` use ListObjectsV2 and are best-effort the same way.
    """

    #: Endpoints that already warned about rejected credentials
    #: (class-level: once per process per endpoint, not per instance).
    _warned_auth = set()

    _peer_noun = "object store"

    def __init__(
        self,
        url,
        access_key=None,
        secret_key=None,
        region=None,
        timeout=5.0,
        retries=2,
        backoff=0.1,
        pool_size=4,
        cooldown=30.0,
        ca_file=None,
    ):
        split = urlsplit(url if "//" in url else f"https://{url}")
        if split.scheme not in ("http", "https"):
            raise ValueError(f"S3 endpoint must be http(s), got {url!r}")
        if not split.hostname:
            raise ValueError(f"S3 endpoint URL has no host: {url!r}")
        parts = [part for part in split.path.split("/") if part]
        if not parts:
            raise ValueError(
                f"S3 endpoint URL needs a bucket in its path, got {url!r} "
                "(use http(s)://host[:port]/bucket[/prefix])"
            )
        super().__init__(
            split.scheme,
            split.hostname,
            split.port,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            pool_size=pool_size,
            cooldown=cooldown,
            ca_file=ca_file,
        )
        self.bucket = parts[0]
        self.prefix = "/".join(parts[1:])
        if self.prefix:
            self.prefix += "/"
        #: Set on the first 401/403: from then on every load is a miss
        #: and every save a no-op — re-signing with known-bad
        #: credentials would only spam the endpoint.
        self._auth_failed = False
        env_access, env_secret, env_region = _env_credentials()
        self.access_key = access_key or env_access
        self.secret_key = secret_key or env_secret
        self.region = region or env_region or "us-east-1"
        if not self.access_key or not self.secret_key:
            # A farm configured to use S3 without credentials is a setup
            # error the operator must see immediately, not a silent
            # 100%-miss cache.
            raise ValueError(
                "S3 credentials missing: set AWS_ACCESS_KEY_ID/"
                "AWS_SECRET_ACCESS_KEY (or REPRO_S3_ACCESS_KEY/"
                "REPRO_S3_SECRET_KEY) in the environment"
            )

    # -- signing -------------------------------------------------------------

    def _host_header(self):
        default = 443 if self.scheme == "https" else 80
        if self.port == default:
            return self.host
        return f"{self.host}:{self.port}"

    def _headers_for(self, method, target, body, headers):
        """Sign the request.  Called fresh per retry attempt, so the
        ``x-amz-date`` timestamp (and thus the signature) can never be
        replayed stale after a long backoff sleep."""
        path, _, query_string = target.partition("?")
        query = []
        if query_string:
            for item in query_string.split("&"):
                key, _, value = item.partition("=")
                # The target was built by this class, so the split is
                # already-encoded canonical pieces; decode is a no-op
                # for our keys but keeps the signature honest.
                query.append((_percent_decode(key), _percent_decode(value)))
        payload_hash = hashlib.sha256(body).hexdigest() if body else _EMPTY_SHA256
        amz_date = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
        request_headers = dict(headers or {})
        # http.client adds its own Host unless one is supplied; SigV4
        # requires the signed value and the sent value to be identical,
        # so always supply it explicitly.
        request_headers["Host"] = self._host_header()
        request_headers["x-amz-date"] = amz_date
        request_headers["x-amz-content-sha256"] = payload_hash
        request_headers["Authorization"] = sigv4_authorization(
            method,
            path,
            query,
            request_headers,
            payload_hash,
            self.access_key,
            self.secret_key,
            self.region,
            "s3",
            amz_date,
        )
        return request_headers

    # -- wire ----------------------------------------------------------------

    def _object_key(self, kind, digest):
        extension = ".npz" if kind == "traces" else ".pkl"
        return f"{self.prefix}{kind}/{digest}{extension}"

    def _object_target(self, key):
        return "/" + uri_encode(f"{self.bucket}/{key}", encode_slash=False)

    def _note_auth(self, status):
        """HTTP 403: expired/revoked/skewed credentials.  Stop writing,
        treat loads as misses, one warning per endpoint per process."""
        self._auth_failed = True
        if self.url not in S3Backend._warned_auth:
            S3Backend._warned_auth.add(self.url)
            print(
                f"warning: object store at {self.url} rejected our credentials "
                f"(HTTP {status}); treating it as a miss "
                "(check AWS_ACCESS_KEY_ID/AWS_SECRET_ACCESS_KEY and clock skew)",
                file=sys.stderr,
            )

    def _fetch(self, kind, digest):
        """Verified object bytes for one key, or ``None`` on any miss."""
        if self._auth_failed:
            return None
        response = self._request("GET", self._object_target(self._object_key(kind, digest)))
        if response is None:
            return None
        status, headers, payload = response
        if status in (401, 403):
            self._note_auth(status)
            return None
        if status != 200:
            return None  # 404: an honest miss (or a stale read), no warning
        expected = headers.get("x-amz-meta-sha256")
        if expected is not None and expected != hashlib.sha256(payload).hexdigest():
            self._degrade("object checksum mismatch")
            return None
        return payload

    def _push(self, kind, digest, payload):
        if self._read_only or self._auth_failed:
            return
        response = self._request(
            "PUT",
            self._object_target(self._object_key(kind, digest)),
            body=payload,
            headers={
                "x-amz-meta-sha256": hashlib.sha256(payload).hexdigest(),
                "Content-Length": str(len(payload)),
            },
        )
        if response is not None and response[0] in (401, 403):
            self._note_auth(response[0])

    def _list_keys(self):
        """Every ``(key, size)`` under our prefix, or ``None`` if unreachable.

        ListObjectsV2 with continuation; the XML is parsed with regexes
        because our keys are hex digests under fixed prefixes — no
        escaping can occur — and it keeps the client stdlib-tiny.
        """
        if self._auth_failed:
            return None
        entries = []
        token = None
        for _ in range(1000):  # bounded: 1000 pages = 1M objects
            query = [("list-type", "2"), ("prefix", self.prefix)]
            if token:
                query.append(("continuation-token", token))
            target = "/" + uri_encode(self.bucket) + "?" + "&".join(
                f"{uri_encode(k)}={uri_encode(v)}" for k, v in sorted(query)
            )
            response = self._request("GET", target)
            if response is None:
                return None
            status, _, body = response
            if status in (401, 403):
                self._note_auth(status)
                return None
            if status != 200:
                return None
            text = body.decode("utf-8", "replace")
            keys = re.findall(r"<Key>([^<]+)</Key>", text)
            sizes = [int(s) for s in re.findall(r"<Size>(\d+)</Size>", text)]
            sizes += [0] * (len(keys) - len(sizes))  # Size is optional per spec
            entries.extend(zip(keys, sizes))
            truncated = re.search(r"<IsTruncated>\s*true\s*</IsTruncated>", text)
            next_token = re.search(
                r"<NextContinuationToken>([^<]+)</NextContinuationToken>", text
            )
            if not truncated or not next_token:
                return entries
            token = next_token.group(1)
        return entries

    # -- StoreBackend surface ------------------------------------------------

    def load_result(self, digest):
        """Fetch + unpickle one result; ``None`` on any miss or failure."""
        payload = self._fetch("results", digest)
        if payload is None:
            return None
        try:
            return pickle.loads(payload)["result"]
        except Exception:  # corrupt stored bytes decode as a miss
            return None

    def save_result(self, digest, result, meta=None):
        """Push one pickled result payload (best-effort)."""
        payload = pickle.dumps(
            {"meta": meta or {}, "result": result}, protocol=pickle.HIGHEST_PROTOCOL
        )
        self._push("results", digest, payload)

    def load_trace(self, digest):
        """Fetch + decode one ``.npz`` trace; ``None`` on any failure."""
        payload = self._fetch("traces", digest)
        if payload is None:
            return None
        try:
            return Trace.load(io.BytesIO(payload))
        except Exception:
            return None

    def save_trace(self, digest, trace):
        """Push one ``.npz``-encoded trace (best-effort)."""
        buffer = io.BytesIO()
        trace.save(buffer)
        self._push("traces", digest, buffer.getvalue())

    def clear(self):
        """Delete every object under our prefix (best-effort)."""
        entries = self._list_keys()
        for key, _ in entries or ():
            self._request("DELETE", self._object_target(key))

    def stats(self):
        """Entry counts + byte total under our prefix, or zeros when down."""
        entries = self._list_keys()
        if entries is None:
            return {"results": 0, "traces": 0, "bytes": 0, "reachable": False}
        counts = {"results": 0, "traces": 0, "bytes": 0, "reachable": True}
        for key, size in entries:
            counts["bytes"] += size
            unprefixed = key[len(self.prefix) :] if key.startswith(self.prefix) else key
            kind = unprefixed.split("/", 1)[0]
            if kind in ("results", "traces"):
                counts[kind] += 1
        return counts


def _percent_decode(text):
    """Minimal %XX decoder (inverse of :func:`uri_encode`)."""
    if "%" not in text:
        return text
    out = bytearray()
    i = 0
    raw = text.encode()
    while i < len(raw):
        if raw[i : i + 1] == b"%" and i + 2 < len(raw) + 1:
            try:
                out.append(int(raw[i + 1 : i + 3], 16))
                i += 3
                continue
            except ValueError:
                pass
        out.append(raw[i])
        i += 1
    return out.decode("utf-8", "replace")
