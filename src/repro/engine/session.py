"""Session-scoped experiment execution.

A :class:`Session` is the one object an experiment needs: it owns

- an :class:`~repro.engine.config.EngineConfig` view (explicit per-session
  overrides merged over the process-global knobs),
- the in-process memo layers (traces, runs, mixes — identity-stable:
  asking twice returns the *same* object), and
- a pluggable :class:`~repro.engine.backends.StoreBackend` for
  persistence.

Everything executes through :meth:`Session.run`: give it any mix of
:class:`~repro.engine.specs.RunSpec` / :class:`~repro.engine.specs.MixSpec`
/ :class:`~repro.engine.specs.TraceSpec` objects and it returns their
results **in input order**, computing only the misses — in parallel over
a process pool when ``jobs > 1``, sequentially in-process otherwise.
Results are bit-for-bit identical across all three paths (memo hit,
backend hit, fresh compute) and across sequential/parallel execution.

Two sessions never share memo state; they share persisted artifacts only
if their backends point at the same store.  The **default session**
(:func:`default_session`) is the compatibility anchor: it resolves its
configuration dynamically from :mod:`repro.engine.config` (env vars,
``configure()``, CLI flags) and backs the CLI and figure drivers.
"""

import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

from repro.engine import compute
from repro.engine import config as _config
from repro.engine.config import EngineConfig, backend_for
from repro.engine.specs import SPEC_TYPES, MixSpec, RunSpec, TraceSpec

#: Wall-clock budget for a distributed sweep before the session stops
#: waiting on the farm and computes the stragglers itself.
DEFAULT_DISTRIBUTED_TIMEOUT = 600.0


class Session:
    """One isolated experiment-execution scope.

    All constructor arguments are optional overrides; anything left
    ``None`` falls through to the process-global configuration at *use*
    time (so the default session tracks ``configure()``/env changes).

    ``backend`` plugs in an explicit :class:`StoreBackend` — it wins over
    ``cache_dir``/``disk_cache``-derived stores entirely.  Pass
    ``disk_cache=False`` for a purely in-process session.
    """

    def __init__(
        self,
        *,
        jobs=None,
        cache_dir=None,
        disk_cache=None,
        shared_cache_dir=None,
        remote_cache_url=None,
        s3_cache_url=None,
        tls_ca=None,
        backend=None,
        trace_memo=None,
    ):
        self._jobs = None if jobs is None else max(1, int(jobs))
        self._cache_dir = None if cache_dir is None else Path(cache_dir)
        self._disk_cache = None if disk_cache is None else bool(disk_cache)
        self._shared_cache_dir = (
            None if shared_cache_dir is None else Path(shared_cache_dir)
        )
        self._remote_cache_url = (
            None if remote_cache_url is None else str(remote_cache_url)
        )
        self._s3_cache_url = None if s3_cache_url is None else str(s3_cache_url)
        self._tls_ca = None if tls_ca is None else str(tls_ca)
        self._explicit_backend = backend
        self._trace_memo = {} if trace_memo is None else trace_memo
        self._run_memo = {}
        self._mix_memo = {}
        #: Messages already warned by the distributed path (once per
        #: session per condition, not once per poll iteration).
        self._farm_warned = set()
        #: Outcome accounting of the most recent ``run(distributed=True)``:
        #: disjoint counts (prefetched/remote/local/quarantined) summing
        #: to the deduplicated spec count.  ``None`` until one runs.
        self.last_distributed = None

    # -- configuration -------------------------------------------------------

    def config(self):
        """The resolved :class:`EngineConfig` for this session, now."""
        base = _config.current_config()
        return EngineConfig(
            jobs=self._jobs if self._jobs is not None else base.jobs,
            cache_dir=self._cache_dir if self._cache_dir is not None else base.cache_dir,
            disk_cache=(
                self._disk_cache if self._disk_cache is not None else base.disk_cache
            ),
            shared_cache_dir=(
                self._shared_cache_dir
                if self._shared_cache_dir is not None
                else base.shared_cache_dir
            ),
            remote_cache_url=(
                self._remote_cache_url
                if self._remote_cache_url is not None
                else base.remote_cache_url
            ),
            s3_cache_url=(
                self._s3_cache_url
                if self._s3_cache_url is not None
                else base.s3_cache_url
            ),
            tls_ca=self._tls_ca if self._tls_ca is not None else base.tls_ca,
        )

    @property
    def store(self):
        """The active :class:`StoreBackend`, or ``None`` (no persistence)."""
        if self._explicit_backend is not None:
            return self._explicit_backend
        return backend_for(self.config())

    # -- execution -----------------------------------------------------------

    def trace(self, spec, length=None):
        """The trace for a :class:`TraceSpec` (or ``workload, length``)."""
        if not isinstance(spec, TraceSpec):
            spec = TraceSpec(spec, length)
        return compute.produce_trace_with(spec, self.store, self._trace_memo)

    def run(self, specs, jobs=None, *, distributed=False, timeout=None):
        """Execute specs; returns results in input order.

        Accepts one spec (returns its result) or any iterable mixing
        :class:`RunSpec`, :class:`MixSpec` and :class:`TraceSpec`
        (returns a list).  Memo hits are served immediately; misses are
        deduplicated and executed — across a process pool when ``jobs``
        (or the session's configured ``jobs``) exceeds 1 — then merged
        back deterministically in input order.

        ``distributed=True`` additionally offers the deduplicated misses
        to the sweep farm behind this session's remote cache (see
        :mod:`repro.engine.workqueue`): specs are submitted to the
        coordinator's work queue, ``repro work`` peers compute and
        publish them, and the session polls the store — anything the
        farm has not delivered within ``timeout`` seconds (default
        ``DEFAULT_DISTRIBUTED_TIMEOUT``), plus anything quarantined or
        stranded by a dead coordinator, is computed locally.  Results
        are bit-identical to a purely local run by construction
        (content-addressed artifacts), and no farm failure mode can
        raise out of ``run`` — the worst case is local compute with a
        warning.  Outcome counts land in :attr:`last_distributed`.
        """
        single = isinstance(specs, SPEC_TYPES)
        spec_list = [specs] if single else list(specs)
        # Resolve each spec's (memo, key) slot once; fingerprints hash the
        # canonical config, so recomputing them per loop would be waste.
        slots = [self._memo_slot(spec) for spec in spec_list]
        results = [None] * len(spec_list)
        miss_indices = []
        for i, (memo, key) in enumerate(slots):
            if key in memo:
                results[i] = memo[key]
            else:
                miss_indices.append(i)
        if miss_indices:
            # Dedup repeated specs within one batch: compute once, fan the
            # result out to every position asking for it.
            positions = {}
            unique_specs = []
            for i in miss_indices:
                key = slots[i][1]
                if key not in positions:
                    positions[key] = len(unique_specs)
                    unique_specs.append(spec_list[i])
            if distributed:
                computed = self._execute_distributed(unique_specs, jobs, timeout)
            else:
                computed = self._execute(unique_specs, jobs)
            for i in miss_indices:
                memo, key = slots[i]
                result = computed[positions[key]]
                memo[key] = result
                results[i] = result
        return results[0] if single else results

    def _memo_slot(self, spec):
        """(memo dict, key) pair for one spec."""
        if isinstance(spec, TraceSpec):
            return self._trace_memo, (spec.workload, spec.length)
        if isinstance(spec, RunSpec):
            return self._run_memo, spec.fingerprint()
        if isinstance(spec, MixSpec):
            return self._mix_memo, spec.fingerprint()
        raise TypeError(
            f"Session.run expects TraceSpec/RunSpec/MixSpec, got {type(spec).__name__}"
        )

    def _produce(self, spec):
        """Compute one spec through this session's backend (no memo)."""
        if isinstance(spec, TraceSpec):
            return compute.produce_trace_with(spec, self.store, self._trace_memo)
        if isinstance(spec, RunSpec):
            return compute.produce_run_with(spec, self.store, self._trace_memo)
        if isinstance(spec, MixSpec):
            return compute.produce_mix_with(spec, self.store)
        raise TypeError(
            f"Session.run expects TraceSpec/RunSpec/MixSpec, got {type(spec).__name__}"
        )

    def _execute(self, specs, jobs):
        """Execute deduplicated miss specs; sequential or pooled."""
        cfg = self.config()
        jobs = cfg.jobs if jobs is None else max(1, int(jobs))
        if jobs <= 1 or len(specs) <= 1:
            return [self._produce(spec) for spec in specs]
        workers = min(jobs, len(specs))
        backend = self._explicit_backend
        # A cross-process backend (filesystem-backed) travels to the
        # workers, which persist as they compute — exactly like the
        # config-derived store.  A process-local backend (e.g.
        # InMemoryBackend) would only be pickled into throwaway copies,
        # so keep it out of the pool and persist the returned results
        # here instead; the round-trip behaviour matches sequential
        # execution (traces built implicitly inside worker runs are not
        # returned, so only explicitly requested TraceSpecs persist).
        backend_is_shared = backend is not None and bool(
            getattr(backend, "shared_across_processes", False)
        )
        if backend is not None and not backend_is_shared:
            # A process-local backend cannot be consulted from workers, so
            # probe it here first and dispatch only the true misses.
            results = [compute.load_artifact(spec, backend) for spec in specs]
            todo = [spec for spec, hit in zip(specs, results) if hit is None]
        else:
            results = [None] * len(specs)
            todo = list(specs)
        computed = []
        produced_inline = False
        if len(todo) == 1:
            # One miss: no pool; _produce persists through self.store
            # itself, so the parent-side save loop below must not re-save.
            computed = [self._produce(todo[0])]
            produced_inline = True
        elif todo:
            try:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(todo)),
                    initializer=_init_worker,
                    initargs=(
                        cfg,
                        backend if backend_is_shared else None,
                        # An explicit process-local backend also disables the
                        # workers' config-derived store: the parent session
                        # never touches that store, so neither may its workers.
                        backend is not None and not backend_is_shared,
                    ),
                ) as pool:
                    computed = list(pool.map(_worker_produce, todo))
            except BrokenProcessPool:
                # A worker *process* died (OOM kill, segfault, os._exit)
                # rather than raising — the pool cannot say which specs
                # finished, so recompute the batch sequentially.  Specs
                # the dead pool already persisted are store hits, so the
                # retry only pays for the genuinely lost work.  A spec
                # that raises an ordinary exception still propagates
                # unchanged (a clear error beats a silent retry loop).
                print(
                    "warning: a pool worker process died mid-sweep; "
                    "recomputing its specs sequentially",
                    file=sys.stderr,
                )
                computed = [self._produce(spec) for spec in todo]
        if backend is not None and not backend_is_shared and not produced_inline:
            for spec, result in zip(todo, computed):
                compute.save_artifact(spec, result, backend)
        fresh = iter(computed)
        return [hit if hit is not None else next(fresh) for hit in results]

    # -- distributed execution -----------------------------------------------

    def _farm_warn(self, message):
        if message not in self._farm_warned:
            self._farm_warned.add(message)
            print(f"warning: {message}", file=sys.stderr)

    def _execute_distributed(self, specs, jobs, timeout):
        """Offer deduplicated miss specs to the sweep farm; poll; finish
        locally.

        The farm is an optimization with the same contract as the remote
        cache itself: every failure mode (unreachable or restarted
        coordinator, quarantined specs, slow or absent workers, probe
        protocol errors) degrades to local compute with a warning, never
        an exception and never a hang beyond ``timeout``.
        """
        from repro.engine.workqueue import QueueClient, spec_to_wire

        report = {
            "specs": len(specs),
            "prefetched": 0,
            "remote": 0,
            "local": 0,
            "quarantined": 0,
            "resubmitted": 0,
            "submitted": 0,
        }
        self.last_distributed = report
        cfg = self.config()
        url = cfg.remote_cache_url
        store = self.store
        if url is None or store is None:
            self._farm_warn(
                "distributed=True needs a remote cache "
                "(remote_cache_url / --remote-cache); computing locally"
            )
            report["local"] = len(specs)
            return self._execute(specs, jobs)
        client = QueueClient(_config._remote_client(url, ca_file=cfg.tls_ca))

        results = [None] * len(specs)
        wire = {}
        local_indices = []  # never leave this machine
        outstanding = []  # waiting on the farm
        quarantined_indices = []
        for i, spec in enumerate(specs):
            try:
                wire[i] = spec_to_wire(spec)
            except TypeError:
                # Not wire-encodable (exotic dram model): local only.
                local_indices.append(i)
            else:
                outstanding.append(i)

        def _probe(indices):
            """One /v1/has round trip for these indices; None degrades."""
            want = {"results": [], "traces": []}
            for i in indices:
                kind = "traces" if wire[i]["kind"] == "trace" else "results"
                want[kind].append(wire[i]["digest"])
            return client.backend.has_batch(
                results=want["results"], traces=want["traces"]
            )

        def _collect(indices, hits):
            """Pull delivered artifacts through the tiered store (which
            promotes them locally); returns the still-missing indices."""
            missing = []
            for i in indices:
                kind = "traces" if wire[i]["kind"] == "trace" else "results"
                if (hits.get(kind) or {}).get(wire[i]["digest"]):
                    loaded = compute.load_artifact(specs[i], store)
                    if loaded is not None:
                        results[i] = loaded
                        continue
                missing.append(i)
            return missing

        farm_alive = True
        if outstanding:
            # Pre-submission probe: anything the store already has is a
            # plain cache hit, not farm work — one round trip for all.
            hits = _probe(outstanding)
            if hits is not None:
                before = len(outstanding)
                outstanding = _collect(outstanding, hits)
                report["prefetched"] = before - len(outstanding)

        epoch = None
        if outstanding:
            submitted = client.submit([wire[i] for i in outstanding])
            if submitted is None:
                self._farm_warn(
                    f"sweep-farm coordinator at {url} is unavailable; "
                    "computing locally"
                )
                farm_alive = False
            else:
                epoch = submitted.get("epoch")
                report["submitted"] = len(outstanding)

        if outstanding and farm_alive:
            budget = DEFAULT_DISTRIBUTED_TIMEOUT if timeout is None else float(timeout)
            deadline = time.monotonic() + max(0.0, budget)
            delay = 0.05
            resubmits = 0
            while outstanding and time.monotonic() < deadline:
                time.sleep(delay)
                delay = min(delay * 2, 1.0)
                stats = client.stats()
                if stats is None:
                    self._farm_warn(
                        f"sweep-farm coordinator at {url} stopped responding; "
                        "finishing the sweep locally"
                    )
                    break
                if epoch is not None and stats.get("epoch") != epoch:
                    # The coordinator restarted with an empty in-memory
                    # queue; the store survived, so resubmit what's left.
                    if resubmits >= 2:
                        self._farm_warn(
                            "sweep-farm coordinator keeps restarting; "
                            "finishing the sweep locally"
                        )
                        break
                    resub = client.submit([wire[i] for i in outstanding])
                    if resub is None:
                        break
                    epoch = resub.get("epoch")
                    resubmits += 1
                    report["resubmitted"] += len(outstanding)
                    continue
                poison = stats.get("quarantined_digests") or {}
                if poison:
                    still = []
                    for i in outstanding:
                        digest = wire[i]["digest"]
                        if digest in poison:
                            self._farm_warn(
                                f"farm quarantined spec {digest[:12]} "
                                f"({poison[digest]}); computing it locally"
                            )
                            quarantined_indices.append(i)
                        else:
                            still.append(i)
                    outstanding = still
                    if not outstanding:
                        break
                hits = _probe(outstanding)
                if hits is None:
                    self._farm_warn(
                        f"sweep-farm coordinator at {url} stopped responding; "
                        "finishing the sweep locally"
                    )
                    break
                before = len(outstanding)
                outstanding = _collect(outstanding, hits)
                report["remote"] += before - len(outstanding)
                if outstanding:
                    delay = 0.05 if before != len(outstanding) else delay
            if outstanding and time.monotonic() >= deadline:
                self._farm_warn(
                    f"sweep farm did not deliver {len(outstanding)} spec(s) "
                    f"within {budget:.0f}s; computing them locally"
                )

        # Everything the farm never delivered: the normal local path
        # (pooled when jobs > 1, write-through publishes to the store so
        # late workers become duplicate completions, not divergences).
        leftovers = sorted(local_indices + outstanding + quarantined_indices)
        if leftovers:
            computed = self._execute([specs[i] for i in leftovers], jobs)
            for i, result in zip(leftovers, computed):
                results[i] = result
        report["quarantined"] = len(quarantined_indices)
        report["local"] = len(leftovers) - len(quarantined_indices)
        return results

    # -- maintenance ---------------------------------------------------------

    def clear(self, memory=True, disk=True):
        """Drop cached artifacts: the memo layers and/or the backend."""
        if memory:
            self._trace_memo.clear()
            self._run_memo.clear()
            self._mix_memo.clear()
        if disk:
            store = self.store
            if store is not None:
                store.clear()

    def memo_stats(self):
        """Entry counts of the in-process memo layers (tests, tooling)."""
        return {
            "traces": len(self._trace_memo),
            "runs": len(self._run_memo),
            "mixes": len(self._mix_memo),
        }


# -- pool worker plumbing ----------------------------------------------------

#: The per-worker-process session, built by :func:`_init_worker`.
_WORKER_SESSION = None


def _init_worker(cfg, explicit_backend, no_store=False):
    """Propagate the parent session's resolved configuration into a worker.

    The worker gets the parent's *resolved* config explicitly (not
    ambient environment), so parent and workers agree on the store and
    write compatible artifacts.  A cross-process explicit backend object
    travels by pickle; ``no_store`` marks a parent whose explicit backend
    is process-local (the parent persists pool results itself, and the
    worker must not touch the config-derived store either).  The worker
    session shares the module-level trace memo so forked workers reuse
    traces the parent already built.
    """
    global _WORKER_SESSION
    _config.configure(
        jobs=1,
        cache_dir=cfg.cache_dir,
        disk_cache=cfg.disk_cache,
        shared_cache_dir=cfg.shared_cache_dir,
        remote_cache_url=cfg.remote_cache_url,
        s3_cache_url=cfg.s3_cache_url,
        tls_ca=cfg.tls_ca,
        kernel=cfg.kernel,
    )
    _WORKER_SESSION = Session(
        jobs=1,
        backend=explicit_backend,
        disk_cache=False if no_store else None,
        trace_memo=compute.TRACE_MEMO,
    )


def _worker_produce(spec):
    """Compute one spec inside a pool worker."""
    return _WORKER_SESSION._produce(spec)


# -- the default session -----------------------------------------------------

_DEFAULT_SESSION = None


def default_session():
    """The process-wide session backing the legacy API and the CLI.

    Created lazily; resolves jobs/cache/backend dynamically from the
    global configuration on every use, so ``engine.configure()``, CLI
    flags and env changes keep working exactly as they did before the
    session API.  Its trace memo *is* ``compute.TRACE_MEMO``, preserving
    the historical sharing between direct engine calls and the session.
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = Session(trace_memo=compute.TRACE_MEMO)
    return _DEFAULT_SESSION
