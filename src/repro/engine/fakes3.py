"""A tiny in-process S3-compatible server for tests and smoke runs.

Speaks just enough of the S3 REST wire for :class:`~repro.engine.s3.
S3Backend`: path-style GET/PUT/DELETE of objects plus ListObjectsV2,
with objects held in memory.  Two properties make it a real acceptance
bar rather than a mock:

- **It verifies signatures.**  Every request's SigV4 ``Authorization``
  header is recomputed server-side from the configured credentials over
  the *received* method/path/query/headers, and the declared
  ``x-amz-content-sha256`` is checked against the actual body.  A
  client that signs the wrong canonical request — or whose credentials
  do not match — gets the same ``403 SignatureDoesNotMatch`` a real
  store would send.
- **It injects faults on demand.**  :meth:`FakeS3Server.inject` arms
  per-request failure modes (throttle storms, stale reads, corrupt or
  truncated bodies, blanket credential rejection) so the conformance
  suite can prove the client degrades to bit-identical local compute
  with one warning — the same discipline the cache-server suite pins.

TLS comes from the shared :class:`~repro.engine.remote.TlsServerMixin`,
so an ``https`` fake endpoint exercises the exact client code path a
production MinIO/AWS endpoint would.
"""

from __future__ import annotations

import hashlib
import re
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from xml.sax.saxutils import escape

from repro.engine.remote import TlsServerMixin
from repro.engine.s3 import sigv4_authorization, uri_encode

__all__ = ["FakeS3Server", "serve_fake_s3"]

#: Fault modes understood by :meth:`FakeS3Server.inject`.
FAULTS = (
    "throttle",  # respond 503 SlowDown (what AWS throttling looks like)
    "throttle-429",  # respond 429 (what most S3-compatibles send)
    "stale",  # GET: pretend the object does not exist yet (eventual consistency)
    "corrupt",  # GET: flip a byte in the body (metadata checksum must catch it)
    "truncate",  # GET: advertise the full length, send half, drop the socket
    "drop-put",  # PUT: read half the body, then drop the socket mid-upload
    "reject-auth",  # respond 403 regardless of signature (expired credentials)
)


class FakeS3Server(TlsServerMixin, ThreadingHTTPServer):
    """In-memory S3 endpoint bound to ``127.0.0.1:<ephemeral>``."""

    daemon_threads = True

    def __init__(
        self,
        bucket="repro-cache",
        access_key="AKIAFAKEACCESSKEY00",
        secret_key="fake/secret/key/for/tests/only",
        region="us-east-1",
        address=("127.0.0.1", 0),
        tls_cert=None,
        tls_key=None,
        verbose=False,
    ):
        self._init_tls(tls_cert, tls_key)
        super().__init__(address, _FakeS3Handler)
        self.bucket = bucket
        self.access_key = access_key
        self.secret_key = secret_key
        self.region = region
        self.verbose = verbose
        #: key -> (bytes, {lowercase meta header: value})
        self.objects = {}
        #: fault mode -> remaining request count
        self._faults = {}
        self._lock = threading.Lock()
        #: Requests that failed signature verification (for assertions).
        self.bad_signatures = 0

    # -- test controls -------------------------------------------------------

    def inject(self, mode, count=1):
        """Arm ``mode`` (see :data:`FAULTS`) for the next ``count`` requests."""
        if mode not in FAULTS:
            raise ValueError(f"unknown fault {mode!r}; pick from {FAULTS}")
        with self._lock:
            self._faults[mode] = self._faults.get(mode, 0) + int(count)

    def clear_faults(self):
        with self._lock:
            self._faults.clear()

    def _take_fault(self, *modes):
        """Consume one armed fault among ``modes``; returns the mode or None."""
        with self._lock:
            for mode in modes:
                if self._faults.get(mode, 0) > 0:
                    self._faults[mode] -= 1
                    return mode
        return None

    @property
    def endpoint(self):
        """Client-side URL (scheme + host + port + bucket path)."""
        return f"{self.url}/{self.bucket}"


class _FakeS3Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: FakeS3Server

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            sys.stderr.write("fakes3: " + format % args + "\n")

    # -- plumbing ------------------------------------------------------------

    def _send(self, status, body=b"", content_type="application/octet-stream", extra=None):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra or {}).items():
            self.send_header(name, value)
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _send_error_xml(self, status, code, message):
        body = (
            f'<?xml version="1.0" encoding="UTF-8"?>\n<Error><Code>{code}</Code>'
            f"<Message>{escape(message)}</Message></Error>"
        ).encode()
        self._send(status, body, content_type="application/xml")

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        mode = self.server._take_fault("drop-put")
        if mode and length:
            # Read half the upload, then sever the connection: the
            # client must see a transport error, not a quiet 200.
            self.rfile.read(length // 2)
            self.close_connection = True
            raise ConnectionResetError("injected mid-upload drop")
        return self.rfile.read(length) if length else b""

    def _verify_signature(self, body):
        """Recompute SigV4 over the received request; None if it matches,
        else an (status, code, message) error triple."""
        auth = self.headers.get("Authorization") or ""
        match = re.match(
            r"AWS4-HMAC-SHA256 Credential=([^/]+)/(\d{8})/([^/]+)/s3/aws4_request,\s*"
            r"SignedHeaders=([^,]+),\s*Signature=([0-9a-f]{64})",
            auth,
        )
        if not match:
            return (403, "AccessDenied", "missing or malformed Authorization")
        access_key, _datestamp, region, signed_names, signature = match.groups()
        if access_key != self.server.access_key or region != self.server.region:
            return (403, "InvalidAccessKeyId", "unknown access key or region")
        declared_hash = self.headers.get("x-amz-content-sha256") or ""
        if declared_hash != hashlib.sha256(body).hexdigest():
            return (400, "XAmzContentSHA256Mismatch", "payload hash mismatch")
        amz_date = self.headers.get("x-amz-date") or ""
        path, _, query_string = self.path.partition("?")
        query = []
        for item in query_string.split("&") if query_string else ():
            key, _, value = item.partition("=")
            query.append((_unquote(key), _unquote(value)))
        signed_headers = {}
        for name in signed_names.split(";"):
            value = self.headers.get(name)
            if value is None:
                return (403, "SignatureDoesNotMatch", f"signed header {name} absent")
            signed_headers[name] = value
        expected = sigv4_authorization(
            self.command,
            path,
            query,
            signed_headers,
            declared_hash,
            self.server.access_key,
            self.server.secret_key,
            self.server.region,
            "s3",
            amz_date,
        )
        if expected != auth:
            return (403, "SignatureDoesNotMatch", "signature mismatch")
        return None

    def _gate(self, body=b""):
        """Common fault + auth gate; True when the request may proceed."""
        mode = self.server._take_fault("throttle", "throttle-429", "reject-auth")
        if mode == "throttle":
            self._send_error_xml(503, "SlowDown", "injected throttle")
            return False
        if mode == "throttle-429":
            self._send_error_xml(429, "SlowDown", "injected throttle")
            return False
        if mode == "reject-auth":
            self._send_error_xml(403, "ExpiredToken", "injected credential rejection")
            return False
        error = self._verify_signature(body)
        if error is not None:
            self.server.bad_signatures += 1
            self._send_error_xml(*error)
            return False
        return True

    def _object_key(self):
        """Bucket-relative decoded key, or None for a non-object path."""
        path = _unquote(self.path.partition("?")[0])
        parts = path.lstrip("/").split("/", 1)
        if parts[0] != self.server.bucket:
            return None
        return parts[1] if len(parts) > 1 and parts[1] else ""

    # -- verbs ---------------------------------------------------------------

    def do_GET(self):
        if not self._gate():
            return
        key = self._object_key()
        if key is None:
            self._send_error_xml(404, "NoSuchBucket", "unknown bucket")
            return
        if key == "":  # bucket-level: ListObjectsV2
            self._list_objects()
            return
        if self.server._take_fault("stale"):
            self._send_error_xml(404, "NoSuchKey", "injected stale read")
            return
        with self.server._lock:
            entry = self.server.objects.get(key)
        if entry is None:
            self._send_error_xml(404, "NoSuchKey", "no such key")
            return
        payload, meta = entry
        mode = self.server._take_fault("corrupt", "truncate")
        if mode == "corrupt" and payload:
            payload = bytes([payload[0] ^ 0xFF]) + payload[1:]
        if mode == "truncate":
            self.send_response(200)
            self.send_header("Content-Type", "application/octet-stream")
            self.send_header("Content-Length", str(len(payload)))
            for name, value in meta.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(payload[: max(1, len(payload) // 2)])
            self.close_connection = True
            raise ConnectionResetError("injected truncated response")
        self._send(200, payload, extra=meta)

    def do_PUT(self):
        try:
            body = self._read_body()
        except ConnectionResetError:
            return  # handle_error on the mixin swallows the noise
        if not self._gate(body):
            return
        key = self._object_key()
        if not key:
            self._send_error_xml(404, "NoSuchBucket", "unknown bucket or empty key")
            return
        meta = {
            name.lower(): value
            for name, value in self.headers.items()
            if name.lower().startswith("x-amz-meta-")
        }
        with self.server._lock:
            self.server.objects[key] = (body, meta)
        etag = hashlib.md5(body).hexdigest()
        self._send(200, extra={"ETag": f'"{etag}"'})

    def do_DELETE(self):
        if not self._gate():
            return
        key = self._object_key()
        if not key:
            self._send_error_xml(404, "NoSuchBucket", "unknown bucket or empty key")
            return
        with self.server._lock:
            self.server.objects.pop(key, None)
        self._send(204)

    def _list_objects(self):
        query = dict(
            item.partition("=")[::2]
            for item in self.path.partition("?")[2].split("&")
            if item
        )
        prefix = _unquote(query.get("prefix", ""))
        with self.server._lock:
            items = sorted(
                (key, len(payload))
                for key, (payload, _) in self.server.objects.items()
                if key.startswith(prefix)
            )
        contents = "".join(
            f"<Contents><Key>{escape(key)}</Key><Size>{size}</Size></Contents>"
            for key, size in items
        )
        body = (
            '<?xml version="1.0" encoding="UTF-8"?>'
            f'<ListBucketResult><Name>{escape(self.server.bucket)}</Name>'
            f"<KeyCount>{len(items)}</KeyCount><IsTruncated>false</IsTruncated>"
            f"{contents}</ListBucketResult>"
        ).encode()
        self._send(200, body, content_type="application/xml")


def _unquote(text):
    """%XX decode (uppercase-hex flavour used by :func:`uri_encode`)."""
    out = bytearray()
    raw = text.encode()
    i = 0
    while i < len(raw):
        if raw[i : i + 1] == b"%" and i + 3 <= len(raw):
            try:
                out.append(int(raw[i + 1 : i + 3], 16))
                i += 3
                continue
            except ValueError:
                pass
        out.append(raw[i])
        i += 1
    return out.decode("utf-8", "replace")


def serve_fake_s3(tls_cert=None, tls_key=None, **kwargs):
    """Start a :class:`FakeS3Server` on a background thread.

    Returns the server; call ``shutdown()`` + ``server_close()`` when
    done (or just let a daemon-threaded test process exit).
    """
    server = FakeS3Server(tls_cert=tls_cert, tls_key=tls_key, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    server._thread = thread
    return server
