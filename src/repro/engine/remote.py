"""Remote artifact store: HTTP cache server + ``RemoteBackend`` client.

This is the engine's first *genuinely remote* store: a small
stdlib-only HTTP server that exposes a :class:`LocalDirBackend`-layout
cache directory over the network, and a client backend implementing the
:class:`~repro.engine.backends.StoreBackend` protocol against it.
Because cache keys are content-addressed and salted (see
:mod:`repro.engine.fingerprint`), artifacts are host-portable by
construction — any machine that can reach the server shares the same
experiment store.

Wire format (version ``v1``, documented in ``docs/engine.md``):

- ``GET  /v1/results/<digest>`` — the raw pickled ``{"meta", "result"}``
  payload, exactly the bytes :class:`LocalDirBackend` keeps in
  ``results/<aa>/<digest>.pkl``.  ``200`` with the body, ``404`` on a
  miss.  The response carries ``ETag: "sha256:<hex>"`` over the body
  bytes; clients verify it before unpickling.
- ``GET  /v1/traces/<digest>`` — the ``.npz`` trace bytes, same rules.
- ``HEAD`` on either — headers only (existence / size probe).
- ``PUT`` on either — store the request body atomically.  An optional
  ``X-Repro-Sha256`` header is verified server-side before the bytes
  are committed (``422`` on mismatch).  ``403`` in read-only mode.
- ``DELETE /v1/artifacts`` — clear the whole store (``403`` read-only).
- ``GET  /v1/stats`` — JSON ``{"results", "traces", "bytes",
  "read_only"}``.
- ``POST /v1/has`` — batch existence probe: ``{"results": [digest...],
  "traces": [...]}`` in, per-digest hit maps out, so a submitter's
  dedup pass costs one round trip instead of N HEADs.
- ``POST /v1/queue/...`` + ``GET /v1/queue/stats`` — the sweep-farm
  work queue (:mod:`repro.engine.workqueue`); queue mutations are
  ``403`` in read-only mode like every other mutation.

``<digest>`` must be lowercase hex (8–64 chars), which both validates
the content-addressed key shape and makes path traversal structurally
impossible.

Optionally the server requires a shared secret (``repro serve
--auth-token`` / ``REPRO_CACHE_TOKEN``): every request must then carry
it in ``X-Repro-Token`` (compared constant-time) or is answered ``401``.
Clients treat a 401 exactly like the read-only 403 path — degrade to
misses/no-ops with one warning, never an exception.

The wire can be TLS-secured end to end: ``repro serve --tls-cert
CERT --tls-key KEY`` wraps every connection in stdlib ``ssl`` (so the
shared-secret token no longer travels in cleartext), and clients accept
``https://`` URLs — verifying against the system trust store by
default, or against a pinned CA/self-signed certificate via
``--tls-ca`` / ``REPRO_TLS_CA``.  A failed handshake (wrong CA, expired
certificate, plain-HTTP client on a TLS port) is just another transport
fault: the client degrades to misses with one warning and the server
drops the connection without disturbing other clients.

The client is engineered for graceful degradation: the remote store is
an optimization, so *any* network, protocol or decode failure is a
cache miss (loads) or a no-op (saves) with a one-time warning on
stderr — never an exception out of a simulation run.  The transport
half of that posture (connection pool, bounded retries with backoff,
circuit breaker, warn-once degradation, TLS) lives in
:class:`ResilientHttpClient` so other HTTP stores — notably
:class:`repro.engine.s3.S3Backend` — inherit it unchanged.
"""

import hashlib
import hmac
import http.client
import io
import json
import pickle
import re
import ssl
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

from repro.cpu.trace import Trace
from repro.engine.backends import LocalDirBackend

#: Lowercase-hex content-addressed key: full fingerprints are 64 hex
#: chars; shorter test digests are accepted down to 8.
_DIGEST_RE = re.compile(r"^[0-9a-f]{8,64}$")

#: URL path prefix of the artifact namespace.
_API = "/v1"

_KINDS = ("results", "traces")

#: Upper bound on JSON request bodies (/v1/has, /v1/queue/*): generous
#: for real sweeps (a wire task is well under 1 KiB) while keeping a
#: hostile Content-Length from ballooning server memory.
_MAX_JSON_BODY = 16 << 20


def _sha256(data):
    return hashlib.sha256(data).hexdigest()


# -- server ------------------------------------------------------------------


class _CacheRequestHandler(BaseHTTPRequestHandler):
    """One request against the served cache directory.

    The handler reads and writes the *raw artifact bytes* through the
    same path layout as :class:`LocalDirBackend`, so ``repro serve
    --cache-dir ~/.cache/dspatch-repro`` publishes an existing local
    cache without any import/export step.
    """

    server_version = "repro-cache/1"
    # Keep-alive so RemoteBackend's pooled connections are reused.
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    # -- request plumbing ----------------------------------------------------

    def _authorized(self):
        """Enforce the shared-secret token when the server has one.

        Constant-time comparison so the token cannot be guessed
        byte-by-byte from response timing.  Answers ``401`` (and returns
        ``False``) on a missing or wrong token.
        """
        token = self.server.auth_token
        if token is None:
            return True
        supplied = self.headers.get("X-Repro-Token") or ""
        if hmac.compare_digest(supplied.encode(), token.encode()):
            return True
        self.send_error(401, "missing or invalid X-Repro-Token")
        return False

    def _read_json(self):
        """Parse a bounded JSON object body, or answer an error and
        return ``None``."""
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self.send_error(411, "Content-Length required")
            return None
        if length < 0:
            self.send_error(400, "negative Content-Length")
            return None
        if length > _MAX_JSON_BODY:
            self.send_error(413, "request body too large")
            return None
        body = self.rfile.read(length)
        if len(body) != length:
            self.send_error(400, "truncated request body")
            return None
        try:
            decoded = json.loads(body)
        except ValueError:
            self.send_error(400, "body must be valid JSON")
            return None
        if not isinstance(decoded, dict):
            self.send_error(400, "body must be a JSON object")
            return None
        return decoded

    def _send_json(self, obj, status=200):
        body = json.dumps(obj, sort_keys=True).encode()
        self._send_bytes(status, body, content_type="application/json")

    # -- routing -------------------------------------------------------------

    def _artifact_path(self):
        """Resolve the URL to an on-disk artifact path, or answer an error.

        Returns ``None`` after sending the error response when the URL is
        not a well-formed ``/v1/<kind>/<digest>`` artifact address.
        """
        parts = self.path.split("?", 1)[0].strip("/").split("/")
        if len(parts) != 3 or parts[0] != _API.strip("/") or parts[1] not in _KINDS:
            self.send_error(404, "unknown path")
            return None
        kind, digest = parts[1], parts[2]
        if not _DIGEST_RE.fullmatch(digest):
            self.send_error(400, "digest must be 8-64 lowercase hex chars")
            return None
        store = self.server.store
        if kind == "results":
            return store._result_path(digest)
        return store._trace_path(digest)

    def _send_bytes(self, status, body, content_type="application/octet-stream"):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if content_type == "application/octet-stream":
            digest = _sha256(body)
            self.send_header("ETag", f'"sha256:{digest}"')
            self.send_header("X-Repro-Sha256", digest)
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    # -- verbs ---------------------------------------------------------------

    def do_GET(self):
        if not self._authorized():
            return
        url = self.path.split("?", 1)[0]
        if url == f"{_API}/stats":
            stats = dict(self.server.store.stats())
            stats["read_only"] = self.server.read_only
            self._send_json(stats)
            return
        if url == f"{_API}/queue/stats":
            self._send_json(self.server.queue.stats())
            return
        path = self._artifact_path()
        if path is None:
            return
        try:
            body = path.read_bytes()
        except OSError:
            self.send_error(404, "no such artifact")
            return
        self._send_bytes(200, body)

    do_HEAD = do_GET

    def do_PUT(self):
        if not self._authorized():
            return
        path = self._artifact_path()
        if path is None:
            return
        if self.server.read_only:
            self.send_error(403, "server is read-only")
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self.send_error(411, "Content-Length required")
            return
        if length < 0:
            # rfile.read(-1) would block until the peer closes, pinning
            # this handler thread forever on a keep-alive connection.
            self.send_error(400, "negative Content-Length")
            return
        body = self.rfile.read(length)
        if len(body) != length:
            self.send_error(400, "truncated request body")
            return
        expected = self.headers.get("X-Repro-Sha256")
        if expected is not None and expected != _sha256(body):
            self.send_error(422, "checksum mismatch")
            return
        try:
            LocalDirBackend._atomic_write(path, lambda f: f.write(body))
        except OSError as exc:
            self.send_error(507, f"cannot store artifact: {exc}")
            return
        self._send_bytes(201, b"")

    def do_DELETE(self):
        if not self._authorized():
            return
        if self.path.split("?", 1)[0] != f"{_API}/artifacts":
            self.send_error(404, "unknown path")
            return
        if self.server.read_only:
            self.send_error(403, "server is read-only")
            return
        self.server.store.clear()
        self._send_bytes(204, b"")

    def do_POST(self):
        if not self._authorized():
            return
        url = self.path.split("?", 1)[0]
        body = self._read_json()
        if body is None:
            return
        if url == f"{_API}/has":
            self._handle_has(body)
            return
        prefix = f"{_API}/queue/"
        if not url.startswith(prefix):
            self.send_error(404, "unknown path")
            return
        if self.server.read_only:
            # The queue hands out compute whose results are PUT back;
            # a read-only store cannot accept them, so the whole queue
            # namespace is read-only too.
            self.send_error(403, "server is read-only")
            return
        action = url[len(prefix) :]
        queue = self.server.queue
        try:
            if action == "submit":
                tasks = body.get("tasks")
                if not isinstance(tasks, list):
                    raise ValueError("tasks must be a list")
                out = queue.submit(tasks)
            elif action == "lease":
                out = {
                    "leases": queue.lease(
                        str(body.get("worker") or ""),
                        max_tasks=body.get("max", 1),
                        ttl=body.get("ttl"),
                    )
                }
            elif action == "complete":
                out = queue.complete(
                    str(body.get("digest") or ""),
                    body.get("lease"),
                    worker=body.get("worker"),
                )
            elif action == "fail":
                out = queue.fail(
                    str(body.get("digest") or ""),
                    body.get("lease"),
                    worker=body.get("worker"),
                    error=str(body.get("error") or ""),
                )
            elif action == "release":
                out = queue.release(worker=body.get("worker"))
            else:
                self.send_error(404, "unknown queue action")
                return
        except (TypeError, ValueError) as exc:
            self.send_error(400, str(exc))
            return
        self._send_json(out)

    def _handle_has(self, body):
        """Answer the batch existence probe: per-digest boolean hit maps."""
        store = self.server.store
        out = {}
        for kind in _KINDS:
            digests = body.get(kind, [])
            if not isinstance(digests, list):
                self.send_error(400, f"{kind} must be a list of digests")
                return
            hits = {}
            for digest in digests:
                if not (isinstance(digest, str) and _DIGEST_RE.fullmatch(digest)):
                    self.send_error(400, "digest must be 8-64 lowercase hex chars")
                    return
                path = (
                    store._result_path(digest)
                    if kind == "results"
                    else store._trace_path(digest)
                )
                hits[digest] = path.is_file()
            out[kind] = hits
        self._send_json(out)


class TlsServerMixin:
    """TLS support for a :class:`ThreadingHTTPServer` subclass.

    Call :meth:`_init_tls` *before* ``ThreadingHTTPServer.__init__`` so
    a bad cert/key pair is a loud startup error, not a per-connection
    surprise.  Used by :class:`CacheServer` and the fake-S3 test server
    (:mod:`repro.engine.fakes3`) so both speak the same wire.
    """

    #: Subclasses may set this; :meth:`handle_error` logs under it.
    verbose = False

    def _init_tls(self, tls_cert, tls_key):
        self._tls_context = None
        if tls_cert:
            context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
            context.load_cert_chain(str(tls_cert), str(tls_key) if tls_key else None)
            self._tls_context = context
        elif tls_key:
            raise ValueError("--tls-key without --tls-cert; provide both")

    def get_request(self):
        """Accept one connection, wrapping it in TLS when configured.

        The handshake itself is deferred (``do_handshake_on_connect=
        False``): OpenSSL performs it transparently on the handler
        thread's first read, so a peer that never completes a handshake
        cannot block the accept loop.
        """
        sock, addr = super().get_request()
        if self._tls_context is not None:
            sock = self._tls_context.wrap_socket(
                sock, server_side=True, do_handshake_on_connect=False
            )
        return sock, addr

    def handle_error(self, request, client_address):
        """Keep peer-inflicted transport noise off the server's stderr.

        A failed TLS handshake (plain-HTTP client, wrong CA, scanner
        probe) or an abruptly dropped connection is the *peer's*
        failure; the stock implementation would print a full traceback
        per incident.  Anything that is not a transport error still
        reports normally — server bugs must stay visible.
        """
        exc = sys.exc_info()[1]
        if isinstance(exc, (ssl.SSLError, ConnectionError, TimeoutError, OSError)):
            if self.verbose:
                print(
                    f"dropped connection from {client_address}: {exc!r}",
                    file=sys.stderr,
                )
            return
        super().handle_error(request, client_address)

    @property
    def url(self):
        host, port = self.server_address[:2]
        scheme = "https" if self._tls_context is not None else "http"
        return f"{scheme}://{host}:{port}"


class CacheServer(TlsServerMixin, ThreadingHTTPServer):
    """Threaded HTTP server publishing one cache directory.

    ``read_only=True`` turns every mutating verb (PUT/DELETE, and the
    whole queue namespace) into a ``403`` — the mode for publishing a
    curated store (a CI artifact cache, a reference-results host) that
    clients may read but not grow.

    The server doubles as the sweep-farm coordinator (``self.queue``, a
    :class:`~repro.engine.workqueue.WorkQueue`) and can keep a
    long-lived team cache bounded: ``gc_max_bytes`` starts a daemon
    thread that re-runs :meth:`LocalDirBackend.gc` (LRU-by-mtime
    eviction) every ``gc_interval`` seconds.

    ``tls_cert``/``tls_key`` (PEM paths) switch the wire to TLS: every
    accepted connection is wrapped server-side, the handshake deferred
    to the per-connection handler thread (``do_handshake_on_connect=
    False``) so a hostile or confused peer can stall only its own
    thread, never the accept loop.  Handshake failures are dropped
    silently (logged under ``verbose``) — a port scanner or a plain-HTTP
    client must not spray tracebacks over the coordinator's stderr.
    """

    daemon_threads = True

    def __init__(
        self,
        address,
        cache_dir,
        read_only=False,
        verbose=False,
        auth_token=None,
        gc_max_bytes=None,
        gc_interval=60.0,
        tls_cert=None,
        tls_key=None,
    ):
        self._init_tls(tls_cert, tls_key)
        super().__init__(address, _CacheRequestHandler)
        #: Path helpers + atomic writes + stats over the served tree.
        #: touch_on_load is irrelevant (the server never loads objects),
        #: but reads must not perturb the owner's LRU order either.
        self.store = LocalDirBackend(cache_dir, touch_on_load=False)
        self.read_only = read_only
        self.verbose = verbose
        self.auth_token = auth_token or None
        from repro.engine.workqueue import WorkQueue

        self.queue = WorkQueue(have_artifact=self._have_artifact)
        self._gc_stop = threading.Event()
        self._gc_thread = None
        if gc_max_bytes:
            self.gc_max_bytes = int(gc_max_bytes)
            self.gc_interval = max(0.05, float(gc_interval))
            self._gc_thread = threading.Thread(target=self._gc_loop, daemon=True)
            self._gc_thread.start()

    def _have_artifact(self, kind, digest):
        """Completion oracle for the queue: do the bytes actually exist?"""
        store = self.store
        path = (
            store._trace_path(digest) if kind == "trace" else store._result_path(digest)
        )
        return path.is_file()

    def _gc_loop(self):
        while True:
            try:
                self.store.gc(self.gc_max_bytes)
            except OSError:
                pass  # best-effort, like every other eviction path
            if self._gc_stop.wait(self.gc_interval):
                return

    def server_close(self):
        self._gc_stop.set()
        super().server_close()


def make_server(
    cache_dir,
    host="127.0.0.1",
    port=0,
    read_only=False,
    verbose=False,
    auth_token=None,
    gc_max_bytes=None,
    gc_interval=60.0,
    tls_cert=None,
    tls_key=None,
):
    """Bind a :class:`CacheServer` (``port=0`` = ephemeral)."""
    return CacheServer(
        (host, port),
        cache_dir,
        read_only=read_only,
        verbose=verbose,
        auth_token=auth_token,
        gc_max_bytes=gc_max_bytes,
        gc_interval=gc_interval,
        tls_cert=tls_cert,
        tls_key=tls_key,
    )


def serve_background(
    cache_dir,
    host="127.0.0.1",
    port=0,
    read_only=False,
    auth_token=None,
    gc_max_bytes=None,
    gc_interval=60.0,
    tls_cert=None,
    tls_key=None,
):
    """Start a server on a daemon thread; returns ``(server, thread)``.

    For tests and in-process demos: ``server.url`` is the base URL,
    ``server.shutdown()`` stops it.
    """
    server = make_server(
        cache_dir,
        host=host,
        port=port,
        read_only=read_only,
        auth_token=auth_token,
        gc_max_bytes=gc_max_bytes,
        gc_interval=gc_interval,
        tls_cert=tls_cert,
        tls_key=tls_key,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


# -- client ------------------------------------------------------------------


class ResilientHttpClient:
    """Shared transport posture for every HTTP-backed store client.

    One place owns the engine's network discipline so every remote tier
    (the cache server client below, the S3 client in
    :mod:`repro.engine.s3`) degrades identically:

    - a small pool of keep-alive connections (``pool_size``), shared by
      the session's threads and rebuilt transparently after an error;
    - every request is bounded by ``timeout`` seconds and retried at
      most ``retries`` times with exponential backoff (transport errors,
      5xx responses and 429 throttling retry; 404 is an honest miss and
      does not);
    - a request that exhausts its retries opens a circuit breaker for
      ``cooldown`` seconds: later operations short-circuit to misses
      instead of each re-paying the full retries x timeout cycle
      against a dead-but-timing-out peer;
    - *no* failure escapes ``_request``: it returns ``None`` (degrade
      now) after firing one warning per URL per process;
    - ``https`` URLs wrap every connection in TLS.  Certificates verify
      against the system trust store, or against a pinned CA bundle /
      self-signed certificate when ``ca_file`` is given.  A handshake
      or verification failure is an ordinary transport fault: retried,
      then degraded — never an exception out of a simulation run.

    Instances are picklable (connections, locks and SSL contexts are
    rebuilt on unpickling), so remote-backed sessions can fan work
    across the process pool.
    """

    shared_across_processes = True

    #: URLs that already warned about degradation (class-level and shared
    #: by every subclass: once per process per peer, not per instance).
    _warned_unreachable = set()

    #: How warnings name the peer; subclasses override for accuracy.
    _peer_noun = "remote cache"

    def __init__(
        self,
        scheme,
        host,
        port,
        timeout=5.0,
        retries=2,
        backoff=0.1,
        pool_size=4,
        cooldown=30.0,
        ca_file=None,
    ):
        if scheme not in ("http", "https"):
            raise ValueError(f"unsupported URL scheme {scheme!r} (use http or https)")
        self.scheme = scheme
        self.host = host
        self.port = int(port) if port else (443 if scheme == "https" else 80)
        self.url = f"{self.scheme}://{self.host}:{self.port}"
        self.timeout = float(timeout)
        self.retries = max(0, int(retries))
        self.backoff = float(backoff)
        self.pool_size = max(1, int(pool_size))
        #: Circuit-breaker window: after a request exhausts its retries,
        #: further requests short-circuit to misses for this many
        #: seconds instead of each paying the full retry x timeout cost.
        self.cooldown = float(cooldown)
        #: Optional CA bundle path pinning the peer's certificate chain
        #: (the self-signed-cert deployment recipe); ``None`` = system
        #: trust store.  Ignored for plain-http peers.
        self.ca_file = str(ca_file) if ca_file else None
        self._down_until = 0.0
        self._read_only = False
        self._init_pool()

    def _init_pool(self):
        self._pool = []
        self._lock = threading.Lock()
        #: Built lazily inside the request loop so a bad/missing CA file
        #: degrades like any other transport fault instead of raising.
        self._ssl_context = None

    # Connections, locks and SSL contexts must not cross pickle
    # (process-pool workers rebuild their own against the same peer).
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_pool"], state["_lock"], state["_ssl_context"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._init_pool()

    # -- transport -----------------------------------------------------------

    def _tls_client_context(self):
        if self._ssl_context is None:
            # create_default_context = verified hostname + chain; a pinned
            # ca_file narrows trust to that bundle (self-signed recipe).
            self._ssl_context = ssl.create_default_context(cafile=self.ca_file)
        return self._ssl_context

    def _checkout(self):
        with self._lock:
            if self._pool:
                return self._pool.pop()
        if self.scheme == "https":
            return http.client.HTTPSConnection(
                self.host,
                self.port,
                timeout=self.timeout,
                context=self._tls_client_context(),
            )
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _checkin(self, conn):
        with self._lock:
            if len(self._pool) < self.pool_size:
                self._pool.append(conn)
                return
        conn.close()

    def _drop_pool(self):
        """Discard pooled connections (they share the failed peer)."""
        with self._lock:
            stale, self._pool = self._pool, []
        for conn in stale:
            conn.close()

    def _headers_for(self, method, target, body, headers):
        """Per-attempt request headers; subclasses add auth/signatures.

        Called once per retry attempt (not once per request) so
        freshness-sensitive headers — SigV4 timestamps — are never
        replayed stale.
        """
        return dict(headers or {})

    def _request(self, method, target, body=None, headers=None):
        """One bounded-retry request; ``(status, headers, body)`` or ``None``.

        ``None`` means the peer is unusable for this operation (after
        retries, or instantly while the breaker is open) and the caller
        must degrade; the one-time warning has already fired.
        """
        if time.monotonic() < self._down_until:
            return None
        last_error = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.backoff * (2 ** (attempt - 1)))
            conn = None
            try:
                request_headers = self._headers_for(method, target, body, headers)
                conn = self._checkout()
                conn.request(method, target, body=body, headers=request_headers)
                response = conn.getresponse()
                payload = response.read()
            except (OSError, http.client.HTTPException) as exc:
                # Covers refused/reset connections, timeouts, truncated
                # responses and every ssl.SSLError (handshake and
                # certificate-verification failures).  The whole pool
                # shares the failed peer; retry on a fresh connection
                # rather than another stale one.
                if conn is not None:
                    conn.close()
                self._drop_pool()
                last_error = exc
                continue
            if response.status >= 500 or response.status == 429:
                # 5xx: the peer is broken.  429: it is throttling us —
                # S3-compatible stores shed load this way; backoff and
                # retry is exactly what they ask for.
                self._checkin(conn)
                last_error = f"HTTP {response.status}"
                continue
            self._checkin(conn)
            self._down_until = 0.0
            return response.status, {k.lower(): v for k, v in response.getheaders()}, payload
        # Open the breaker: a remote that times out (rather than refuses)
        # would otherwise stall every later operation for the full
        # retries x timeout cycle; recovery is retried after cooldown.
        self._down_until = time.monotonic() + self.cooldown
        self._degrade(last_error)
        return None

    def _degrade(self, error):
        if self.url not in ResilientHttpClient._warned_unreachable:
            ResilientHttpClient._warned_unreachable.add(self.url)
            print(
                f"warning: {self._peer_noun} at {self.url} is unavailable ({error}); "
                "treating it as a miss",
                file=sys.stderr,
            )


class RemoteBackend(ResilientHttpClient):
    """:class:`StoreBackend` client for a :class:`CacheServer`.

    Rides the :class:`ResilientHttpClient` transport (keep-alive pool,
    bounded retries with backoff, circuit breaker, TLS, warn-once total
    degradation) and adds the cache-server wire protocol:

    - a ``403`` on PUT flips the client into read-only mode (the server
      was started with ``--read-only``) and silently stops writing;
    - a ``401`` (wrong/missing ``--auth-token`` secret) degrades the
      same way, with its own one-time warning.

    Integrity: responses carry the body's SHA-256 (``X-Repro-Sha256`` /
    ``ETag``); the client verifies it before decoding, and sends the
    same header on PUT so the server can reject bytes corrupted in
    flight.  The digest *key* is already content-addressed, so a
    verified payload under the right key is the right artifact.
    """

    #: URLs that already warned about read-only/auth fallback
    #: (class-level: once per process per server, not once per instance).
    _warned_read_only = set()
    _warned_auth = set()

    def __init__(
        self,
        url,
        timeout=5.0,
        retries=2,
        backoff=0.1,
        pool_size=4,
        cooldown=30.0,
        token=None,
        ca_file=None,
    ):
        split = urlsplit(url if "//" in url else f"http://{url}")
        if split.scheme not in ("http", "https"):
            raise ValueError(f"RemoteBackend speaks http(s), got {url!r}")
        if not split.hostname:
            raise ValueError(f"remote cache URL has no host: {url!r}")
        if split.path.strip("/"):
            # A silently dropped prefix would turn every request into a
            # 404 "miss" and disable the cache without a word.
            raise ValueError(
                f"remote cache URL must not have a path, got {url!r} "
                "(the server owns the /v1/... namespace)"
            )
        super().__init__(
            split.scheme,
            split.hostname,
            split.port,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            pool_size=pool_size,
            cooldown=cooldown,
            ca_file=ca_file,
        )
        #: Shared secret sent as ``X-Repro-Token`` on every request when
        #: the server requires one (``repro serve --auth-token``).
        self.token = token or None
        #: Batch-probe accounting (``/v1/has``): digests checked vs
        #: round trips paid; surfaced as :attr:`probe_savings`.
        self._probe_digests = 0
        self._probe_calls = 0

    def _headers_for(self, method, target, body, headers):
        request_headers = dict(headers or {})
        if self.token:
            request_headers.setdefault("X-Repro-Token", self.token)
        return request_headers

    def _note_read_only(self):
        self._read_only = True
        if self.url not in RemoteBackend._warned_read_only:
            RemoteBackend._warned_read_only.add(self.url)
            print(
                f"note: remote cache at {self.url} is read-only; "
                "results will not be pushed",
                file=sys.stderr,
            )

    def _note_auth(self):
        """A 401: wrong/missing shared secret.  Degrade exactly like the
        read-only 403 path — stop pushing, treat loads as misses, one
        warning per URL per process."""
        self._read_only = True
        if self.url not in RemoteBackend._warned_auth:
            RemoteBackend._warned_auth.add(self.url)
            print(
                f"warning: remote cache at {self.url} rejected our credentials "
                "(HTTP 401); treating it as a miss "
                "(set REPRO_CACHE_TOKEN to match the server)",
                file=sys.stderr,
            )

    def _fetch(self, kind, digest):
        """Verified artifact bytes for one key, or ``None`` on any miss."""
        response = self._request("GET", f"{_API}/{kind}/{digest}")
        if response is None:
            return None
        status, headers, payload = response
        if status == 401:
            self._note_auth()
            return None
        if status != 200:
            return None  # 404 and friends: an honest miss, no warning
        expected = headers.get("x-repro-sha256")
        if expected is not None and expected != _sha256(payload):
            self._degrade("response checksum mismatch")
            return None
        return payload

    def _push(self, kind, digest, payload):
        if self._read_only:
            return
        response = self._request(
            "PUT",
            f"{_API}/{kind}/{digest}",
            body=payload,
            headers={"X-Repro-Sha256": _sha256(payload)},
        )
        if response is not None and response[0] == 403:
            self._note_read_only()
        elif response is not None and response[0] == 401:
            self._note_auth()

    # -- StoreBackend surface ------------------------------------------------

    def load_result(self, digest):
        """Fetch + unpickle one result; ``None`` on any miss or failure."""
        payload = self._fetch("results", digest)
        if payload is None:
            return None
        try:
            return pickle.loads(payload)["result"]
        except Exception:  # corrupt server-side bytes decode as a miss
            return None

    def save_result(self, digest, result, meta=None):
        """Push one pickled result payload (best-effort)."""
        payload = pickle.dumps(
            {"meta": meta or {}, "result": result}, protocol=pickle.HIGHEST_PROTOCOL
        )
        self._push("results", digest, payload)

    def load_trace(self, digest):
        """Fetch + decode one ``.npz`` trace; ``None`` on any failure."""
        payload = self._fetch("traces", digest)
        if payload is None:
            return None
        try:
            return Trace.load(io.BytesIO(payload))
        except Exception:
            return None

    def save_trace(self, digest, trace):
        """Push one ``.npz``-encoded trace (best-effort)."""
        buffer = io.BytesIO()
        trace.save(buffer)
        self._push("traces", digest, buffer.getvalue())

    def has_batch(self, results=(), traces=()):
        """Batch existence probe: one round trip for many digests.

        Returns ``{"results": {digest: bool}, "traces": {...}}`` or
        ``None`` when the server is unreachable, pre-dates ``/v1/has``
        (404) or refuses auth — callers fall back to per-digest loads.
        """
        results, traces = list(results), list(traces)
        payload = json.dumps({"results": results, "traces": traces}).encode()
        response = self._request(
            "POST",
            f"{_API}/has",
            body=payload,
            headers={"Content-Type": "application/json"},
        )
        if response is None:
            return None
        if response[0] == 401:
            self._note_auth()
            return None
        if response[0] != 200:
            return None
        try:
            decoded = json.loads(response[2])
        except ValueError:
            return None
        if not isinstance(decoded, dict):
            return None
        # Count savings only for probes that actually worked.
        self._probe_digests += len(results) + len(traces)
        self._probe_calls += 1
        return decoded

    @property
    def probe_savings(self):
        """Round trips avoided by batch probes: digests checked minus
        ``/v1/has`` calls paid (each digest would otherwise cost one
        HEAD/GET)."""
        return max(0, self._probe_digests - self._probe_calls)

    def clear(self):
        """Ask the server to clear the store (no-op if refused/offline)."""
        self._request("DELETE", f"{_API}/artifacts")

    def stats(self):
        """The server's entry counts, or zeros when unreachable."""
        response = self._request("GET", f"{_API}/stats")
        if response is not None and response[0] == 200:
            try:
                stats = json.loads(response[2])
                stats.setdefault("reachable", True)
                return stats
            except ValueError:
                pass
        return {"results": 0, "traces": 0, "bytes": 0, "reachable": False}
