"""Self-signed certificate helper for TLS tests and smoke runs.

The documented deployment recipe (docs/engine.md, "Securing the farm")
generates a self-signed certificate with the ``openssl`` CLI and pins
it on the client with ``--tls-ca``.  This module wraps the exact same
command so the test suite and CI smokes exercise the recipe verbatim —
there is no Python TLS-certificate library in the stdlib, and the
engine refuses to grow a dependency for what one ``openssl req`` call
does.

Everything here is test/ops tooling: the engine itself only ever
*loads* PEM files (``ssl`` module), it never generates them at runtime.
"""

from __future__ import annotations

import shutil
import subprocess
from pathlib import Path

__all__ = ["openssl_available", "self_signed_cert"]


def openssl_available():
    """True when the ``openssl`` CLI is on PATH (tests skip otherwise)."""
    return shutil.which("openssl") is not None


def self_signed_cert(directory, common_name="localhost", days=2):
    """Generate ``cert.pem``/``key.pem`` under ``directory``.

    Returns ``(cert_path, key_path)``.  The certificate carries
    subjectAltName entries for ``localhost`` and ``127.0.0.1`` so a
    pinned client (``ca_file=cert.pem``) passes hostname verification
    against either form — the same invocation the docs give operators:

    .. code-block:: shell

        openssl req -x509 -newkey rsa:2048 -sha256 -days 365 -nodes \\
            -keyout key.pem -out cert.pem -subj "/CN=cache.example" \\
            -addext "subjectAltName=DNS:cache.example,IP:10.0.0.5"
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    cert = directory / "cert.pem"
    key = directory / "key.pem"
    subprocess.run(
        [
            "openssl",
            "req",
            "-x509",
            "-newkey",
            "rsa:2048",
            "-sha256",
            "-days",
            str(int(days)),
            "-nodes",
            "-keyout",
            str(key),
            "-out",
            str(cert),
            "-subj",
            f"/CN={common_name}",
            "-addext",
            f"subjectAltName=DNS:{common_name},DNS:localhost,IP:127.0.0.1",
        ],
        check=True,
        capture_output=True,
    )
    return cert, key
