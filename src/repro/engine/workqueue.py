"""Fault-tolerant distributed sweep execution: a lease-based work queue.

PR 5 made *results* shareable across machines (``repro serve`` +
``RemoteBackend``); this module makes *compute* shareable.  The cache
server doubles as a sweep-farm coordinator: a submitting
:meth:`~repro.engine.session.Session.run` posts its deduplicated spec
batch to the queue, idle peers running ``repro work URL`` lease specs,
compute them through the normal engine path, publish the results through
the existing integrity-checked artifact protocol, and acknowledge the
lease.  The submitter just polls the store and transparently computes
anything the farm never delivers.

Robustness is the design center.  Workers crash, hang, lose the network
and return stale results; every one of those must mean "someone else
recomputes" — never a hang, never a wrong cache entry:

- **Lease expiry** is measured on the *coordinator's* monotonic clock:
  workers send a relative TTL in seconds and never a timestamp, so a
  clock-skewed worker cannot hold a lease forever (or lose one early).
  An expired lease re-queues the spec and counts as a failed attempt.
- **Quarantine**: a spec whose leases fail ``max_failures`` times
  (worker exceptions, expiries, completions without a valid artifact)
  is quarantined with its last error surfaced in the queue stats; the
  submitter sees it and computes that spec locally instead of waiting.
- **Idempotent completion**: results are content-addressed by the spec
  fingerprint and checksummed in flight, so duplicate completions are
  bit-identical by construction; the first valid result wins and late
  or stale completions are accepted-and-counted, never an error.  A
  completion whose artifact never landed in the store re-queues the
  spec — a "completed" claim is only believed when the bytes exist.
- **Graceful shutdown**: ``repro work`` converts SIGINT/SIGTERM into a
  stop flag, finishes nothing new, and releases its unfinished leases
  (no failure charged) so another worker picks them up immediately.
- **Coordinator death** degrades totally: the queue client rides on
  :class:`~repro.engine.remote.RemoteBackend`'s bounded retries +
  circuit breaker, so an unreachable coordinator turns every queue call
  into ``None`` and the submitting session finishes locally,
  bit-identical, with one warning.  A coordinator *restart* (fresh
  empty in-memory queue) is detected via the queue epoch and handled by
  resubmitting the outstanding batch.

Wire format (all JSON over the ``/v1`` namespace; see
``docs/engine.md`` for the full contract):

- ``POST /v1/queue/submit``   ``{"tasks": [task...]}``
- ``POST /v1/queue/lease``    ``{"worker", "max", "ttl"}``
- ``POST /v1/queue/complete`` ``{"digest", "lease", "worker"}``
- ``POST /v1/queue/fail``     ``{"digest", "lease", "worker", "error"}``
- ``POST /v1/queue/release``  ``{"worker"}``
- ``GET  /v1/queue/stats``

A *task* is ``{"kind": "trace"|"run"|"mix", "digest": <fingerprint>,
"spec": {...}}`` — the spec fields in plain JSON (:func:`spec_to_wire` /
:func:`spec_from_wire`).  The digest doubles as an end-to-end integrity
check: a worker recomputes the fingerprint from the decoded spec and
refuses (fails the lease) when it disagrees, which catches
code-version skew between submitter and worker before any wrong bytes
can be published.
"""

import json
import os
import secrets
import signal
import socket
import sys
import threading
import time
from collections import deque
from dataclasses import asdict

from repro.engine.specs import MixSpec, RunSpec, TraceSpec
from repro.memory.dram import DramConfig, DramTimings

#: URL path prefix of the queue namespace (same tree as the artifacts).
_API = "/v1"

#: Task states.
PENDING = "pending"
LEASED = "leased"
DONE = "completed"
QUARANTINED = "quarantined"

#: Default lease TTL granted to workers (seconds on the coordinator's
#: monotonic clock).  Must exceed the worst-case single-spec compute
#: time; there is deliberately no mid-lease renewal — an overrun lease
#: expires and re-queues, and the overrunning worker's late completion
#: is still accepted if its artifact is valid (first valid result wins).
DEFAULT_LEASE_TTL = 300.0

#: Failed attempts (exceptions, expiries, artifact-less completions)
#: before a spec is quarantined as poison.
DEFAULT_MAX_FAILURES = 3


# -- spec wire codec ---------------------------------------------------------


def _dram_to_wire(dram):
    """JSON-able dump of a :class:`DramConfig` (the only dram kind specs
    carry across the wire; anything exotic stays on the submitter)."""
    if type(dram) is not DramConfig:
        raise TypeError(
            f"cannot serialize dram of type {type(dram).__name__} for the "
            "work queue; this spec will be computed locally"
        )
    return asdict(dram)


def _dram_from_wire(fields):
    fields = dict(fields)
    timings = DramTimings(**fields.pop("timings"))
    return DramConfig(timings=timings, **fields)


def spec_to_wire(spec):
    """Encode one spec as a JSON-able queue task (with its fingerprint)."""
    if isinstance(spec, TraceSpec):
        kind, fields = "trace", {"workload": spec.workload, "length": spec.length}
    elif isinstance(spec, RunSpec):
        kind, fields = "run", {
            "workload": spec.workload,
            "scheme": spec.scheme,
            "length": spec.length,
            "dram": _dram_to_wire(spec.dram),
            "llc_bytes": spec.llc_bytes,
            "record_pollution": spec.record_pollution,
        }
    elif isinstance(spec, MixSpec):
        kind, fields = "mix", {
            "mix_name": spec.mix_name,
            "workloads": list(spec.workloads),
            "scheme": spec.scheme,
            "length_per_core": spec.length_per_core,
            "dram": _dram_to_wire(spec.dram),
            "llc_bytes": spec.llc_bytes,
        }
    else:
        raise TypeError(f"cannot serialize spec of type {type(spec).__name__}")
    return {"kind": kind, "digest": spec.fingerprint(), "spec": fields}


def spec_from_wire(task):
    """Decode one queue task back into its spec dataclass."""
    kind, fields = task["kind"], dict(task["spec"])
    if kind == "trace":
        return TraceSpec(fields["workload"], int(fields["length"]))
    if kind == "run":
        return RunSpec(
            fields["workload"],
            fields["scheme"],
            int(fields["length"]),
            _dram_from_wire(fields["dram"]),
            int(fields["llc_bytes"]),
            bool(fields["record_pollution"]),
        )
    if kind == "mix":
        return MixSpec(
            fields["mix_name"],
            tuple(fields["workloads"]),
            fields["scheme"],
            int(fields["length_per_core"]),
            _dram_from_wire(fields["dram"]),
            int(fields["llc_bytes"]),
        )
    raise ValueError(f"unknown task kind {kind!r}")


# -- the queue state machine -------------------------------------------------


class _Task:
    __slots__ = (
        "digest",
        "kind",
        "payload",
        "state",
        "fail_count",
        "lease",
        "worker",
        "expires_at",
        "error",
    )

    def __init__(self, digest, kind, payload):
        self.digest = digest
        self.kind = kind
        self.payload = payload
        self.state = PENDING
        self.fail_count = 0
        self.lease = None
        self.worker = None
        self.expires_at = 0.0
        self.error = None


class WorkQueue:
    """Thread-safe lease-based spec queue (the coordinator's state).

    Pure state machine: it never computes, never touches the network and
    never reads wall-clock time — lease expiry uses an injectable
    monotonic ``clock`` (tests substitute a fake), and ``have_artifact``
    is the store-existence oracle completions are verified against.
    Everything the queue knows is in-memory: the *store* is the durable
    layer (content-addressed artifacts survive a coordinator restart),
    the queue is re-populated by submitter resubmission keyed off
    :attr:`epoch`.
    """

    def __init__(
        self,
        have_artifact=None,
        clock=time.monotonic,
        max_failures=DEFAULT_MAX_FAILURES,
        default_ttl=DEFAULT_LEASE_TTL,
        max_ttl=3600.0,
    ):
        self._have_artifact = have_artifact or (lambda kind, digest: False)
        self._clock = clock
        self.max_failures = max(1, int(max_failures))
        self.default_ttl = float(default_ttl)
        self.max_ttl = float(max_ttl)
        #: Random per-instance id; a submitter that sees the epoch change
        #: mid-poll knows the coordinator restarted with an empty queue
        #: and must resubmit its outstanding batch.
        self.epoch = secrets.token_hex(8)
        self._lock = threading.Lock()
        self._tasks = {}
        self._pending = deque()
        self._counters = {}

    def _count(self, name, n=1):
        self._counters[name] = self._counters.get(name, 0) + n

    # -- internal transitions (lock held) ------------------------------------

    def _fail_locked(self, task, error):
        """Charge one failed attempt; re-queue or quarantine."""
        task.fail_count += 1
        task.error = str(error)
        task.lease = None
        task.worker = None
        if task.fail_count >= self.max_failures:
            task.state = QUARANTINED
        else:
            task.state = PENDING
            self._pending.append(task.digest)

    def _expire_locked(self, now):
        """Reclaim leases the coordinator's clock says are dead."""
        for task in self._tasks.values():
            if task.state == LEASED and task.expires_at <= now:
                self._count("expired_leases")
                self._fail_locked(task, "lease expired")

    # -- the queue API (one method per endpoint) ------------------------------

    def submit(self, tasks):
        """Enqueue wire tasks (idempotent); returns disposition counts.

        Raises ``ValueError`` on a malformed task — the server answers
        400 for the whole batch rather than silently dropping entries.
        """
        from repro.engine.remote import _DIGEST_RE

        validated = []
        for task in tasks:
            if not isinstance(task, dict):
                raise ValueError("task must be an object")
            digest, kind, payload = task.get("digest"), task.get("kind"), task.get("spec")
            if not (isinstance(digest, str) and _DIGEST_RE.fullmatch(digest)):
                raise ValueError(f"bad task digest {digest!r}")
            if kind not in ("trace", "run", "mix"):
                raise ValueError(f"bad task kind {kind!r}")
            if not isinstance(payload, dict):
                raise ValueError("task spec must be an object")
            validated.append((digest, kind, payload))
        out = {"queued": 0, "duplicate": 0, "done": 0, "quarantined": 0}
        with self._lock:
            for digest, kind, payload in validated:
                task = self._tasks.get(digest)
                if task is None:
                    self._tasks[digest] = _Task(digest, kind, payload)
                    self._pending.append(digest)
                    self._count("submitted")
                    out["queued"] += 1
                elif task.state == DONE:
                    if self._have_artifact(task.kind, digest):
                        out["done"] += 1
                    else:
                        # Completed once, but the artifact was evicted
                        # since (server-side gc): recompute it.
                        task.state = PENDING
                        self._pending.append(digest)
                        self._count("requeued_after_eviction")
                        out["queued"] += 1
                elif task.state == QUARANTINED:
                    out["quarantined"] += 1
                else:
                    out["duplicate"] += 1
        out["epoch"] = self.epoch
        return out

    def lease(self, worker, max_tasks=1, ttl=None):
        """Hand out up to ``max_tasks`` pending specs under fresh leases.

        ``ttl`` is relative seconds (clamped to ``max_ttl``); expiry is
        computed against the coordinator's monotonic clock, so worker
        clock skew is structurally irrelevant.
        """
        ttl = self.default_ttl if ttl is None else float(ttl)
        ttl = max(0.05, min(ttl, self.max_ttl))
        max_tasks = max(1, int(max_tasks))
        out = []
        with self._lock:
            now = self._clock()
            self._expire_locked(now)
            while self._pending and len(out) < max_tasks:
                digest = self._pending.popleft()
                task = self._tasks.get(digest)
                if task is None or task.state != PENDING:
                    continue  # stale queue entry (re-leased, completed...)
                token = secrets.token_hex(8)
                task.state = LEASED
                task.worker = str(worker)
                task.lease = token
                task.expires_at = now + ttl
                self._count("leases")
                out.append(
                    {
                        "digest": digest,
                        "kind": task.kind,
                        "spec": task.payload,
                        "lease": token,
                        "ttl": ttl,
                    }
                )
        return out

    def complete(self, digest, lease, worker=None):
        """Acknowledge one computed spec; idempotent, artifact-verified.

        The claim is only believed when the artifact actually exists in
        the store (the worker published it through the checksummed PUT
        path *before* completing).  First valid result wins: a stale or
        expired lease completing a spec someone else re-leased is
        accepted and counted, because content-addressing makes both
        results bit-identical by construction.
        """
        with self._lock:
            self._expire_locked(self._clock())
            task = self._tasks.get(digest)
            if task is None:
                self._count("unknown_completions")
                return {"status": "unknown"}
            if task.state == DONE:
                self._count("duplicate_completions")
                return {"status": "duplicate"}
            if not self._have_artifact(task.kind, digest):
                self._count("completions_without_artifact")
                if task.state == LEASED and task.lease == lease:
                    self._count("failures")
                    self._fail_locked(task, "completed without a stored artifact")
                return {"status": "missing-artifact"}
            stale = not (task.state == LEASED and task.lease == lease)
            if stale:
                self._count("stale_completions")
            task.state = DONE
            task.lease = None
            task.worker = None
            task.error = None
            self._count("completed")
            return {"status": "completed", "stale": stale}

    def fail(self, digest, lease, worker=None, error=""):
        """Report one failed attempt; re-queues or quarantines the spec.

        Only the current lease holder can charge a failure — a stale
        report (expired lease, re-leased spec) is ignored so a zombie
        worker cannot poison a spec someone else is computing.
        """
        with self._lock:
            self._expire_locked(self._clock())
            task = self._tasks.get(digest)
            if task is None:
                self._count("unknown_failures")
                return {"status": "unknown"}
            if task.state == DONE:
                self._count("stale_failures")
                return {"status": "ignored"}
            if task.state == LEASED and task.lease == lease:
                self._count("failures")
                self._fail_locked(task, error or "worker reported failure")
                return {
                    "status": "quarantined" if task.state == QUARANTINED else "requeued"
                }
            self._count("stale_failures")
            return {"status": "ignored"}

    def release(self, worker=None, digests=None):
        """Return a worker's unfinished leases to pending, uncharged.

        The graceful-shutdown path: releasing is not failing, so the
        spec's failure count is untouched and it re-leases immediately.
        """
        wanted = None if digests is None else set(digests)
        released = 0
        with self._lock:
            for task in self._tasks.values():
                if task.state != LEASED:
                    continue
                if worker is not None and task.worker != str(worker):
                    continue
                if wanted is not None and task.digest not in wanted:
                    continue
                task.state = PENDING
                task.lease = None
                task.worker = None
                self._pending.append(task.digest)
                released += 1
            self._count("released", released)
        return {"released": released}

    def stats(self):
        """One JSON-able snapshot: state counts, counters, quarantine map."""
        with self._lock:
            self._expire_locked(self._clock())
            states = {PENDING: 0, LEASED: 0, DONE: 0, QUARANTINED: 0}
            quarantined = {}
            for task in self._tasks.values():
                states[task.state] += 1
                if task.state == QUARANTINED:
                    quarantined[task.digest] = task.error
            return {
                "epoch": self.epoch,
                "tasks": len(self._tasks),
                "pending": states[PENDING],
                "leased": states[LEASED],
                "completed": states[DONE],
                "quarantined": states[QUARANTINED],
                "counters": dict(self._counters),
                "quarantined_digests": quarantined,
            }


# -- the queue client --------------------------------------------------------


class QueueClient:
    """JSON queue calls over a :class:`RemoteBackend`'s transport.

    Rides the backend's pooled keep-alive connections, bounded retries
    with exponential backoff, and per-peer circuit breaker — a dead
    coordinator costs one retry cycle and then every call
    short-circuits to ``None`` until the cooldown elapses.  ``None``
    from any method means "coordinator unusable, degrade now".
    """

    def __init__(self, backend):
        self.backend = backend

    def _call(self, method, path, payload=None):
        body = headers = None
        if payload is not None:
            body = json.dumps(payload).encode()
            headers = {"Content-Type": "application/json"}
        response = self.backend._request(method, path, body=body, headers=headers)
        if response is None or response[0] != 200:
            return None
        try:
            decoded = json.loads(response[2])
        except ValueError:
            return None
        return decoded if isinstance(decoded, dict) else None

    def submit(self, tasks):
        return self._call("POST", f"{_API}/queue/submit", {"tasks": list(tasks)})

    def lease(self, worker, max_tasks=1, ttl=None):
        """A list of leased tasks ([] when idle), or ``None`` when the
        coordinator is unreachable."""
        out = self._call(
            "POST",
            f"{_API}/queue/lease",
            {"worker": worker, "max": max_tasks, "ttl": ttl},
        )
        if out is None:
            return None
        leases = out.get("leases")
        return leases if isinstance(leases, list) else []

    def complete(self, digest, lease, worker=None):
        return self._call(
            "POST",
            f"{_API}/queue/complete",
            {"digest": digest, "lease": lease, "worker": worker},
        )

    def fail(self, digest, lease, worker=None, error=""):
        return self._call(
            "POST",
            f"{_API}/queue/fail",
            {"digest": digest, "lease": lease, "worker": worker, "error": str(error)},
        )

    def release(self, worker):
        out = self._call("POST", f"{_API}/queue/release", {"worker": worker})
        return None if out is None else int(out.get("released", 0))

    def stats(self):
        return self._call("GET", f"{_API}/queue/stats")


# -- the worker loop (`repro work URL`) --------------------------------------


def _worker_id():
    return f"{socket.gethostname()}-{os.getpid()}-{secrets.token_hex(3)}"


class SpecTimeout(RuntimeError):
    """A leased spec exceeded the worker's ``--spec-timeout`` budget."""


def _run_spec_bounded(session, spec, timeout):
    """``session.run(spec)``, bounded by a wall-clock watchdog.

    The spec computes on a daemon thread while this thread waits up to
    ``timeout`` seconds.  On expiry a :class:`SpecTimeout` raises — the
    caller fails the lease (counting toward quarantine) instead of
    holding it forever on a runaway spec.  The abandoned thread keeps
    running to completion in the background; that is deliberate and
    harmless: artifacts are content-addressed, so if it eventually
    finishes its write-through publish is a duplicate completion, not a
    divergence — exactly like a lease that expired and was re-leased
    elsewhere.
    """
    if not timeout:
        session.run(spec)
        return
    done = threading.Event()
    failure = []

    def _target():
        try:
            session.run(spec)
        except BaseException as exc:  # re-raised on the worker thread
            failure.append(exc)
        finally:
            done.set()

    thread = threading.Thread(target=_target, daemon=True)
    thread.start()
    if not done.wait(float(timeout)):
        raise SpecTimeout(
            f"spec did not finish within --spec-timeout {float(timeout):g}s"
        )
    if failure:
        raise failure[0]


def run_worker(
    url,
    session=None,
    backend=None,
    poll_interval=0.5,
    ttl=DEFAULT_LEASE_TTL,
    max_tasks=1,
    once=False,
    stop_event=None,
    verbose=False,
    spec_timeout=None,
):
    """Lease → compute → publish → acknowledge, until told to stop.

    The compute path is the normal engine path: each leased spec runs
    through ``session.run`` with the coordinator layered as the remote
    store tier, so the result (and any trace it built) is published via
    the integrity-checked artifact protocol before the lease is
    completed.  A spec that raises is failed back to the queue with the
    error text; the queue quarantines it after ``max_failures``
    attempts.  ``spec_timeout`` adds a per-spec wall-clock watchdog
    (:func:`_run_spec_bounded`): a spec that exceeds it is *failed* like
    any other error — so a pathological spec costs this worker one
    timeout, not its liveness, and three timeouts quarantine the spec
    instead of starving the farm forever.

    Shutdown is graceful: SIGINT/SIGTERM (installed only when running on
    the main thread) set ``stop_event``; the loop finishes the spec in
    flight, releases every unfinished lease (no failure charged) and
    returns a tally dict.  ``once=True`` exits as soon as the queue has
    nothing to lease — the drain mode tests and smoke scripts use.
    """
    from repro.engine import config as _config
    from repro.engine.session import Session

    if backend is None:
        # tls_ca (--tls-ca / REPRO_TLS_CA) pins an https coordinator's
        # self-signed certificate, same as the session's store client.
        backend = _config._remote_client(url, ca_file=_config.current_config().tls_ca)
    client = QueueClient(backend)
    if session is None:
        session = Session(remote_cache_url=url)
    stop = stop_event if stop_event is not None else threading.Event()
    worker = _worker_id()
    installed = []
    if threading.current_thread() is threading.main_thread():

        def _graceful(signum, frame):
            stop.set()

        for sig in (signal.SIGINT, signal.SIGTERM):
            installed.append((sig, signal.signal(sig, _graceful)))
    tally = {"worker": worker, "completed": 0, "failed": 0, "released": 0}
    try:
        while not stop.is_set():
            leases = client.lease(worker, max_tasks=max_tasks, ttl=ttl)
            if not leases:
                # None = coordinator unreachable (breaker already bounds
                # the cost); [] = queue idle.  Either way: wait and ask
                # again — except in drain mode, where both mean "done".
                if once:
                    break
                if stop.wait(poll_interval):
                    break
                continue
            for task in leases:
                if stop.is_set():
                    break  # unfinished leases are released below
                digest = task.get("digest", "")
                try:
                    spec = spec_from_wire(task)
                    if spec.fingerprint() != digest:
                        raise ValueError(
                            "fingerprint mismatch: worker code version "
                            "differs from the submitter's"
                        )
                    _run_spec_bounded(session, spec, spec_timeout)
                except Exception as exc:
                    client.fail(digest, task.get("lease"), worker=worker, error=repr(exc))
                    tally["failed"] += 1
                    if verbose:
                        print(f"worker {worker}: failed {digest[:12]}: {exc!r}", file=sys.stderr)
                else:
                    client.complete(digest, task.get("lease"), worker=worker)
                    tally["completed"] += 1
                    if verbose:
                        print(f"worker {worker}: completed {digest[:12]}", file=sys.stderr)
    finally:
        released = client.release(worker)
        tally["released"] = 0 if released is None else released
        for sig, old in installed:
            signal.signal(sig, old)
    return tally
