"""First-class, immutable experiment specs.

A *spec* canonicalizes everything that determines one simulation
artifact — and nothing else.  Specs are frozen dataclasses, so they are
hashable, comparable, picklable (they cross process-pool boundaries),
and safe to share between sessions.  Each spec owns its
content-addressed fingerprint (see :mod:`repro.engine.fingerprint`);
two specs describing the same experiment produce the same digest, in
this process or on another host.

- :class:`TraceSpec` — one generated workload trace;
- :class:`RunSpec` — one single-core run (workload × scheme × length ×
  DRAM × LLC × pollution recording);
- :class:`MixSpec` — one multi-programmed run (one workload per core on
  the shared-LLC machine).

Defaults mirror the paper's machine configurations: ``RunSpec`` defaults
to the ST machine's 1-channel DDR4-2133 DRAM and 2MB LLC, ``MixSpec``
to the MP machine's 2-channel DDR4-2133.  ``None`` DRAM is canonicalized
at construction, so equal experiments always compare (and fingerprint)
equal regardless of how the caller spelled the default.
"""

from dataclasses import dataclass

from repro.constants import MP_LLC_BYTES, ST_LLC_BYTES
from repro.engine.fingerprint import mix_fingerprint, run_fingerprint, trace_fingerprint
from repro.memory.dram import MP_DRAM, ST_DRAM, DramConfig

#: The paper's ST-machine LLC capacity (Table 2); the MP machine's
#: ``MP_LLC_BYTES`` and both DRAM configs (``ST_DRAM``/``MP_DRAM``) are
#: re-exported from their single sources (``repro.constants``,
#: ``repro.memory.dram``) — the same objects ``SystemConfig``'s
#: factories default to, so specs and simulator can never disagree.
DEFAULT_LLC_BYTES = ST_LLC_BYTES


@dataclass(frozen=True)
class TraceSpec:
    """One generated workload trace: catalog name × memory-op count."""

    workload: str
    length: int

    def fingerprint(self):
        """Content digest keying this trace in any store backend."""
        return trace_fingerprint(self.workload, self.length)


@dataclass(frozen=True)
class RunSpec:
    """One single-core simulation on the paper's ST machine."""

    workload: str
    scheme: str
    length: int
    dram: DramConfig = None
    llc_bytes: int = DEFAULT_LLC_BYTES
    record_pollution: bool = False

    def __post_init__(self):
        if self.dram is None:
            object.__setattr__(self, "dram", ST_DRAM)

    @property
    def trace_spec(self):
        """The trace this run consumes."""
        return TraceSpec(self.workload, self.length)

    def fingerprint(self):
        """Content digest keying this run in any store backend."""
        return run_fingerprint(
            self.workload,
            self.scheme,
            self.length,
            self.dram,
            self.llc_bytes,
            self.record_pollution,
        )

    def with_scheme(self, scheme):
        """The same machine and workload under a different scheme."""
        return RunSpec(
            self.workload,
            scheme,
            self.length,
            self.dram,
            self.llc_bytes,
            self.record_pollution,
        )


@dataclass(frozen=True)
class MixSpec:
    """One multi-programmed simulation on the paper's MP machine.

    ``workloads`` holds one catalog name per core (the paper runs four);
    copies of the same workload are de-lockstepped by the mix builder.
    """

    mix_name: str
    workloads: tuple
    scheme: str
    length_per_core: int
    dram: DramConfig = None
    llc_bytes: int = MP_LLC_BYTES

    def __post_init__(self):
        object.__setattr__(self, "workloads", tuple(self.workloads))
        if self.dram is None:
            object.__setattr__(self, "dram", MP_DRAM)

    @property
    def cores(self):
        """Core count — one per mixed workload."""
        return len(self.workloads)

    def fingerprint(self):
        """Content digest keying this mix in any store backend."""
        return mix_fingerprint(
            self.mix_name,
            self.workloads,
            self.scheme,
            self.length_per_core,
            self.dram,
            self.llc_bytes,
        )

    def with_scheme(self, scheme):
        """The same mix under a different scheme."""
        return MixSpec(
            self.mix_name,
            self.workloads,
            scheme,
            self.length_per_core,
            self.dram,
            self.llc_bytes,
        )


#: Every spec kind `Session.run` accepts.
SPEC_TYPES = (TraceSpec, RunSpec, MixSpec)
