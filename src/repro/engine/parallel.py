"""Legacy spec helpers and batch execution (pre-session compatibility).

The process-pool machinery now lives in :mod:`repro.engine.session`
(every :class:`~repro.engine.session.Session` owns its fan-out); this
module keeps the original tuple-or-function API working:

- :func:`run_spec` / :func:`mix_spec` now build the first-class
  :class:`~repro.engine.specs.RunSpec` / :class:`~repro.engine.specs.MixSpec`
  dataclasses (callers that only ever passed them back to
  :func:`execute_specs` see no difference);
- :func:`execute_spec` / :func:`execute_specs` accept both the new spec
  objects and the historical ``(kind, ...)`` tuples, and execute through
  the default session — deterministic input-order merge, process-pool
  fan-out when ``jobs > 1``, exactly as before.

Pool-crash semantics (inherited from :meth:`Session._execute`, covered
by ``tests/test_pool_faults.py``): a worker that *raises* propagates its
exception out of ``execute_specs`` unchanged; a worker *process* that
dies (OOM kill, segfault) triggers a sequential recompute of the batch
with a warning.  Neither hangs the caller.
"""

from repro.engine.specs import SPEC_TYPES, MixSpec, RunSpec

#: Historical spec-kind tags (tuple form).
RUN = "run"
MIX = "mix"


def run_spec(workload, scheme, length, dram, llc_bytes, record_pollution):
    """Build a single-core run spec."""
    return RunSpec(workload, scheme, length, dram, llc_bytes, record_pollution)


def mix_spec(mix_name, workload_names, scheme, length_per_core, dram):
    """Build a multi-programmed mix spec."""
    return MixSpec(mix_name, tuple(workload_names), scheme, length_per_core, dram)


def coerce_spec(spec):
    """Accept a spec dataclass or a legacy ``(kind, ...)`` tuple."""
    if isinstance(spec, SPEC_TYPES):
        return spec
    if isinstance(spec, tuple) and spec:
        kind = spec[0]
        if kind == RUN:
            return RunSpec(*spec[1:])
        if kind == MIX:
            return MixSpec(spec[1], tuple(spec[2]), *spec[3:])
        raise ValueError(f"unknown spec kind {kind!r}")
    raise ValueError(f"cannot interpret spec {spec!r}")


def execute_spec(spec):
    """Compute one spec (store-backend aware) through the default session."""
    from repro.engine.session import default_session

    return default_session()._produce(coerce_spec(spec))


def execute_specs(specs, jobs=None):
    """Execute ``specs``; returns results in input order.

    ``jobs`` defaults to the engine configuration.  Sequential execution
    (``jobs <= 1`` or fewer than two specs) stays entirely in-process.
    """
    from repro.engine.session import default_session

    return default_session().run([coerce_spec(s) for s in specs], jobs=jobs)
