"""Process-pool execution of independent simulation runs.

Single-core runs and multi-programmed mixes for different (workload,
scheme, config) tuples share no state, so they fan out across worker
processes freely.  Determinism is preserved by construction:

- every spec is computed by :mod:`repro.engine.compute` with the exact
  sequential code path (same arithmetic, same construction order);
- results are merged back **in input order** (``ProcessPoolExecutor.map``
  preserves ordering), so callers observe the same sequence of results a
  sequential loop would produce;
- workers inherit the parent's engine configuration explicitly through
  the pool initializer (not ambient environment), so parent and workers
  agree on the cache directory and write compatible artifacts.

With ``jobs <= 1`` (the default) everything runs in-process — no pool,
no pickling, no spawn cost.
"""

from concurrent.futures import ProcessPoolExecutor

from repro.engine import config as _config
from repro.engine.compute import produce_mix, produce_run

#: Spec kinds understood by :func:`execute_spec`.
RUN = "run"
MIX = "mix"


def run_spec(workload, scheme, length, dram, llc_bytes, record_pollution):
    """Build a single-core run spec tuple."""
    return (RUN, workload, scheme, length, dram, llc_bytes, record_pollution)


def mix_spec(mix_name, workload_names, scheme, length_per_core, dram):
    """Build a multi-programmed mix spec tuple."""
    return (MIX, mix_name, tuple(workload_names), scheme, length_per_core, dram)


def execute_spec(spec):
    """Compute one spec (disk-cache aware); used in-process and by workers."""
    kind = spec[0]
    if kind == RUN:
        return produce_run(*spec[1:])
    if kind == MIX:
        return produce_mix(*spec[1:])
    raise ValueError(f"unknown spec kind {kind!r}")


def _init_worker(cache_dir, disk_cache):
    """Propagate the parent's engine configuration into a pool worker."""
    _config.configure(jobs=1, cache_dir=cache_dir, disk_cache=disk_cache)


def execute_specs(specs, jobs=None):
    """Execute ``specs``; returns results in input order.

    ``jobs`` defaults to the engine configuration.  Sequential execution
    (``jobs <= 1`` or fewer than two specs) stays entirely in-process.
    """
    specs = list(specs)
    cfg = _config.current_config()
    if jobs is None:
        jobs = cfg.jobs
    if jobs <= 1 or len(specs) <= 1:
        return [execute_spec(spec) for spec in specs]
    workers = min(jobs, len(specs))
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(cfg.cache_dir, cfg.disk_cache),
    ) as pool:
        return list(pool.map(execute_spec, specs))
