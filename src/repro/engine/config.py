"""Engine configuration: parallelism and cache location.

Resolution order for every knob:

1. an explicit :func:`configure` call (the CLI flags land here);
2. environment variables (``REPRO_JOBS``, ``REPRO_CACHE_DIR``,
   ``REPRO_NO_CACHE``);
3. built-in defaults (sequential, ``~/.cache/dspatch-repro``, disk cache
   enabled).

Environment variables are read lazily at each :func:`current_config`
call (not at import), so test fixtures can repoint the cache directory
before any simulation runs.
"""

import os
from dataclasses import dataclass
from pathlib import Path

from repro.engine.store import ResultStore

#: Explicit overrides set via :func:`configure`; ``None`` = use env/default.
_overrides = {"jobs": None, "cache_dir": None, "disk_cache": None}


@dataclass(frozen=True)
class EngineConfig:
    """Resolved engine settings."""

    #: Worker processes for independent runs; 1 = in-process sequential.
    jobs: int
    #: Root directory of the on-disk result/trace store.
    cache_dir: Path
    #: Whether the disk layer is consulted/written at all.
    disk_cache: bool


def _default_cache_dir():
    return Path(os.environ.get("REPRO_CACHE_DIR") or Path.home() / ".cache" / "dspatch-repro")


def current_config():
    """The active :class:`EngineConfig` (overrides > env > defaults)."""
    jobs = _overrides["jobs"]
    if jobs is None:
        try:
            jobs = int(os.environ.get("REPRO_JOBS", "1"))
        except ValueError:
            jobs = 1
    cache_dir = _overrides["cache_dir"] or _default_cache_dir()
    disk_cache = _overrides["disk_cache"]
    if disk_cache is None:
        disk_cache = os.environ.get("REPRO_NO_CACHE", "") != "1"
    return EngineConfig(jobs=max(1, jobs), cache_dir=Path(cache_dir), disk_cache=disk_cache)


def configure(jobs=None, cache_dir=None, disk_cache=None):
    """Set explicit engine overrides; ``None`` leaves a knob untouched."""
    if jobs is not None:
        _overrides["jobs"] = int(jobs)
    if cache_dir is not None:
        _overrides["cache_dir"] = Path(cache_dir)
    if disk_cache is not None:
        _overrides["disk_cache"] = bool(disk_cache)


def reset_config():
    """Drop all explicit overrides (tests)."""
    for key in _overrides:
        _overrides[key] = None


def active_store():
    """The :class:`ResultStore` for the current config, or ``None`` if the
    disk layer is disabled."""
    cfg = current_config()
    if not cfg.disk_cache:
        return None
    return ResultStore(cfg.cache_dir)
