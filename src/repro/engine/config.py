"""Engine configuration: parallelism, cache location, store backend.

Resolution order for every knob:

1. an explicit :func:`configure` call (the CLI flags land here);
2. environment variables (``REPRO_JOBS``, ``REPRO_CACHE_DIR``,
   ``REPRO_NO_CACHE``, ``REPRO_SHARED_CACHE``, ``REPRO_REMOTE_CACHE``,
   ``REPRO_S3_CACHE``, ``REPRO_TLS_CA``; ``REPRO_CACHE_TOKEN`` rides
   along as the remote store's shared secret, and
   ``REPRO_S3_ACCESS_KEY``/``REPRO_S3_SECRET_KEY``/``REPRO_S3_REGION``
   — or their standard ``AWS_*`` equivalents — as the object store's
   credentials);
3. built-in defaults (sequential, ``~/.cache/dspatch-repro``, disk cache
   enabled, no shared tier, no remote store, no object store).

Environment variables are read lazily at each :func:`current_config`
call (not at import), so test fixtures can repoint the cache directory
before any simulation runs.

These process-global knobs back the **default session** (and the
figure drivers).  Explicitly constructed
:class:`repro.engine.session.Session` objects can override any of them
per session — including plugging in a whole
:class:`repro.engine.backends.StoreBackend` — without touching this
module.
"""

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.engine.backends import LocalDirBackend, TieredBackend

#: Explicit overrides set via :func:`configure`; ``None`` = use env/default.
_overrides = {
    "jobs": None,
    "cache_dir": None,
    "disk_cache": None,
    "shared_cache_dir": None,
    "remote_cache_url": None,
    "s3_cache_url": None,
    "tls_ca": None,
    "kernel": None,
}

#: Valid hot-loop kernel selections (``repro run --kernel`` / REPRO_KERNEL).
KERNEL_CHOICES = ("auto", "py", "compiled", "object")


@dataclass(frozen=True)
class EngineConfig:
    """Resolved engine settings."""

    #: Worker processes for independent runs; 1 = in-process sequential.
    jobs: int
    #: Root directory of the on-disk result/trace store.
    cache_dir: Path
    #: Whether the disk layer is consulted/written at all.
    disk_cache: bool
    #: Optional read-only shared store root layered under the local one
    #: (read-through: shared hits are promoted into the local tier).
    shared_cache_dir: Optional[Path] = None
    #: Optional remote cache-server URL (``repro serve``), layered as a
    #: read-through/write-through tier above the local store.
    remote_cache_url: Optional[str] = None
    #: Optional S3-compatible endpoint (``http(s)://host[:port]/bucket
    #: [/prefix]``): the outermost, durable tier — it outlives every
    #: coordinator host, so it sits above even the remote cache server.
    s3_cache_url: Optional[str] = None
    #: Optional CA bundle (PEM path) pinning the TLS certificates of
    #: both the remote cache server and the S3 endpoint — the
    #: self-signed deployment recipe.  ``None`` = system trust store.
    tls_ca: Optional[str] = None
    #: Hot-loop kernel for eligible runs: ``auto`` picks the compiled
    #: kernel when a C toolchain is present and falls back to the pure
    #: Python ``py`` kernel otherwise; ``object`` forces the original
    #: object-model loop.  Deliberately NOT part of spec fingerprints —
    #: all kernels are bit-identical, so results share cache entries.
    kernel: str = "auto"


def _default_cache_dir():
    return Path(os.environ.get("REPRO_CACHE_DIR") or Path.home() / ".cache" / "dspatch-repro")


def current_config():
    """The active :class:`EngineConfig` (overrides > env > defaults)."""
    jobs = _overrides["jobs"]
    if jobs is None:
        try:
            jobs = int(os.environ.get("REPRO_JOBS", "1"))
        except ValueError:
            jobs = 1
    cache_dir = _overrides["cache_dir"] or _default_cache_dir()
    disk_cache = _overrides["disk_cache"]
    if disk_cache is None:
        disk_cache = os.environ.get("REPRO_NO_CACHE", "") != "1"
    shared = _overrides["shared_cache_dir"]
    if shared is None:
        env_shared = os.environ.get("REPRO_SHARED_CACHE")
        shared = Path(env_shared) if env_shared else None
    remote = _overrides["remote_cache_url"]
    if remote is None:
        remote = os.environ.get("REPRO_REMOTE_CACHE") or None
    s3 = _overrides["s3_cache_url"]
    if s3 is None:
        s3 = os.environ.get("REPRO_S3_CACHE") or None
    tls_ca = _overrides["tls_ca"]
    if tls_ca is None:
        tls_ca = os.environ.get("REPRO_TLS_CA") or None
    kernel = _overrides["kernel"]
    if kernel is None:
        kernel = os.environ.get("REPRO_KERNEL") or "auto"
        if kernel not in KERNEL_CHOICES:
            raise ValueError(
                f"REPRO_KERNEL={kernel!r} is not one of {KERNEL_CHOICES}"
            )
    return EngineConfig(
        jobs=max(1, jobs),
        cache_dir=Path(cache_dir),
        disk_cache=disk_cache,
        shared_cache_dir=shared,
        remote_cache_url=remote,
        s3_cache_url=s3,
        tls_ca=tls_ca,
        kernel=kernel,
    )


def configure(
    jobs=None,
    cache_dir=None,
    disk_cache=None,
    shared_cache_dir=None,
    remote_cache_url=None,
    s3_cache_url=None,
    tls_ca=None,
    kernel=None,
):
    """Set explicit engine overrides; ``None`` leaves a knob untouched."""
    if jobs is not None:
        _overrides["jobs"] = int(jobs)
    if kernel is not None:
        if kernel not in KERNEL_CHOICES:
            raise ValueError(f"kernel must be one of {KERNEL_CHOICES}, got {kernel!r}")
        _overrides["kernel"] = str(kernel)
    if cache_dir is not None:
        _overrides["cache_dir"] = Path(cache_dir)
    if disk_cache is not None:
        _overrides["disk_cache"] = bool(disk_cache)
    if shared_cache_dir is not None:
        _overrides["shared_cache_dir"] = Path(shared_cache_dir)
    if remote_cache_url is not None:
        _overrides["remote_cache_url"] = str(remote_cache_url)
    if s3_cache_url is not None:
        _overrides["s3_cache_url"] = str(s3_cache_url)
    if tls_ca is not None:
        _overrides["tls_ca"] = str(tls_ca)


def reset_config():
    """Drop all explicit overrides (tests)."""
    for key in _overrides:
        _overrides[key] = None


#: One client (and connection pool) per URL per process: a fresh backend
#: per ``Session.store`` access would open a new connection for every
#: artifact.  A client built with a different CA pin is rebuilt (the
#: pin is effectively process-global, so this only happens when tests
#: repoint it).
_REMOTE_CLIENTS = {}
_S3_CLIENTS = {}


def _remote_client(url, ca_file=None):
    ca_file = str(ca_file) if ca_file else None
    client = _REMOTE_CLIENTS.get(url)
    if client is None or getattr(client, "ca_file", None) != ca_file:
        from repro.engine.remote import RemoteBackend

        # REPRO_CACHE_TOKEN is the client half of `repro serve
        # --auth-token`; absent, the header is simply not sent.
        client = _REMOTE_CLIENTS[url] = RemoteBackend(
            url,
            token=os.environ.get("REPRO_CACHE_TOKEN") or None,
            ca_file=ca_file,
        )
    return client


def _s3_client(url, ca_file=None):
    ca_file = str(ca_file) if ca_file else None
    client = _S3_CLIENTS.get(url)
    if client is None or getattr(client, "ca_file", None) != ca_file:
        from repro.engine.s3 import S3Backend

        # Credentials resolve from the environment inside S3Backend;
        # missing credentials raise there (a configuration error the
        # operator must see, not a silent all-miss tier).
        client = _S3_CLIENTS[url] = S3Backend(url, ca_file=ca_file)
    return client


def backend_for(config):
    """Build the :class:`StoreBackend` a resolved config describes.

    ``None`` when the disk layer is disabled; a plain
    :class:`LocalDirBackend` normally; a read-through
    :class:`TieredBackend` (local over shared) when a shared tier is
    configured.  The remote cache server and the S3 object store, when
    configured, stack above that — each read-through with local
    promotion and **write-through** so every fresh result publishes
    outward.  S3 is the *outermost* tier: it is the durable one, so it
    must see every artifact even when the faster middle tiers are
    down (composition: ``((local over shared-dir) over remote) over
    s3``).  ``disk_cache=False`` wins over everything — it disables the
    *whole* persistent layer, shared/remote/S3 tiers included (there is
    no local tier to promote into, and the contract of ``--no-cache`` is
    "this invocation touches no store at all").
    """
    if not config.disk_cache:
        return None
    store = LocalDirBackend(config.cache_dir)
    if config.shared_cache_dir is not None:
        # touch_on_load=False: readers must not rewrite mtimes on the
        # shared mount (its owner's LRU eviction order is not ours).
        shared = LocalDirBackend(config.shared_cache_dir, touch_on_load=False)
        store = TieredBackend(store, shared)
    if config.remote_cache_url is not None:
        store = TieredBackend(
            store,
            _remote_client(config.remote_cache_url, ca_file=config.tls_ca),
            write_through=True,
        )
    if config.s3_cache_url is not None:
        store = TieredBackend(
            store,
            _s3_client(config.s3_cache_url, ca_file=config.tls_ca),
            write_through=True,
        )
    return store


def active_store():
    """The store backend for the current global config, or ``None`` if
    the disk layer is disabled."""
    return backend_for(current_config())
