"""Figure 4: BOP / SMS / SPP per workload category (1ch DDR4-2133).

Paper shape: SPP wins six of the nine categories; SMS wins the spatially
irregular trio (ISPEC17, Cloud, SYSmark).
"""

from repro.experiments.figures import fig04_prior_prefetchers_by_category


def test_fig04_prior_by_category(figure):
    fig = figure(fig04_prior_prefetchers_by_category)
    spp, sms = fig.rows["SPP"], fig.rows["SMS"]
    # SPP leads overall.
    assert spp["GEOMEAN"] > fig.rows["BOP"]["GEOMEAN"]
    # The bit-pattern-friendly categories are SMS's relative strongholds:
    # SMS's deficit there is far smaller than its overall deficit (in the
    # paper it wins them outright).
    sms_vs_spp = {c: sms[c] - spp[c] for c in ("ISPEC17", "Cloud", "SYSmark")}
    stronghold_avg = sum(sms_vs_spp.values()) / 3
    overall_gap = sms["GEOMEAN"] - spp["GEOMEAN"]
    assert stronghold_avg > overall_gap
