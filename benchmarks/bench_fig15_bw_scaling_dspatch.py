"""Figure 15: DSPatch+SPP performance scaling with DRAM bandwidth.

Paper shape: DSPatch+SPP's margin over standalone SPP *grows* as peak
bandwidth rises (6% at 1ch-2133 to 10% at 2ch-2133), and it leads
eBOP+SPP with a widening gap.
"""

from repro.experiments.figures import fig15_bw_scaling_dspatch


def test_fig15_bw_scaling_dspatch(figure):
    fig = figure(fig15_bw_scaling_dspatch)
    columns = fig.columns
    margin = [
        fig.rows["DSPatch+SPP"][c] - fig.rows["SPP"][c] for c in columns
    ]
    # Positive margin over SPP at every bandwidth point.
    assert all(m > -1.0 for m in margin), margin
    # The margin at the widest configurations is at least as large as at
    # the narrowest (the paper's growth claim).
    assert max(margin[3:]) >= margin[0] - 1.0
