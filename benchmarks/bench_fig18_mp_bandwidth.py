"""Figure 18: homogeneous vs heterogeneous mixes at DDR4-2133 and 2400.

Paper shape: all schemes gain at both bandwidths; DSPatch+SPP stays on top
and benefits from the 2133 -> 2400 frequency bump.
"""

from repro.experiments.figures import fig18_mp_bandwidth


def test_fig18_mp_bandwidth(figure):
    fig = figure(fig18_mp_bandwidth)
    combo = fig.rows["DSPatch+SPP"]
    spp = fig.rows["SPP"]
    for column in fig.columns:
        assert combo[column] >= spp[column] - 2.0, column
    # The combo gains from extra bandwidth on at least one mix flavour.
    gain_2400 = max(
        combo[c] for c in fig.columns if "2400" in c
    )
    gain_2133 = min(combo[c] for c in fig.columns if "2133" in c)
    assert gain_2400 >= gain_2133 - 2.0
