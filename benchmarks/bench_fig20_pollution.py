"""Figure 20 (appendix): LLC pollution classes under a streaming prefetcher.

Paper shape: the overwhelming majority of victims of inaccurate prefetches
were already dead (NoReuse, ~84% even at 2MB); true BadPollution is a few
percent; smaller LLCs shift a little mass from NoReuse toward the other
classes.
"""

from repro.experiments.figures import fig20_pollution


def test_fig20_pollution(figure):
    fig = figure(fig20_pollution)
    for llc in ("8MB", "4MB", "2MB"):
        row = fig.rows[llc]
        assert row["NoReuse"] > 50.0, (llc, row)
        assert row["BadPollution"] < 25.0, (llc, row)
    # Shrinking the LLC does not reduce pollution.
    assert fig.rows["2MB"]["BadPollution"] >= fig.rows["8MB"]["BadPollution"] - 1.0
