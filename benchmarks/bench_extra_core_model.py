"""Ablation bench for the analytic core model (DESIGN.md section 4.6).

Sanity-checks the three properties the substitution argument rests on:
ROB-bounded MLP, dependent-load serialization, and retirement bandwidth.
"""

from repro.cpu.core import CoreExecution, CoreModel
from repro.cpu.trace import FLAG_DEP, Trace
from repro.memory.hierarchy import DRAM, AccessResult


class _FixedLatency:
    def __init__(self, latency):
        self.latency = latency

    def access(self, cycle, pc, addr, is_write=False):
        return AccessResult(self.latency, DRAM)


def _cycles(records, rob=224, latency=200):
    trace = Trace.from_records(records)
    ex = CoreExecution(CoreModel(rob_size=rob), trace, _FixedLatency(latency))
    return ex.run().cycles


def test_core_model_properties(benchmark):
    def run_all():
        independent = [(8, 0x400, 64 * i, 0) for i in range(200)]
        dependent = [(8, 0x400, 64 * i, FLAG_DEP) for i in range(200)]
        return {
            "independent_big_rob": _cycles(independent, rob=224),
            "independent_small_rob": _cycles(independent, rob=16),
            "dependent": _cycles(dependent, rob=224),
        }

    cycles = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for name, value in cycles.items():
        print(f"  {name:24s} {value:12.0f} cycles")
    # MLP: a big ROB overlaps misses that a small ROB cannot.
    assert cycles["independent_big_rob"] < cycles["independent_small_rob"]
    # Dependent chains serialize completely.
    assert cycles["dependent"] > 200 * 200 * 0.95
    assert cycles["dependent"] > cycles["independent_big_rob"] * 2
