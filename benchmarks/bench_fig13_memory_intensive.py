"""Figure 13: per-workload line graph over the memory-intensive set.

Paper shape: DSPatch+SPP beats standalone SPP by ~9% on this subset, with
large wins on NPB / BigBench / SYSmark-excel / mcf.
"""

from repro.experiments.figures import fig13_memory_intensive_lines


def test_fig13_memory_intensive(figure):
    fig = figure(fig13_memory_intensive_lines)
    geo = fig.rows["GEOMEAN"]
    assert geo["DSPatch+SPP"] >= geo["SPP"]
    # Per-workload: the combo rarely loses to SPP.
    losses = sum(
        1
        for name, row in fig.rows.items()
        if name != "GEOMEAN" and row["DSPatch+SPP"] < row["SPP"] - 3.0
    )
    assert losses <= max(2, len(fig.rows) // 5)
