"""Figure 17: multi-programmed homogeneous mixes (4 cores, 2ch DDR4-2133).

Paper shape: DSPatch+SPP improves weighted speedup over standalone SPP
(5.9% in the paper) — the accuracy-biased pattern earns its keep when four
cores fight over bandwidth.
"""

from repro.experiments.figures import fig17_mp_homogeneous


def test_fig17_mp_homogeneous(figure):
    fig = figure(fig17_mp_homogeneous)
    spp = fig.rows["SPP"]["GEOMEAN"]
    combo = fig.rows["DSPatch+SPP"]["GEOMEAN"]
    assert combo >= spp - 1.0
    assert combo > 0
