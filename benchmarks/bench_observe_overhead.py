"""Observability overhead smoke: tracing off must cost (near) nothing.

The observability design puts every event emit on a subclass
(``repro.memory.observed.ObservedHierarchy``); with tracing and
pollution recording off the system drivers construct the plain
``MemoryHierarchy``, so the hot path carries **zero** instrumentation by
construction.  This bench pins that claim two ways:

1. **structurally** — ``_make_hierarchy`` with no sink and no pollution
   recording must return the exact plain class (not the subclass);
2. **empirically** — throughput of a tracing-off ``System.run`` must be
   within ``--max-overhead`` (default 2%) of a *direct-drive* baseline
   that hand-builds the plain hierarchy and runs the identical
   warmup/measure protocol with zero driver plumbing.  Legs alternate
   within each round so host drift hits both sample sets equally, and
   the two legs must produce bit-identical results.

A tracing-on leg is also timed and reported (events to a collecting
sink) — it is informational only: tracing-on throughput is explicitly
not a goal.

Run directly::

    PYTHONPATH=src python benchmarks/bench_observe_overhead.py
"""

import argparse
import dataclasses
import gc
import os
import statistics
import sys
import time

from repro.cpu.core import CoreExecution
from repro.cpu.system import System, SystemConfig, _make_hierarchy, _result_from
from repro.engine import TraceSpec, default_session
from repro.memory.dram import DramModel
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.observed import ObservedHierarchy
from repro.observe.sinks import CollectingSink
from repro.prefetchers.base import flush_training_with_cycle
from repro.prefetchers.registry import build_prefetcher
from repro.prefetchers.stride import PcStridePrefetcher


def check_structure():
    """The no-overhead-by-construction assertions."""
    cfg = SystemConfig.single_thread("dspatch")
    plain = _make_hierarchy(cfg, None, None, None, None, sink=None)
    assert type(plain) is MemoryHierarchy, type(plain)

    traced_cfg = SystemConfig.single_thread("dspatch", trace_prefetch=True)
    observed = _make_hierarchy(
        traced_cfg, None, None, None, None, sink=CollectingSink()
    )
    assert type(observed) is ObservedHierarchy, type(observed)

    # The plain class must carry no per-instance observability state.
    assert MemoryHierarchy.record_pollution_victims is False
    assert MemoryHierarchy.pollution_events == ()
    return True


def _direct_drive(cfg, trace):
    """System.run's exact protocol with the plain hierarchy hand-built.

    This is the no-instrumentation floor: no sink resolution, no
    hierarchy dispatch — the pre-observability code path, inlined.
    """
    dram = DramModel(cfg.dram)
    l1_pf = PcStridePrefetcher() if cfg.l1_stride else None
    l2_pf = build_prefetcher(cfg.l2_prefetcher, dram)
    hierarchy = MemoryHierarchy(
        config=cfg.hierarchy, dram=dram, l1_prefetcher=l1_pf, l2_prefetcher=l2_pf
    )
    execution = CoreExecution(cfg.core, trace, hierarchy)
    warmup_ops = int(len(trace) * cfg.warmup_frac)
    execution.run_ops(warmup_ops)
    execution.mark_stats_start()
    hierarchy.reset_stats()
    dram.reset_stats(execution.time)
    execution.run_ops()
    result = _result_from(execution, hierarchy, dram)
    if l2_pf is not None:
        flush_training_with_cycle(l2_pf, int(execution.time))
    return result


def run_bench(args):
    check_structure()
    print("structure        : tracing-off builds the plain MemoryHierarchy")

    trace = default_session().trace(TraceSpec(args.workload, args.length))
    cfg = SystemConfig.single_thread(args.scheme)
    traced_cfg = SystemConfig.single_thread(
        args.scheme, trace_prefetch=True, trace_cache=True
    )

    legs = [
        ("direct", lambda: _direct_drive(cfg, trace)),
        ("system-off", lambda: System(cfg).run(trace)),
        ("system-traced", lambda: System(traced_cfg, sink=CollectingSink()).run(trace)),
    ]
    results = {}
    for name, fn in legs:  # warmup pass per leg, outside the samples
        results[name] = fn()

    # Tracing must not perturb anything, on or off.
    base = dataclasses.asdict(results["direct"])
    for name in ("system-off", "system-traced"):
        if dataclasses.asdict(results[name]) != base:
            print(f"FAIL: {name} result differs from direct drive", file=sys.stderr)
            return 1
    print("parity           : all three legs produce identical RunResults")

    times = {name: [] for name, _ in legs}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(args.repeats):
            for name, fn in legs:
                gc.collect()
                t0 = time.perf_counter()
                fn()
                times[name].append(time.perf_counter() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()

    t_direct = statistics.median(times["direct"])
    t_off = statistics.median(times["system-off"])
    t_traced = statistics.median(times["system-traced"])
    overhead = t_off / t_direct - 1.0
    traced_factor = t_traced / t_direct

    print(f"direct drive     : {t_direct:8.3f}s  ({args.length} ops, {args.scheme})")
    print(f"system, trace off: {t_off:8.3f}s  (overhead {100 * overhead:+.2f}%)")
    print(f"system, traced   : {t_traced:8.3f}s  ({traced_factor:.2f}x, informational)")

    if overhead > args.max_overhead:
        print(
            f"FAIL: tracing-off overhead {100 * overhead:.2f}% exceeds the "
            f"{100 * args.max_overhead:.0f}% gate",
            file=sys.stderr,
        )
        return 1
    print("PASS")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--workload", default="ispec06.mcf")
    parser.add_argument("--scheme", default="dspatch")
    parser.add_argument("--length", type=int, default=60000)
    parser.add_argument("--repeats", type=int, default=7)
    # The legs run the same hot loop on the same class; 2% is timing
    # noise headroom, not an instrumentation budget.
    parser.add_argument("--max-overhead", type=float, default=0.02)
    return run_bench(parser.parse_args(argv))


if __name__ == "__main__":
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    raise SystemExit(main())
