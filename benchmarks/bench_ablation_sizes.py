"""Ablation: SPT and Page Buffer capacity around the Table 1 design point.

The paper sizes DSPatch at a 256-entry SPT and a 64-entry PB (3.6KB).
The scale-invariant part of that argument is *accuracy*: a smaller
tagless SPT aliases more trigger PCs per entry and CovP ORs their
patterns together, so prediction accuracy falls monotonically as the
table shrinks.  (Miniature-trace *speedup* can reward the extra spray
while bandwidth is idle — see the driver docstring — so speedup is only
sanity-bounded here, not knee-asserted.)
"""

from repro.experiments.ablations import ablation_structure_sizes


def test_ablation_structure_sizes(figure):
    fig = figure(ablation_structure_sizes)
    design = fig.rows["dspatch"]
    tiny_spt = fig.rows["dspatch-spt64"]
    big_spt = fig.rows["dspatch-spt512"]

    # Aliasing costs accuracy: the 4x-smaller SPT is less accurate.
    assert design["Accuracy %"] > tiny_spt["Accuracy %"]
    # Quadrupling the SPT must not be a large win (the knee-above claim).
    assert big_spt["Speedup"] - design["Speedup"] < 8.0
    assert big_spt["Accuracy %"] <= design["Accuracy %"] + 5.0
    # Storage ordering sanity.
    assert tiny_spt["Storage KB"] < design["Storage KB"] < big_spt["Storage KB"]
