"""Figure 8: the accuracy/coverage quartile-quantization worked example."""

from repro.experiments.figures import fig08_quantization_example


def test_fig08_quantization(figure):
    fig = figure(fig08_quantization_example)
    # The paper's exact example: accuracy 3/5 -> 50-75%, coverage 3/8 -> 25-50%.
    assert fig.value("Accuracy 3/5", "quartile") == "50-75%"
    assert fig.value("Coverage 3/8", "quartile") == "25-50%"
    assert fig.value("Bitwise-AND", "popcount") == 3.0
