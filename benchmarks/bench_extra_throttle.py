"""Extension: prefetch throttling is orthogonal to DSPatch (Section 6).

The paper's closing claim in Section 6: "prior prefetch-throttling
proposals can be orthogonally applied to DSPatch as well to further
adjust its prefetch aggressiveness."  This bench wraps prefetchers in
the FDP-style feedback throttle and measures the interaction under a
capacity-constrained LLC (where useless prefetches actually hurt and
the accuracy feedback actually flows):

- on the aggressive streamer, the throttle must cut useless prefetches;
- on DSPatch the throttle also cuts useless traffic, but at a coverage
  cost: DSPatch already self-regulates via AccP and the Measure
  counters, so a blunt outer degree-clamp mostly truncates the useful
  part of its page bursts.  Measured: orthogonal to apply, but the
  built-in bandwidth-aware mechanism is the better regulator.
"""

from repro.experiments.api import workload_subset
from repro.experiments.scale import Scale
from repro.metrics.stats import FigureResult, geomean


def throttle_study(scale=None):
    from repro.engine import RunSpec
    from repro.engine.session import default_session

    session = default_session()

    def run_workload(workload, scheme, length, llc_bytes):
        return session.run(RunSpec(workload, scheme, length, None, llc_bytes))

    scale = scale or Scale.from_env()
    workloads = workload_subset(scale.workloads_per_category)
    llc = 512 * 1024  # capacity-constrained so eviction feedback flows
    fig = FigureResult(
        "extra-throttle",
        "Extension: FDP throttle wrapped around streamer and DSPatch "
        "(geomean % over baseline, 512KB LLC)",
        ["Speedup", "Useless/issued %"],
        notes=["Section 6: throttling is orthogonal; DSPatch already self-regulates"],
    )
    for scheme in ("streamer", "fdp:streamer", "dspatch", "fdp:dspatch"):
        ratios = []
        useless = 0
        issued = 0
        for workload in workloads:
            base = run_workload(workload, "none", scale.trace_len, llc_bytes=llc)
            res = run_workload(workload, scheme, scale.trace_len, llc_bytes=llc)
            ratios.append(res.ipc / base.ipc if base.ipc > 0 else 1.0)
            useless += res.pf_useless
            issued += res.pf_issued
        fig.add_row(
            scheme,
            {
                "Speedup": 100.0 * (geomean(ratios) - 1.0),
                "Useless/issued %": 100.0 * useless / issued if issued else 0.0,
            },
        )
    return fig


def test_extra_throttle(figure):
    fig = figure(throttle_study)
    streamer = fig.rows["streamer"]
    tamed_streamer = fig.rows["fdp:streamer"]
    dspatch = fig.rows["dspatch"]
    tamed_dspatch = fig.rows["fdp:dspatch"]

    # The throttle reduces the streamer's useless-prefetch share.
    assert tamed_streamer["Useless/issued %"] <= streamer["Useless/issued %"] + 0.5
    # On DSPatch the degree-clamp truncates page bursts, cutting useful
    # and useless prefetches roughly proportionally: the share must not
    # blow up, but need not improve.
    assert tamed_dspatch["Useless/issued %"] <= dspatch["Useless/issued %"] + 3.0
    # DSPatch's built-in AccP/Measure regulation beats the naive outer
    # degree-clamp, which truncates its useful page bursts.
    assert dspatch["Speedup"] >= tamed_dspatch["Speedup"] - 1.0
