"""Figure 1: prior prefetchers' performance scaling with DRAM bandwidth.

Paper shape: BOP/SMS/SPP all improve over the baseline but *saturate* as
peak bandwidth grows from 12.8 to 38.4 GB/s — none scales well.
"""

from repro.experiments.figures import fig01_bw_scaling_prior


def test_fig01_bw_scaling_prior(figure):
    fig = figure(fig01_bw_scaling_prior)
    for scheme, row in fig.rows.items():
        values = [row[c] for c in fig.columns]
        # Every prior prefetcher beats the baseline at every bandwidth point.
        assert all(v > -2.0 for v in values), f"{scheme} collapsed: {values}"
        # Saturation: the last doubling of bandwidth buys little.
        first_step = values[1] - values[0]
        last_step = values[-1] - values[-2]
        assert last_step <= max(first_step, 6.0) + 6.0
