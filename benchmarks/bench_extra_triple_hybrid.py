"""Section 5.1 (text): DSPatch on top of SPP+BOP adds further coverage.

Paper: +2.6% on average — BOP's global deltas and DSPatch's anchored
patterns cover non-overlapping misses.
"""

from repro.experiments.figures import extra_triple_hybrid


def test_extra_triple_hybrid(figure):
    fig = figure(extra_triple_hybrid)
    row = fig.rows["Hybrid"]
    assert row["SPP+BOP+DSPatch"] >= row["SPP+BOP"] - 0.5
