"""Figure 16: coverage and misprediction breakdown per category.

Paper shape: DSPatch+SPP has noticeably more coverage than SPP, paying a
smaller increase in mispredictions (2:1 coverage:misprediction in the
paper); SMS is the most accurate prior scheme.
"""

from repro.experiments.figures import fig16_coverage_accuracy


def test_fig16_coverage_accuracy(figure):
    fig = figure(fig16_coverage_accuracy)
    avg_spp = fig.rows["AVG/SPP"]
    avg_combo = fig.rows["AVG/DSPatch+SPP"]
    assert avg_combo["Covered"] > avg_spp["Covered"]
    # Covered + Uncovered partitions the baseline misses.
    for label, row in fig.rows.items():
        assert abs(row["Covered"] + row["Uncovered"] - 100.0) < 0.6, label
    # SMS is the most accurate prior prefetcher (fewest mispredictions).
    assert fig.rows["AVG/SMS"]["Mispredicted"] <= fig.rows["AVG/BOP"]["Mispredicted"]
