"""Figure 14: BOP, iso-storage SMS and DSPatch as adjuncts to SPP.

Paper shape: DSPatch+SPP > BOP+SPP > SMS(256)+SPP, all above plain SPP.
"""

from repro.experiments.figures import fig14_adjunct_prefetchers


def test_fig14_adjunct(figure):
    fig = figure(fig14_adjunct_prefetchers)
    spp = fig.rows["SPP"]["GEOMEAN"]
    dsp = fig.rows["DSPatch+SPP"]["GEOMEAN"]
    sms_iso = fig.rows["SMS(iso)+SPP"]["GEOMEAN"]
    assert dsp > spp
    # DSPatch is the best adjunct at iso storage.
    assert dsp >= sms_iso - 0.5
