"""Multi-core interleave driver bench: scheduling overhead per op.

The MP driver's job is pure scheduling: advance four ``CoreExecution``
streams in global ``(time, core)`` order.  On real mixes the memory
hierarchy dominates wall-clock (the driver is a few percent — see
docs/engine.md), so an end-to-end mix timing cannot resolve a driver
change above run-to-run noise.  This bench therefore isolates the driver:
each core gets a **private fixed-work stub hierarchy** (mixed short/long
latencies, no shared state), making per-op simulation cost constant and
order-independent, and measures three legs over identical traces:

1. **floor** — each core via raw ``run_ops`` (no interleaving at all):
   the driver-free cost of executing the ops;
2. **reference** — the pre-batching per-op heap loop
   (``interleave_reference``);
3. **batched** — the production driver (``interleave_batched``).

The gated metric is the **driver overhead** (leg minus floor): the
batched driver must cut the reference driver's per-op scheduling overhead
by at least ``--min-driver-speedup`` (default 2x).  The bench also gates
a calibrated throughput score (batched ops/sec over the shared
calibration loop) against the committed baseline
(``benchmarks/baselines/mp_baseline.json``) with the same 20%-regression
pattern as the engine and tracegen benches, and verifies all three legs
finish with bit-identical core states (the in-tree parity tests cover
real shared-LLC/DRAM mixes).

Results merge into ``BENCH_engine.json`` under an ``"mp"`` key.

Run directly::

    PYTHONPATH=src python benchmarks/bench_mp_interleave.py \
        --output BENCH_engine.json \
        --baseline benchmarks/baselines/mp_baseline.json
"""

import argparse
import gc
import json
import os
import statistics
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
# The shared calibration loop: scores are comparable across benches and
# hosts only because the normalization is literally the same code.
from bench_engine_speedup import calibrate  # noqa: E402

from repro.cpu.core import (  # noqa: E402
    CoreExecution,
    CoreModel,
    interleave_batched,
    interleave_reference,
)
from repro.cpu.trace import Trace  # noqa: E402
from repro.memory.hierarchy import DRAM, L1  # noqa: E402


class _StubHierarchy:
    """Fixed-work access stub: mostly short hits, every 7th a long miss.

    Private per core and a pure function of the access count, so results
    are independent of interleave order — which is exactly what makes the
    ``run_ops`` floor a true driver-free cost of the same op stream.
    """

    __slots__ = ("count",)

    def __init__(self):
        self.count = 0

    def access(self, cycle, pc, addr, is_write=False):
        count = self.count = self.count + 1
        if count % 7 == 0:
            return 250, DRAM
        return 5, L1


def _make_traces(num_cores, ops_per_core, seed=7):
    """Deterministic synthetic per-core traces (the stub ignores addrs)."""
    rng = np.random.default_rng(seed)
    traces = []
    for core in range(num_cores):
        gaps = rng.integers(0, 12, ops_per_core, dtype=np.int64)
        pcs = np.full(ops_per_core, 0x400, dtype=np.int64)
        addrs = (
            rng.integers(0, 1 << 20, ops_per_core, dtype=np.int64) << 6
        ) + (core << 40)
        flags = np.zeros(ops_per_core, dtype=np.uint8)
        traces.append(Trace(gaps, pcs, addrs, flags))
    return traces


def _fresh_executions(traces):
    return [CoreExecution(CoreModel(), t, _StubHierarchy()) for t in traces]


def _state_of(executions):
    """Comparable end state: (time, instructions, hit counters) per core."""
    return [(ex.time, ex._instr, tuple(ex._hits)) for ex in executions]


def _run_floor(executions):
    for ex in executions:
        ex.run_ops()


def _measure_rounds(legs, traces, repeats):
    """Median wall-clock per leg over ``repeats`` paired rounds.

    Every round runs all legs back to back, so slow drift of the host
    (frequency scaling, noisy neighbours) hits each leg's sample set
    equally; the per-leg median then discards the outlier rounds.  GC is
    paused exactly as the production driver pauses it (``_gc_paused`` in
    ``repro.cpu.system``), so collector pauses cannot land on one leg.
    Returns ``(times, states)`` — per-leg sample lists and the per-leg
    final-state signature (``None`` for a leg that varied across rounds).
    """
    times = {name: [] for name, _ in legs}
    states = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for name, fn in legs:
                executions = _fresh_executions(traces)
                gc.collect()
                t0 = time.perf_counter()
                fn(executions)
                times[name].append(time.perf_counter() - t0)
                run_state = _state_of(executions)
                if name not in states:
                    states[name] = run_state
                elif states[name] != run_state:
                    states[name] = None
    finally:
        if gc_was_enabled:
            gc.enable()
    return times, states


def run_bench(args):
    traces = _make_traces(args.cores, args.ops_per_core)
    total_ops = args.cores * args.ops_per_core
    calibration = calibrate()

    legs = [
        ("floor", _run_floor),
        ("reference", interleave_reference),
        ("batched", interleave_batched),
    ]
    # One discarded full-scale pass per leg: interpreter/allocator warmup
    # happens outside the measured rounds.
    for _name, fn in legs:
        fn(_fresh_executions(traces))

    samples, states = _measure_rounds(legs, traces, args.repeats)
    # The overhead ratio is a difference of close quantities: medians over
    # the paired rounds keep one outlier round from whipsawing it.  The
    # throughput score uses the best batched time (the same best-of
    # convention as the engine/tracegen benches) — a pure throughput
    # number is robust to slow outliers, not to fast ones.
    t_floor = statistics.median(samples["floor"])
    t_ref = statistics.median(samples["reference"])
    t_new = statistics.median(samples["batched"])
    t_new_best = min(samples["batched"])
    state_floor = states["floor"]
    state_ref = states["reference"]
    state_new = states["batched"]

    deterministic = None not in (state_floor, state_ref, state_new)
    # The stub is order-independent, so even the non-interleaved floor
    # must land on the same per-core end states.
    parity = deterministic and state_floor == state_ref == state_new

    overhead_ref = t_ref - t_floor
    overhead_new = t_new - t_floor
    if overhead_new > 0 and overhead_ref > 0:
        driver_speedup = overhead_ref / overhead_new
    else:
        driver_speedup = float("inf") if overhead_ref > 0 else 1.0
    ops_per_sec = total_ops / t_new_best
    score = ops_per_sec / calibration
    ref_score = total_ops / min(samples["reference"]) / calibration

    result = {
        "protocol": {
            "cores": args.cores,
            "ops_per_core": args.ops_per_core,
            "total_ops": total_ops,
            "repeats": args.repeats,
            "hierarchy": "private fixed-work stub (driver-isolating)",
        },
        "calibration_ops_per_sec": calibration,
        "floor_seconds": t_floor,
        "reference_seconds": t_ref,
        "batched_seconds": t_new,
        "batched_seconds_best": t_new_best,
        "driver_overhead_reference_seconds": overhead_ref,
        "driver_overhead_batched_seconds": overhead_new,
        "driver_overhead_speedup": driver_speedup,
        "ops_per_sec": ops_per_sec,
        "score": score,
        "reference_score": ref_score,
        "deterministic": deterministic,
        "parity": parity,
    }

    failures = []
    if not deterministic:
        failures.append("driver runs differ across repeats (determinism violated)")
    elif not parity:
        failures.append("drivers finished with different core states (parity violated)")
    if driver_speedup < args.min_driver_speedup:
        failures.append(
            f"driver-overhead speedup {driver_speedup:.2f}x below the "
            f"{args.min_driver_speedup:.1f}x floor"
        )

    if args.baseline and os.path.exists(args.baseline):
        with open(args.baseline) as f:
            baseline = json.load(f)
        base_protocol = baseline.get("protocol", {})
        protocol_matches = base_protocol.get("ops_per_core") in (
            None,
            args.ops_per_core,
        ) and base_protocol.get("cores") in (None, args.cores)
        target_score = baseline.get("target_score")
        seed_score = baseline.get("seed_score")
        if not protocol_matches:
            result["note_baseline"] = (
                "baseline protocol differs from this run; regression gate skipped"
            )
            target_score = seed_score = None
        if seed_score:
            result["speedup_vs_seed_driver"] = score / seed_score
        if target_score:
            floor = target_score * (1.0 - args.max_regression)
            result["regression_gate"] = {
                "target_score": target_score,
                "floor": floor,
                "passed": score >= floor,
            }
            if score < floor:
                failures.append(
                    f"mp driver score {score:.4f} regressed >"
                    f"{100 * args.max_regression:.0f}% below baseline {target_score:.4f}"
                )

    result["failures"] = failures

    if args.output:
        # Merge into the shared bench artifact rather than clobbering the
        # engine/tracegen sections.
        merged = {}
        if os.path.exists(args.output):
            try:
                with open(args.output) as f:
                    merged = json.load(f)
            except (OSError, json.JSONDecodeError):
                merged = {}
        merged["mp"] = result
        with open(args.output, "w") as f:
            json.dump(merged, f, indent=2, sort_keys=True)

    print(f"floor (run_ops)  : {t_floor:8.3f}s  ({total_ops} ops, {args.cores} cores)")
    print(f"per-op reference : {t_ref:8.3f}s  (driver overhead {overhead_ref:.3f}s)")
    print(f"batched driver   : {t_new:8.3f}s  (driver overhead {overhead_new:.3f}s)")
    print(f"driver speedup   : {driver_speedup:8.2f}x  (overhead vs overhead)")
    print(f"ops/sec          : {ops_per_sec:12.0f}")
    print(f"score            : {score:.4f}  (calibration {calibration:.0f} ops/s)")
    print(f"deterministic    : {deterministic}   parity: {parity}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--ops-per-core", type=int, default=150000)
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--output", default="BENCH_engine.json")
    parser.add_argument(
        "--baseline",
        default=os.path.join(
            os.path.dirname(__file__), "baselines", "mp_baseline.json"
        ),
    )
    parser.add_argument("--max-regression", type=float, default=0.2)
    # The overhead ratio is a difference of close quantities and inherits
    # host timing noise: ~2.2x measured at landing, floored at 1.7x so a
    # noisy round cannot flake the gate while a real regression (the
    # batched driver losing its advantage) still fails.
    parser.add_argument("--min-driver-speedup", type=float, default=1.7)
    return run_bench(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
