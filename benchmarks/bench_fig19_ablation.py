"""Figure 19: contribution of the accuracy-biased pattern (ablation).

Paper shape: full DSPatch > ModCovP > AlwaysCovP — statically choosing a
single pattern type is sub-optimal; the dynamic dual-pattern selection is
load-bearing.
"""

from repro.experiments.figures import fig19_accp_contribution


def test_fig19_ablation(figure):
    fig = figure(fig19_accp_contribution)
    row = fig.rows["DSPatch+SPP variants"]
    # The full design is never worse than either ablation (small tolerance
    # at reduced scale).
    assert row["DSPatch"] >= row["AlwaysCovP"] - 1.0
    assert row["DSPatch"] >= row["ModCovP"] - 1.0
