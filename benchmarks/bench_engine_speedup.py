"""Engine speedup bench: kernel / cold / parallel / warm-cache trajectory.

Measures the fig12-style single-thread figure driver (the headline
comparison: 6 schemes x N workloads) under several regimes:

1. **kernel legs** — empty disk cache, ``jobs=1``, one cold sequential
   measurement per hot-loop kernel: the original ``object`` model, the
   pure-Python flat ``py`` kernel, and (when a C toolchain is present)
   the ``compiled`` C twin.  The best available flat kernel is the
   headline ``cold sequential`` leg.  When the compiled kernel is
   available, a dedicated **scheme-training leg** additionally times the
   C-twinned schemes (spp / dspatch / spp+dspatch) on one longer trace
   where training dominates, asserts bit-identity against the object
   model, and gates the twins' advantage with its own
   ``--min-scheme-kernel-speedup`` floor;
2. **cold parallel** — empty disk cache, ``jobs=N``: the engine's
   process-pool fan-out (runs when ``--jobs`` > 1 is given explicitly,
   or by default on multicore hosts);
3. **warm** — in-process memo cleared, disk cache intact: every run is a
   content-addressed load from the store.

All regimes — including every kernel — must produce bit-for-bit
identical figure rows; the bench fails otherwise.  Machine-speed
differences are normalized away by a calibration loop (a fixed
pure-Python workload), yielding a ``hot_path_score`` = simulated-ops-
per-second / calibration-ops-per-second that is comparable across hosts
and across commits.  The committed baseline
(``benchmarks/baselines/engine_smoke_baseline.json``) records the score
of the pre-engine seed code and the score at the time the engine landed;
CI fails when the current score regresses more than ``--max-regression``
below the latter, or when the compiled kernel's advantage over the
object model falls below ``--min-kernel-speedup``.

Run directly (no pytest-benchmark dependency)::

    PYTHONPATH=src python benchmarks/bench_engine_speedup.py \
        --output BENCH_engine.json \
        --baseline benchmarks/baselines/engine_smoke_baseline.json
"""

import argparse
import json
import os
import sys
import tempfile
import time

SCHEMES = 6  # fig12: none + bop/sms/spp/dspatch/spp+dspatch
CATEGORIES = 9


def calibrate(n=2_000_000, repeats=3):
    """Machine-speed proxy: median ops/sec of a fixed arithmetic loop."""
    rates = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        acc = 0
        for i in range(n):
            acc += i & 7
        rates.append(n / (time.perf_counter() - t0))
    return sorted(rates)[len(rates) // 2]


def _rows_of(fig):
    return {row: dict(cols) for row, cols in fig.rows.items()}


def run_bench(args):
    # Point the engine at a scratch store before importing anything that
    # might read the config.
    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="engine-bench-")
    os.environ["REPRO_CACHE_DIR"] = cache_dir

    from repro import engine
    from repro.engine import default_session
    from repro.experiments.figures import fig12_single_thread
    from repro.experiments.scale import Scale

    session = default_session()

    scale = Scale(
        trace_len=args.trace_len,
        workloads_per_category=args.workloads_per_category,
        mix_count=1,
        mix_trace_len=400,
        full=False,
    )
    sim_ops = SCHEMES * CATEGORIES * args.workloads_per_category * args.trace_len
    cpu_count = os.cpu_count() or 1
    jobs = args.jobs if args.jobs else cpu_count

    calibration = calibrate()

    # --- 1. kernel legs: cold sequential, best of N repeats each ----------
    from repro.kernel import kernel_available

    engine.configure(jobs=1, cache_dir=cache_dir, disk_cache=True)
    headline_kernel = "compiled" if kernel_available() else "py"
    if headline_kernel == "compiled":
        # Pay the one-time .so build outside the timed region.
        from repro.kernel.cbuild import load_kernel

        load_kernel()

    kernel_seconds = {}
    kernel_rows = {}
    for kind in ("object", "py", "compiled"):
        if kind == "compiled" and headline_kernel != "compiled":
            kernel_seconds[kind] = None
            continue
        engine.configure(kernel=kind)
        best = None
        for _ in range(args.repeats):
            session.clear()  # both layers: a genuinely cold start
            t0 = time.perf_counter()
            fig = fig12_single_thread(scale)
            dt = time.perf_counter() - t0
            kernel_rows[kind] = _rows_of(fig)
            if best is None or dt < best:
                best = dt
        kernel_seconds[kind] = best
    engine.configure(kernel=headline_kernel)

    rows_seq = kernel_rows[headline_kernel]
    t_cold_seq = kernel_seconds[headline_kernel]
    hot_path_score = sim_ops / t_cold_seq / calibration
    kernel_py_score = sim_ops / kernel_seconds["py"] / calibration
    kernel_speedup = kernel_seconds["object"] / t_cold_seq

    # --- 1b. scheme-training leg (compiled twins vs live objects) ---------
    # The fig12 smoke grid dilutes training across six schemes and nine
    # categories, so a broken training twin barely moves the headline
    # number.  This leg isolates the C-twinned schemes on one longer trace
    # where training dominates, asserts bit-identical results, and holds
    # the twins to their own speedup floor.
    scheme_seconds = {"object": None, "compiled": None}
    scheme_speedup = None
    scheme_identical = True
    if headline_kernel == "compiled":
        from repro.cpu.system import System, SystemConfig
        from repro.workloads.catalog import build_trace

        scheme_trace = build_trace("ispec06.mcf", args.scheme_trace_len)
        scheme_results = {}
        for kind in ("object", "compiled"):
            best = None
            for _ in range(args.repeats):
                t0 = time.perf_counter()
                out = []
                for scheme in ("spp", "dspatch", "spp+dspatch"):
                    res = System(
                        SystemConfig.single_thread(scheme, kernel=kind)
                    ).run(scheme_trace)
                    out.append(res.to_dict())
                dt = time.perf_counter() - t0
                scheme_results[kind] = out
                if best is None or dt < best:
                    best = dt
            scheme_seconds[kind] = best
        scheme_identical = scheme_results["object"] == scheme_results["compiled"]
        scheme_speedup = scheme_seconds["object"] / scheme_seconds["compiled"]

    # --- 2. cold parallel (explicit --jobs > 1, or multicore hosts) -------
    t_cold_par = None
    rows_par = None
    if jobs > 1 and (args.jobs or cpu_count > 1):
        engine.configure(jobs=jobs)
        session.clear()
        t0 = time.perf_counter()
        rows_par = _rows_of(fig12_single_thread(scale))
        t_cold_par = time.perf_counter() - t0
        engine.configure(jobs=1)

    # --- 3. warm (disk cache hit for every run) ---------------------------
    if rows_par is not None:
        # Repopulate the store sequentially so the warm phase follows a
        # sequential cold phase regardless of the parallel experiment.
        session.clear()
        fig12_single_thread(scale)
    session.clear(disk=False)  # memo layers only; the disk store stays warm
    t0 = time.perf_counter()
    rows_warm = _rows_of(fig12_single_thread(scale))
    t_warm = time.perf_counter() - t0

    deterministic = (
        rows_warm == rows_seq
        and (rows_par is None or rows_par == rows_seq)
        and all(rows == rows_seq for rows in kernel_rows.values())
    )
    warm_speedup = t_cold_seq / t_warm if t_warm > 0 else float("inf")
    parallel_speedup = t_cold_seq / t_cold_par if t_cold_par else None

    result = {
        "protocol": {
            "driver": "fig12_single_thread",
            "trace_len": args.trace_len,
            "workloads_per_category": args.workloads_per_category,
            "repeats": args.repeats,
            "sim_ops": sim_ops,
            "jobs": jobs,
            "cpu_count": cpu_count,
            "kernel": headline_kernel,
        },
        "calibration_ops_per_sec": calibration,
        "cold_sequential_seconds": t_cold_seq,
        "cold_parallel_seconds": t_cold_par,
        "warm_seconds": t_warm,
        "kernel_object_seconds": kernel_seconds["object"],
        "kernel_py_seconds": kernel_seconds["py"],
        "kernel_compiled_seconds": kernel_seconds["compiled"],
        "scheme_object_seconds": scheme_seconds["object"],
        "scheme_compiled_seconds": scheme_seconds["compiled"],
        "scheme_kernel_speedup": scheme_speedup,
        "hot_path_score": hot_path_score,
        "kernel_py_score": kernel_py_score,
        "kernel_speedup": kernel_speedup,
        "parallel_speedup": parallel_speedup,
        "warm_speedup": warm_speedup,
        "deterministic": deterministic,
    }

    failures = []
    if not deterministic:
        failures.append("results differ between regimes/kernels (determinism violated)")
    if warm_speedup < 10.0:
        failures.append(f"warm-cache speedup {warm_speedup:.1f}x below the 10x target")
    if not scheme_identical:
        failures.append(
            "scheme-training leg: compiled twins diverge from the object model"
        )
    if scheme_speedup is not None and scheme_speedup < args.min_scheme_kernel_speedup:
        failures.append(
            f"scheme-training speedup {scheme_speedup:.2f}x over the object "
            f"model is below the {args.min_scheme_kernel_speedup:.1f}x floor"
        )

    if args.baseline and os.path.exists(args.baseline):
        with open(args.baseline) as f:
            baseline = json.load(f)
        seed_score = baseline.get("seed_hot_path_score")
        # The regression target must compare like with like: a compiled-
        # kernel score is gated against the compiled-era target when the
        # baseline records one; toolchain-less hosts (py kernel headline)
        # gate against the original engine-era target.
        target_score = baseline.get("target_hot_path_score")
        if headline_kernel == "compiled":
            target_score = baseline.get("target_hot_path_score_compiled", target_score)
        base_protocol = baseline.get("protocol", {})
        protocol_matches = all(
            base_protocol.get(key) == result["protocol"][key]
            for key in ("trace_len", "workloads_per_category")
            if key in base_protocol
        )
        if not protocol_matches:
            # Scores AND speedup ratios are only comparable under the
            # protocol they were recorded with (fixed per-run overhead is
            # scale-dependent, so ratios shrink at tiny --trace-len):
            # report everything but do not gate against a mismatched
            # baseline.
            result["note_baseline"] = (
                "baseline protocol differs from this run; regression and "
                "speedup-floor gates skipped"
            )
            target_score = None
        elif headline_kernel == "compiled" and kernel_speedup < args.min_kernel_speedup:
            failures.append(
                f"compiled-kernel speedup {kernel_speedup:.2f}x over the object "
                f"model is below the {args.min_kernel_speedup:.1f}x floor"
            )
        if seed_score:
            result["hot_path_speedup_vs_seed"] = hot_path_score / seed_score
            result["kernel_py_speedup_vs_seed"] = kernel_py_score / seed_score
            cold_vs_seed = hot_path_score / seed_score
            if parallel_speedup:
                cold_vs_seed *= parallel_speedup
            result["cold_speedup_vs_seed"] = cold_vs_seed
            if not protocol_matches:
                pass  # ratios reported above; floors need the recorded protocol
            elif parallel_speedup is not None and cpu_count > 1:
                # Parallel leg ran on a multicore host: the full 2x cold
                # target applies — hot-path gain x process-pool fan-out.
                if cold_vs_seed < 2.0:
                    failures.append(
                        f"cold speedup vs seed {cold_vs_seed:.2f}x below the 2x target"
                    )
            else:
                # Sequential measurement (single core, or --jobs 1): the
                # fan-out leg of the cold target cannot help, so gate on
                # the hot-path improvement floor alone.
                result["note"] = (
                    "single-core cold measurement: 2x cold target needs a "
                    "multicore host; gating on hot-path floor"
                )
                if cold_vs_seed < 1.4:
                    failures.append(
                        f"hot-path speedup vs seed {cold_vs_seed:.2f}x below 1.4x floor"
                    )
            # The pure-Python kernel is the no-toolchain fallback: it must
            # hold the same hot-path floor the object model held, so that
            # hosts without a C compiler never regress below the pre-kernel
            # engine.
            if protocol_matches and result["kernel_py_speedup_vs_seed"] < 1.4:
                failures.append(
                    f"py-kernel speedup vs seed "
                    f"{result['kernel_py_speedup_vs_seed']:.2f}x below 1.4x floor"
                )
        if target_score:
            floor = target_score * (1.0 - args.max_regression)
            result["regression_gate"] = {
                "target_hot_path_score": target_score,
                "floor": floor,
                "passed": hot_path_score >= floor,
            }
            if hot_path_score < floor:
                failures.append(
                    f"hot-path score {hot_path_score:.6f} regressed >"
                    f"{100 * args.max_regression:.0f}% below baseline {target_score:.6f}"
                )

    result["failures"] = failures
    if args.output:
        # bench_tracegen.py merges a "tracegen" section into the same
        # artifact; preserve it instead of clobbering the file wholesale.
        if os.path.exists(args.output):
            try:
                with open(args.output) as f:
                    previous = json.load(f)
            except (OSError, json.JSONDecodeError):
                previous = {}
            if "tracegen" in previous:
                result["tracegen"] = previous["tracegen"]
        with open(args.output, "w") as f:
            json.dump(result, f, indent=2, sort_keys=True)

    print(f"cold sequential : {t_cold_seq:8.2f}s  ({sim_ops} sim-ops, kernel={headline_kernel})")
    print(f"object kernel   : {kernel_seconds['object']:8.2f}s")
    print(f"py kernel       : {kernel_seconds['py']:8.2f}s")
    if kernel_seconds["compiled"] is not None:
        print(
            f"compiled kernel : {kernel_seconds['compiled']:8.2f}s  "
            f"({kernel_speedup:.2f}x over object)"
        )
    if scheme_speedup is not None:
        print(
            f"scheme training : {scheme_seconds['compiled']:8.2f}s vs "
            f"{scheme_seconds['object']:.2f}s object  ({scheme_speedup:.2f}x, "
            f"{args.scheme_trace_len} ops x 3 schemes)"
        )
    if t_cold_par is not None:
        print(f"cold parallel   : {t_cold_par:8.2f}s  ({parallel_speedup:.2f}x, jobs={jobs})")
    print(f"warm (disk)     : {t_warm:8.3f}s  ({warm_speedup:.0f}x)")
    print(f"hot-path score  : {hot_path_score:.6f}  (calibration {calibration:.0f} ops/s)")
    for key in ("hot_path_speedup_vs_seed", "kernel_py_speedup_vs_seed", "cold_speedup_vs_seed"):
        if key in result:
            print(f"{key:15s} : {result[key]:.2f}x")
    print(f"deterministic   : {deterministic}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--trace-len", type=int, default=4000)
    parser.add_argument("--workloads-per-category", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=0, help="0 = cpu count")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--cache-dir", default=None, help="default: fresh temp dir")
    parser.add_argument("--output", default="BENCH_engine.json")
    parser.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(__file__), "baselines", "engine_smoke_baseline.json"),
    )
    parser.add_argument("--max-regression", type=float, default=0.2)
    parser.add_argument(
        "--min-kernel-speedup",
        type=float,
        default=2.0,
        help="floor on the compiled kernel's speedup over the object model "
        "(applies only when a C toolchain is present)",
    )
    parser.add_argument(
        "--scheme-trace-len",
        type=int,
        default=20000,
        help="ops per scheme in the dedicated scheme-training leg",
    )
    parser.add_argument(
        "--min-scheme-kernel-speedup",
        type=float,
        default=5.0,
        help="floor on the compiled training twins' speedup over the object "
        "model in the scheme-training leg (applies only when a C toolchain "
        "is present)",
    )
    return run_bench(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
