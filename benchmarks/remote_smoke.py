"""Remote-cache smoke: two machines sharing one experiment store.

End-to-end proof of the ``repro serve`` / ``--remote-cache`` path, run
as a plain script (CI gates on its exit code):

1. start a real ``repro serve`` subprocess on an ephemeral port over an
   empty temp directory;
2. **machine A** (fresh local cache dir + the remote) computes a small
   spec batch cold — every result and trace is published to the server;
3. **machine B** (a *different* fresh local cache dir, same remote) runs
   the same batch — with the simulation entry points poisoned to raise,
   proving every artifact is served from the remote store, bit-for-bit
   identical to machine A's; shared hits must also promote into B's
   local tier;
4. report the cold/warm wall-clock and the warm-hit speedup.

Two transport variants exercise the secured-farm paths end to end:

- ``--tls``  — the server speaks https behind a fresh self-signed
  certificate and both machines pin it (``tls_ca``);
- ``--s3``   — the shared store is an S3-compatible object store (the
  in-process fake-S3 server, which re-verifies every SigV4 signature)
  instead of a cache server; combine with ``--tls`` for https object
  storage.

Usage::

    PYTHONPATH=src python benchmarks/remote_smoke.py --length 2000
    PYTHONPATH=src python benchmarks/remote_smoke.py --tls
    PYTHONPATH=src python benchmarks/remote_smoke.py --s3 --tls
"""

import argparse
import json
import os
import re
import select
import subprocess
import sys
import tempfile
import time
from pathlib import Path

WORKLOADS = ("ispec06.mcf", "hpc.linpack", "cloud.bigbench")
SCHEMES = ("none", "spp")


def start_server(cache_dir, tls=None):
    """Spawn ``repro serve`` on an ephemeral port; return (proc, url)."""
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--cache-dir",
        str(cache_dir),
        "--port",
        "0",
    ]
    if tls is not None:
        cert, key = tls
        cmd += ["--tls-cert", str(cert), "--tls-key", str(key)]
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    # The first stdout line is the readiness signal with the bound port.
    # select() guards every read so a started-but-silent server fails
    # the deadline instead of blocking readline() until the CI timeout.
    deadline = time.time() + 30.0
    line = ""
    while time.time() < deadline and proc.poll() is None:
        ready, _, _ = select.select([proc.stdout], [], [], deadline - time.time())
        if not ready:
            break
        line = proc.stdout.readline()
        match = re.search(r"on (https?://[\d.]+:\d+)", line)
        if match is not None:
            return proc, match.group(1)
    proc.kill()
    raise RuntimeError(f"repro serve never came up (last line: {line!r})")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # Warm time is a near-constant handful of HTTP round trips while cold
    # time scales with length, so the default is big enough that the
    # warm-hit speedup is unambiguous even on a slow runner.
    parser.add_argument("--length", type=int, default=6000, help="ops per run")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.2,
        help="fail when the warm (remote-served) pass is not at least this "
        "much faster than the cold pass (default 1.2)",
    )
    parser.add_argument(
        "--tls",
        action="store_true",
        help="serve over https with a fresh self-signed certificate, "
        "pinned by both machines",
    )
    parser.add_argument(
        "--s3",
        action="store_true",
        help="share through an S3-compatible object store (the in-process "
        "fake-S3 server) instead of a cache server",
    )
    args = parser.parse_args(argv)

    from repro.engine import LocalDirBackend, RunSpec, Session, compute

    specs = [RunSpec(w, s, args.length) for w in WORKLOADS for s in SCHEMES]
    with tempfile.TemporaryDirectory(prefix="repro-remote-smoke-") as tmp:
        tmp = Path(tmp)

        tls_pair = tls_ca = None
        if args.tls:
            from repro.engine.tlsutil import self_signed_cert

            tls_pair = self_signed_cert(tmp / "tls")
            tls_ca = str(tls_pair[0])

        proc = fake_s3 = None
        if args.s3:
            from repro.engine.fakes3 import serve_fake_s3

            fake_s3 = serve_fake_s3(
                tls_cert=tls_pair[0] if tls_pair else None,
                tls_key=tls_pair[1] if tls_pair else None,
            )
            url = fake_s3.endpoint
            os.environ["REPRO_S3_ACCESS_KEY"] = fake_s3.access_key
            os.environ["REPRO_S3_SECRET_KEY"] = fake_s3.secret_key
            os.environ["REPRO_S3_REGION"] = fake_s3.region
            session_kwargs = {"s3_cache_url": url, "tls_ca": tls_ca}
        else:
            proc, url = start_server(tmp / "served", tls=tls_pair)
            session_kwargs = {"remote_cache_url": url, "tls_ca": tls_ca}
        if args.tls:
            assert url.startswith("https://"), url

        try:
            machine_a = Session(cache_dir=tmp / "machine-a", **session_kwargs)
            t0 = time.perf_counter()
            origin = machine_a.run(specs)
            cold_s = time.perf_counter() - t0

            if fake_s3 is not None:
                published = {
                    "results": sum(
                        1 for k in fake_s3.objects if k.startswith("results/")
                    ),
                    "traces": sum(
                        1 for k in fake_s3.objects if k.startswith("traces/")
                    ),
                }
            else:
                published = LocalDirBackend(tmp / "served").stats()
            assert published["results"] == len(specs), published
            assert published["traces"] == len(WORKLOADS), published

            # Machine B must not simulate anything: poison the compute
            # layer so any recompute raises instead of silently passing.
            real_run, real_trace = compute.simulate_run, compute.build_trace_artifact

            def _poisoned(*a, **k):
                raise AssertionError("machine B recomputed instead of loading")

            compute.simulate_run = compute.build_trace_artifact = _poisoned
            try:
                machine_b = Session(cache_dir=tmp / "machine-b", **session_kwargs)
                t0 = time.perf_counter()
                warm = machine_b.run(specs)
                warm_s = time.perf_counter() - t0
            finally:
                compute.simulate_run, compute.build_trace_artifact = real_run, real_trace

            mismatches = sum(
                a.to_dict() != b.to_dict() for a, b in zip(origin, warm)
            )
            promoted = LocalDirBackend(tmp / "machine-b").stats()["results"]
            bad_signatures = fake_s3.bad_signatures if fake_s3 is not None else 0
        finally:
            if proc is not None:
                proc.terminate()
                proc.wait(timeout=10)
            if fake_s3 is not None:
                fake_s3.shutdown()
                fake_s3.server_close()

    summary = {
        "specs": len(specs),
        "transport": ("s3" if args.s3 else "serve") + ("+tls" if args.tls else ""),
        "cold_seconds": round(cold_s, 3),
        "warm_seconds": round(warm_s, 3),
        "warm_speedup": round(cold_s / warm_s, 1) if warm_s > 0 else None,
        "served_from_remote": True,  # the poisoned compute layer proves it
        "mismatches": mismatches,
        "promoted_locally": promoted,
        "bad_signatures": bad_signatures,
    }
    print(json.dumps(summary, indent=2))
    if mismatches:
        print(f"FAIL: {mismatches} remote-served results differ", file=sys.stderr)
        return 1
    if promoted != len(specs):
        print(
            f"FAIL: expected {len(specs)} promoted results, got {promoted}",
            file=sys.stderr,
        )
        return 1
    if bad_signatures:
        print(
            f"FAIL: the object store rejected {bad_signatures} SigV4 signature(s)",
            file=sys.stderr,
        )
        return 1
    if summary["warm_speedup"] is not None and summary["warm_speedup"] < args.min_speedup:
        print(
            f"FAIL: warm-hit speedup {summary['warm_speedup']}x "
            f"below the {args.min_speedup}x floor",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: {len(specs)} specs served from the {summary['transport']} store "
        f"({summary['warm_speedup']}x warm-hit speedup)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
