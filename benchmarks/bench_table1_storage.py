"""Tables 1 and 3: storage budgets.

Table 1 must reproduce exactly: DSPatch = 29,568 bits = 3.6 KB.
Table 3's relative ordering (BOP < DSPatch < SPP << SMS) must hold; the
paper's quoted sizes are noted in the rendered output.
"""

from repro.experiments.figures import table1_dspatch_storage, table3_prefetcher_storage


def test_table1_dspatch_storage(figure):
    fig = figure(table1_dspatch_storage)
    assert fig.value("PB", "bits") == 10112.0
    assert fig.value("SPT", "bits") == 19456.0
    total_kb = sum(row["KB"] for row in fig.rows.values())
    assert 3.55 <= total_kb <= 3.65  # the paper's 3.6 KB


def test_table3_prefetcher_storage(figure):
    fig = figure(table3_prefetcher_storage)
    kb = {name: row["KB"] for name, row in fig.rows.items()}
    assert kb["BOP"] < kb["DSPatch"] < kb["SPP"] < kb["SMS"]
    assert kb["DSPatch"] < (2 / 3) * kb["SPP"] * 1.05  # "2/3rd of SPP"
    assert kb["DSPatch"] < kb["SMS"] / 20  # "1/20th of SMS"
