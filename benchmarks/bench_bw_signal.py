"""Extension: the live bandwidth signal vs. pinned quartile values.

DSPatch's defining mechanism is the Section 3.2 broadcast utilization
signal.  Pinning it to a constant turns DSPatch into a static prefetcher:
q0 = permanent CovP (max aggression), q3 = permanent AccP-or-nothing
(max caution).  The live signal should be competitive with the best pin
on average — no single static setting wins everywhere, which is the
reason the dynamic mechanism exists.
"""

from repro.experiments.ablations import bandwidth_signal_study


def test_bw_signal(figure):
    fig = figure(bandwidth_signal_study)
    live = fig.rows["live signal"]["Speedup"]
    pins = [fig.rows[f"pinned q{b}"]["Speedup"] for b in range(4)]

    # The live signal tracks the best pinned setting closely (small
    # tolerance: at reduced scale a lucky static pin can edge it out).
    assert live >= max(pins) - 2.5
    # Permanent caution (q3) must cost real performance vs. the live
    # signal — otherwise the adaptive mechanism would be pointless.
    assert live > pins[3]
