"""Extension: DSPatch vs. one representative per Section 6 family.

The paper's storage argument, measured: temporal prefetching (Markov)
needs megabytes to function and still fails at cache-resident working
sets; bit-pattern prefetching (SMS, Bingo) needs tens-to-hundreds of KB;
DSPatch does its job in 3.6KB.
"""

from repro.experiments.ablations import related_work_comparison


def test_related_work(figure):
    fig = figure(related_work_comparison)
    dspatch = fig.rows["DSPatch"]
    markov = fig.rows["Markov"]
    bingo = fig.rows["Bingo"]

    # The storage hierarchy of Section 6, in numbers.
    assert markov["Storage KB"] > 100 * dspatch["Storage KB"]
    assert bingo["Storage KB"] > 10 * dspatch["Storage KB"]
    # Temporal correlation cannot beat spatial patterns at this scale.
    assert dspatch["GEOMEAN"] > markov["GEOMEAN"]
