"""Figure 11: delta distribution and 128B-compression misprediction rates.

Paper shapes: (a) +1/-1 are the dominant deltas (>50% together);
(b) most workloads suffer little from 128B-granularity compression —
42% none at all, 70% below a 25% misprediction rate.
"""

from repro.experiments.figures import fig11a_delta_distribution, fig11b_compression_error


def test_fig11a_delta_distribution(figure):
    fig = figure(fig11a_delta_distribution)
    row = fig.rows["All workloads"]
    assert row["+1"] + row["-1"] > 50.0


def test_fig11b_compression_error(figure):
    fig = figure(fig11b_compression_error)
    row = fig.rows["Share of workloads"]
    below_25 = row["Exactly 0%"] + row["0%-12.5%"] + row["12.5%-25%"]
    assert below_25 >= 60.0  # paper: 70%
    assert row["Exactly 50%"] <= 15.0
