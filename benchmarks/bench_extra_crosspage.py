"""Extension: why spatial prefetchers stop at the 4KB page boundary.

Every spatial prefetcher in the paper (SMS, Bingo, DSPatch) confines its
patterns to one physical page.  The reason is virtual memory: beyond
4KB, physical adjacency is an accident of frame allocation.  This bench
makes that design constraint measurable with the vm substrate:

- generate a *virtually* contiguous streaming workload;
- translate it through (a) an idealised contiguous allocator and (b) a
  fragmented allocator (a busy machine's frame pool);
- run a page-agnostic global-delta prefetcher (BOP, whose offsets ARE
  page-bounded — the in-page control) and the streamer with its
  page-crossing behaviour suppressed/allowed via physical adjacency.

Expected: every prefetcher keeps its in-page gains under fragmentation,
while gains attributable to physical page adjacency disappear —
justifying DSPatch's strictly per-page patterns.
"""

from repro.cpu.system import System, SystemConfig
from repro.experiments.scale import Scale
from repro.memory.vm import PageAllocator, translate_trace
from repro.metrics.stats import FigureResult
from repro.workloads.catalog import build_trace


def crosspage_study(scale=None):
    scale = scale or Scale.from_env()
    virtual = build_trace("fspec06.libquantum", scale.trace_len)  # one long stream

    physical_contig, contig_alloc = translate_trace(
        virtual, PageAllocator(fragmented=False)
    )
    physical_frag, frag_alloc = translate_trace(
        virtual, PageAllocator(fragmented=True)
    )

    fig = FigureResult(
        "extra-crosspage",
        "Extension: page-contiguous vs fragmented physical frames "
        "(% over same-allocation baseline, streaming workload)",
        ["Contiguous", "Fragmented"],
        notes=[
            f"allocator contiguity: {contig_alloc.contiguity():.2f} vs "
            f"{frag_alloc.contiguity():.2f}",
            "in-page prefetching survives fragmentation; only cross-page "
            "adjacency gains disappear — the reason DSPatch's patterns are "
            "strictly per-page",
        ],
    )
    for scheme in ("spp", "dspatch", "sms"):
        row = {}
        for column, trace in (
            ("Contiguous", physical_contig),
            ("Fragmented", physical_frag),
        ):
            base = System(SystemConfig.single_thread("none")).run(trace)
            res = System(SystemConfig.single_thread(scheme)).run(trace)
            row[column] = 100.0 * (res.ipc / base.ipc - 1.0) if base.ipc else 0.0
        fig.add_row(scheme, row)
    return fig


def test_extra_crosspage(figure):
    fig = figure(crosspage_study)
    for scheme in ("spp", "dspatch", "sms"):
        row = fig.rows[scheme]
        # In-page prefetching must survive frame fragmentation: the
        # fragmented gain stays within a modest factor of the contiguous
        # gain (it is not wiped out).
        assert row["Fragmented"] > 0.0
        assert row["Fragmented"] >= 0.4 * row["Contiguous"]
