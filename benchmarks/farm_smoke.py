"""Sweep-farm smoke: a two-worker farm survives a SIGKILLed worker.

End-to-end proof of the fault-tolerant distributed execution path
(``repro serve`` coordinator + ``repro work`` peers +
``Session.run(distributed=True)``), run as a plain script (CI gates on
its exit code):

1. compute a fig-grid slice (3 workloads x 3 schemes) locally — the
   bit-identity reference;
2. start a real ``repro serve`` subprocess (coordinator + store) and two
   real ``repro work`` subprocesses with separate local cache dirs and a
   short lease TTL;
3. SIGKILL one worker mid-sweep while a submitting session runs the
   same grid with ``distributed=True``;
4. assert the sweep completes within its timeout, bit-identical to the
   local reference, with every spec accounted for exactly once
   (prefetched / completed remotely / computed locally / quarantined)
   and the queue's books balanced.

With ``--tls`` the whole farm runs over https: the coordinator serves
behind a fresh self-signed certificate and every peer (workers and the
submitting session) pins it via ``--tls-ca`` — the secured-deployment
recipe from docs/engine.md, end to end.

Usage::

    PYTHONPATH=src python benchmarks/farm_smoke.py --length 4000
    PYTHONPATH=src python benchmarks/farm_smoke.py --tls
"""

import argparse
import json
import re
import select
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

WORKLOADS = ("ispec06.mcf", "hpc.linpack", "cloud.bigbench")
SCHEMES = ("none", "spp", "dspatch")


def _await_line(proc, pattern, deadline_s=30.0, label="process"):
    """Read stdout until ``pattern`` matches (select-guarded, bounded)."""
    deadline = time.time() + deadline_s
    line = ""
    while time.time() < deadline and proc.poll() is None:
        ready, _, _ = select.select([proc.stdout], [], [], deadline - time.time())
        if not ready:
            break
        line = proc.stdout.readline()
        match = re.search(pattern, line)
        if match is not None:
            return match
    proc.kill()
    raise RuntimeError(f"{label} never came up (last line: {line!r})")


def start_server(cache_dir, tls=None):
    """Spawn ``repro serve`` on an ephemeral port; return (proc, url)."""
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--cache-dir",
        str(cache_dir),
        "--port",
        "0",
    ]
    if tls is not None:
        cert, key = tls
        cmd += ["--tls-cert", str(cert), "--tls-key", str(key)]
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    match = _await_line(proc, r"on (https?://[\d.]+:\d+)", label="repro serve")
    return proc, match.group(1)


def start_worker(url, cache_dir, ttl, tls_ca=None):
    """Spawn ``repro work`` against the coordinator; wait for readiness."""
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "--cache-dir",
        str(cache_dir),
    ]
    if tls_ca is not None:
        cmd += ["--tls-ca", str(tls_ca)]
    cmd += [
        "work",
        url,
        "--poll-interval",
        "0.1",
        "--ttl",
        str(ttl),
    ]
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    _await_line(proc, r"^working for ", label="repro work")
    return proc


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--length", type=int, default=4000, help="ops per run")
    parser.add_argument(
        "--ttl",
        type=float,
        default=5.0,
        help="worker lease TTL in seconds; the SIGKILLed worker's spec is "
        "re-leased after this long (default 5)",
    )
    parser.add_argument(
        "--kill-after",
        type=float,
        default=0.5,
        help="seconds into the sweep before one worker is SIGKILLed "
        "(default 0.5 — early enough to land mid-compute, stranding a "
        "lease for the TTL-expiry path)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=180.0,
        help="submitter's distributed-sweep budget in seconds (default 180)",
    )
    parser.add_argument(
        "--tls",
        action="store_true",
        help="run the whole farm over https: coordinator behind a fresh "
        "self-signed certificate, workers and submitter pinning it",
    )
    args = parser.parse_args(argv)

    from repro.engine import QueueClient, RunSpec, Session
    from repro.engine import config as engine_config

    specs = [RunSpec(w, s, args.length) for w in WORKLOADS for s in SCHEMES]

    with tempfile.TemporaryDirectory(prefix="repro-farm-smoke-") as tmp:
        tmp = Path(tmp)

        # Ground truth: a purely local session.
        reference = Session(cache_dir=tmp / "reference").run(specs)

        tls_pair = tls_ca = None
        if args.tls:
            from repro.engine.tlsutil import self_signed_cert

            tls_pair = self_signed_cert(tmp / "tls")
            tls_ca = str(tls_pair[0])

        proc, url = start_server(tmp / "served", tls=tls_pair)
        if args.tls:
            assert url.startswith("https://"), url
        workers = []
        try:
            workers = [
                start_worker(url, tmp / f"worker-{i}", args.ttl, tls_ca=tls_ca)
                for i in range(2)
            ]

            # SIGKILL worker 0 mid-sweep (no cleanup, no lease release —
            # exactly what an OOM kill or a yanked power cord looks like).
            import threading

            killer = threading.Timer(
                args.kill_after, lambda: workers[0].send_signal(signal.SIGKILL)
            )
            killer.start()

            submitter = Session(
                cache_dir=tmp / "submitter", remote_cache_url=url, tls_ca=tls_ca
            )
            t0 = time.perf_counter()
            farm = submitter.run(specs, distributed=True, timeout=args.timeout)
            sweep_s = time.perf_counter() - t0
            killer.cancel()
            report = dict(submitter.last_distributed)

            queue_stats = QueueClient(
                engine_config._remote_client(url, ca_file=tls_ca)
            ).stats()

            workers[0].wait(timeout=10)
            killed_rc = workers[0].returncode
        finally:
            for worker in workers:
                if worker.poll() is None:
                    worker.terminate()  # graceful: releases unfinished leases
                    try:
                        worker.wait(timeout=10)
                    except subprocess.TimeoutExpired:
                        worker.kill()
            proc.terminate()
            proc.wait(timeout=10)

    mismatches = sum(a.to_dict() != b.to_dict() for a, b in zip(reference, farm))
    accounted = (
        report["prefetched"] + report["remote"] + report["local"] + report["quarantined"]
    )
    counters = (queue_stats or {}).get("counters", {})
    summary = {
        "specs": len(specs),
        "sweep_seconds": round(sweep_s, 3),
        "mismatches": mismatches,
        "report": report,
        "killed_worker_returncode": killed_rc,
        "queue": {
            "tasks": (queue_stats or {}).get("tasks"),
            "completed": (queue_stats or {}).get("completed"),
            "pending": (queue_stats or {}).get("pending"),
            "leased": (queue_stats or {}).get("leased"),
            "quarantined": (queue_stats or {}).get("quarantined"),
            "expired_leases": counters.get("expired_leases", 0),
        },
    }
    print(json.dumps(summary, indent=2))

    failures = []
    if mismatches:
        failures.append(f"{mismatches} farm results differ from the local reference")
    if accounted != len(specs):
        failures.append(
            f"outcome accounting is off: {accounted} accounted, {len(specs)} specs"
        )
    if report["quarantined"]:
        failures.append(f"{report['quarantined']} specs were quarantined")
    if report["prefetched"] + report["remote"] == 0:
        failures.append("the farm delivered nothing (all specs computed locally)")
    if killed_rc != -signal.SIGKILL:
        failures.append(f"worker 0 exited {killed_rc}, expected SIGKILL (-9)")
    if queue_stats is None:
        failures.append("coordinator stopped answering queue stats")
    else:
        books = (
            queue_stats["completed"]
            + queue_stats["pending"]
            + queue_stats["leased"]
            + queue_stats["quarantined"]
        )
        if books != queue_stats["tasks"]:
            failures.append(
                f"queue books do not balance: {books} != {queue_stats['tasks']} tasks"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(
        f"ok: {len(specs)}-spec grid survived a SIGKILLed worker "
        f"({report['remote']} delivered by the farm, "
        f"{summary['queue']['expired_leases']} lease(s) expired, "
        f"{sweep_s:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
