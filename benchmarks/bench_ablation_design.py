"""Ablation: DSPatch's three structural design choices (DESIGN.md S4).

Each variant disables exactly one mechanism:

- ``dspatch-noanchor`` — no trigger-anchored rotation (Section 3.3).
  Expected: collapses on the offset-jittered workloads that anchoring
  exists for (Figure 2's access structure).
- ``dspatch-1trigger`` — one trigger per 4KB page (Section 3.7).
  Expected: strictly less coverage, lower speedup everywhere.
- ``dspatch-64b`` — uncompressed 64B-granularity patterns (Section 3.8).
  Expected: comparable performance at ~1.6x the storage, validating the
  paper's claim that 128B compression is nearly free.
"""

from repro.experiments.ablations import ablation_design_choices


def test_ablation_design_choices(figure):
    fig = figure(ablation_design_choices)
    full = fig.rows["dspatch"]
    noanchor = fig.rows["dspatch-noanchor"]
    single = fig.rows["dspatch-1trigger"]
    uncompressed = fig.rows["dspatch-64b"]

    # Anchoring is what wins on jittered layouts (Figure 2's claim).
    assert full["Jittered"] > noanchor["Jittered"]
    # Dual triggers never hurt; the full design wins overall.
    assert full["All"] >= single["All"] - 0.5
    # Compression costs little performance and saves ~2KB of pattern
    # storage (Section 3.8's trade-off).  The paper bounds the induced
    # misprediction rate at ~20%; at miniature trace scale the performance
    # cost shows up as a few points, not a collapse.
    assert uncompressed["Storage KB"] > full["Storage KB"] * 1.4
    assert full["All"] >= uncompressed["All"] - 6.0
