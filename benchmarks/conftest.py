"""Shared helpers for the figure-reproduction benches.

Each bench runs one figure driver (timed once by pytest-benchmark), prints
the rendered table — these are the rows/series the paper reports — and
asserts the *shape* invariants the paper's narrative rests on.  Absolute
numbers come from synthetic workloads on a simplified machine; shapes (who
wins, ordering, scaling direction) are the reproduction target.

Scale: defaults are small enough for a laptop run; set ``REPRO_FULL=1``
(plus optionally ``REPRO_TRACE_LEN``) for paper-sized sweeps.
"""

import pytest


def run_figure(benchmark, driver, *args, **kwargs):
    """Run ``driver`` once under the benchmark timer and print the table."""
    result = benchmark.pedantic(lambda: driver(*args, **kwargs), rounds=1, iterations=1)
    print()
    print(result.render())
    return result


@pytest.fixture
def figure(benchmark):
    """Fixture form of :func:`run_figure`."""

    def _run(driver, *args, **kwargs):
        return run_figure(benchmark, driver, *args, **kwargs)

    return _run
