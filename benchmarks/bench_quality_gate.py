"""Quality-metric drift gate: scored profiles vs the committed baseline.

Computes :class:`repro.metrics.quality.QualityProfile` for a pinned
scheme × workload grid (the counter path, through the ordinary session
cache) and compares every rate — accuracy, coverage, timeliness,
pollution — and the composite score against
``benchmarks/baselines/metrics_baseline.json``:

- every profile must pass its validity gates;
- every (workload, scheme) pair in the baseline must still exist, and
  none may appear from nowhere (the grid itself is pinned);
- each rate may drift at most ``--tolerance`` (absolute, default 0.05)
  from its calibrated value.  Intentional simulator changes re-calibrate
  with ``--update``; unintentional ones fail CI with a per-cell report.

The gate runs the *cheap* path on purpose: it is the path ``repro
report`` users see, and the exact event path is pinned equal to it by
``tests/test_observed_hierarchy.py``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_quality_gate.py
    PYTHONPATH=src python benchmarks/bench_quality_gate.py --update
"""

import argparse
import json
import os
import sys

from repro.engine import default_session
from repro.experiments.quality import QUALITY_WORKLOADS, quality_grid
from repro.metrics.quality import METRIC_NAMES

#: The pinned grid: the baseline, an aggressive streamer, the three main
#: paper schemes and the flagship composite — the spread of profiles the
#: quality table is meant to separate.
GATE_SCHEMES = ("none", "streamer", "bop", "spp", "dspatch", "spp+dspatch")
GATE_LENGTH = 4000

GATED_VALUES = tuple(METRIC_NAMES) + ("score",)

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "baselines", "metrics_baseline.json"
)


def _key(workload, scheme):
    return f"{workload}|{scheme}"


def compute_profiles():
    grid = quality_grid(
        default_session(), GATE_SCHEMES, QUALITY_WORKLOADS, GATE_LENGTH
    )
    return {_key(w, s): profile for (w, s), profile in grid.items()}


def run_gate(args):
    profiles = compute_profiles()

    failures = []
    for key, profile in sorted(profiles.items()):
        if not profile.valid:
            failures.append(f"{key}: failed validity gates: {'; '.join(profile.issues)}")

    if args.update:
        payload = {
            "protocol": {
                "schemes": list(GATE_SCHEMES),
                "workloads": list(QUALITY_WORKLOADS),
                "length": GATE_LENGTH,
            },
            "profiles": {k: p.to_dict() for k, p in sorted(profiles.items())},
        }
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        with open(args.baseline, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline written : {args.baseline}  ({len(profiles)} profiles)")
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        return 0

    if not os.path.exists(args.baseline):
        print(f"FAIL: no baseline at {args.baseline} (run with --update)",
              file=sys.stderr)
        return 1
    with open(args.baseline) as f:
        baseline = json.load(f)
    base_profiles = baseline.get("profiles", {})

    missing = sorted(set(base_profiles) - set(profiles))
    extra = sorted(set(profiles) - set(base_profiles))
    for key in missing:
        failures.append(f"{key}: in baseline but not computed (grid changed?)")
    for key in extra:
        failures.append(f"{key}: computed but not in baseline (run --update)")

    worst = 0.0
    for key in sorted(set(profiles) & set(base_profiles)):
        profile = profiles[key].to_dict()
        base = base_profiles[key]
        if profile["valid"] != base.get("valid", True):
            failures.append(
                f"{key}: validity flipped ({base.get('valid')} -> {profile['valid']})"
            )
            continue
        for name in GATED_VALUES:
            drift = abs(profile[name] - base[name])
            worst = max(worst, drift)
            if drift > args.tolerance:
                failures.append(
                    f"{key}: {name} drifted {drift:+.4f} "
                    f"(baseline {base[name]:.4f}, now {profile[name]:.4f}, "
                    f"tolerance {args.tolerance})"
                )

    print(f"profiles         : {len(profiles)} "
          f"({len(GATE_SCHEMES)} schemes x {len(QUALITY_WORKLOADS)} workloads, "
          f"length {GATE_LENGTH})")
    print(f"worst drift      : {worst:.4f}  (tolerance {args.tolerance})")

    if args.output:
        merged = {}
        if os.path.exists(args.output):
            try:
                with open(args.output) as f:
                    merged = json.load(f)
            except (OSError, json.JSONDecodeError):
                merged = {}
        merged["quality"] = {
            "profiles": len(profiles),
            "worst_drift": worst,
            "tolerance": args.tolerance,
            "failures": failures,
        }
        with open(args.output, "w") as f:
            json.dump(merged, f, indent=2, sort_keys=True)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.05)
    parser.add_argument("--update", action="store_true",
                        help="recalibrate the baseline from this run")
    parser.add_argument("--output", default=None,
                        help="merge a summary into this JSON artifact")
    return run_gate(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
