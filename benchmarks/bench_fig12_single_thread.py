"""Figure 12: the headline single-thread comparison.

Paper shape: DSPatch+SPP improves on standalone SPP (by ~6% geomean in the
paper) and the combination captures both paradigms' wins.
"""

from repro.experiments.figures import fig12_single_thread


def test_fig12_single_thread(figure):
    fig = figure(fig12_single_thread)
    spp = fig.rows["SPP"]["GEOMEAN"]
    combo = fig.rows["DSPatch+SPP"]["GEOMEAN"]
    # The adjunct claim: the combination beats standalone SPP overall.
    assert combo > spp
    # And it never loses a category badly.
    for category in fig.columns:
        assert fig.rows["DSPatch+SPP"][category] >= fig.rows["SPP"][category] - 3.0
    # Standalone DSPatch is positive overall.
    assert fig.rows["DSPatch"]["GEOMEAN"] > 0
