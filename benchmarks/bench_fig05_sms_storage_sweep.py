"""Figure 5: SMS performance vs pattern-history-table capacity.

Paper shape: shrinking the PHT from 16K entries (88KB) to 256 entries
(3.5KB) roughly halves SMS's average gain.
"""

from repro.experiments.figures import fig05_sms_pht_sweep


def test_fig05_sms_storage_sweep(figure):
    fig = figure(fig05_sms_pht_sweep)
    row = fig.rows["SMS"]
    # Monotone non-increasing as capacity shrinks (small tolerance for
    # sampling noise at reduced scale).
    assert row["16K"] >= row["256"] - 1.0
    assert row["16K"] >= row["1K"] - 1.0
