"""Figure 6: bandwidth scaling including the enhanced eSPP and eBOP.

Paper shape: even with bandwidth-aware tuning, neither eSPP nor eBOP
converts extra bandwidth into proportional gains — the motivation for
DSPatch's built-in bandwidth awareness.
"""

from repro.experiments.figures import fig06_bw_scaling_enhanced


def test_fig06_bw_scaling_enhanced(figure):
    fig = figure(fig06_bw_scaling_enhanced)
    assert {"eSPP", "eBOP"} <= set(fig.rows)
    for scheme in ("eSPP", "eBOP"):
        values = [fig.rows[scheme][c] for c in fig.columns]
        assert all(v > -5.0 for v in values)
    # eSPP's relaxed threshold must not *lose* to plain SPP at the widest
    # bandwidth point (it prefetches strictly more there).
    widest = fig.columns[-1]
    assert fig.rows["eSPP"][widest] >= fig.rows["SPP"][widest] - 3.0
